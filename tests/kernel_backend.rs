//! Model-level scalar-vs-vector backend agreement.
//!
//! `kernels::set_backend` flips a process-global switch, so everything
//! that must run under a pinned backend lives in ONE test function —
//! sibling `#[test]`s run on concurrent threads and would race the
//! switch. (Per-slice parity is covered property-by-property in
//! `crates/tensor/tests/kernel_parity.rs`, which uses the race-free
//! `_with(backend, ..)` entry points.)

use ptf_fedrec::models::{NeuMf, NeuMfConfig, Recommender};
use ptf_fedrec::tensor::kernels::{self, Backend};

fn train_and_score(backend: Backend) -> (Vec<f32>, Vec<f32>) {
    kernels::set_backend(backend);
    let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
    let mut m = NeuMf::new(6, 20, &cfg, &mut ptf_fedrec::data::test_rng(77));
    let batch: Vec<(u32, u32, f32)> =
        (0..40u32).map(|k| (k % 6, (k * 3) % 20, if k % 2 == 0 { 1.0 } else { 0.0 })).collect();
    let mut losses = Vec::new();
    for _ in 0..30 {
        losses.push(m.train_batch(&batch));
    }
    let scores: Vec<f32> = (0..6).flat_map(|u| m.score_all(u)).collect();
    (losses, scores)
}

#[test]
fn scalar_and_vector_backends_train_to_the_same_model() {
    let (scalar_loss, scalar_scores) = train_and_score(Backend::Scalar);
    let (vector_loss, vector_scores) = train_and_score(Backend::Vector);
    // same backend twice → bit-identical (the determinism claim holds at
    // model level, not just per-kernel)
    let (vector_loss2, vector_scores2) = train_and_score(Backend::Vector);
    kernels::set_backend(Backend::Vector); // restore the default
    assert_eq!(
        vector_scores.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        vector_scores2.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "vector backend must be deterministic across runs"
    );
    assert_eq!(vector_loss.last().unwrap().to_bits(), vector_loss2.last().unwrap().to_bits());

    // across backends only the reductions reassociate, so 30 training
    // steps stay within a small tolerance — close enough that the
    // backends are interchangeable for every quality metric
    for (round, (s, v)) in scalar_loss.iter().zip(&vector_loss).enumerate() {
        assert!((s - v).abs() < 1e-3, "round {round}: scalar loss {s} vs vector {v}");
    }
    let max_diff =
        scalar_scores.iter().zip(&vector_scores).map(|(s, v)| (s - v).abs()).fold(0.0f32, f32::max);
    assert!(max_diff < 1e-2, "backend score divergence after training: {max_diff}");
    // and the models genuinely learned (guards against comparing two
    // no-op runs)
    assert!(scalar_loss.last().unwrap() < &(scalar_loss[0] * 0.8), "{scalar_loss:?}");
}
