//! Smoke tests of the `ptf train` cohort/checkpoint/scale surface, shelling
//! out to the compiled binary: kill-and-resume byte parity, streamed scale
//! datasets, and checkpoint robustness (corruption, truncation, fingerprint
//! drift) as a user would hit them.

use std::path::PathBuf;
use std::process::{Command, Output};

fn ptf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptf"))
}

/// Fresh per-test scratch dir (tests run concurrently in one process).
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptf-ckpt-smoke-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A fast `ptf train --json` invocation on the ml100k preset.
fn preset_args() -> Vec<String> {
    "train --dataset ml100k --scale small --client mf --server mf --rounds 3 --seed 11 --json"
        .split_whitespace()
        .map(String::from)
        .collect()
}

/// A fast streamed scale invocation (small --users override keeps debug
/// binaries quick; the preset name still exercises the full scale path).
fn scale_args() -> Vec<String> {
    "train --dataset scale-10k --users 1500 --client mf --server mf --rounds 3 \
     --participants 16 --cohort 8 --seed 11 --json"
        .split_whitespace()
        .map(String::from)
        .collect()
}

#[test]
fn cohort_cli_run_matches_plain_engine_run() {
    let plain = ptf().args(preset_args()).output().expect("spawn failed");
    assert!(plain.status.success(), "stderr: {}", stderr_of(&plain));
    let mut args = preset_args();
    args.extend(["--cohort".into(), "32".into(), "--threads".into(), "2".into()]);
    let cohort = ptf().args(args).output().expect("spawn failed");
    assert!(cohort.status.success(), "stderr: {}", stderr_of(&cohort));
    // identical run modulo the protocol's display name
    let strip = |s: String| {
        s.lines().filter(|l| !l.contains("\"protocol\"")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(
        strip(stdout_of(&plain)),
        strip(stdout_of(&cohort)),
        "cohort scheduling must not change the run"
    );
    assert!(stdout_of(&cohort).contains("PTF-FedRec/cohort"));
}

#[test]
fn kill_and_resume_reproduces_the_uninterrupted_run_byte_for_byte() {
    let full_dir = fresh_dir("resume-full");
    let kill_dir = fresh_dir("resume-kill");
    let with_ckpt = |dir: &PathBuf, extra: &[&str]| {
        let mut args = preset_args();
        args.extend(["--checkpoint".into(), dir.display().to_string()]);
        args.extend(["--checkpoint-every".into(), "1".into()]);
        args.extend(extra.iter().map(|s| s.to_string()));
        ptf().args(args).output().expect("spawn failed")
    };

    // checkpointing must not perturb the run at all
    let plain = ptf().args(preset_args()).output().expect("spawn failed");
    let full = with_ckpt(&full_dir, &[]);
    assert!(full.status.success(), "stderr: {}", stderr_of(&full));
    let strip = |s: String| {
        s.lines().filter(|l| !l.contains("\"protocol\"")).collect::<Vec<_>>().join("\n")
    };
    assert_eq!(strip(stdout_of(&plain)), strip(stdout_of(&full)));

    // kill after 2 of 3 rounds, then resume: stdout must be byte-equal to
    // the uninterrupted checkpointed run
    let halted = with_ckpt(&kill_dir, &["--halt-after", "2"]);
    assert!(halted.status.success(), "stderr: {}", stderr_of(&halted));
    assert!(stderr_of(&halted).contains("halting after round 2"));
    let resumed = with_ckpt(&kill_dir, &["--resume"]);
    assert!(resumed.status.success(), "stderr: {}", stderr_of(&resumed));
    assert!(stderr_of(&resumed).contains("resumed at round 2"));
    assert_eq!(stdout_of(&full), stdout_of(&resumed), "resume diverged from uninterrupted run");

    // resuming a finished run replays zero rounds and reprints the output
    let again = with_ckpt(&kill_dir, &["--resume"]);
    assert!(again.status.success(), "stderr: {}", stderr_of(&again));
    assert!(stderr_of(&again).contains("resumed at round 3"));
    assert_eq!(stdout_of(&full), stdout_of(&again));

    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}

#[test]
fn scale_dataset_streams_and_is_cohort_and_thread_invariant() {
    let a = ptf().args(scale_args()).output().expect("spawn failed");
    assert!(a.status.success(), "stderr: {}", stderr_of(&a));
    let stdout = stdout_of(&a);
    assert!(stdout.contains("\"users\": 1500"), "{stdout}");
    assert!(stdout.contains("\"dataset\": \"scale-10k\""), "{stdout}");
    assert_eq!(stdout.matches("\"mean_client_loss\"").count(), 3);

    // different cohort size and thread count: byte-identical output
    let mut args = scale_args();
    for (flag, v) in [("--cohort", "3"), ("--threads", "2")] {
        let i = args.iter().position(|a| a == flag);
        match i {
            Some(i) => args[i + 1] = v.into(),
            None => args.extend([flag.to_string(), v.to_string()]),
        }
    }
    let b = ptf().args(args).output().expect("spawn failed");
    assert!(b.status.success(), "stderr: {}", stderr_of(&b));
    assert_eq!(stdout, stdout_of(&b), "cohort size/threads changed a scale run");
}

#[test]
fn scale_kill_and_resume_is_byte_identical() {
    let full_dir = fresh_dir("scale-full");
    let kill_dir = fresh_dir("scale-kill");
    let with_ckpt = |dir: &PathBuf, extra: &[&str]| {
        let mut args = scale_args();
        args.extend(["--checkpoint".into(), dir.display().to_string()]);
        args.extend(["--checkpoint-every".into(), "1".into()]);
        args.extend(extra.iter().map(|s| s.to_string()));
        ptf().args(args).output().expect("spawn failed")
    };
    let full = with_ckpt(&full_dir, &[]);
    assert!(full.status.success(), "stderr: {}", stderr_of(&full));
    let halted = with_ckpt(&kill_dir, &["--halt-after", "1"]);
    assert!(halted.status.success(), "stderr: {}", stderr_of(&halted));
    let resumed = with_ckpt(&kill_dir, &["--resume"]);
    assert!(resumed.status.success(), "stderr: {}", stderr_of(&resumed));
    assert_eq!(stdout_of(&full), stdout_of(&resumed));
    std::fs::remove_dir_all(&full_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}

#[test]
fn damaged_checkpoints_fail_cleanly_not_with_a_panic() {
    let dir = fresh_dir("damage");
    let run = |extra: &[&str]| {
        let mut args = preset_args();
        args.extend(["--checkpoint".into(), dir.display().to_string()]);
        args.extend(extra.iter().map(|s| s.to_string()));
        ptf().args(args).output().expect("spawn failed")
    };
    // seed a valid checkpoint
    let seeded = run(&["--halt-after", "2", "--checkpoint-every", "1"]);
    assert!(seeded.status.success(), "stderr: {}", stderr_of(&seeded));
    let manifest = dir.join("manifest.json");
    let good = std::fs::read_to_string(&manifest).expect("manifest written");

    let expect_clean_failure = |out: Output, want: &str, label: &str| {
        assert_eq!(out.status.code(), Some(1), "{label} should exit 1");
        let stderr = stderr_of(&out);
        assert!(stderr.contains(want), "{label}: expected {want:?} in stderr:\n{stderr}");
        assert!(!stderr.contains("panicked"), "{label} panicked:\n{stderr}");
    };

    // missing manifest
    std::fs::remove_file(&manifest).expect("remove manifest");
    expect_clean_failure(run(&["--resume"]), "checkpoint io", "missing manifest");

    // truncated manifest
    std::fs::write(&manifest, &good[..40]).expect("truncate");
    expect_clean_failure(run(&["--resume"]), "checkpoint corrupt", "truncated manifest");

    // corrupted (unparseable) manifest
    std::fs::write(&manifest, "{\"version\": tru").expect("corrupt");
    expect_clean_failure(run(&["--resume"]), "checkpoint corrupt", "corrupt manifest");

    // fingerprint drift: valid manifest, different run config
    std::fs::write(&manifest, &good).expect("restore manifest");
    let mut args = preset_args();
    let i = args.iter().position(|a| a == "--seed").expect("--seed in args");
    args[i + 1] = "999".into();
    args.extend(["--checkpoint".into(), dir.display().to_string(), "--resume".into()]);
    let drifted = ptf().args(args).output().expect("spawn failed");
    expect_clean_failure(drifted, "fingerprint mismatch", "drifted config");

    // the intact checkpoint still resumes after all that
    let ok = run(&["--resume"]);
    assert!(ok.status.success(), "stderr: {}", stderr_of(&ok));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flag_misuse_is_rejected_with_an_error() {
    let cases: &[(&str, &str)] = &[
        ("train --dataset ml100k --resume", "--resume requires --checkpoint"),
        ("train --dataset ml100k --checkpoint-every 2", "--checkpoint-every requires"),
        ("train --dataset ml100k --users 500", "scale-* datasets"),
        ("train --dataset ml100k --participants 8", "scale-* datasets"),
        ("train --dataset ml100k --halt-after 1", "--halt-after requires"),
        ("train --dataset scale-10k --protocol fcf", "--protocol ptf only"),
        ("train --dataset ml100k --cohort 8 --protocol fedmf", "--protocol ptf only"),
        ("train --dataset scale-10k --users 0", "--users must be > 0"),
    ];
    for (cmd, want) in cases {
        let args: Vec<String> = cmd.split_whitespace().map(String::from).collect();
        let out = ptf().args(&args).output().expect("spawn failed");
        assert_eq!(out.status.code(), Some(1), "{cmd:?} should be a run error");
        let stderr = stderr_of(&out);
        assert!(stderr.contains(want), "{cmd:?}: expected {want:?} in stderr:\n{stderr}");
        assert!(!stderr.contains("panicked"), "{cmd:?} panicked:\n{stderr}");
    }
}
