//! Scoped-vs-full model parity.
//!
//! The item-scoped model API promises that scoping changes *where rows
//! live*, never *what they hold*: a `Rows`-scoped model and a `Full`
//! model built from the same seed (`build_model_scoped`) are bit-identical
//! on every row both hold — at init, through training, and through lazy
//! materialization of rows the scoped model never started with.
//!
//! NGCF runs with `message_dropout = 0` here: dropout masks span the
//! whole node space, so their RNG draw counts differ between a scoped and
//! a full table (the values still match whenever no element is dropped,
//! but training trajectories under active dropout are not comparable).

use proptest::prelude::*;
use ptf_fedrec::models::{build_model_scoped, ItemScope, ModelHyper, ModelKind};

const NUM_ITEMS: usize = 24;

fn hyper(kind: ModelKind) -> ModelHyper {
    let mut h = ModelHyper::small();
    h.dim = 8;
    h.gcn_layers = 2;
    h.mlp_layers = vec![16, 8];
    if kind == ModelKind::Ngcf {
        h.ngcf_dropout = 0.0;
    }
    h
}

const ALL_KINDS: [ModelKind; 4] =
    [ModelKind::Mf, ModelKind::NeuMf, ModelKind::LightGcn, ModelKind::Ngcf];

/// Sorted, deduplicated, non-empty scope ids.
fn scope_strategy() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::btree_set(0u32..NUM_ITEMS as u32, 1..NUM_ITEMS)
        .prop_map(|s| s.into_iter().collect())
}

/// Training batches over arbitrary (possibly out-of-scope) items.
fn batch_strategy() -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    proptest::collection::vec(
        (0u32..2, 0u32..NUM_ITEMS as u32, 0u32..2)
            .prop_map(|(u, i, pos)| (u, i, if pos == 1 { 1.0f32 } else { 0.0 })),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Bit-identical scores and training losses between a `Rows`-scoped
    /// and a `Full` model from the same seed, across every architecture,
    /// including after training on in-scope *and* out-of-scope items
    /// (the latter exercise lazy materialization mid-trajectory).
    #[test]
    fn scoped_and_full_models_are_bit_identical(
        ids in scope_strategy(),
        batches in proptest::collection::vec(batch_strategy(), 1..4),
        seed in 0u64..1_000,
    ) {
        let all_items: Vec<u32> = (0..NUM_ITEMS as u32).collect();
        for kind in ALL_KINDS {
            let h = hyper(kind);
            let mut full =
                build_model_scoped(kind, 2, &h, &ItemScope::Full(NUM_ITEMS), seed);
            let mut scoped = build_model_scoped(
                kind,
                2,
                &h,
                &ItemScope::rows(NUM_ITEMS, ids.clone()),
                seed,
            );
            // graph models see the same (global-id) ego graph
            if full.uses_graph() {
                let edges: Vec<(u32, u32, f32)> =
                    ids.iter().map(|&i| (0u32, i, 1.0f32)).collect();
                full.set_graph(&edges);
                scoped.set_graph(&edges);
            }
            prop_assert_eq!(
                full.score(0, &all_items),
                scoped.score(0, &all_items),
                "{} init scores diverged", kind
            );
            for batch in &batches {
                let lf = full.train_batch(batch);
                let ls = scoped.train_batch(batch);
                prop_assert_eq!(lf, ls, "{} training loss diverged", kind);
            }
            prop_assert_eq!(
                full.score(1, &all_items),
                scoped.score(1, &all_items),
                "{} post-training scores diverged", kind
            );
            // the scoped model only ever materialized what it touched
            prop_assert!(scoped.item_scope().len() <= NUM_ITEMS);
        }
    }

    /// Eviction is representation-independent: a dense (`Full`) model
    /// resets cold rows in place while a `Rows` model physically removes
    /// them, but under the *same* train → evict → retrain schedule the two
    /// stay bit-identical — on surviving rows, on evicted rows (both back
    /// at derived init), and through rematerialization when training
    /// touches an evicted row again.
    #[test]
    fn eviction_preserves_dense_sparse_parity(
        ids in scope_strategy(),
        batches in proptest::collection::vec(batch_strategy(), 1..3),
        keep_extra in proptest::collection::btree_set(0u32..NUM_ITEMS as u32, 1..8),
        seed in 0u64..1_000,
    ) {
        let all_items: Vec<u32> = (0..NUM_ITEMS as u32).collect();
        for kind in ALL_KINDS {
            let h = hyper(kind);
            let mut full =
                build_model_scoped(kind, 2, &h, &ItemScope::Full(NUM_ITEMS), seed);
            let mut scoped = build_model_scoped(
                kind,
                2,
                &h,
                &ItemScope::rows(NUM_ITEMS, ids.clone()),
                seed,
            );
            let edge_ids: Vec<u32> = ids.iter().copied().take(3).collect();
            if full.uses_graph() {
                let edges: Vec<(u32, u32, f32)> =
                    edge_ids.iter().map(|&i| (0u32, i, 1.0f32)).collect();
                full.set_graph(&edges);
                scoped.set_graph(&edges);
            }
            for batch in &batches {
                full.train_batch(batch);
                scoped.train_batch(batch);
            }
            // the keep set must cover every ego-graph edge item (the
            // protocol guarantees this: edges derive from the pool)
            let mut keep: Vec<u32> =
                keep_extra.iter().copied().chain(edge_ids.iter().copied()).collect();
            keep.sort_unstable();
            keep.dedup();
            full.evict_items(&keep);
            scoped.evict_items(&keep);
            prop_assert!(
                scoped.item_scope().len() <= keep.len(),
                "{} eviction left {} rows for a {}-id keep set",
                kind, scoped.item_scope().len(), keep.len()
            );
            prop_assert_eq!(
                full.score(0, &all_items),
                scoped.score(0, &all_items),
                "{} post-eviction scores diverged", kind
            );
            // retraining rematerializes evicted rows from derived init on
            // both sides — the trajectories must not fork
            for batch in &batches {
                let lf = full.train_batch(batch);
                let ls = scoped.train_batch(batch);
                prop_assert_eq!(lf, ls, "{} post-eviction training loss diverged", kind);
            }
            prop_assert_eq!(
                full.score(1, &all_items),
                scoped.score(1, &all_items),
                "{} retrained scores diverged", kind
            );
        }
    }
}

/// Regression: dispersing an item the client has never seen must
/// materialize its row lazily *and deterministically* — training on it in
/// a scoped model lands on exactly the row a full model always had, and
/// materialization order cannot change the result.
#[test]
fn dispersed_out_of_scope_item_materializes_deterministically() {
    for kind in ALL_KINDS {
        let h = hyper(kind);
        let scope = ItemScope::rows(NUM_ITEMS, vec![2, 5, 11]);
        let mut full = build_model_scoped(kind, 1, &h, &ItemScope::Full(NUM_ITEMS), 99);
        let mut scoped_a = build_model_scoped(kind, 1, &h, &scope, 99);
        let mut scoped_b = build_model_scoped(kind, 1, &h, &scope, 99);
        if full.uses_graph() {
            let edges = [(0u32, 2u32, 1.0f32), (0, 5, 1.0)];
            full.set_graph(&edges);
            scoped_a.set_graph(&edges);
            scoped_b.set_graph(&edges);
        }

        // "dispersal": item 17 arrives with a soft label; item 20 is a
        // sampled negative. a and b touch them in opposite orders.
        let disperse = (0u32, 17u32, 0.9f32);
        let negative = (0u32, 20u32, 0.0f32);
        for _ in 0..3 {
            full.train_batch(&[disperse, negative]);
            scoped_a.train_batch(&[disperse, negative]);
            scoped_b.train_batch(&[negative, disperse]);
        }
        assert!(scoped_a.item_scope().contains(17), "{kind}: dispersed row not materialized");
        assert!(scoped_a.item_scope().contains(20), "{kind}: negative row not materialized");

        let probe: Vec<u32> = (0..NUM_ITEMS as u32).collect();
        assert_eq!(
            full.score(0, &probe),
            scoped_a.score(0, &probe),
            "{kind}: lazily materialized training diverged from full"
        );
        // same-order batches were identical, so a == full covers a;
        // b touched rows in a different order within the batch and must
        // still agree on every materialized row's *values* at init time —
        // check by re-deriving fresh models trained identically
        let mut scoped_c = build_model_scoped(kind, 1, &h, &scope, 99);
        if scoped_c.uses_graph() {
            scoped_c.set_graph(&[(0u32, 2u32, 1.0f32), (0, 5, 1.0)]);
        }
        for _ in 0..3 {
            scoped_c.train_batch(&[negative, disperse]);
        }
        assert_eq!(
            scoped_b.score(0, &probe),
            scoped_c.score(0, &probe),
            "{kind}: materialization order broke determinism"
        );
    }
}

/// The scoped checkpoint format survives a full export → import cycle
/// with the lazily grown id set intact (tentpole acceptance: state
/// round-trips sparse tables).
#[test]
fn scoped_state_roundtrips_through_checkpoints() {
    for kind in ALL_KINDS {
        let h = hyper(kind);
        let scope = ItemScope::rows(NUM_ITEMS, vec![1, 8]);
        let mut m = build_model_scoped(kind, 1, &h, &scope, 3);
        if m.uses_graph() {
            m.set_graph(&[(0, 1, 1.0)]);
        }
        for _ in 0..5 {
            m.train_batch(&[(0, 1, 1.0), (0, 19, 0.0)]);
        }
        let ckpt = m.export_state().expect("scoped export");
        let mut back = build_model_scoped(kind, 1, &h, &scope, 777);
        back.import_state(&ckpt).unwrap_or_else(|e| panic!("{kind}: {e}"));
        if back.uses_graph() {
            back.set_graph(&[(0, 1, 1.0)]);
        }
        let probe: Vec<u32> = (0..NUM_ITEMS as u32).collect();
        assert_eq!(m.score(0, &probe), back.score(0, &probe), "{kind}: restore diverged");
        assert!(back.item_scope().contains(19), "{kind}: grown id set lost in checkpoint");
    }
}
