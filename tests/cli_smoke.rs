//! Smoke tests of the `ptf` binary: every code path here shells out to the
//! actual compiled executable, so arg parsing, output plumbing, and exit
//! codes are exercised exactly as a user would hit them.

use std::process::Command;

fn ptf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptf"))
}

#[test]
fn help_exits_zero_and_prints_usage() {
    for flag in ["--help", "-h", "help"] {
        let out = ptf().arg(flag).output().expect("failed to spawn ptf");
        assert!(out.status.success(), "`ptf {flag}` exited {:?}", out.status.code());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("USAGE"), "no usage text for `ptf {flag}`:\n{stdout}");
        assert!(stdout.contains("ptf train"), "usage should list the train command");
    }
}

#[test]
fn no_args_prints_usage() {
    let out = ptf().output().expect("failed to spawn ptf");
    assert!(out.status.success(), "bare `ptf` should print usage and exit 0");
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_flag_is_a_parse_error() {
    let out = ptf().args(["train", "--bogus"]).output().expect("failed to spawn ptf");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn stats_runs_all_presets() {
    let out =
        ptf().args(["stats", "--scale", "small", "--seed", "7"]).output().expect("spawn failed");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for name in ["MovieLens-100K", "Steam-200K", "Gowalla"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn tiny_train_run_reports_metrics_and_traffic() {
    let out = ptf()
        .args([
            "train",
            "--dataset",
            "ml100k",
            "--rounds",
            "1",
            "--scale",
            "small",
            "--seed",
            "7",
            "--k",
            "5",
        ])
        .output()
        .expect("spawn failed");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("communication:"), "no traffic summary in:\n{stdout}");
}

#[test]
fn train_json_emits_machine_readable_run() {
    let out = ptf()
        .args([
            "train",
            "--dataset",
            "ml100k",
            "--rounds",
            "2",
            "--seed",
            "7",
            "--k",
            "5",
            "--json",
        ])
        .output()
        .expect("spawn failed");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "stdout must be pure JSON:\n{stdout}");
    // the vendored serde_json shim has no dynamic Value reader, so assert
    // on the serialized structure directly
    for field in
        ["\"protocol\"", "PTF-FedRec", "\"trace\"", "\"rounds\"", "\"ndcg\"", "\"total_bytes\""]
    {
        assert!(stdout.contains(field), "missing {field} in:\n{stdout}");
    }
    let rounds = stdout.matches("\"mean_client_loss\"").count();
    assert_eq!(rounds, 2, "expected 2 serialized rounds in:\n{stdout}");
}

#[test]
fn every_protocol_trains_through_the_cli() {
    for protocol in ["ptf", "fcf", "fedmf", "metamf", "centralized"] {
        let out = ptf()
            .args([
                "train",
                "--dataset",
                "ml100k",
                "--protocol",
                protocol,
                "--rounds",
                "1",
                "--seed",
                "7",
                "--k",
                "5",
                "--json",
            ])
            .output()
            .expect("spawn failed");
        assert!(
            out.status.success(),
            "--protocol {protocol} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.trim_start().starts_with('{'), "{protocol} stdout not JSON:\n{stdout}");
        let rounds = stdout.matches("\"mean_client_loss\"").count();
        assert_eq!(rounds, 1, "{protocol}: expected 1 serialized round in:\n{stdout}");
    }
}

#[test]
fn privacy_json_reports_attack_f1() {
    let out =
        ptf().args(["privacy", "--dataset", "ml100k", "--rounds"]).output().expect("spawn failed");
    // --rounds is not a privacy option: parse error, exit 2
    assert_eq!(out.status.code(), Some(2));

    let out = ptf()
        .args(["privacy", "--dataset", "ml100k", "--defense", "none", "--seed", "7", "--json"])
        .output()
        .expect("spawn failed");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "stdout must be pure JSON:\n{stdout}");
    assert!(stdout.contains("No Defense"), "{stdout}");
    assert!(stdout.contains("\"attack_f1\""), "{stdout}");
}

#[test]
fn invalid_config_is_an_error_message_not_a_panic() {
    // --rounds 0 fails PtfConfig validation: the binary must exit 1 with
    // the ConfigError message on stderr and no panic backtrace
    let out = ptf()
        .args(["train", "--dataset", "ml100k", "--rounds", "0", "--seed", "7"])
        .output()
        .expect("spawn failed");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rounds must be positive"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "panic leaked to the user: {stderr}");
}

#[test]
fn generate_writes_loadable_json() {
    let dir = std::env::temp_dir().join(format!("ptf-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ml100k.json");
    let out = ptf()
        .args(["generate", "--dataset", "ml100k", "--out"])
        .arg(&path)
        .args(["--scale", "small", "--seed", "7"])
        .output()
        .expect("spawn failed");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let json = std::fs::read_to_string(&path).expect("generate should write the file");
    let data = ptf_fedrec::data::Dataset::from_json(&json).expect("exported JSON should load");
    assert!(data.num_interactions() > 0);
    std::fs::remove_dir_all(&dir).ok();
}
