//! Networked-mode smoke tests: `ptf serve` / `ptf client` over real
//! localhost TCP, plus the error paths — every failure must be a clean
//! exit-1 message, never a panic.

use std::io::{BufRead, BufReader, Read};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

fn ptf() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ptf"))
}

/// Spawns `ptf serve`, reads its stderr until the `listening on ADDR`
/// line, and returns (child, bound address, drain handle for the rest of
/// stderr). Draining keeps the pipe from back-pressuring the server.
fn spawn_serve(args: &[&str]) -> (Child, String, std::thread::JoinHandle<String>) {
    let mut child = ptf()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("failed to spawn ptf serve");
    let mut reader = BufReader::new(child.stderr.take().unwrap());
    let mut seen = String::new();
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("serve stderr read failed");
        assert!(n > 0, "serve exited before printing its address; stderr so far:\n{seen}");
        seen.push_str(&line);
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.to_string();
        }
    };
    let drain = std::thread::spawn(move || {
        let mut rest = String::new();
        reader.read_to_string(&mut rest).ok();
        seen + &rest
    });
    (child, addr, drain)
}

fn client_args<'a>(addr: &'a str, ids: &'a str) -> Vec<&'a str> {
    vec![
        "client",
        "--addr",
        addr,
        "--dataset",
        "ml100k",
        "--client",
        "mf",
        "--server",
        "mf",
        "--rounds",
        "3",
        "--ids",
        ids,
        "--json",
    ]
}

/// The acceptance run: one server, four client processes over localhost
/// TCP, three rounds, one shard induced to straggle past the final
/// round's deadline. The run must complete with a valid JSON trace and
/// the straggler drops recorded.
#[test]
fn tcp_run_with_four_clients_and_a_straggler() {
    let (serve, addr, drain) = spawn_serve(&[
        "serve",
        "--dataset",
        "ml100k",
        "--port",
        "0",
        "--client",
        "mf",
        "--server",
        "mf",
        "--rounds",
        "3",
        "--deadline-ms",
        "5000",
        "--gather-ms",
        "30000",
        "--json",
    ]);

    // 120 small-scale ml100k users over four shards; the last shard
    // sleeps through round 2's deadline
    let mut on_time = Vec::new();
    for ids in ["0-29", "30-59", "60-89"] {
        on_time.push(
            ptf()
                .args(client_args(&addr, ids))
                .stdout(Stdio::piped())
                .stderr(Stdio::piped())
                .spawn()
                .expect("failed to spawn ptf client"),
        );
    }
    let mut straggler = ptf()
        .args(client_args(&addr, "90-119"))
        .args(["--straggle-round", "2", "--straggle-ms", "60000"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("failed to spawn straggler client");

    let out = serve.wait_with_output().expect("serve wait failed");
    let stderr = drain.join().unwrap();
    assert!(out.status.success(), "serve failed; stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "serve panicked:\n{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "serve stdout must be pure JSON:\n{stdout}");
    // three serialized rounds, the whole last shard dropped in round 2
    assert_eq!(stdout.matches("\"mean_client_loss\"").count(), 3, "{stdout}");
    assert!(stdout.contains("\"stragglers\""), "{stdout}");
    assert!(stdout.contains("\"client\": 90"), "straggler shard missing from:\n{stdout}");
    assert!(stdout.contains("\"connections\": 4"), "{stdout}");
    assert!(stdout.contains("\"participants\": 90"), "round 2 must run over 90 clients:\n{stdout}");
    assert!(stdout.contains("\"ndcg\""), "serve must evaluate the trained model:\n{stdout}");

    for child in on_time {
        let out = child.wait_with_output().expect("client wait failed");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(out.status.success(), "on-time client failed:\n{stderr}");
        assert!(!stderr.contains("panicked"), "client panicked:\n{stderr}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("\"rounds_finished\": 3"), "{stdout}");
        assert!(stdout.contains("\"dropped\": 0"), "{stdout}");
    }
    // the straggler is still asleep in its induced delay; its server is
    // gone, so it ends in a clean disconnect error — not asserted, just
    // reaped
    straggler.kill().ok();
    straggler.wait().ok();
}

#[test]
fn serve_on_a_busy_port_exits_one_with_a_message() {
    // hold the port so the server's bind must fail
    let holder = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = holder.local_addr().unwrap().port().to_string();
    let out = ptf()
        .args(["serve", "--dataset", "ml100k", "--port", &port])
        .output()
        .expect("spawn failed");
    assert_eq!(out.status.code(), Some(1), "bind failure must be exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot bind"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "panic leaked to the user: {stderr}");
    drop(holder);
}

#[test]
fn client_connection_refused_exits_one_with_a_message() {
    // bind then drop a listener: the port is free again, so connecting
    // to it is refused
    let addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let out = ptf()
        .args(["client", "--addr", &addr, "--dataset", "ml100k", "--client", "mf"])
        .output()
        .expect("spawn failed");
    assert_eq!(out.status.code(), Some(1), "refused connection must be exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot connect"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "panic leaked to the user: {stderr}");
}

#[test]
fn client_disconnected_mid_handshake_exits_one_without_panicking() {
    // a fake server that accepts and immediately hangs up: the client's
    // recv sees EOF before any Welcome and must report a clean error
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        drop(stream);
    });
    let out = ptf()
        .args([
            "client",
            "--addr",
            &addr,
            "--dataset",
            "ml100k",
            "--client",
            "mf",
            "--server",
            "mf",
            "--ids",
            "0-3",
        ])
        .output()
        .expect("spawn failed");
    fake.join().unwrap();
    assert_eq!(out.status.code(), Some(1), "mid-run disconnect must be exit 1");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked"), "panic leaked to the user: {stderr}");
}
