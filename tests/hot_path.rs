//! Allocation accounting of the round hot path.
//!
//! This binary installs the `ptf_tensor::alloc::CountingAlloc` shim, so
//! every protocol round reports how many heap allocations happened
//! *inside* the parallel client phase (`PtfFedRec::last_round_client_allocs`).
//! The headline assertion: with an allocation-free client model (MF) and
//! the scratch-buffer pool warmed up, a steady-state PTF-FedRec round
//! performs **zero** client-path heap allocations — negative sampling,
//! training-pool assembly, local SGD, scoring, and upload staging all run
//! inside reused buffers.

use ptf_fedrec::core::{DefenseKind, Federation, PtfConfig, StorageMode};
use ptf_fedrec::data::{SyntheticConfig, TrainTestSplit};
use ptf_fedrec::models::{ModelHyper, ModelKind};
use ptf_fedrec::tensor::alloc;

#[global_allocator]
static COUNTER: alloc::CountingAlloc = alloc::CountingAlloc;

fn split() -> TrainTestSplit {
    let data =
        SyntheticConfig::new("hot", 48, 96, 12.0).generate(&mut ptf_fedrec::data::test_rng(31));
    TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(32))
}

#[test]
fn steady_state_mf_rounds_allocate_nothing_on_the_client_path() {
    let s = split();
    let mut cfg = PtfConfig::small();
    cfg.rounds = 5;
    cfg.client_epochs = 2;
    cfg.alpha = 8;
    // NoDefense keeps the full trained pool on the upload path (the
    // sampling defenses draw index vectors by design); one worker thread
    // so a single warmed scratch serves every client deterministically
    cfg.defense = DefenseKind::NoDefense;
    cfg.threads = 1;
    // full client tables: every item row exists up front, so the strict
    // zero-allocation guarantee holds from the first steady-state round
    // (the scoped path is covered by the sibling test below, where
    // allocations may only come from first-touch row materialization)
    cfg.scoped_clients = false;
    let mut fed = Federation::builder(&s.train)
        .client_model(ModelKind::Mf)
        .server_model(ModelKind::Mf)
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()
        .expect("valid config");

    // warm-up: round 1 grows the scratch/upload buffers, round 2 first
    // sees server-dispersed soft labels (D̃ enlarges the training pool),
    // round 3 confirms capacities have stabilized
    for _ in 0..3 {
        fed.run_round();
    }
    assert!(alloc::total_allocs() > 0, "the counting shim must be live in this binary");

    for round in 3..5 {
        fed.run_round();
        assert_eq!(
            fed.protocol().last_round_client_allocs(),
            0,
            "round {round}: steady-state client path must not touch the heap"
        );
    }
}

#[test]
fn steady_state_scoped_mf_rounds_allocate_nothing_once_rows_settle() {
    // the Rows-scoped client guarantee: lazy row materialization may
    // allocate on FIRST touch only — once a client has touched every item
    // it will ever see, rounds are as allocation-free as full tables.
    // A dense synthetic set (many positives per 40-item catalogue) makes
    // the negative sampler return the whole complement each round, so the
    // fleet's row set saturates during warm-up and the assertion is
    // deterministic.
    let data = SyntheticConfig::new("hot-scoped", 16, 40, 16.0)
        .generate(&mut ptf_fedrec::data::test_rng(7));
    let s = TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(8));
    let mut cfg = PtfConfig::small();
    cfg.rounds = 8;
    cfg.client_epochs = 2;
    cfg.alpha = 8;
    cfg.defense = DefenseKind::NoDefense;
    cfg.threads = 1;
    assert!(cfg.scoped_clients, "scoped clients are the default");
    // this test asserts Rows-scoped behavior specifically; the ~16-positive
    // clients over a 40-item catalogue would otherwise trip the dense
    // fallback and hold all 40 rows from round one
    cfg.storage.mode = StorageMode::Sparse;
    let mut fed = Federation::builder(&s.train)
        .client_model(ModelKind::Mf)
        .server_model(ModelKind::Mf)
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()
        .expect("valid config");

    let full_rows = s.train.num_users() * s.train.num_items();
    assert!(
        fed.protocol().materialized_item_rows() < full_rows / 2,
        "fresh scoped fleet should hold a fraction of {full_rows} rows"
    );

    // warm-up: scratch buffers + first-touch materialization of sampled
    // negatives and dispersed items
    for _ in 0..6 {
        fed.run_round();
    }
    let settled = fed.protocol().materialized_item_rows();
    for round in 6..8 {
        fed.run_round();
        assert_eq!(
            fed.protocol().materialized_item_rows(),
            settled,
            "round {round}: row set was expected to be saturated by warm-up"
        );
        assert_eq!(
            fed.protocol().last_round_client_allocs(),
            0,
            "round {round}: a scoped steady-state round (no new rows) must not touch the heap"
        );
    }
}

#[test]
fn eviction_keeps_client_rows_bounded_over_fifty_rounds() {
    // Without eviction, a sparse client's row set grows monotonically —
    // every round's fresh negatives coupon-collect the catalogue. With
    // `evict_interval`/`evict_budget` set, each client is trimmed back to
    // its budget every interval, so 50 rounds stay bounded while the
    // no-eviction control keeps climbing past the same budget.
    let data =
        SyntheticConfig::new("bounded", 12, 400, 8.0).generate(&mut ptf_fedrec::data::test_rng(21));
    let s = TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(22));
    let mut cfg = PtfConfig::small();
    cfg.rounds = 50;
    cfg.client_epochs = 1;
    cfg.defense = DefenseKind::NoDefense;
    cfg.threads = 1;
    cfg.storage.mode = StorageMode::Sparse;
    cfg.storage.evict_interval = 5;
    // comfortably above any single round's pool (positives + 4× negatives
    // + dispersed items ≈ 50 ids) so the working set is never churned
    let budget = 120;
    cfg.storage.evict_budget = budget;
    let control_cfg = {
        let mut c = cfg.clone();
        c.storage.evict_interval = 0;
        c.storage.evict_budget = 0;
        c
    };
    let build = |cfg: PtfConfig| {
        Federation::builder(&s.train)
            .client_model(ModelKind::Mf)
            .server_model(ModelKind::Mf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid config")
    };
    let mut evicting = build(cfg);
    let mut control = build(control_cfg);

    let num_users = s.train.num_users() as u32;
    let mut plateau = Vec::new();
    for round in 1..=50u32 {
        evicting.run_round();
        control.run_round();
        if round % 5 == 0 {
            let max_rows =
                (0..num_users).map(|u| evicting.protocol().client(u).item_rows()).max().unwrap();
            assert!(
                max_rows <= budget,
                "round {round}: a client holds {max_rows} rows, budget {budget}"
            );
            plateau.push(evicting.protocol().materialized_item_rows());
        }
    }
    // boundedness is a plateau, not a slowed climb: the fleet's row count
    // at interval boundaries stops growing once the budget binds
    let mid = plateau[plateau.len() / 2];
    let last = *plateau.last().unwrap();
    assert!(
        last <= mid + num_users as usize,
        "fleet rows still climbing at boundaries: {plateau:?}"
    );
    // and the control demonstrates the problem being solved
    let control_max =
        (0..num_users).map(|u| control.protocol().client(u).item_rows()).max().unwrap();
    assert!(
        control_max > budget,
        "control never exceeded the budget ({control_max} rows) — test shape too small"
    );
}

#[test]
fn default_neumf_rounds_report_their_client_allocations() {
    // the counter itself must work for allocating models too — NeuMF's
    // autograd forward allocates, and the shim has to see it
    let s = split();
    let mut cfg = PtfConfig::small();
    cfg.rounds = 2;
    cfg.client_epochs = 1;
    cfg.threads = 1;
    let mut fed = Federation::builder(&s.train)
        .client_model(ModelKind::NeuMf)
        .server_model(ModelKind::NeuMf)
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()
        .expect("valid config");
    fed.run_round();
    assert!(
        fed.protocol().last_round_client_allocs() > 0,
        "NeuMF clients allocate; a zero reading would mean the bracket is broken"
    );
}

#[test]
fn neumf_server_batch_loop_is_allocation_free_after_warmup() {
    // The server phase trains its hidden model (NeuMF here) on the
    // crowdsourced pool batch after batch, every round, for the lifetime
    // of the federation. With the arena-backed tape the whole
    // forward/backward/Adam cycle must reuse pooled node slots, staged
    // index buffers, and recycled gradient buffers: after the first few
    // batches grow every capacity, further batches of the same shape may
    // not touch the heap at all.
    use ptf_fedrec::models::{NeuMf, NeuMfConfig, Recommender};
    let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 1e-3 };
    let mut m = NeuMf::new(6, 24, &cfg, &mut ptf_fedrec::data::test_rng(11));
    let batch: Vec<(u32, u32, f32)> =
        (0..32u32).map(|k| (k % 6, (k * 7) % 24, if k % 2 == 0 { 1.0 } else { 0.3 })).collect();
    for _ in 0..3 {
        m.train_batch(&batch);
    }
    let t0 = alloc::thread_allocs();
    for _ in 0..20 {
        m.train_batch(&batch);
    }
    assert_eq!(
        alloc::thread_allocs() - t0,
        0,
        "arena-tape NeuMF training must not allocate once warm"
    );
}

#[test]
fn mf_gradients_into_is_allocation_free_per_sample() {
    // the explicit-gradient MF API the baselines decompose: after the
    // caller's scratch vectors size themselves once, every further sample
    // is pure arithmetic
    use ptf_fedrec::models::mf::mf_gradients_into;
    let user: Vec<f32> = (0..16).map(|k| 0.01 * k as f32).collect();
    let item: Vec<f32> = (0..16).map(|k| 0.02 * k as f32).collect();
    let (mut du, mut dv) = (Vec::new(), Vec::new());
    mf_gradients_into(&mut du, &mut dv, &user, &item, 0.1, 1.0, 0.01);
    let t0 = alloc::thread_allocs();
    for s in 0..200 {
        let label = if s % 2 == 0 { 1.0 } else { 0.0 };
        mf_gradients_into(&mut du, &mut dv, &user, &item, 0.1, label, 0.01);
    }
    assert_eq!(alloc::thread_allocs() - t0, 0, "per-sample gradients must reuse du/dv");
}

#[test]
fn counters_track_allocations() {
    // race-free assertions only: sibling tests allocate concurrently, so
    // this checks per-thread counters and lower bounds the global peak
    // (the instant the 4 MiB block is live, current ≥ 4 MiB, and the
    // peak is a fetch_max over current — no reset_peak here, which
    // would race the other tests in this binary)
    let t0 = alloc::thread_allocs();
    let buf: Vec<u8> = vec![0; 4 << 20];
    assert!(alloc::thread_allocs() > t0, "thread-local counter must see the allocation");
    assert!(alloc::peak_bytes() >= buf.len(), "peak must cover the live 4 MiB block");
    assert!(alloc::total_bytes() >= buf.len() as u64);
    drop(buf);
}
