//! Cohort-sharded runtime parity — the tentpole guarantee of the
//! million-user runtime.
//!
//! [`CohortFedRec`] trains clients in bounded cohorts, parking their
//! cross-round state in envelopes between participations; the whole
//! point is that this is a *memory* optimization, never a *semantic*
//! one. These tests pin the contract:
//!
//! * a cohort run's `RunTrace` (and the trained server's ranking
//!   report) is bit-identical to the unsharded [`Federation`] engine at
//!   every cohort size and thread count;
//! * the on-disk envelope store is bit-identical to the in-memory one;
//! * a checkpointed-then-resumed run reproduces the uninterrupted run's
//!   trace byte for byte, with the ledger carrying over exactly;
//! * resume refuses (with an error, not a panic) manifests that are
//!   truncated, corrupt, or fingerprinted by a different config.

use ptf_fedrec::core::{
    checkpoint, config_fingerprint, CheckpointError, CohortData, CohortFedRec, CohortOptions,
    Federation, PtfConfig, ServerScope, StorageMode, StoreKind,
};
use ptf_fedrec::data::{SyntheticConfig, TrainTestSplit};
use ptf_fedrec::federated::{Engine, Participation, RunTrace};
use ptf_fedrec::metrics::RankingReport;
use ptf_fedrec::models::{ModelHyper, ModelKind};
use std::path::PathBuf;

fn split(users: usize) -> TrainTestSplit {
    let data = SyntheticConfig::new("cohort", users, 80, 10.0)
        .generate(&mut ptf_fedrec::data::test_rng(41));
    TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(42))
}

fn cfg(threads: usize) -> PtfConfig {
    let mut cfg = PtfConfig::small();
    cfg.rounds = 3;
    cfg.client_epochs = 1;
    cfg.alpha = 6;
    cfg.threads = threads;
    cfg
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ptf-cohort-{tag}-{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear temp dir");
    }
    dir
}

/// Runs a cohort protocol to completion and evaluates it.
fn run_cohort(
    s: &TrainTestSplit,
    client: ModelKind,
    server: ModelKind,
    cfg: PtfConfig,
    opts: CohortOptions,
) -> (RunTrace, RankingReport) {
    let protocol = CohortFedRec::try_new(
        CohortData::Mem(s.train.clone()),
        client,
        server,
        &ModelHyper::small(),
        cfg,
        opts,
    )
    .expect("valid config");
    let mut engine = Engine::new(protocol);
    let trace = engine.run();
    let report = engine.evaluate(&s.train, &s.test, 10);
    (trace, report)
}

/// The headline acceptance matrix: cohort sizes {64, 1024, all} ×
/// threads {1, 4}, each bit-identical to the unsharded engine. 150
/// trainable users with full participation make cohort 64 genuinely
/// multi-chunk and cohort 1024 a single chunk larger than the fleet.
#[test]
fn cohort_runs_match_unsharded_bit_for_bit() {
    let s = split(150);
    let reference = {
        let mut engine = Federation::builder(&s.train)
            .client_model(ModelKind::Mf)
            .server_model(ModelKind::NeuMf)
            .hyper(ModelHyper::small())
            .config(cfg(1))
            .build()
            .expect("valid config");
        let trace = engine.run();
        let report = engine.evaluate(&s.train, &s.test, 10);
        (trace, report)
    };
    assert!(reference.0.num_rounds() > 0, "empty reference run");
    for cohort in [64usize, 1024, 0] {
        for threads in [1usize, 4] {
            let opts = CohortOptions { cohort, ..CohortOptions::default() };
            let got = run_cohort(&s, ModelKind::Mf, ModelKind::NeuMf, cfg(threads), opts);
            assert_eq!(
                reference.0, got.0,
                "RunTrace diverged at cohort={cohort} threads={threads}"
            );
            assert_eq!(
                reference.1, got.1,
                "RankingReport diverged at cohort={cohort} threads={threads}"
            );
        }
    }
}

/// Every model family round-trips through envelopes identically —
/// including the graph models (per-round ego-graph rebuild + RwLock
/// propagation caches) and NGCF's message-dropout RNG stream.
#[test]
fn cohort_parity_holds_for_every_architecture() {
    let s = split(30);
    for (client, server) in [
        (ModelKind::NeuMf, ModelKind::NeuMf),
        (ModelKind::LightGcn, ModelKind::NeuMf),
        (ModelKind::Ngcf, ModelKind::LightGcn),
    ] {
        let mut c = cfg(2);
        c.rounds = 2;
        let reference = {
            let mut engine = Federation::builder(&s.train)
                .client_model(client)
                .server_model(server)
                .hyper(ModelHyper::small())
                .config(c.clone())
                .build()
                .expect("valid config");
            (engine.run(), engine.evaluate(&s.train, &s.test, 10))
        };
        let got = run_cohort(
            &s,
            client,
            server,
            c,
            CohortOptions { cohort: 7, ..CohortOptions::default() },
        );
        assert_eq!(reference.0, got.0, "{client}->{server}: RunTrace diverged");
        assert_eq!(reference.1, got.1, "{client}->{server}: RankingReport diverged");
    }
}

/// The on-disk envelope store is an implementation detail: byte-equal
/// results to the in-memory store at a chunked cohort size.
#[test]
fn disk_store_matches_memory_store() {
    let s = split(40);
    let mem = run_cohort(
        &s,
        ModelKind::Mf,
        ModelKind::NeuMf,
        cfg(2),
        CohortOptions { cohort: 16, ..CohortOptions::default() },
    );
    let root = fresh_dir("store");
    let disk = run_cohort(
        &s,
        ModelKind::Mf,
        ModelKind::NeuMf,
        cfg(2),
        CohortOptions {
            cohort: 16,
            store: StoreKind::Disk(root.clone()),
            ..CohortOptions::default()
        },
    );
    std::fs::remove_dir_all(&root).ok();
    assert_eq!(mem.0, disk.0, "disk store changed the RunTrace");
    assert_eq!(mem.1, disk.1, "disk store changed the RankingReport");
}

/// `ServerScope::ActiveParticipants` is a different run than
/// `FullFleet` (smaller server user table ⇒ different init draws) but
/// must be self-consistent: the same trace at every cohort size and
/// thread count, and a server table sized by the active union, not the
/// fleet.
#[test]
fn active_scope_is_self_consistent_across_cohorts_and_threads() {
    let s = split(60);
    let mut base = cfg(1);
    base.participation = Participation { fraction: 0.3, min_clients: 4 };
    base.rounds = 4;
    let build = |cohort: usize, threads: usize| {
        let mut c = base.clone();
        c.threads = threads;
        CohortFedRec::try_new(
            CohortData::Mem(s.train.clone()),
            ModelKind::Mf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            c,
            CohortOptions {
                cohort,
                server_scope: ServerScope::ActiveParticipants,
                ..CohortOptions::default()
            },
        )
        .expect("valid config")
    };
    let reference_protocol = build(0, 1);
    let active_users = reference_protocol.server_users();
    assert!(
        active_users < s.train.num_users(),
        "partial participation should leave some users outside the active set \
         ({active_users} of {})",
        s.train.num_users()
    );
    let reference = Engine::new(reference_protocol).run();
    assert!(reference.num_rounds() > 0);
    for (cohort, threads) in [(5usize, 1usize), (5, 4), (0, 4)] {
        let got = Engine::new(build(cohort, threads)).run();
        assert_eq!(
            reference, got,
            "active-scope trace diverged at cohort={cohort} threads={threads}"
        );
    }
}

/// `StorageMode::Auto` re-evaluates the dense-fallback decision as the
/// dispersed set grows the training pool; flipping representation
/// mid-run must be invisible in the results (NGCF excluded by design —
/// its dropout stream is drawn over materialized rows).
#[test]
fn auto_storage_reevaluation_matches_sparse() {
    let s = split(30);
    let run = |mode: StorageMode| {
        let mut c = cfg(2);
        c.rounds = 3;
        c.storage.mode = mode;
        let mut engine = Federation::builder(&s.train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .hyper(ModelHyper::small())
            .config(c)
            .build()
            .expect("valid config");
        (engine.run(), engine.evaluate(&s.train, &s.test, 10))
    };
    let sparse = run(StorageMode::Sparse);
    // a threshold low enough that dispersal growth trips it mid-run for
    // clients that started sparse
    let auto = run(StorageMode::Auto { dense_fraction: 0.05 });
    assert_eq!(sparse.0, auto.0, "auto densification changed the RunTrace");
    assert_eq!(sparse.1, auto.1, "auto densification changed the RankingReport");
}

/// Kill-and-resume byte parity at the library level: run 2 of 5 rounds,
/// checkpoint, rebuild everything from the manifest, finish — the
/// stitched trace and the final ledger must equal the uninterrupted
/// run's exactly.
#[test]
fn checkpoint_resume_reproduces_uninterrupted_run() {
    let s = split(40);
    let mut c = cfg(2);
    c.rounds = 5;
    let hyper = ModelHyper::small();
    let fingerprint = config_fingerprint(
        &c,
        ModelKind::Mf,
        ModelKind::NeuMf,
        &hyper,
        s.train.num_users(),
        s.train.num_items(),
    );
    let build = || {
        CohortFedRec::try_new(
            CohortData::Mem(s.train.clone()),
            ModelKind::Mf,
            ModelKind::NeuMf,
            &hyper,
            c.clone(),
            CohortOptions { cohort: 16, ..CohortOptions::default() },
        )
        .expect("valid config")
    };

    let (full_trace, full_report, full_ledger) = {
        let mut engine = Engine::new(build());
        let trace = engine.run();
        let report = engine.evaluate(&s.train, &s.test, 10);
        (trace, report, engine.ledger().summary())
    };

    let ckpt = fresh_dir("ckpt");
    {
        let mut engine = Engine::new(build());
        let mut traces = Vec::new();
        for _ in 0..2 {
            traces.push(engine.run_round());
        }
        checkpoint::save_checkpoint(
            &ckpt,
            engine.protocol(),
            engine.ledger(),
            &traces,
            fingerprint,
        )
        .expect("checkpoint saves");
        // the interrupted run trains one more round *after* the commit;
        // resume must discard it, not replay on top of it
        engine.run_round();
    }

    let manifest = checkpoint::load_manifest(&ckpt).expect("manifest loads");
    manifest.verify_fingerprint(fingerprint).expect("fingerprint matches");
    assert_eq!(manifest.next_round, 2);
    let mut protocol = build();
    checkpoint::resume_protocol(&ckpt, &manifest, &mut protocol).expect("resume succeeds");
    let ledger = ptf_fedrec::comm::CommLedger::restore(&manifest.ledger).expect("ledger restores");
    let mut engine = Engine::resume(protocol, ledger, manifest.next_round);
    let rest = engine.run();
    let report = engine.evaluate(&s.train, &s.test, 10);

    let mut stitched = RunTrace::default();
    for t in &manifest.traces {
        stitched.push(*t);
    }
    for t in &rest.rounds {
        stitched.push(*t);
    }
    assert_eq!(full_trace, stitched, "resumed trace diverged from the uninterrupted run");
    assert_eq!(full_report, report, "resumed model diverged from the uninterrupted run");
    assert_eq!(full_ledger, engine.ledger().summary(), "resumed ledger diverged");
    std::fs::remove_dir_all(&ckpt).ok();
}

/// Resume robustness: a missing manifest is an `Io` error, a truncated
/// or garbage manifest is `Corrupt`, a foreign fingerprint is
/// `Mismatch` — all plain `Err`s a CLI can turn into exit 1.
#[test]
fn checkpoint_loading_rejects_damage_without_panicking() {
    let dir = fresh_dir("damage");
    assert!(
        matches!(checkpoint::load_manifest(&dir), Err(CheckpointError::Io(_))),
        "missing checkpoint dir must be an Io error"
    );

    std::fs::create_dir_all(&dir).expect("mkdir");
    let manifest_file = checkpoint::manifest_path(&dir);
    std::fs::write(&manifest_file, "{not json").expect("write");
    assert!(
        matches!(checkpoint::load_manifest(&dir), Err(CheckpointError::Corrupt(_))),
        "garbage manifest must be Corrupt"
    );

    // a real manifest, truncated mid-file
    let s = split(20);
    let c = cfg(1);
    let hyper = ModelHyper::small();
    let fingerprint = config_fingerprint(
        &c,
        ModelKind::Mf,
        ModelKind::NeuMf,
        &hyper,
        s.train.num_users(),
        s.train.num_items(),
    );
    let protocol = CohortFedRec::try_new(
        CohortData::Mem(s.train.clone()),
        ModelKind::Mf,
        ModelKind::NeuMf,
        &hyper,
        c.clone(),
        CohortOptions::default(),
    )
    .expect("valid config");
    let mut engine = Engine::new(protocol);
    let t0 = engine.run_round();
    checkpoint::save_checkpoint(&dir, engine.protocol(), engine.ledger(), &[t0], fingerprint)
        .expect("checkpoint saves");
    let intact = std::fs::read_to_string(&manifest_file).expect("read manifest");
    std::fs::write(&manifest_file, &intact[..intact.len() / 2]).expect("truncate");
    assert!(
        matches!(checkpoint::load_manifest(&dir), Err(CheckpointError::Corrupt(_))),
        "truncated manifest must be Corrupt"
    );

    // restore the manifest; a different config fingerprint must refuse
    std::fs::write(&manifest_file, &intact).expect("restore manifest");
    let manifest = checkpoint::load_manifest(&dir).expect("intact manifest loads");
    assert!(
        matches!(manifest.verify_fingerprint(fingerprint ^ 1), Err(CheckpointError::Mismatch(_))),
        "foreign fingerprint must be Mismatch"
    );
    manifest.verify_fingerprint(fingerprint).expect("own fingerprint verifies");
    std::fs::remove_dir_all(&dir).ok();
}
