//! Serial-vs-parallel bit parity: the headline guarantee of the
//! two-phase round scheduler. For every protocol, a run with the same
//! seed must produce a bit-identical `RunTrace` and `RankingReport` at
//! any thread count — 1 (inline, no pool), 2, and 8 — because each
//! client draws from its own `(seed, round, client)`-derived RNG stream
//! and all floating-point reductions replay serially in participant
//! order.

use ptf_fedrec::baselines::{
    Centralized, CentralizedConfig, Fcf, FcfConfig, FedMf, FedMfConfig, MetaMf, MetaMfConfig,
};
use ptf_fedrec::core::{Federation, PtfConfig};
use ptf_fedrec::data::{SyntheticConfig, TrainTestSplit};
use ptf_fedrec::federated::{Engine, FederatedProtocol, Participation, RunTrace};
use ptf_fedrec::metrics::RankingReport;
use ptf_fedrec::models::{ModelHyper, ModelKind};

fn split() -> TrainTestSplit {
    let data =
        SyntheticConfig::new("det", 30, 60, 12.0).generate(&mut ptf_fedrec::data::test_rng(41));
    TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(42))
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Runs `build(threads)` through the engine at each thread count and
/// asserts bit parity of trace and report against the serial run.
fn assert_thread_invariant<P, F>(name: &str, split: &TrainTestSplit, build: F)
where
    P: FederatedProtocol,
    F: Fn(usize) -> Engine<P>,
{
    let run = |threads: usize| -> (RunTrace, RankingReport) {
        let mut engine = build(threads);
        let trace = engine.run();
        let report = engine.evaluate(&split.train, &split.test, 10);
        (trace, report)
    };
    let serial = run(1);
    assert!(serial.0.num_rounds() > 0, "{name}: empty run");
    for threads in &THREAD_COUNTS[1..] {
        let parallel = run(*threads);
        assert_eq!(serial.0, parallel.0, "{name}: RunTrace differs at {threads} threads");
        assert_eq!(serial.1, parallel.1, "{name}: RankingReport differs at {threads} threads");
    }
}

#[test]
fn ptf_fedrec_is_thread_invariant() {
    let s = split();
    assert_thread_invariant("PTF-FedRec", &s, |threads| {
        let mut cfg = PtfConfig::small();
        cfg.rounds = 3;
        cfg.client_epochs = 2;
        cfg.alpha = 8;
        cfg.threads = threads;
        Federation::builder(&s.train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid config")
    });
}

#[test]
fn fcf_is_thread_invariant() {
    let s = split();
    assert_thread_invariant("FCF", &s, |threads| {
        Engine::new(Fcf::new(
            &s.train,
            FcfConfig { rounds: 3, local_epochs: 2, dim: 8, threads, ..FcfConfig::default() },
        ))
    });
}

#[test]
fn fedmf_is_thread_invariant() {
    let s = split();
    assert_thread_invariant("FedMF", &s, |threads| {
        let mut cfg = FedMfConfig::small();
        cfg.base.rounds = 3;
        cfg.base.local_epochs = 2;
        cfg.base.dim = 8;
        cfg.base.threads = threads;
        Engine::new(FedMf::new(&s.train, cfg))
    });
}

#[test]
fn metamf_is_thread_invariant() {
    let s = split();
    assert_thread_invariant("MetaMF", &s, |threads| {
        Engine::new(MetaMf::new(
            &s.train,
            MetaMfConfig { rounds: 3, local_epochs: 2, dim: 8, threads, ..MetaMfConfig::default() },
        ))
    });
}

#[test]
fn centralized_is_thread_invariant() {
    let s = split();
    assert_thread_invariant("Centralized", &s, |threads| {
        Engine::new(Centralized::new(
            ModelKind::NeuMf,
            &s.train,
            &ModelHyper::small(),
            CentralizedConfig { epochs: 3, batch: 128, neg_ratio: 4, seed: 9, threads },
        ))
    });
}

#[test]
fn partial_participation_sampling_is_thread_invariant() {
    // participant *selection* also derives from (seed, round), so the
    // sampled sets — not just per-client work — must match exactly
    let s = split();
    assert_thread_invariant("PTF-FedRec(partial)", &s, |threads| {
        let mut cfg = PtfConfig::small();
        cfg.rounds = 4;
        cfg.client_epochs = 1;
        cfg.alpha = 6;
        cfg.threads = threads;
        cfg.participation = Participation { fraction: 0.3, min_clients: 2 };
        Federation::builder(&s.train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid config")
    });
}

#[test]
fn scratch_buffer_reuse_is_observationally_pure() {
    // the scratch-pool hot path must be invisible in the results: runs
    // with warmed, reused buffers (production) and with fresh buffers per
    // client task (debug mode) are bit-identical, at 1 and 8 threads,
    // for both an allocation-free MF fleet and the default NeuMF fleet
    let s = split();
    for client_model in [ModelKind::Mf, ModelKind::NeuMf] {
        let run = |threads: usize, reuse: bool| -> (RunTrace, RankingReport) {
            let mut cfg = PtfConfig::small();
            cfg.rounds = 3;
            cfg.client_epochs = 2;
            cfg.alpha = 8;
            cfg.threads = threads;
            cfg.scratch_reuse = reuse;
            let mut engine = Federation::builder(&s.train)
                .client_model(client_model)
                .server_model(ModelKind::NeuMf)
                .hyper(ModelHyper::small())
                .config(cfg)
                .build()
                .expect("valid config");
            let trace = engine.run();
            let report = engine.evaluate(&s.train, &s.test, 10);
            (trace, report)
        };
        let pooled = run(1, true);
        for (threads, reuse) in [(1, false), (8, true), (8, false)] {
            let other = run(threads, reuse);
            assert_eq!(
                pooled, other,
                "{client_model}: scratch reuse changed results (threads={threads}, reuse={reuse})"
            );
        }
    }
}

#[test]
fn heterogeneous_models_are_thread_invariant() {
    // graph models carry RwLock-cached propagation state; parity must
    // hold for them too (LightGCN client, NGCF server)
    let s = split();
    assert_thread_invariant("PTF-FedRec(LightGCN→NGCF)", &s, |threads| {
        let mut cfg = PtfConfig::small();
        cfg.rounds = 2;
        cfg.client_epochs = 1;
        cfg.alpha = 6;
        cfg.threads = threads;
        Federation::builder(&s.train)
            .client_model(ModelKind::LightGcn)
            .server_model(ModelKind::Ngcf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid config")
    });
}
