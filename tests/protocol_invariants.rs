//! Cross-crate protocol invariants: the privacy and communication
//! properties the paper claims, checked on live federations.

use ptf_fedrec::baselines::{Fcf, FcfConfig};
use ptf_fedrec::core::{DefenseKind, Federation, PtfConfig, PtfFedRec};
use ptf_fedrec::data::{Dataset, SyntheticConfig, TrainTestSplit};
use ptf_fedrec::federated::Engine;
use ptf_fedrec::models::{ModelHyper, ModelKind};
use ptf_fedrec::privacy::TopGuessAttack;

fn split() -> TrainTestSplit {
    let data =
        SyntheticConfig::new("inv", 50, 100, 16.0).generate(&mut ptf_fedrec::data::test_rng(23));
    TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(24))
}

fn cfg(defense: DefenseKind) -> PtfConfig {
    let mut cfg = PtfConfig::small();
    cfg.rounds = 6;
    cfg.client_epochs = 3;
    cfg.defense = defense;
    cfg
}

fn build(train: &Dataset, cfg: PtfConfig) -> Engine<PtfFedRec> {
    Federation::builder(train)
        .client_model(ModelKind::NeuMf)
        .server_model(ModelKind::NeuMf)
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()
        .expect("valid test config")
}

fn run(defense: DefenseKind) -> Engine<PtfFedRec> {
    let split = split();
    let mut fed = build(&split.train, cfg(defense));
    fed.run();
    fed
}

fn mean_attack_f1(fed: &Engine<PtfFedRec>) -> f64 {
    TopGuessAttack::default().mean_f1(
        fed.protocol()
            .last_uploads()
            .iter()
            .map(|u| (u.predictions.as_slice(), u.audit_positives.as_slice())),
    )
}

#[test]
fn uploads_only_contain_trained_items() {
    let s = split();
    let fed = run(DefenseKind::SamplingSwapping);
    for up in fed.protocol().last_uploads() {
        let positives = s.train.user_items(up.client);
        for &(item, score) in &up.predictions {
            assert!((item as usize) < s.train.num_items());
            assert!((0.0..=1.0).contains(&score), "score {score} out of range");
            // an uploaded item is either a true positive or a sampled
            // negative — never an interaction of *another* user presented
            // as this client's
            let _ = positives;
        }
        // audit positives really are the client's interactions
        for &p in &up.audit_positives {
            assert!(
                positives.binary_search(&p).is_ok(),
                "audit positive {p} is not a true positive of client {}",
                up.client
            );
        }
    }
}

#[test]
fn full_defense_beats_no_defense_against_the_attack() {
    let f1_undefended = mean_attack_f1(&run(DefenseKind::NoDefense));
    let f1_defended = mean_attack_f1(&run(DefenseKind::SamplingSwapping));
    assert!(
        f1_defended < f1_undefended - 0.2,
        "defense ineffective: {f1_defended} vs {f1_undefended}"
    );
    // undefended uploads are an open book once local models separate
    assert!(f1_undefended > 0.7, "attack unexpectedly weak: {f1_undefended}");
}

#[test]
fn swapping_adds_protection_over_sampling_alone() {
    let f1_sampling = mean_attack_f1(&run(DefenseKind::Sampling));
    let f1_full = mean_attack_f1(&run(DefenseKind::SamplingSwapping));
    assert!(
        f1_full < f1_sampling,
        "swapping should strengthen the defense: {f1_full} vs {f1_sampling}"
    );
}

#[test]
fn ptf_traffic_is_orders_of_magnitude_below_fcf() {
    let s = split();
    let fed = run(DefenseKind::SamplingSwapping);
    let mut fcf =
        Engine::new(Fcf::new(&s.train, FcfConfig { rounds: 2, dim: 16, ..FcfConfig::small() }));
    fcf.run();
    let ptf_bytes = fed.ledger().avg_client_bytes_per_round();
    let fcf_bytes = fcf.ledger().avg_client_bytes_per_round();
    assert!(
        fcf_bytes > 10.0 * ptf_bytes,
        "expected ≥10× traffic gap at this scale, got FCF {fcf_bytes} vs PTF {ptf_bytes}"
    );
}

#[test]
fn dispersed_items_disjoint_from_upload() {
    let fed = run(DefenseKind::SamplingSwapping);
    let ptf = fed.protocol();
    for up in ptf.last_uploads() {
        let received = ptf.client(up.client).server_data();
        for &(item, _) in received {
            assert!(
                !up.predictions.iter().any(|&(i, _)| i == item),
                "server dispersed item {item} straight back to client {}",
                up.client
            );
        }
    }
}

#[test]
fn upload_sizes_vary_round_to_round_under_sampling() {
    // β/γ are redrawn every round, so upload sizes must not be constant
    let s = split();
    let mut fed = build(&s.train, cfg(DefenseKind::SamplingSwapping));
    let mut sizes = Vec::new();
    for _ in 0..4 {
        fed.run_round();
        sizes.push(fed.protocol().last_uploads().iter().map(|u| u.len()).sum::<usize>());
    }
    assert!(sizes.windows(2).any(|w| w[0] != w[1]), "upload sizes frozen across rounds: {sizes:?}");
}

#[test]
fn poisoned_uploads_do_not_break_server_training() {
    // failure injection: a malicious client reports every item as a
    // perfect positive; the server must keep training finitely and other
    // clients' knowledge must survive
    use ptf_fedrec::core::{ClientUpload, PtfServer};
    use ptf_fedrec::models::ModelHyper;

    let cfg = {
        let mut c = PtfConfig::small();
        c.server_epochs = 6;
        c
    };
    let mut rng = ptf_fedrec::data::test_rng(77);
    let mut server = PtfServer::new(8, 40, ModelKind::NeuMf, &ModelHyper::small(), &mut rng);

    let honest = ClientUpload {
        client: 0,
        predictions: vec![(1, 0.95), (2, 0.9), (10, 0.05), (11, 0.1), (12, 0.08)],
        audit_positives: vec![1, 2],
    };
    let poisoned = ClientUpload {
        client: 1,
        predictions: (0..40).map(|i| (i, 1.0)).collect(),
        audit_positives: vec![],
    };
    for _ in 0..4 {
        let loss = server.train_on_uploads(&[honest.clone(), poisoned.clone()], &cfg, &mut rng);
        assert!(loss.is_finite(), "server loss diverged under poisoning");
    }
    // the honest client's ordering survives for its own row
    let s = server.model().score(0, &[1, 10]);
    assert!(s[0] > s[1], "honest client's signal destroyed: {s:?}");
}

#[test]
fn all_empty_clients_yield_empty_rounds() {
    // degenerate federation: nobody has data — the protocol must not panic
    let empty = Dataset::from_user_items("empty", 10, vec![vec![]; 5]);
    let mut fed = build(&empty, cfg(DefenseKind::SamplingSwapping));
    let trace = fed.run();
    for r in &trace.rounds {
        assert_eq!(r.participants, 0);
        assert_eq!(r.bytes, 0);
    }
}

#[test]
#[ignore = "paper-scale smoke test (~minutes, several GB RAM); run with --ignored"]
fn paper_scale_movielens_smoke() {
    use ptf_fedrec::data::{DatasetPreset, Scale, TrainTestSplit};
    let mut rng = ptf_fedrec::data::test_rng(2024);
    let data = DatasetPreset::MovieLens100K.generate(Scale::Paper, &mut rng);
    let split = TrainTestSplit::split_80_20(&data, &mut rng);
    let mut cfg = ptf_fedrec::core::PtfConfig::paper();
    cfg.rounds = 2;
    let mut fed = Federation::builder(&split.train)
        .client_model(ModelKind::NeuMf)
        .server_model(ModelKind::Ngcf)
        .hyper(ptf_fedrec::models::ModelHyper::default())
        .config(cfg)
        .build()
        .expect("paper config is valid");
    let trace = fed.run();
    assert_eq!(trace.num_rounds(), 2);
    assert!(trace.rounds[0].participants == 943);
    let report = fed.evaluate(&split.train, &split.test, 20);
    assert!(report.users_evaluated > 900);
}
