//! Cross-crate integration: the full PTF-FedRec pipeline from synthetic
//! data generation to evaluation, through the facade crate.

use ptf_fedrec::baselines::{train_centralized, CentralizedConfig};
use ptf_fedrec::core::{Federation, PtfConfig, PtfFedRec};
use ptf_fedrec::data::{Dataset, DatasetPreset, Scale, SyntheticConfig, TrainTestSplit};
use ptf_fedrec::federated::Engine;
use ptf_fedrec::models::{evaluate_model, ModelHyper, ModelKind};

fn engine(
    train: &Dataset,
    client: ModelKind,
    server: ModelKind,
    cfg: PtfConfig,
) -> Engine<PtfFedRec> {
    Federation::builder(train)
        .client_model(client)
        .server_model(server)
        .hyper(ModelHyper::small())
        .config(cfg)
        .build()
        .expect("valid test config")
}

fn quick_cfg() -> PtfConfig {
    let mut cfg = PtfConfig::small();
    cfg.rounds = 6;
    cfg.client_epochs = 2;
    cfg.alpha = 10;
    cfg
}

fn tiny_split() -> TrainTestSplit {
    let data =
        SyntheticConfig::new("e2e", 40, 80, 14.0).generate(&mut ptf_fedrec::data::test_rng(17));
    TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(18))
}

#[test]
fn federated_training_beats_random_ranking() {
    let split = tiny_split();
    let mut cfg = PtfConfig::small();
    cfg.alpha = 12;
    let mut fed = engine(&split.train, ModelKind::NeuMf, ModelKind::Ngcf, cfg);
    let trace = fed.run();
    let trained = fed.evaluate(&split.train, &split.test, 10);
    assert!(trace.client_loss_improved(), "{:?}", trace.rounds);
    // expected recall@10 of a random ranker ≈ 10 / (#items − #train-items)
    let avg_train_len = split.train.num_interactions() as f64 / split.train.num_users() as f64;
    let random_recall = 10.0 / (split.train.num_items() as f64 - avg_train_len);
    assert!(
        trained.metrics.recall > 1.5 * random_recall,
        "federated training not above chance: {:?} (random ≈ {random_recall:.3})",
        trained.metrics
    );
}

#[test]
fn trace_bytes_match_ledger() {
    let split = tiny_split();
    let mut fed = engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
    let trace = fed.run();
    assert_eq!(trace.total_bytes(), fed.ledger().summary().total_bytes);
    assert_eq!(fed.ledger().summary().rounds, quick_cfg().rounds);
}

#[test]
fn facade_reexports_compose() {
    // one object from every sub-crate, all through the facade
    let mut rng = ptf_fedrec::data::test_rng(3);
    let data = DatasetPreset::MovieLens100K.generate(Scale::Small, &mut rng);
    assert!(data.num_users() > 0);
    let stats = ptf_fedrec::data::DatasetStats::of(&data);
    assert!(stats.density_pct > 0.0);
    let m = ptf_fedrec::tensor::Matrix::zeros(2, 2);
    assert_eq!(m.shape(), (2, 2));
    assert_eq!(ptf_fedrec::comm::format_bytes(2048.0), "2.00 KB");
    let metrics = ptf_fedrec::metrics::set_f1(&[1], &[1]);
    assert_eq!(metrics.f1, 1.0);
}

#[test]
fn centralized_upper_bounds_hold_after_training() {
    // the paper's expectation at convergence: centralized ≥ federated.
    // at this tiny scale we only assert both learn something nontrivial.
    let split = tiny_split();
    let hyper = ModelHyper::small();
    let cfg = CentralizedConfig { epochs: 10, batch: 128, neg_ratio: 4, seed: 5, threads: 0 };
    let (central, _) = train_centralized(ModelKind::LightGcn, &split.train, &hyper, &cfg);
    let central_report = evaluate_model(&*central, &split.train, &split.test, 10);
    assert!(central_report.metrics.recall > 0.05, "{central_report}");
}

#[test]
fn server_model_stays_hidden_from_clients() {
    // structural check of the headline property: client state contains no
    // reference to the server model; the only channel is scored triples.
    let split = tiny_split();
    let mut fed = engine(&split.train, ModelKind::NeuMf, ModelKind::Ngcf, quick_cfg());
    fed.run_round();
    // what a client received is α scored items — nothing model-shaped
    let ptf = fed.protocol();
    let client = ptf.client(ptf.last_uploads()[0].client);
    let received = client.server_data();
    assert!(received.len() <= quick_cfg().alpha);
    for &(item, score) in received {
        assert!((item as usize) < split.train.num_items());
        assert!((0.0..=1.0).contains(&score));
    }
    // and what crossed the wire in total is KB-scale, far below one
    // serialization of the hidden NGCF
    let hidden_model_bytes = ptf.server().model().num_params() * 4;
    let avg = fed.ledger().avg_client_bytes_per_round();
    assert!(avg < (hidden_model_bytes / 4) as f64);
}
