//! Cross-crate consistency between the federated baselines, all driven
//! through the shared `FederatedProtocol` engine.

use ptf_fedrec::baselines::{Fcf, FcfConfig, FedMf, FedMfConfig, MetaMf, MetaMfConfig};
use ptf_fedrec::data::{SyntheticConfig, TrainTestSplit};
use ptf_fedrec::federated::{Engine, FederatedProtocol};

fn split() -> TrainTestSplit {
    let data =
        SyntheticConfig::new("par", 40, 80, 14.0).generate(&mut ptf_fedrec::data::test_rng(31));
    TrainTestSplit::split_80_20(&data, &mut ptf_fedrec::data::test_rng(32))
}

fn quick_base() -> FcfConfig {
    FcfConfig { rounds: 4, local_epochs: 2, dim: 8, ..FcfConfig::default() }
}

#[test]
fn fedmf_learns_exactly_like_fcf() {
    // FedMF = FCF dynamics + encryption; same seed ⇒ identical model
    let s = split();
    let mut fcf = Engine::new(Fcf::new(&s.train, quick_base()));
    let mut fedmf =
        Engine::new(FedMf::new(&s.train, FedMfConfig { base: quick_base(), he_key: 7 }));
    fcf.run();
    fedmf.run();
    let user = 0u32;
    let items: Vec<u32> = (0..s.train.num_items() as u32).collect();
    let a = fcf.protocol().recommender().score(user, &items);
    let b = fedmf.protocol().recommender().score(user, &items);
    assert_eq!(a, b, "encryption must not change the learning outcome");
}

#[test]
fn fedmf_pays_exactly_the_ciphertext_expansion() {
    let s = split();
    let mut fcf = Engine::new(Fcf::new(&s.train, quick_base()));
    let mut fedmf =
        Engine::new(FedMf::new(&s.train, FedMfConfig { base: quick_base(), he_key: 7 }));
    fcf.run_round();
    fedmf.run_round();
    let ratio =
        fedmf.ledger().avg_client_bytes_per_round() / fcf.ledger().avg_client_bytes_per_round();
    assert!((ratio - 16.0).abs() < 1e-6, "expansion ratio {ratio} ≠ 16");
}

#[test]
fn all_baselines_improve_over_their_initialization() {
    let s = split();

    let mut fcf = Engine::new(Fcf::new(&s.train, quick_base()));
    let before = fcf.evaluate(&s.train, &s.test, 10).metrics.ndcg;
    let trace = fcf.run();
    assert!(trace.client_loss_improved(), "FCF loss: {:?}", trace.rounds);
    let after = fcf.evaluate(&s.train, &s.test, 10).metrics.ndcg;
    assert!(after >= before, "FCF: {before} → {after}");

    let mut mm = Engine::new(MetaMf::new(
        &s.train,
        MetaMfConfig { rounds: 4, local_epochs: 2, dim: 8, ..MetaMfConfig::default() },
    ));
    let trace = mm.run();
    assert!(trace.client_loss_improved(), "MetaMF loss: {:?}", trace.rounds);
}

#[test]
fn baselines_report_paper_names() {
    let s = split();
    assert_eq!(Fcf::new(&s.train, quick_base()).name(), "FCF");
    assert_eq!(FedMf::new(&s.train, FedMfConfig { base: quick_base(), he_key: 1 }).name(), "FedMF");
    assert_eq!(MetaMf::new(&s.train, MetaMfConfig::small()).name(), "MetaMF");
}

#[test]
fn every_protocol_drives_through_one_engine_loop() {
    // the acceptance shape of the engine API: heterogeneous protocols in
    // one Vec<Box<dyn FederatedProtocol>>, one generic loop, no
    // per-protocol plumbing
    let s = split();
    let protocols: Vec<Box<dyn FederatedProtocol>> = vec![
        Box::new(Fcf::new(&s.train, quick_base())),
        Box::new(FedMf::new(&s.train, FedMfConfig { base: quick_base(), he_key: 7 })),
        Box::new(MetaMf::new(
            &s.train,
            MetaMfConfig { rounds: 4, local_epochs: 2, dim: 8, ..MetaMfConfig::default() },
        )),
    ];
    for protocol in protocols {
        let name = protocol.name();
        let mut engine = Engine::new(protocol);
        let trace = engine.run();
        assert_eq!(trace.num_rounds(), 4, "{name}");
        assert!(trace.total_bytes() > 0, "{name} reported no traffic");
        assert_eq!(engine.ledger().summary().total_bytes, trace.total_bytes(), "{name}");
        assert!(engine.evaluate(&s.train, &s.test, 10).users_evaluated > 0, "{name}");
    }
}
