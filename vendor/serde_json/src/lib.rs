//! Vendored, API-compatible subset of `serde_json`: [`to_string`] /
//! [`from_str`] over the serde shim's JSON-shaped `Value` model, with a
//! full recursive-descent JSON parser (strings with escapes, numbers,
//! nested arrays/objects) so hand-written JSON in tests parses exactly
//! as upstream would.

use serde::{de, ser, Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error { msg: msg.to_string() }
    }
}

struct JsonSerializer;

impl serde::Serializer for JsonSerializer {
    type Ok = String;
    type Error = Error;
    fn serialize_value(self, value: Value) -> Result<String, Error> {
        let mut out = String::new();
        write_value(&value, &mut out)?;
        Ok(out)
    }
}

struct JsonDeserializer(Value);

impl<'de> serde::Deserializer<'de> for JsonDeserializer {
    type Error = Error;
    fn deserialize_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value.serialize(JsonSerializer)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::export::to_value(value).map_err(|e| Error { msg: e.to_string() })?;
    let mut out = String::new();
    write_value_pretty(&tree, 0, &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string, rejecting trailing garbage.
pub fn from_str<'de, T: Deserialize<'de>>(s: &'de str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error { msg: format!("trailing characters at byte {}", parser.pos) });
    }
    T::deserialize(JsonDeserializer(value))
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                return Err(Error { msg: "cannot serialize non-finite number".into() });
            }
            if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(value: &Value, indent: usize, out: &mut String) -> Result<(), Error> {
    let pad = "  ".repeat(indent + 1);
    let close_pad = "  ".repeat(indent);
    match value {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_value_pretty(item, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad);
                write_string(k, out);
                out.push_str(": ");
                write_value_pretty(v, indent + 1, out)?;
            }
            out.push('\n');
            out.push_str(&close_pad);
            out.push('}');
        }
        other => write_value(other, out)?,
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: format!("{msg} at byte {}", self.pos) }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    /// Reads the 4 hex digits of a `\uXXXX` escape. Expects `pos` on the
    /// `u`; leaves `pos` on the last hex digit (the caller's shared
    /// `pos += 1` then steps past it).
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 5 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..=0xDBFF).contains(&hi) {
                                // UTF-16 surrogate pair: a low-surrogate
                                // `\uXXXX` must follow immediately.
                                if self.bytes.get(self.pos + 1) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 2) != Some(&b'u')
                                {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code).ok_or_else(|| self.err("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 character
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(to_string(&3usize).unwrap(), "3");
        assert_eq!(from_str::<usize>("3").unwrap(), 3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b".to_string()).unwrap(), r#""a\"b""#);
        assert_eq!(from_str::<String>(r#""a\"b""#).unwrap(), "a\"b");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        let xs = vec![0.1f32, -2.75, 1e-8, 3.4e38];
        let json = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&json).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn nested_structures() {
        let v: Vec<Vec<u32>> = from_str("[[3, 1], [], [7]]").unwrap();
        assert_eq!(v, vec![vec![3, 1], vec![], vec![7]]);
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀", "surrogate pair");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀", "literal UTF-8 passthrough");
        assert_eq!(from_str::<String>(r#""\u00e9""#).unwrap(), "é", "BMP escape");
        assert!(from_str::<String>(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(from_str::<String>(r#""\ud83dxxxx""#).is_err(), "high surrogate, no escape");
        assert!(from_str::<String>(r#""\ud83dA""#).is_err(), "bad low surrogate");
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("1 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<u32>("1.5").is_err());
    }

    #[test]
    fn out_of_range_integers_rejected_not_saturated() {
        // 2^64 == u64::MAX as f64 after rounding; must error, not clamp
        assert!(from_str::<u64>("18446744073709551616").is_err());
        assert!(from_str::<i64>("9223372036854775808").is_err());
        assert!(from_str::<u64>("-1").is_err());
        assert!(from_str::<u32>("4294967296").is_err());
        // exactly representable values still pass
        assert_eq!(from_str::<u64>("9007199254740992").unwrap(), 1u64 << 53);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ]\n").unwrap();
        assert_eq!(v, vec![1, 2]);
    }
}
