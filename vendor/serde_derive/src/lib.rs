//! Vendored `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable offline). Supports the shapes this workspace
//! actually derives:
//!
//! * structs with named fields — `Serialize` and `Deserialize`;
//! * enums with unit / tuple / struct variants — `Serialize` only,
//!   using serde's externally-tagged JSON convention
//!   (`"Variant"`, `{"Variant": value}`, `{"Variant": {..fields}}`).
//!
//! Generics on the derived type are not supported (none are needed here).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    /// Named struct fields, in declaration order.
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Skips `#[...]` attributes and visibility modifiers at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // [...]
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1; // 'pub'
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // '(crate)' etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts the field names of a named-field body, tolerating commas
/// nested inside `<...>`, `(...)`, and `[...]` in field types.
fn named_fields(body: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        // skip to the top-level comma ending this field's type
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple-variant body `( ... )`.
fn tuple_arity(body: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut arity = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    arity
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (derive on `{name}`)");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.clone(),
            Some(_) => i += 1,
            None => panic!(
                "serde_derive shim: `{name}` has no braced body (tuple/unit structs unsupported)"
            ),
        }
    };

    if kind == "struct" {
        Shape::Struct { name, fields: named_fields(&body) }
    } else {
        let tokens: Vec<TokenTree> = body.stream().into_iter().collect();
        let mut variants = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            skip_attrs_and_vis(&tokens, &mut i);
            let Some(TokenTree::Ident(vname)) = tokens.get(i) else { break };
            let vname = vname.to_string();
            i += 1;
            match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    variants.push(Variant::Tuple(vname, tuple_arity(g)));
                    i += 1;
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    variants.push(Variant::Struct(vname, named_fields(g)));
                    i += 1;
                }
                _ => variants.push(Variant::Unit(vname)),
            }
            // skip discriminants / trailing comma
            while i < tokens.len() {
                match &tokens[i] {
                    TokenTree::Punct(p) if p.as_char() == ',' => {
                        i += 1;
                        break;
                    }
                    _ => i += 1,
                }
            }
        }
        Shape::Enum { name, variants }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                pushes.push_str(&format!(
                    "__fields.push(({f:?}.to_string(), \
                     ::serde::export::to_value(&self.{f})\
                     .map_err(<S::Error as ::serde::ser::Error>::custom)?));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n\
                 {pushes}\
                 serializer.serialize_value(::serde::Value::Obj(__fields))\n\
                 }}\n}}"
            )
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Variant::Tuple(vn, arity) => {
                        let binders: Vec<String> = (0..*arity).map(|k| format!("__f{k}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *arity == 1 {
                            "::serde::export::to_value(__f0)\
                             .map_err(<S::Error as ::serde::ser::Error>::custom)?"
                                .to_string()
                        } else {
                            let elems: Vec<String> = binders
                                .iter()
                                .map(|b| {
                                    format!(
                                        "::serde::export::to_value({b})\
                                         .map_err(<S::Error as ::serde::ser::Error>::custom)?"
                                    )
                                })
                                .collect();
                            format!("::serde::Value::Arr(vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({pat}) => ::serde::Value::Obj(\
                             vec![({vn:?}.to_string(), {inner})]),\n"
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let pat = fields.join(", ");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "({f:?}.to_string(), ::serde::export::to_value({f})\
                                     .map_err(<S::Error as ::serde::ser::Error>::custom)?)"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => ::serde::Value::Obj(vec![(\
                             {vn:?}.to_string(), \
                             ::serde::Value::Obj(vec![{}]))]),\n",
                            entries.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 let __value = match self {{\n{arms}}};\n\
                 serializer.serialize_value(__value)\n\
                 }}\n}}"
            )
        }
    };
    code.parse().expect("serde_derive shim generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Shape::Struct { name, fields } = parse_shape(input) else {
        panic!("serde_derive shim: #[derive(Deserialize)] supports only structs with named fields");
    };
    let mut takes = String::new();
    for f in &fields {
        takes.push_str(&format!(
            "let {f} = ::serde::export::take_field(&mut __obj, {f:?})\
             .map_err(<D::Error as ::serde::de::Error>::custom)?;\n"
        ));
    }
    let ctor = fields.join(", ");
    let code = format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
         -> ::core::result::Result<Self, D::Error> {{\n\
         let mut __obj = match ::serde::Deserializer::deserialize_value(deserializer)? {{\n\
         ::serde::Value::Obj(o) => o,\n\
         other => return ::core::result::Result::Err(\
         <D::Error as ::serde::de::Error>::custom(\
         format!(\"expected object for {name}, got {{other:?}}\"))),\n\
         }};\n\
         {takes}\
         ::core::result::Result::Ok({name} {{ {ctor} }})\n\
         }}\n}}"
    );
    code.parse().expect("serde_derive shim generated invalid Rust")
}
