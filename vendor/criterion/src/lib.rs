//! Vendored, API-compatible subset of `criterion`.
//!
//! Compiles and *runs* the workspace's `harness = false` bench targets
//! without crates.io access. Instead of upstream's statistical pipeline it
//! performs a short warm-up followed by `sample_size` timed samples and
//! prints min/mean/max per iteration — enough to eyeball regressions and
//! to keep `cargo bench` functional end-to-end.

use std::time::{Duration, Instant};

/// How batched inputs are grouped; accepted for API compatibility (the
/// shim times one routine call per setup regardless).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Bench configuration + registry, mirroring `criterion::Criterion`.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Upstream parses CLI args here; the shim accepts and ignores them
    /// (`--bench`, filters, `--save-baseline`, ...).
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

/// Timing harness handed to each bench closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// nanoseconds per iteration, one entry per sample
    samples: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample is neither trivially
        // short nor longer than the per-sample time budget.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut iters_per_sample = 0u64;
        let warm_start = Instant::now();
        while Instant::now() < warm_until {
            std::hint::black_box(routine());
            iters_per_sample += 1;
        }
        let warm_elapsed = warm_start.elapsed();
        if iters_per_sample == 0 {
            iters_per_sample = 1;
        }
        let per_iter = warm_elapsed.as_secs_f64() / iters_per_sample as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, iters_per_sample.max(1));

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Setup runs outside the timed region, one input per sample.
        std::hint::black_box(routine(setup())); // warm-up call
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let min = self.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = self.samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        println!("{id:<44} time: [{} {} {}]", format_ns(min), format_ns(mean), format_ns(max));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// `criterion_group!` — both the plain and the `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — emits `fn main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export so `criterion::black_box` callers compile.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn iter_collects_samples() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = quick();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 64]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            );
        });
        assert!(setups >= 3);
    }
}
