//! Vendored, API-compatible subset of `rand_distr` 0.4.
//!
//! Provides the distributions this workspace samples — [`Normal`],
//! [`LogNormal`], [`Uniform`] — over `f32`/`f64`, plus the re-exported
//! [`Distribution`] trait. Normal variates come from Box–Muller rather
//! than upstream's ziggurat, which changes the exact stream but not the
//! distribution; consumers only assert on moments and determinism.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Error returned by distribution constructors for invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// Standard deviation (or shape parameter) was negative or non-finite.
    BadVariance,
    /// Mean (or location parameter) was non-finite.
    BadMean,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Error::BadVariance => write!(f, "standard deviation must be finite and >= 0"),
            Error::BadMean => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for Error {}

/// Floating-point scalars the distributions are generic over.
pub trait Float: Copy + PartialOrd {
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn is_finite(self) -> bool;
}

impl Float for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
}

impl Float for f64 {
    fn from_f64(v: f64) -> Self {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
}

/// Draws one standard-normal variate via Box–Muller.
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite; u2 in [0, 1).
    let u1 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal distribution N(mean, std_dev²).
#[derive(Clone, Copy, Debug)]
pub struct Normal<F: Float> {
    mean: F,
    std_dev: F,
}

impl<F: Float> Normal<F> {
    pub fn new(mean: F, std_dev: F) -> Result<Self, Error> {
        if !mean.is_finite() {
            return Err(Error::BadMean);
        }
        if !std_dev.is_finite() || std_dev.to_f64() < 0.0 {
            return Err(Error::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * standard_normal(rng))
    }
}

/// Log-normal distribution: exp(N(mu, sigma²)).
#[derive(Clone, Copy, Debug)]
pub struct LogNormal<F: Float> {
    mu: F,
    sigma: F,
}

impl<F: Float> LogNormal<F> {
    pub fn new(mu: F, sigma: F) -> Result<Self, Error> {
        if !mu.is_finite() {
            return Err(Error::BadMean);
        }
        if !sigma.is_finite() || sigma.to_f64() < 0.0 {
            return Err(Error::BadVariance);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl<F: Float> Distribution<F> for LogNormal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        F::from_f64((self.mu.to_f64() + self.sigma.to_f64() * standard_normal(rng)).exp())
    }
}

/// Uniform distribution over an interval.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<F: Float> {
    low: F,
    high: F,
    inclusive: bool,
}

impl<F: Float> Uniform<F> {
    /// Uniform over `[low, high)`. Panics if `low >= high` (as upstream).
    pub fn new(low: F, high: F) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform { low, high, inclusive: false }
    }

    /// Uniform over `[low, high]`. Panics if `low > high` (as upstream).
    pub fn new_inclusive(low: F, high: F) -> Self {
        assert!(low <= high, "Uniform::new_inclusive called with low > high");
        Uniform { low, high, inclusive: true }
    }
}

impl<F: Float> Distribution<F> for Uniform<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let u: f64 = rng.gen();
        let (lo, hi) = (self.low.to_f64(), self.high.to_f64());
        // With inclusive bounds, stretch so `hi` is reachable at u ~ 1.
        let u = if self.inclusive { u * (1.0 + f64::EPSILON) } else { u };
        F::from_f64((lo + u * (hi - lo)).min(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = Normal::new(2.0f64, 0.5).unwrap();
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LogNormal::new(0.0f64, 1.0).unwrap();
        assert!((0..1000).all(|_| d.sample(&mut rng) > 0.0));
    }

    #[test]
    fn uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new_inclusive(-0.25f32, 0.25);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((-0.25..=0.25).contains(&v));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0f64, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
