//! Vendored, API-compatible subset of `proptest`.
//!
//! Offers the surface this workspace's property tests use — the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, [`Strategy`]
//! with `prop_map`, range strategies, tuple composition, and
//! `collection::{vec, btree_set}` — implemented as a deterministic
//! random-case runner (seeded per case index, no shrinking). Failures
//! panic with the case number and assertion message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// Runner configuration; only `cases` is honored by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Bounded default so full-workspace test runs stay fast; override
        // per-block with `#![proptest_config(ProptestConfig::with_cases(N))]`
        // or globally with PROPTEST_CASES.
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property assertion (returned, not panicked, so the runner can
/// attach the case number).
#[derive(Debug)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

/// Generates values of `Self::Value` from an RNG.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Strategy producing any value of a primitive type (uniform over the
/// type's whole domain).
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — uniform strategy over all of `T` (primitives only).
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_strategy {
    ($($t:ty => |$rng:ident| $sample:expr),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, $rng: &mut StdRng) -> $t {
                $sample
            }
        }
    )*};
}
any_strategy!(
    u8 => |rng| rng.gen::<u32>() as u8,
    u16 => |rng| rng.gen::<u32>() as u16,
    u32 => |rng| rng.gen(),
    u64 => |rng| rng.gen(),
    usize => |rng| rng.gen::<u64>() as usize,
    i8 => |rng| rng.gen::<u32>() as i8,
    i16 => |rng| rng.gen::<u32>() as i16,
    i32 => |rng| rng.gen::<u32>() as i32,
    i64 => |rng| rng.gen::<u64>() as i64,
    bool => |rng| rng.gen::<u32>() & 1 == 1,
);

/// Strategy always yielding a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies of one value type (the
/// [`prop_oneof!`] macro's runtime).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        let at = rng.gen_range(0..self.options.len());
        self.options[at].sample(rng)
    }
}

/// Boxes a strategy for [`Union`] (macro support; unifies value types).
pub fn boxed_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Uniformly picks one of several strategies per case. Unlike real
/// proptest there are no per-arm weights — `N => strategy` arms are not
/// supported by this shim.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::boxed_strategy($strategy)),+])
    };
}

/// Collection sizes accepted by [`collection::vec`] / `btree_set`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    /// exclusive
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: r.end() + 1 }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` holding `size` *distinct* elements drawn from `element`.
    /// If the element space is too small, settles for as many distinct
    /// values as a bounded number of draws can find.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < 100 * (target + 1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Deterministic per-case RNG (macro support).
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the test name, mixed with the case index, so every test
    // explores a distinct but fully reproducible stream.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Just, Union};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                for case in 0..config.cases {
                    let mut rng = $crate::__case_rng(stringify!($name), case);
                    let ($($arg,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed on case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vecs() -> impl Strategy<Value = Vec<u32>> {
        collection::vec(0u32..10, 0..5).prop_map(|mut v| {
            v.sort_unstable();
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn mapped_vecs_are_sorted(v in small_vecs()) {
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
            prop_assert!(v.len() < 5);
        }

        #[test]
        fn btree_sets_hit_target_sizes(s in collection::btree_set(0u32..1000, 2..6)) {
            prop_assert!(s.len() >= 2, "got {} elements", s.len());
            prop_assert!(s.len() < 6);
        }
    }

    proptest! {
        // no #[test] attr: invoked manually below to observe the panic
        fn always_fails(x in 0u32..10) {
            prop_assert_eq!(x, 99);
        }
    }

    #[test]
    #[should_panic(expected = "failed on case")]
    fn failures_report_case_number() {
        always_fails();
    }
}
