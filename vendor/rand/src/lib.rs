//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the small slice of `rand` 0.8 it actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`, `sample`), [`SeedableRng`]
//! with `seed_from_u64`, and [`rngs::StdRng`] backed by xoshiro256++.
//!
//! Streams differ from upstream `rand`, but every consumer in this repo
//! only relies on *determinism for a fixed seed*, never on the exact
//! sequence, so the substitution is behavior-preserving for tests.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // wrapping_sub, reinterpreted in the same-width unsigned
                // type: correct for signed spans wider than the positive
                // half, and zero-extends (never sign-extends) into u64.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
int_range!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i32 => u32, i64 => u64);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // `start + u*(end-start)` can round up to exactly `end`;
                // the API contract is the half-open [start, end).
                if v >= self.end {
                    self.end.next_down().max(self.start)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        <f64 as Standard>::sample_standard(self) < p
    }

    fn sample<T, D: crate::distributions::Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod distributions {
    use crate::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            (**self).sample(rng)
        }
    }
}

pub mod rngs {
    use crate::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure — test/simulation use only.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for checkpointing a generator
        /// mid-stream. [`StdRng::from_state`] restores it exactly, so a
        /// saved-and-restored generator continues the same sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn float_gen_range_upper_bound_is_exclusive() {
        let mut rng = StdRng::seed_from_u64(17);
        // one-ULP-wide range: naive start + u*(end-start) rounds to `end`
        // about half the time
        let (start, end) = (1.0f64, 1.0f64.next_up());
        for _ in 0..1000 {
            let v = rng.gen_range(start..end);
            assert!(v >= start && v < end, "{v} escaped [{start}, {end})");
        }
    }

    #[test]
    fn gen_range_handles_full_width_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            // spans wider than the type's positive half must not overflow
            let v = rng.gen_range(i32::MIN..i32::MAX);
            assert!(v < i32::MAX);
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
