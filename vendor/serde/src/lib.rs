//! Vendored, API-compatible subset of `serde`.
//!
//! The build environment has no crates.io access, so this crate provides
//! the slice of serde's surface the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits (with the same method signatures, so hand-written
//! impls compile unchanged), `serde::ser::Error` / `serde::de::Error` with
//! `custom`, and the `#[derive(Serialize, Deserialize)]` macros re-exported
//! from the sibling `serde_derive` shim.
//!
//! Unlike upstream serde's visitor-based data model, this shim routes
//! everything through a JSON-shaped [`Value`] tree — sufficient for the
//! checkpoint/export formats this repo (de)serializes, and what the
//! vendored `serde_json` consumes.

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped intermediate data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers travel as `f64`; integers up to 2^53 round-trip exactly.
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    /// Field order is preserved (serialization is deterministic).
    Obj(Vec<(String, Value)>),
}

pub mod ser {
    /// Errors produced while serializing.
    pub trait Error: Sized + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

pub mod de {
    /// Errors produced while deserializing.
    pub trait Error: Sized + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }
}

/// A data format that can serialize a [`Value`] tree.
pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;
}

/// A data format that can produce a [`Value`] tree.
pub trait Deserializer<'de>: Sized {
    type Error: de::Error;
    fn deserialize_value(self) -> Result<Value, Self::Error>;
}

/// A type that can be serialized into any [`Serializer`].
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A type that can be deserialized from any [`Deserializer`].
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// String-backed error used by the in-memory [`Value`] (de)serializers.
#[derive(Clone, Debug)]
pub struct SimpleError(pub String);

impl std::fmt::Display for SimpleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SimpleError {}

impl ser::Error for SimpleError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

impl de::Error for SimpleError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        SimpleError(msg.to_string())
    }
}

/// Support machinery used by the derive macros (not a public API in
/// upstream serde; kept in one module so generated code has stable paths).
pub mod export {
    use super::*;

    /// Serializer whose output *is* the [`Value`] tree.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = SimpleError;
        fn serialize_value(self, value: Value) -> Result<Value, SimpleError> {
            Ok(value)
        }
    }

    /// Deserializer reading back from a [`Value`] tree.
    pub struct ValueDeserializer(pub Value);

    impl<'de> Deserializer<'de> for ValueDeserializer {
        type Error = SimpleError;
        fn deserialize_value(self) -> Result<Value, SimpleError> {
            Ok(self.0)
        }
    }

    /// Serializes any `Serialize` into a [`Value`].
    pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, SimpleError> {
        value.serialize(ValueSerializer)
    }

    /// Deserializes any `Deserialize` out of a [`Value`].
    pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, SimpleError> {
        T::deserialize(ValueDeserializer(value))
    }

    /// Removes and decodes the named field of an object (derive support).
    pub fn take_field<'de, T: Deserialize<'de>>(
        obj: &mut Vec<(String, Value)>,
        name: &str,
    ) -> Result<T, SimpleError> {
        match obj.iter().position(|(k, _)| k == name) {
            Some(i) => from_value(obj.swap_remove(i).1),
            None => Err(SimpleError(format!("missing field `{name}`"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Num(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_value()? {
                    // Range-check in i128, where every in-range f64 integer
                    // is exact: `MAX as f64` rounds *up* for 64-bit types
                    // (2^63/2^64), so comparing in f64 would admit
                    // one-past-MAX values and `as` would saturate them.
                    Value::Num(n)
                        if n.fract() == 0.0
                            && n.is_finite()
                            && (n as i128) >= <$t>::MIN as i128
                            && (n as i128) <= <$t>::MAX as i128 =>
                    {
                        Ok(n as $t)
                    }
                    other => Err(de::Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Num(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_value()? {
                    Value::Num(n) => Ok(n as $t),
                    other => Err(de::Error::custom(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"), other
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(export::to_value(item).map_err(ser::Error::custom)?);
        }
        serializer.serialize_value(Value::Arr(out))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Arr(items) => items
                .into_iter()
                .map(|v| export::from_value(v).map_err(de::Error::custom))
                .collect(),
            other => Err(de::Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_value(Value::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_value()? {
            Value::Null => Ok(None),
            other => export::from_value(other).map(Some).map_err(de::Error::custom),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut out = Vec::with_capacity(self.len());
        for item in self {
            out.push(export::to_value(item).map_err(ser::Error::custom)?);
        }
        serializer.serialize_value(Value::Arr(out))
    }
}
