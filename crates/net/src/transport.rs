//! Transport abstraction: frame streams, server-side peer pumps, and the
//! in-memory loopback transport.
//!
//! The round server is a synchronous state machine over one event queue;
//! every connection contributes a reader thread (decoding frames into
//! [`Event`]s) and a writer thread (draining a **bounded** per-peer
//! outbound queue) — the message-queue-per-peer shape around a
//! synchronous core. Backpressure policy: a full queue makes the sender
//! wait (bounded by [`PEER_SEND_TIMEOUT`]) as long as the peer keeps
//! draining — protocol frames are too important to drop on a burst (a
//! lost `Disperse` would silently diverge the client's model). Only a
//! *wedged* peer — no progress for the whole timeout — gets its frame
//! dropped and is treated as a straggler by the round logic, so a dead
//! reader can stall the round loop for at most the timeout.
//!
//! The loopback transport carries *encoded* frames over in-memory
//! channels — every byte still round-trips through the codec, so the
//! loopback parity test exercises the same encode/decode path as TCP,
//! minus only the socket.

use crate::error::NetError;
use crate::wire::{decode_frame, Frame};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{
    atomic::{AtomicU64, Ordering},
    Arc,
};
use std::thread;
use std::time::{Duration, Instant};

/// Server-side identifier of one connection (not a client id — one
/// connection may host many logical clients).
pub type ConnId = u64;

/// Bounded outbound frames queued per peer before the backpressure
/// policy kicks in.
pub const PEER_QUEUE_FRAMES: usize = 256;

/// How long a send waits for one slot in a full peer queue before giving
/// up. This is a *per-slot* progress bound, not a total transfer bound:
/// a peer that drains at least one frame per timeout window never loses
/// anything, however large the round's burst.
pub const PEER_SEND_TIMEOUT: Duration = Duration::from_millis(500);

/// Capacity (frames) of each loopback byte channel.
const LOOPBACK_QUEUE_FRAMES: usize = 256;

/// What the round server's event queue delivers.
pub enum Event {
    /// A connection opened; `peer` is its outbound frame queue.
    Opened { conn: ConnId, peer: PeerHandle },
    /// A decoded frame arrived on `conn`.
    Frame { conn: ConnId, frame: Frame },
    /// `conn` closed (EOF, I/O error, or decode error).
    Closed { conn: ConnId },
}

/// The sending side of one peer's bounded outbound queue. Dropping every
/// handle ends the peer's writer thread (flushing queued frames first).
pub struct PeerHandle {
    tx: SyncSender<Frame>,
    /// Closed by the writer thread once it has drained the queue — the
    /// other end of the flush handshake in [`PeerHandle::flush`].
    done: Receiver<()>,
}

impl PeerHandle {
    /// Queues a frame for the peer, waiting (bounded) for space if the
    /// queue is full. Returns `false` if the peer is gone or wedged —
    /// made no progress for [`PEER_SEND_TIMEOUT`] — in which case the
    /// frame is dropped and the caller treats the peer as unreachable
    /// this round.
    pub fn send(&self, frame: Frame) -> bool {
        let mut frame = frame;
        let deadline = Instant::now() + PEER_SEND_TIMEOUT;
        loop {
            match self.tx.try_send(frame) {
                Ok(()) => return true,
                Err(TrySendError::Disconnected(_)) => return false,
                Err(TrySendError::Full(returned)) => {
                    if Instant::now() >= deadline {
                        return false;
                    }
                    frame = returned;
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }

    /// Closes the queue and waits (bounded) for the writer thread to
    /// finish draining it into the transport. Without this, a server
    /// process exiting right after queuing `Finished` races the writer
    /// thread and the final frames are silently lost. Returns `false`
    /// if the peer was still draining when the timeout hit.
    pub fn flush(self, timeout: Duration) -> bool {
        let Self { tx, done } = self;
        drop(tx); // writer's rx.recv() errors once the queue is empty
        matches!(done.recv_timeout(timeout), Err(RecvTimeoutError::Disconnected))
    }
}

/// The receiving half of a frame stream.
pub trait FrameRead: Send {
    /// Blocks for the next frame; `Ok(None)` is a clean close.
    fn read(&mut self) -> Result<Option<Frame>, NetError>;
}

/// The sending half of a frame stream.
pub trait FrameWrite: Send {
    fn write(&mut self, frame: &Frame) -> Result<(), NetError>;
}

/// A client's synchronous duplex connection to the server.
pub struct ClientConn {
    read: Box<dyn FrameRead>,
    write: Box<dyn FrameWrite>,
}

impl ClientConn {
    pub fn new(read: impl FrameRead + 'static, write: impl FrameWrite + 'static) -> Self {
        Self { read: Box::new(read), write: Box::new(write) }
    }

    pub fn send(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.write.write(frame)
    }

    /// Blocks for the next server frame; `Ok(None)` means the server
    /// closed the connection.
    pub fn recv(&mut self) -> Result<Option<Frame>, NetError> {
        self.read.read()
    }
}

/// Spawns the reader/writer pump threads for one server-side connection
/// and announces it on the event queue. Both transports (TCP, loopback)
/// go through here, so session handling is transport-agnostic.
pub fn attach_peer(
    conn: ConnId,
    read: impl FrameRead + 'static,
    write: impl FrameWrite + 'static,
    events: Sender<Event>,
) {
    let (tx, rx) = sync_channel::<Frame>(PEER_QUEUE_FRAMES);
    let (done_tx, done) = std::sync::mpsc::channel::<()>();
    if events.send(Event::Opened { conn, peer: PeerHandle { tx, done } }).is_err() {
        return; // server already gone
    }
    thread::spawn(move || {
        let _flushed = done_tx; // dropped on exit = queue fully drained
        let mut write = write;
        while let Ok(frame) = rx.recv() {
            if write.write(&frame).is_err() {
                break; // peer unreachable; reader will report Closed
            }
        }
    });
    thread::spawn(move || {
        let mut read = read;
        loop {
            match read.read() {
                Ok(Some(frame)) => {
                    if events.send(Event::Frame { conn, frame }).is_err() {
                        return; // server done; stop pumping
                    }
                }
                Ok(None) | Err(_) => {
                    let _ = events.send(Event::Closed { conn });
                    return;
                }
            }
        }
    });
}

/// Reads frames from a channel of encoded frame buffers (loopback).
struct ByteRx(Receiver<Vec<u8>>);

impl FrameRead for ByteRx {
    fn read(&mut self) -> Result<Option<Frame>, NetError> {
        match self.0.recv() {
            Ok(bytes) => decode_frame(&bytes).map(Some),
            Err(_) => Ok(None), // all senders dropped = clean close
        }
    }
}

/// Writes encoded frames into a channel of frame buffers (loopback).
struct ByteTx(SyncSender<Vec<u8>>);

impl FrameWrite for ByteTx {
    fn write(&mut self, frame: &Frame) -> Result<(), NetError> {
        self.0
            .send(frame.to_bytes())
            .map_err(|_| NetError::Disconnected("loopback peer closed".into()))
    }
}

/// The in-memory transport: deterministic, no sockets, same codec.
///
/// `connect` yields a [`ClientConn`] whose peer threads feed the hub's
/// event queue exactly as a TCP connection would.
#[derive(Clone)]
pub struct LoopbackHub {
    events: Sender<Event>,
    next_conn: Arc<AtomicU64>,
}

/// Creates a loopback hub and the event queue a round server consumes.
pub fn loopback_hub() -> (LoopbackHub, Receiver<Event>) {
    let (events, rx) = std::sync::mpsc::channel();
    (LoopbackHub { events, next_conn: Arc::new(AtomicU64::new(0)) }, rx)
}

impl LoopbackHub {
    /// Opens a new connection to the hub's server.
    pub fn connect(&self) -> ClientConn {
        let conn = self.next_conn.fetch_add(1, Ordering::Relaxed);
        let (c2s_tx, c2s_rx) = sync_channel::<Vec<u8>>(LOOPBACK_QUEUE_FRAMES);
        let (s2c_tx, s2c_rx) = sync_channel::<Vec<u8>>(LOOPBACK_QUEUE_FRAMES);
        attach_peer(conn, ByteRx(c2s_rx), ByteTx(s2c_tx), self.events.clone());
        ClientConn::new(ByteRx(s2c_rx), ByteTx(c2s_tx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_frames_both_ways() {
        let (hub, events) = loopback_hub();
        let mut conn = hub.connect();
        let peer = match events.recv().unwrap() {
            Event::Opened { peer, .. } => peer,
            _ => panic!("expected Opened"),
        };
        conn.send(&Frame::Hello { client: 3, trainable: true, fingerprint: 42 }).unwrap();
        match events.recv().unwrap() {
            Event::Frame {
                frame: Frame::Hello { client: 3, trainable: true, fingerprint: 42 },
                ..
            } => {}
            _ => panic!("expected the hello"),
        }
        assert!(peer.send(Frame::Welcome { client: 3, fleet: 10, rounds: 2 }));
        assert_eq!(conn.recv().unwrap(), Some(Frame::Welcome { client: 3, fleet: 10, rounds: 2 }));
        // dropping the client side surfaces Closed on the event queue
        drop(conn);
        loop {
            match events.recv().unwrap() {
                Event::Closed { .. } => break,
                _ => continue,
            }
        }
    }

    #[test]
    fn wedged_peer_queue_reports_unreachable_after_the_timeout() {
        let (hub, events) = loopback_hub();
        let _conn = hub.connect(); // never reads: a wedged peer
        let peer = match events.recv().unwrap() {
            Event::Opened { peer, .. } => peer,
            _ => panic!("expected Opened"),
        };
        // fill the bounded queue (writer thread drains into the loopback
        // byte channel, which also bounds) — against a peer making no
        // progress, send must give up after the per-slot timeout instead
        // of blocking the "round loop" forever
        let start = Instant::now();
        let mut sent = 0;
        for _ in 0..(PEER_QUEUE_FRAMES + LOOPBACK_QUEUE_FRAMES + 16) {
            if peer.send(Frame::Finished { rounds: 1 }) {
                sent += 1;
            } else {
                break;
            }
        }
        assert!(sent >= PEER_QUEUE_FRAMES, "queue should absorb its capacity");
        assert!(
            sent < PEER_QUEUE_FRAMES + LOOPBACK_QUEUE_FRAMES + 16,
            "send must eventually refuse against a wedged peer"
        );
        assert!(
            start.elapsed() < PEER_SEND_TIMEOUT * 4,
            "giving up must cost about one timeout, not one per queued frame"
        );
    }

    #[test]
    fn flush_delivers_every_queued_frame_before_returning() {
        let (hub, events) = loopback_hub();
        let mut conn = hub.connect();
        let peer = match events.recv().unwrap() {
            Event::Opened { peer, .. } => peer,
            _ => panic!("expected Opened"),
        };
        for r in 0..10u32 {
            assert!(peer.send(Frame::Finished { rounds: r }));
        }
        // flush must not return until the writer thread has handed all
        // ten frames to the transport — the "server exits right after
        // queueing Finished" race
        assert!(peer.flush(Duration::from_secs(5)), "writer must drain within the timeout");
        for r in 0..10u32 {
            assert_eq!(conn.recv().unwrap(), Some(Frame::Finished { rounds: r }));
        }
        assert_eq!(conn.recv().unwrap(), None, "flush closes the queue = clean EOF after");
    }

    #[test]
    fn slow_but_draining_peer_loses_no_frames() {
        let (hub, events) = loopback_hub();
        let mut conn = hub.connect();
        let peer = match events.recv().unwrap() {
            Event::Opened { peer, .. } => peer,
            _ => panic!("expected Opened"),
        };
        // a burst far past the queue bound, against a consumer that only
        // starts draining afterwards: backpressure must hold every frame
        let total = PEER_QUEUE_FRAMES + LOOPBACK_QUEUE_FRAMES + 64;
        let producer = thread::spawn(move || {
            (0..total).all(|r| peer.send(Frame::Finished { rounds: r as u32 }))
        });
        thread::sleep(Duration::from_millis(50));
        for r in 0..total {
            assert_eq!(conn.recv().unwrap(), Some(Frame::Finished { rounds: r as u32 }));
        }
        assert!(producer.join().unwrap(), "no send may give up against a draining peer");
    }
}
