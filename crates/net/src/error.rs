//! Error type shared by the codec, transports, and round drivers.

use std::fmt;

/// Anything that can go wrong between two PTF-FedRec processes. Network
/// failures are expected operating conditions for a federated server, so
/// every variant is a value, never a panic — the CLI maps them to an
/// error message and exit code 1.
#[derive(Debug)]
pub enum NetError {
    /// An OS-level I/O failure (bind, connect, read, write).
    Io(std::io::Error),
    /// A frame did not start with the protocol magic.
    BadMagic(u16),
    /// The peer speaks a different protocol version.
    Version { got: u8, want: u8 },
    /// A frame kind this version does not define.
    UnknownKind(u8),
    /// A frame ended before its declared content did.
    Truncated(&'static str),
    /// A frame body over the sanity limit (corrupt length prefix).
    Oversized { kind: u8, len: usize },
    /// A frame body longer than its content.
    TrailingBytes { kind: u8 },
    /// The peer violated the handshake (rejects, fingerprint mismatch).
    Handshake(String),
    /// The peer violated the round protocol.
    Protocol(String),
    /// A deadline expired (client gathering, never a round deadline —
    /// round stragglers are dropped, not errors).
    Timeout(String),
    /// The peer went away mid-run.
    Disconnected(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::BadMagic(m) => write!(f, "bad frame magic {m:#06x} (not a ptf peer?)"),
            NetError::Version { got, want } => {
                write!(
                    f,
                    "protocol version mismatch: peer speaks v{got}, this build speaks v{want}"
                )
            }
            NetError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            NetError::Truncated(what) => write!(f, "truncated frame: {what}"),
            NetError::Oversized { kind, len } => {
                write!(f, "frame kind {kind} declares oversized body ({len} bytes)")
            }
            NetError::TrailingBytes { kind } => {
                write!(f, "frame kind {kind} has trailing bytes")
            }
            NetError::Handshake(why) => write!(f, "handshake failed: {why}"),
            NetError::Protocol(why) => write!(f, "protocol violation: {why}"),
            NetError::Timeout(why) => write!(f, "timed out: {why}"),
            NetError::Disconnected(why) => write!(f, "disconnected: {why}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}
