//! # ptf-net
//!
//! Networked deployment of PTF-FedRec: the paper's protocol is
//! *parameter transmission-free* — clients and server exchange only
//! `(user, item, score)` prediction triples — so the natural deployment
//! is a round server and client processes that send exactly those
//! triples over a socket. This crate provides:
//!
//! * [`wire`] — the length-prefixed, versioned binary frame codec over
//!   the protocol's eight message kinds. Data sections are packed
//!   12-byte triples, so the encoded size of a frame's data equals the
//!   [`ptf_comm::Payload`] size model the in-process ledger charges.
//! * [`transport`] — frame streams, the round server's event queue with
//!   bounded per-peer outbound queues, and the in-memory **loopback**
//!   transport (same codec, no sockets) used by the parity tests.
//! * [`tcp`] — `std::net` transport: [`tcp::serve`] / [`tcp::connect`],
//!   thread-per-connection.
//! * [`server`] — [`run_server`]: handshake/gather, round
//!   announcements, deadlines with straggler dropping (partial
//!   participation), and the shared [`ptf_core::rounds`] server half.
//! * [`client`] — [`run_shard`]: hosts any subset of the fleet's
//!   clients over one connection.
//!
//! The headline property is **parity**: for the same seed and config, a
//! networked run (loopback or TCP, any sharding of clients over
//! connections) produces a `RunTrace` bit-identical to the in-process
//! engine — the round choreography lives once in [`ptf_core::rounds`]
//! and both drivers call it. See `docs/wire-protocol.md` for the frame
//! format and `tests/` for the parity suite.

pub mod client;
pub mod error;
pub mod server;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use client::{run_shard, ShardOptions, ShardSummary, Straggle};
pub use error::NetError;
pub use server::{run_server, NetRunReport, NetServerOptions, StragglerDrop};
pub use transport::{loopback_hub, ClientConn, Event, LoopbackHub, PeerHandle};

use ptf_core::PtfConfig;
use ptf_models::{ModelHyper, ModelKind};
use std::fmt::Write as _;

/// Digest of everything that must match between a server and its
/// clients for a run to be bit-reproducible: protocol hyperparameters,
/// model architectures, dataset dimensions, and the seed.
///
/// Deliberately *excluded*: execution knobs that cannot change results —
/// `threads`, `scratch_reuse`, `scoped_clients`, and the client storage
/// policy (all are representation/parallelism choices with
/// bit-identical outcomes by construction, and a shard legitimately
/// runs with different ones than the server).
///
/// The digest is FNV-1a 64 over a canonical text rendering with floats
/// as raw bits — stable across platforms, not across releases (any
/// semantic change to the config vocabulary is *supposed* to change
/// fingerprints; version skew is caught by the frame version byte
/// first).
pub fn config_fingerprint(
    cfg: &PtfConfig,
    client_kind: ModelKind,
    server_kind: ModelKind,
    hyper: &ModelHyper,
    num_users: usize,
    num_items: usize,
) -> u64 {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "rounds={};ce={};se={};cb={};sb={};neg={};alpha={};mu={:x};lambda={:x};",
        cfg.rounds,
        cfg.client_epochs,
        cfg.server_epochs,
        cfg.client_batch,
        cfg.server_batch,
        cfg.neg_ratio,
        cfg.alpha,
        cfg.mu.to_bits(),
        cfg.lambda.to_bits(),
    );
    let _ = write!(
        s,
        "beta={:x},{:x};gamma={:x},{:x};",
        cfg.sampling.beta_range.0.to_bits(),
        cfg.sampling.beta_range.1.to_bits(),
        cfg.sampling.gamma_range.0.to_bits(),
        cfg.sampling.gamma_range.1.to_bits(),
    );
    match cfg.defense {
        ptf_core::DefenseKind::NoDefense => s.push_str("def=none;"),
        ptf_core::DefenseKind::Ldp { epsilon } => {
            let _ = write!(s, "def=ldp:{:x};", epsilon.to_bits());
        }
        ptf_core::DefenseKind::Sampling => s.push_str("def=sampling;"),
        ptf_core::DefenseKind::SamplingSwapping => s.push_str("def=sampling+swapping;"),
    }
    let _ = write!(
        s,
        "disperse={};part={:x},{};graph={:x};seed={};",
        cfg.disperse.name(),
        cfg.participation.fraction.to_bits(),
        cfg.participation.min_clients,
        cfg.graph_threshold.to_bits(),
        cfg.seed,
    );
    let _ = write!(
        s,
        "ck={};sk={};dim={};lr={:x};gcn={};mlp={:?};reg={:x};drop={:x};",
        client_kind.name(),
        server_kind.name(),
        hyper.dim,
        hyper.lr.to_bits(),
        hyper.gcn_layers,
        hyper.mlp_layers,
        hyper.ngcf_reg.to_bits(),
        hyper.ngcf_dropout.to_bits(),
    );
    let _ = write!(s, "users={num_users};items={num_items}");
    fnv1a64(s.as_bytes())
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let cfg = PtfConfig::small();
        let hyper = ModelHyper::small();
        let fp = |c: &PtfConfig| {
            config_fingerprint(c, ModelKind::NeuMf, ModelKind::NeuMf, &hyper, 100, 200)
        };
        assert_eq!(fp(&cfg), fp(&cfg.clone()), "same config, same digest");

        let mut other = cfg.clone();
        other.seed += 1;
        assert_ne!(fp(&cfg), fp(&other), "seed must be fingerprinted");

        let mut other = cfg.clone();
        other.alpha += 1;
        assert_ne!(fp(&cfg), fp(&other), "alpha must be fingerprinted");

        // execution knobs must NOT change the digest
        let mut other = cfg.clone();
        other.threads = 7;
        other.scratch_reuse = !cfg.scratch_reuse;
        other.scoped_clients = !cfg.scoped_clients;
        assert_eq!(fp(&cfg), fp(&other), "execution knobs are not semantics");
    }

    #[test]
    fn fingerprint_covers_models_and_dims() {
        let cfg = PtfConfig::small();
        let hyper = ModelHyper::small();
        let base = config_fingerprint(&cfg, ModelKind::NeuMf, ModelKind::NeuMf, &hyper, 100, 200);
        assert_ne!(
            base,
            config_fingerprint(&cfg, ModelKind::LightGcn, ModelKind::NeuMf, &hyper, 100, 200)
        );
        assert_ne!(
            base,
            config_fingerprint(&cfg, ModelKind::NeuMf, ModelKind::NeuMf, &hyper, 101, 200)
        );
        let mut h2 = hyper.clone();
        h2.dim += 1;
        assert_ne!(
            base,
            config_fingerprint(&cfg, ModelKind::NeuMf, ModelKind::NeuMf, &h2, 100, 200)
        );
    }
}
