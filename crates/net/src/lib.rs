//! # ptf-net
//!
//! Networked deployment of PTF-FedRec: the paper's protocol is
//! *parameter transmission-free* — clients and server exchange only
//! `(user, item, score)` prediction triples — so the natural deployment
//! is a round server and client processes that send exactly those
//! triples over a socket. This crate provides:
//!
//! * [`wire`] — the length-prefixed, versioned binary frame codec over
//!   the protocol's eight message kinds. Data sections are packed
//!   12-byte triples, so the encoded size of a frame's data equals the
//!   [`ptf_comm::Payload`] size model the in-process ledger charges.
//! * [`transport`] — frame streams, the round server's event queue with
//!   bounded per-peer outbound queues, and the in-memory **loopback**
//!   transport (same codec, no sockets) used by the parity tests.
//! * [`tcp`] — `std::net` transport: [`tcp::serve`] / [`tcp::connect`],
//!   thread-per-connection.
//! * [`server`] — [`run_server`]: handshake/gather, round
//!   announcements, deadlines with straggler dropping (partial
//!   participation), and the shared [`ptf_core::rounds`] server half.
//! * [`client`] — [`run_shard`]: hosts any subset of the fleet's
//!   clients over one connection.
//!
//! The headline property is **parity**: for the same seed and config, a
//! networked run (loopback or TCP, any sharding of clients over
//! connections) produces a `RunTrace` bit-identical to the in-process
//! engine — the round choreography lives once in [`ptf_core::rounds`]
//! and both drivers call it. See `docs/wire-protocol.md` for the frame
//! format and `tests/` for the parity suite.

pub mod client;
pub mod error;
pub mod server;
pub mod tcp;
pub mod transport;
pub mod wire;

pub use client::{run_shard, ShardOptions, ShardSummary, Straggle};
pub use error::NetError;
pub use server::{run_server, NetRunReport, NetServerOptions, StragglerDrop};
pub use transport::{loopback_hub, ClientConn, Event, LoopbackHub, PeerHandle};

// The config fingerprint lives in `ptf_core::fingerprint` (the
// checkpoint subsystem shares it); re-exported here because the wire
// handshake is its original home and `ptf_net` callers name it through
// this crate.
pub use ptf_core::{config_fingerprint, fnv1a64};
