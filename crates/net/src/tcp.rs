//! TCP transport: `std::net` streams behind the frame traits.
//!
//! Thread-per-connection on the server (one acceptor + the reader/writer
//! pumps of [`crate::transport::attach_peer`]); plain blocking streams on
//! the client. `TCP_NODELAY` is set everywhere — the protocol is small
//! request/response frames, and Nagle would serialize rounds on the RTT.

use crate::error::NetError;
use crate::transport::{attach_peer, ClientConn, Event, FrameRead, FrameWrite};
use crate::wire::{read_frame, write_frame, Frame};
use std::io::{BufReader, BufWriter, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::mpsc::Receiver;
use std::thread;

struct TcpFrameRead(BufReader<TcpStream>);

impl FrameRead for TcpFrameRead {
    fn read(&mut self) -> Result<Option<Frame>, NetError> {
        read_frame(&mut self.0)
    }
}

struct TcpFrameWrite(BufWriter<TcpStream>);

impl FrameWrite for TcpFrameWrite {
    fn write(&mut self, frame: &Frame) -> Result<(), NetError> {
        write_frame(&mut self.0, frame)?;
        self.0.flush().map_err(NetError::Io)
    }
}

fn split(stream: TcpStream) -> Result<(TcpFrameRead, TcpFrameWrite), NetError> {
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    Ok((TcpFrameRead(BufReader::new(stream)), TcpFrameWrite(BufWriter::new(write_half))))
}

/// A bound TCP endpoint feeding a round server's event queue.
pub struct TcpServer {
    /// The actually bound address (resolves `:0` to the ephemeral port).
    pub local_addr: SocketAddr,
    /// The event queue to hand to [`crate::run_server`].
    pub events: Receiver<Event>,
}

/// Binds `addr` and starts accepting connections. Bind failures (port in
/// use, bad address) come back as `Err` — the CLI turns them into a
/// clean exit, never a panic. The acceptor thread runs until the process
/// exits or the event receiver is dropped.
pub fn serve(addr: impl ToSocketAddrs) -> Result<TcpServer, NetError> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let (events_tx, events) = std::sync::mpsc::channel();
    thread::spawn(move || {
        // runs until process exit; attach_peer is a no-op (and the pump
        // threads exit) once the event receiver is gone, so a finished
        // server leaves this thread parked in accept() with no effect
        for (conn, stream) in (0u64..).zip(listener.incoming()) {
            let Ok(stream) = stream else { continue };
            let Ok((read, write)) = split(stream) else { continue };
            attach_peer(conn, read, write, events_tx.clone());
        }
    });
    Ok(TcpServer { local_addr, events })
}

/// Connects to a `ptf serve` endpoint.
pub fn connect(addr: impl ToSocketAddrs) -> Result<ClientConn, NetError> {
    let stream = TcpStream::connect(addr)?;
    let (read, write) = split(stream)?;
    Ok(ClientConn::new(read, write))
}
