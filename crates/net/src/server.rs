//! The networked round server: session handling, round announcements,
//! deadlines, and the server half of Algorithm 1.
//!
//! The server is a synchronous state machine over the transport's event
//! queue. A run has two phases:
//!
//! 1. **Gather** — wait (bounded by `gather_timeout`) until every logical
//!    client `0..fleet` has completed a `Hello` handshake (protocol
//!    version checked by the codec, config fingerprint checked here).
//!    The trainable set is fixed at gather end from the hello flags —
//!    exactly the in-process `num_positives() > 0` filter.
//! 2. **Rounds** — for each round: draw the participant set on the same
//!    `RngStream::Participation` stream as the in-process engine,
//!    announce it, collect uploads until the round deadline, drop
//!    stragglers (the protocol's partial-participation path), sort
//!    uploads into ascending client order, and run the shared
//!    [`ptf_core::rounds::server_phase`] — which is what makes the
//!    resulting `RunTrace` bit-identical to the in-process engine when
//!    nobody straggles, and identical to an engine run with the
//!    straggler unsampled when someone does.
//!
//! Reconnects are graceful: a client whose connection died may `Hello`
//! again from a new connection at any time and resumes with the next
//! round it is sampled into. Uploads for closed rounds are discarded.

use crate::config_fingerprint;
use crate::error::NetError;
use crate::transport::{ConnId, Event, PeerHandle};
use crate::wire::{Frame, RejectReason};
use ptf_comm::{CommLedger, LedgerSummary};
use ptf_core::rounds;
use ptf_core::{ClientUpload, PtfConfig, PtfServer};
use ptf_data::Dataset;
use ptf_federated::{RoundCtx, RoundObserver, RunTrace};
use ptf_models::{ModelHyper, ModelKind};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

/// How long the end-of-run flush waits per peer for its writer thread
/// to drain the outbound queue. Generous: a healthy peer drains in
/// microseconds; only a wedged transport hits this.
const SHUTDOWN_FLUSH_TIMEOUT: Duration = Duration::from_secs(5);

/// Everything a round server needs besides the dataset and transport.
pub struct NetServerOptions {
    /// The protocol config — must validate, and must match what every
    /// client runs with (enforced by the handshake fingerprint).
    pub cfg: PtfConfig,
    /// Client model architecture (fingerprinted; the server never builds
    /// client models itself).
    pub client_kind: ModelKind,
    /// Hidden server model architecture.
    pub server_kind: ModelKind,
    pub hyper: ModelHyper,
    /// How long each round waits for announced uploads before dropping
    /// stragglers.
    pub round_deadline: Duration,
    /// How long the gather phase waits for the full fleet to handshake.
    pub gather_timeout: Duration,
    /// Log round progress to stderr.
    pub verbose: bool,
}

/// One straggler drop event: `client` missed `round`'s deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct StragglerDrop {
    pub round: u32,
    pub client: u32,
}

/// What a networked run produced (the trained server model rides along
/// separately so the caller can evaluate it).
#[derive(Debug, Serialize)]
pub struct NetRunReport {
    /// Bit-identical to the in-process engine's trace for the same
    /// seed/config (modulo dropped stragglers, which mirror unsampling).
    pub trace: RunTrace,
    /// Table IV style accounting of the protocol data that crossed the
    /// wire (frame headers excluded — see `docs/wire-protocol.md`).
    pub communication: LedgerSummary,
    /// Every straggler drop, in round order.
    pub stragglers: Vec<StragglerDrop>,
    /// Connections accepted over the run (≥ 1 per client process;
    /// reconnects count again).
    pub connections: usize,
}

/// Per-fleet session state: which connection (if any) currently speaks
/// for each logical client.
struct Sessions {
    /// Client id → live connection.
    conn_of: Vec<Option<ConnId>>,
    /// Client id → trainable flag from its (first) hello.
    trainable_flag: Vec<Option<bool>>,
    peers: HashMap<ConnId, PeerHandle>,
    connections_seen: usize,
}

impl Sessions {
    fn new(fleet: usize) -> Self {
        Self {
            conn_of: vec![None; fleet],
            trainable_flag: vec![None; fleet],
            peers: HashMap::new(),
            connections_seen: 0,
        }
    }

    fn opened(&mut self, conn: ConnId, peer: PeerHandle) {
        self.peers.insert(conn, peer);
        self.connections_seen += 1;
    }

    fn closed(&mut self, conn: ConnId) {
        self.peers.remove(&conn);
        for slot in self.conn_of.iter_mut() {
            if *slot == Some(conn) {
                *slot = None; // allows a graceful reconnect hello
            }
        }
    }

    fn peer_of(&self, client: u32) -> Option<&PeerHandle> {
        self.conn_of[client as usize].and_then(|conn| self.peers.get(&conn))
    }

    fn hello(
        &mut self,
        conn: ConnId,
        client: u32,
        trainable: bool,
        fingerprint: u64,
        expected_fingerprint: u64,
        rounds: u32,
    ) {
        let fleet = self.conn_of.len() as u32;
        let reply = if fingerprint != expected_fingerprint {
            Frame::Reject { client, reason: RejectReason::BadFingerprint }
        } else if client >= fleet {
            Frame::Reject { client, reason: RejectReason::UnknownClient }
        } else if self.conn_of[client as usize].is_some_and(|c| self.peers.contains_key(&c)) {
            Frame::Reject { client, reason: RejectReason::DuplicateClient }
        } else {
            // fresh registration or graceful reconnect; the trainable
            // flag is sticky from the first hello so the sampling
            // universe never shifts mid-run
            self.conn_of[client as usize] = Some(conn);
            self.trainable_flag[client as usize].get_or_insert(trainable);
            Frame::Welcome { client, fleet, rounds }
        };
        if let Some(peer) = self.peers.get(&conn) {
            peer.send(reply);
        }
    }

    /// A client counts as gathered only while it has a *live*
    /// connection — a hello followed by a disconnect before round 0
    /// leaves the slot pending until the client reconnects (the
    /// trainable flag stays sticky so the sampling universe is stable).
    fn live(&self, client: usize) -> bool {
        self.conn_of[client].is_some_and(|c| self.peers.contains_key(&c))
    }

    fn gathered(&self) -> usize {
        (0..self.conn_of.len()).filter(|&i| self.live(i)).count()
    }

    fn all_gathered(&self) -> bool {
        (0..self.conn_of.len()).all(|i| self.live(i))
    }

    fn trainable(&self) -> Vec<u32> {
        self.trainable_flag
            .iter()
            .enumerate()
            .filter(|(_, f)| **f == Some(true))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Runs a full federated training run over `events`, driving one round
/// per configured round of `opts.cfg`. Returns the run report and the
/// trained hidden server model (for evaluation).
///
/// `train` is used only for its dimensions (`num_users` = fleet size,
/// `num_items`) and the fingerprint — interaction data stays on the
/// clients, as the protocol requires.
pub fn run_server(
    train: &Dataset,
    events: &Receiver<Event>,
    opts: &NetServerOptions,
) -> Result<(NetRunReport, PtfServer), NetError> {
    opts.cfg.validate().map_err(|e| NetError::Protocol(e.to_string()))?;
    let fleet = train.num_users();
    let fingerprint = config_fingerprint(
        &opts.cfg,
        opts.client_kind,
        opts.server_kind,
        &opts.hyper,
        fleet,
        train.num_items(),
    );
    let mut sessions = Sessions::new(fleet);
    let mut server =
        rounds::build_server(fleet, train.num_items(), opts.server_kind, &opts.hyper, &opts.cfg);

    // ── gather: the full fleet must handshake before round 0 ──────────
    let gather_deadline = Instant::now() + opts.gather_timeout;
    while !sessions.all_gathered() {
        let remaining = gather_deadline.saturating_duration_since(Instant::now());
        match recv_step(events, remaining, &mut sessions, fingerprint, opts.cfg.rounds)? {
            Step::Frame(..) | Step::Nothing => {}
            Step::TimedOut => {
                return Err(NetError::Timeout(format!(
                    "gather: {}/{} clients connected within {:?}",
                    sessions.gathered(),
                    fleet,
                    opts.gather_timeout
                )));
            }
        }
    }
    let trainable = sessions.trainable();
    if opts.verbose {
        eprintln!(
            "gathered fleet: {} clients ({} trainable) over {} connections",
            fleet,
            trainable.len(),
            sessions.peers.len()
        );
    }

    // ── rounds ────────────────────────────────────────────────────────
    let mut ledger = CommLedger::new();
    let mut trace = RunTrace::default();
    let mut stragglers = Vec::new();
    let deadline_ms = opts.round_deadline.as_millis().min(u32::MAX as u128) as u32;

    for round in 0..opts.cfg.rounds {
        let participants = rounds::sample_participants(&opts.cfg, &trainable, round);
        let mut ctx = RoundCtx::new(round, vec![&mut ledger]);
        ctx.begin(&participants);

        // announce; clients with no live connection are instant
        // stragglers (they may reconnect for a later round)
        let mut pending: Vec<u32> = Vec::with_capacity(participants.len());
        for &p in &participants {
            let announced = sessions
                .peer_of(p)
                .map(|peer| peer.send(Frame::Announce { client: p, round, deadline_ms }))
                .unwrap_or(false);
            pending.push(p); // even unreachable ones: dropped at deadline
            let _ = announced;
        }

        // collect uploads until the deadline or until nobody is pending
        let mut uploads: Vec<ClientUpload> = Vec::with_capacity(pending.len());
        let mut losses_by_client: HashMap<u32, f32> = HashMap::with_capacity(pending.len());
        let round_deadline = Instant::now() + opts.round_deadline;
        while !pending.is_empty() {
            let remaining = round_deadline.saturating_duration_since(Instant::now());
            match recv_step(events, remaining, &mut sessions, fingerprint, opts.cfg.rounds)? {
                Step::Frame(conn, Frame::Upload { client, round: r, loss, triples }) => {
                    if r != round {
                        continue; // stale upload from a closed round
                    }
                    if sessions.conn_of.get(client as usize).copied().flatten() != Some(conn) {
                        continue; // not the connection speaking for this id
                    }
                    let Some(at) = pending.iter().position(|&p| p == client) else {
                        continue; // unsampled or duplicate upload
                    };
                    pending.swap_remove(at);
                    losses_by_client.insert(client, loss);
                    uploads.push(ClientUpload {
                        client,
                        predictions: triples
                            .into_iter()
                            .map(|(_, item, score)| (item, score))
                            .collect(),
                        audit_positives: Vec::new(),
                    });
                }
                Step::Frame(_, _) | Step::Nothing => {}
                Step::TimedOut => break,
            }
        }

        // deadline passed: drop stragglers via partial participation
        pending.sort_unstable();
        for &p in &pending {
            stragglers.push(StragglerDrop { round, client: p });
            if let Some(peer) = sessions.peer_of(p) {
                peer.send(Frame::Dropped { client: p, round });
            }
        }

        // the shared serial half: replay in ascending client order,
        // train the hidden model, compute dispersals
        uploads.sort_unstable_by_key(|u| u.client);
        let losses: Vec<f32> = uploads.iter().map(|u| losses_by_client[&u.client]).collect();
        let (server_loss, disperses) =
            rounds::server_phase(&mut server, &opts.cfg, round, &uploads, &mut ctx);
        for (client, items) in disperses {
            if let Some(peer) = sessions.peer_of(client) {
                peer.send(Frame::Disperse {
                    client,
                    round,
                    triples: items.iter().map(|&(item, score)| (client, item, score)).collect(),
                });
            }
        }

        let round_trace = rounds::round_trace(round, &losses, server_loss, &ctx);
        drop(ctx);
        ledger.on_round_end(&round_trace);
        if opts.verbose {
            eprintln!(
                "  round {:>3}: {} participants ({} dropped), client loss {:.4}, server loss {:.4}",
                round,
                round_trace.participants,
                pending.len(),
                round_trace.mean_client_loss,
                round_trace.server_loss
            );
        }
        trace.push(round_trace);
    }

    // tell every live connection the run is over
    for peer in sessions.peers.values() {
        peer.send(Frame::Finished { rounds: opts.cfg.rounds });
    }
    // flush every outbound queue before returning: the caller may exit
    // the process right away, and the last dispersals plus `Finished`
    // are still sitting in the writer threads' queues — exiting now
    // would silently drop them and peers would see EOF mid-protocol
    for (_, peer) in sessions.peers.drain() {
        peer.flush(SHUTDOWN_FLUSH_TIMEOUT);
    }
    let report = NetRunReport {
        trace,
        communication: ledger.summary(),
        stragglers,
        connections: sessions.connections_seen,
    };
    Ok((report, server))
}

/// One step of the event loop shared by the gather and round phases:
/// handles session bookkeeping (opens, closes, hellos) internally and
/// surfaces everything else to the caller.
enum Step {
    Frame(ConnId, Frame),
    Nothing,
    TimedOut,
}

fn recv_step(
    events: &Receiver<Event>,
    remaining: Duration,
    sessions: &mut Sessions,
    fingerprint: u64,
    rounds: u32,
) -> Result<Step, NetError> {
    if remaining.is_zero() {
        return Ok(Step::TimedOut);
    }
    match events.recv_timeout(remaining) {
        Ok(Event::Opened { conn, peer }) => {
            sessions.opened(conn, peer);
            Ok(Step::Nothing)
        }
        Ok(Event::Closed { conn }) => {
            sessions.closed(conn);
            Ok(Step::Nothing)
        }
        Ok(Event::Frame { conn, frame }) => match frame {
            Frame::Hello { client, trainable, fingerprint: fp } => {
                sessions.hello(conn, client, trainable, fp, fingerprint, rounds);
                Ok(Step::Nothing)
            }
            other => Ok(Step::Frame(conn, other)),
        },
        Err(RecvTimeoutError::Timeout) => Ok(Step::TimedOut),
        Err(RecvTimeoutError::Disconnected) => {
            Err(NetError::Disconnected("transport event queue closed".into()))
        }
    }
}
