//! The PTF-FedRec wire codec: length-prefixed, versioned binary frames.
//!
//! Every message on a transport is one frame:
//!
//! ```text
//! [magic u16 = 0x7074] [version u8] [kind u8] [body_len u32] [body …]
//! ```
//!
//! All integers are little-endian; `f32` values travel as their raw IEEE
//! bit patterns (`to_bits`/`from_bits`), so encode → decode is exact for
//! every value including NaN — a requirement for the loopback parity
//! guarantee that a networked run is bit-identical to the in-process
//! engine.
//!
//! The *data* sections of [`Frame::Upload`] and [`Frame::Disperse`] are
//! exactly `count` packed 12-byte `(user, item, score)` triples — the
//! paper's message unit, and the unit [`ptf_comm::Payload::Triples`]
//! prices at [`ptf_comm::message::BYTES_PER_TRIPLE`] bytes each. That makes the
//! `CommLedger` byte accounting authoritative for the encoded protocol
//! data: [`Frame::payload`] returns the ledger-side size model of a data
//! frame, and [`Frame::data_section_bytes`] the encoded data length —
//! the codec tests assert they agree for every possible frame. Frame
//! headers and routing metadata (~8–16 bytes/frame) are transport
//! overhead, deliberately excluded from the paper-comparable metric.
//!
//! Versioning: `MAGIC` never changes; decoders reject any frame whose
//! `version` byte they do not speak (see `docs/wire-protocol.md` for the
//! compatibility rules). Unknown kinds and oversized bodies are errors,
//! not skips — peers of the same version agree on the full kind set.

use crate::error::NetError;
use ptf_comm::message::BYTES_PER_TRIPLE;
use ptf_comm::Payload;
use std::io::{ErrorKind, Read, Write};

/// First two bytes of every frame (`"pt"` little-endian).
pub const MAGIC: u16 = 0x7074;
/// The protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Bytes in the fixed frame header.
pub const HEADER_BYTES: usize = 8;
/// Upper bound on a frame body (~5.5 M triples); corrupt length prefixes
/// fail fast instead of attempting a giant allocation.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// One `(user, item, score)` prediction triple — the only data unit the
/// protocol ever transmits (the paper's headline privacy property).
pub type Triple = (u32, u32, f32);

/// Why a server refused a `Hello`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// Client and server disagree on config/model/dataset fingerprint.
    BadFingerprint,
    /// Client id outside the fleet the server was configured for.
    UnknownClient,
    /// Client id already registered on a live connection.
    DuplicateClient,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::BadFingerprint => 1,
            RejectReason::UnknownClient => 2,
            RejectReason::DuplicateClient => 3,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(RejectReason::BadFingerprint),
            2 => Some(RejectReason::UnknownClient),
            3 => Some(RejectReason::DuplicateClient),
            _ => None,
        }
    }

    /// Human-readable refusal, for error messages.
    pub fn message(self) -> &'static str {
        match self {
            RejectReason::BadFingerprint => {
                "config fingerprint mismatch (client and server must share dataset, scale, seed, rounds, and model settings)"
            }
            RejectReason::UnknownClient => "client id outside the server's fleet",
            RejectReason::DuplicateClient => "client id already connected",
        }
    }
}

/// The `kind` byte of every frame, as a real enum so the kind table is
/// one parseable artifact: `docs/wire-protocol.md`'s frame-kind table is
/// checked against these discriminants by `ptf-lint` (spec-conformance).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    Hello = 1,
    Welcome = 2,
    Reject = 3,
    Announce = 4,
    Upload = 5,
    Disperse = 6,
    Dropped = 7,
    Finished = 8,
}

impl FrameKind {
    /// Decodes a wire `kind` byte; `None` for unknown kinds.
    pub fn from_u8(kind: u8) -> Option<Self> {
        match kind {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Welcome),
            3 => Some(FrameKind::Reject),
            4 => Some(FrameKind::Announce),
            5 => Some(FrameKind::Upload),
            6 => Some(FrameKind::Disperse),
            7 => Some(FrameKind::Dropped),
            8 => Some(FrameKind::Finished),
            _ => None,
        }
    }
}

/// Every message of the networked protocol. See `docs/wire-protocol.md`
/// for the byte-level layout and the handshake/round state machine.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: register logical client `client`. `trainable`
    /// mirrors the in-process `num_positives() > 0` check; `fingerprint`
    /// is [`crate::config_fingerprint`] of the client's local config.
    Hello { client: u32, trainable: bool, fingerprint: u64 },
    /// Server → client: `Hello` accepted; echoes the fleet size and the
    /// configured round budget.
    Welcome { client: u32, fleet: u32, rounds: u32 },
    /// Server → client: `Hello` refused.
    Reject { client: u32, reason: RejectReason },
    /// Server → client: `client` is sampled this round; upload within
    /// `deadline_ms` or be dropped (partial participation).
    Announce { client: u32, round: u32, deadline_ms: u32 },
    /// Client → server: the round's prediction upload `D̂ᵗᵢ` plus the
    /// local training loss (trace telemetry, not protocol data).
    Upload { client: u32, round: u32, loss: f32, triples: Vec<Triple> },
    /// Server → client: the dispersal set `D̃ᵢ` for this round.
    Disperse { client: u32, round: u32, triples: Vec<Triple> },
    /// Server → client: `client` missed the round deadline and was
    /// dropped from this round (informational).
    Dropped { client: u32, round: u32 },
    /// Server → client: the run is complete after `rounds` rounds.
    Finished { rounds: u32 },
}

impl Frame {
    /// This frame's wire kind.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Hello { .. } => FrameKind::Hello,
            Frame::Welcome { .. } => FrameKind::Welcome,
            Frame::Reject { .. } => FrameKind::Reject,
            Frame::Announce { .. } => FrameKind::Announce,
            Frame::Upload { .. } => FrameKind::Upload,
            Frame::Disperse { .. } => FrameKind::Disperse,
            Frame::Dropped { .. } => FrameKind::Dropped,
            Frame::Finished { .. } => FrameKind::Finished,
        }
    }

    /// The [`ptf_comm`] size model of this frame's protocol data — what a
    /// `CommLedger` records for it. `None` for control frames (handshake,
    /// announcements), which carry no protocol data and are priced as
    /// transport overhead.
    pub fn payload(&self) -> Option<Payload> {
        match self {
            Frame::Upload { triples, .. } | Frame::Disperse { triples, .. } => {
                Some(Payload::Triples { count: triples.len() })
            }
            _ => None,
        }
    }

    /// Encoded size of this frame's data section (the packed triples).
    /// The codec guarantees this equals `self.payload().bytes()` — the
    /// byte-accounting parity the ledger tests pin down.
    pub fn data_section_bytes(&self) -> usize {
        match self {
            Frame::Upload { triples, .. } | Frame::Disperse { triples, .. } => {
                triples.len() * BYTES_PER_TRIPLE
            }
            _ => 0,
        }
    }

    /// Appends the full frame (header + body) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(self.kind() as u8);
        let len_at = buf.len();
        buf.extend_from_slice(&0u32.to_le_bytes()); // patched below
        match *self {
            Frame::Hello { client, trainable, fingerprint } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.push(trainable as u8);
                buf.extend_from_slice(&fingerprint.to_le_bytes());
            }
            Frame::Welcome { client, fleet, rounds } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&fleet.to_le_bytes());
                buf.extend_from_slice(&rounds.to_le_bytes());
            }
            Frame::Reject { client, reason } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.push(reason.code());
            }
            Frame::Announce { client, round, deadline_ms } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&round.to_le_bytes());
                buf.extend_from_slice(&deadline_ms.to_le_bytes());
            }
            Frame::Upload { client, round, loss, ref triples } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&round.to_le_bytes());
                buf.extend_from_slice(&loss.to_bits().to_le_bytes());
                encode_triples(buf, triples);
            }
            Frame::Disperse { client, round, ref triples } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&round.to_le_bytes());
                encode_triples(buf, triples);
            }
            Frame::Dropped { client, round } => {
                buf.extend_from_slice(&client.to_le_bytes());
                buf.extend_from_slice(&round.to_le_bytes());
            }
            Frame::Finished { rounds } => {
                buf.extend_from_slice(&rounds.to_le_bytes());
            }
        }
        let body_len = (buf.len() - len_at - 4) as u32;
        buf[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Encodes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_BYTES + 16 + self.data_section_bytes());
        self.encode(&mut buf);
        buf
    }
}

fn encode_triples(buf: &mut Vec<u8>, triples: &[Triple]) {
    buf.extend_from_slice(&(triples.len() as u32).to_le_bytes());
    for &(user, item, score) in triples {
        buf.extend_from_slice(&user.to_le_bytes());
        buf.extend_from_slice(&item.to_le_bytes());
        buf.extend_from_slice(&score.to_bits().to_le_bytes());
    }
}

/// A bounds-checked little-endian reader over a frame body.
struct Body<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Body<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or(NetError::Truncated("frame body"))?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f32(&mut self) -> Result<f32, NetError> {
        Ok(f32::from_bits(self.u32()?))
    }

    fn triples(&mut self) -> Result<Vec<Triple>, NetError> {
        let count = self.u32()? as usize;
        let want = count
            .checked_mul(BYTES_PER_TRIPLE)
            .ok_or(NetError::Truncated("triple count overflows"))?;
        if self.bytes.len() - self.at != want {
            return Err(NetError::Truncated("triple section length mismatch"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let user = self.u32()?;
            let item = self.u32()?;
            let score = self.f32()?;
            out.push((user, item, score));
        }
        Ok(out)
    }

    fn finish(self, kind: u8) -> Result<(), NetError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(NetError::TrailingBytes { kind })
        }
    }
}

/// Validates a header and returns `(kind, body_len)`.
fn decode_header(header: &[u8; HEADER_BYTES]) -> Result<(u8, usize), NetError> {
    let magic = u16::from_le_bytes([header[0], header[1]]);
    if magic != MAGIC {
        return Err(NetError::BadMagic(magic));
    }
    let version = header[2];
    if version != VERSION {
        return Err(NetError::Version { got: version, want: VERSION });
    }
    let kind = header[3];
    let body_len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if body_len > MAX_BODY_BYTES {
        return Err(NetError::Oversized { kind, len: body_len });
    }
    Ok((kind, body_len))
}

fn decode_body(kind: u8, bytes: &[u8]) -> Result<Frame, NetError> {
    let mut b = Body::new(bytes);
    let frame = match FrameKind::from_u8(kind).ok_or(NetError::UnknownKind(kind))? {
        FrameKind::Hello => {
            Frame::Hello { client: b.u32()?, trainable: b.u8()? != 0, fingerprint: b.u64()? }
        }
        FrameKind::Welcome => {
            Frame::Welcome { client: b.u32()?, fleet: b.u32()?, rounds: b.u32()? }
        }
        FrameKind::Reject => {
            let client = b.u32()?;
            let code = b.u8()?;
            let reason =
                RejectReason::from_code(code).ok_or(NetError::Truncated("bad reject code"))?;
            Frame::Reject { client, reason }
        }
        FrameKind::Announce => {
            Frame::Announce { client: b.u32()?, round: b.u32()?, deadline_ms: b.u32()? }
        }
        FrameKind::Upload => Frame::Upload {
            client: b.u32()?,
            round: b.u32()?,
            loss: b.f32()?,
            triples: b.triples()?,
        },
        FrameKind::Disperse => {
            Frame::Disperse { client: b.u32()?, round: b.u32()?, triples: b.triples()? }
        }
        FrameKind::Dropped => Frame::Dropped { client: b.u32()?, round: b.u32()? },
        FrameKind::Finished => Frame::Finished { rounds: b.u32()? },
    };
    b.finish(kind)?;
    Ok(frame)
}

/// Decodes exactly one frame from `bytes` (which must contain exactly
/// one frame — the loopback transport's message unit).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, NetError> {
    if bytes.len() < HEADER_BYTES {
        return Err(NetError::Truncated("frame header"));
    }
    let mut header = [0u8; HEADER_BYTES];
    header.copy_from_slice(&bytes[..HEADER_BYTES]);
    let (kind, body_len) = decode_header(&header)?;
    let body = &bytes[HEADER_BYTES..];
    if body.len() != body_len {
        return Err(NetError::Truncated("frame body length mismatch"));
    }
    decode_body(kind, body)
}

/// Reads one frame from a byte stream. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed its connection); EOF inside a
/// frame is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, NetError> {
    let mut header = [0u8; HEADER_BYTES];
    let mut filled = 0;
    while filled < HEADER_BYTES {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(NetError::Truncated("eof inside frame header")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    let (kind, body_len) = decode_header(&header)?;
    let mut body = vec![0u8; body_len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == ErrorKind::UnexpectedEof {
            NetError::Truncated("eof inside frame body")
        } else {
            NetError::Io(e)
        }
    })?;
    decode_body(kind, &body).map(Some)
}

/// Writes one frame to a byte stream (no flush — the caller owns
/// buffering policy).
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<(), NetError> {
    w.write_all(&frame.to_bytes()).map_err(NetError::Io)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Frame> {
        vec![
            Frame::Hello { client: 7, trainable: true, fingerprint: 0xDEAD_BEEF_0BAD_CAFE },
            Frame::Welcome { client: 7, fleet: 120, rounds: 40 },
            Frame::Reject { client: 9, reason: RejectReason::BadFingerprint },
            Frame::Announce { client: 7, round: 3, deadline_ms: 5000 },
            Frame::Upload {
                client: 7,
                round: 3,
                loss: 0.625,
                triples: vec![(7, 1, 0.5), (7, 2, -1.25), (7, 3, f32::NAN)],
            },
            Frame::Disperse { client: 7, round: 3, triples: vec![(7, 9, 1.0)] },
            Frame::Dropped { client: 7, round: 3 },
            Frame::Finished { rounds: 40 },
        ]
    }

    #[test]
    fn round_trips_every_kind() {
        for frame in samples() {
            let bytes = frame.to_bytes();
            let back = decode_frame(&bytes).expect("decode");
            // NaN scores break PartialEq; compare re-encoded bytes, which
            // is the actually-load-bearing equality (bit-exactness)
            assert_eq!(back.to_bytes(), bytes, "{frame:?}");
        }
    }

    #[test]
    fn header_layout_is_stable() {
        let bytes = Frame::Finished { rounds: 1 }.to_bytes();
        assert_eq!(&bytes[..2], &MAGIC.to_le_bytes());
        assert_eq!(bytes[2], VERSION);
        assert_eq!(bytes[3], 8);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 4);
        assert_eq!(bytes.len(), HEADER_BYTES + 4);
    }

    #[test]
    fn data_section_matches_ledger_size_model() {
        for frame in samples() {
            if let Some(payload) = frame.payload() {
                assert_eq!(frame.data_section_bytes(), payload.bytes(), "{frame:?}");
            } else {
                assert_eq!(frame.data_section_bytes(), 0);
            }
        }
    }

    #[test]
    fn rejects_bad_magic_version_kind_and_lengths() {
        let good = Frame::Finished { rounds: 1 }.to_bytes();

        let mut bad_magic = good.clone();
        bad_magic[0] = 0xFF;
        assert!(matches!(decode_frame(&bad_magic), Err(NetError::BadMagic(_))));

        let mut bad_version = good.clone();
        bad_version[2] = VERSION + 1;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(NetError::Version { got, .. }) if got == VERSION + 1
        ));

        let mut bad_kind = good.clone();
        bad_kind[3] = 99;
        assert!(matches!(decode_frame(&bad_kind), Err(NetError::UnknownKind(99))));

        assert!(matches!(decode_frame(&good[..5]), Err(NetError::Truncated(_))));
        assert!(matches!(decode_frame(&good[..good.len() - 1]), Err(NetError::Truncated(_))));

        let mut oversized = good.clone();
        oversized[4..8].copy_from_slice(&(MAX_BODY_BYTES as u32 + 1).to_le_bytes());
        assert!(matches!(decode_frame(&oversized), Err(NetError::Oversized { .. })));

        let mut trailing = Frame::Dropped { client: 1, round: 2 }.to_bytes();
        trailing.push(0);
        let len = (trailing.len() - HEADER_BYTES) as u32;
        trailing[4..8].copy_from_slice(&len.to_le_bytes());
        assert!(matches!(decode_frame(&trailing), Err(NetError::TrailingBytes { kind: 7 })));
    }

    #[test]
    fn stream_reader_handles_eof_at_and_inside_boundaries() {
        let frame = Frame::Announce { client: 1, round: 2, deadline_ms: 3 };
        let mut bytes = frame.to_bytes();
        let mut two = bytes.clone();
        two.extend_from_slice(&bytes);
        let mut cursor = std::io::Cursor::new(two);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame.clone()));
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(frame));
        assert_eq!(read_frame(&mut cursor).unwrap(), None);

        bytes.truncate(bytes.len() - 2);
        let mut cursor = std::io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor), Err(NetError::Truncated(_))));
    }
}
