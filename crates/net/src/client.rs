//! The client runner: hosts a shard of the fleet over one connection.
//!
//! A `ptf client` process builds the clients for its assigned user ids —
//! bit-identical to the same clients inside an in-process run, thanks to
//! the per-client `ClientInit` RNG streams — then answers round
//! announcements with locally trained uploads and folds dispersed
//! server knowledge back in. All protocol state advances from server
//! frames; the shard never assumes it was sampled.

use crate::config_fingerprint;
use crate::error::NetError;
use crate::transport::ClientConn;
use crate::wire::Frame;
use ptf_core::{rounds, PtfClient, PtfConfig};
use ptf_data::Dataset;
use ptf_federated::RoundScratch;
use ptf_models::{ModelHyper, ModelKind};
use serde::Serialize;
use std::time::Duration;

/// Fault injection for the straggler tests: before uploading in
/// `round`, the whole shard sleeps for `delay` — long enough past the
/// round deadline and the server drops it for that round.
#[derive(Clone, Copy, Debug)]
pub struct Straggle {
    pub round: u32,
    pub delay: Duration,
}

/// Everything a client shard needs besides the dataset and connection.
pub struct ShardOptions {
    /// Must match the server's config — the handshake fingerprint
    /// rejects drifted configs before any round runs.
    pub cfg: PtfConfig,
    pub client_kind: ModelKind,
    pub server_kind: ModelKind,
    pub hyper: ModelHyper,
    /// The user ids this process hosts (any subset of `0..num_users`).
    pub ids: Vec<u32>,
    /// Optional induced straggle (tests, chaos drills).
    pub straggle: Option<Straggle>,
}

/// What one shard saw over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ShardSummary {
    /// Logical clients hosted.
    pub clients: usize,
    /// Uploads sent (one per announcement answered).
    pub participations: u64,
    /// `Dropped` notices received (uploads that missed a deadline).
    pub dropped: u64,
    /// Rounds the server reported finished.
    pub rounds_finished: u32,
    /// Protocol data bytes sent (upload data sections — the ledger's
    /// size model, frame headers excluded).
    pub bytes_up: u64,
    /// Protocol data bytes received (dispersal data sections).
    pub bytes_down: u64,
}

/// Runs the shard to completion: handshakes every hosted client, serves
/// round announcements until the server says `Finished`.
///
/// The server closing the connection before `Finished` is an error
/// (mid-run disconnect); a `Reject` for any hosted client is a
/// handshake error. Both map to exit code 1 in the CLI — never a panic.
pub fn run_shard(
    train: &Dataset,
    conn: &mut ClientConn,
    opts: &ShardOptions,
) -> Result<ShardSummary, NetError> {
    opts.cfg.validate().map_err(|e| NetError::Protocol(e.to_string()))?;
    if opts.ids.is_empty() {
        return Err(NetError::Protocol("shard hosts no client ids".into()));
    }
    let fleet = train.num_users() as u32;
    if let Some(&bad) = opts.ids.iter().find(|&&id| id >= fleet) {
        return Err(NetError::Protocol(format!("client id {bad} outside fleet 0..{fleet}")));
    }
    let fingerprint = config_fingerprint(
        &opts.cfg,
        opts.client_kind,
        opts.server_kind,
        &opts.hyper,
        train.num_users(),
        train.num_items(),
    );

    // build this shard's slice of the fleet (bit-identical to in-process)
    let mut clients: Vec<PtfClient> = opts
        .ids
        .iter()
        .map(|&id| rounds::build_client(train, id, opts.client_kind, &opts.hyper, &opts.cfg))
        .collect();
    let mut scratch = RoundScratch::default();
    let index_of = |id: u32, clients: &[PtfClient]| clients.iter().position(|c| c.id == id);

    for c in &clients {
        conn.send(&Frame::Hello { client: c.id, trainable: c.num_positives() > 0, fingerprint })?;
    }

    let mut summary = ShardSummary { clients: clients.len(), ..ShardSummary::default() };
    let mut welcomed = 0usize;
    loop {
        let frame = match conn.recv()? {
            Some(frame) => frame,
            None => {
                return Err(NetError::Disconnected(
                    "server closed the connection before the run finished".into(),
                ))
            }
        };
        match frame {
            Frame::Welcome { fleet: server_fleet, rounds: server_rounds, .. } => {
                if server_fleet as usize != train.num_users() || server_rounds != opts.cfg.rounds {
                    return Err(NetError::Handshake(format!(
                        "server runs fleet {server_fleet} × {server_rounds} rounds, \
                         this shard expects {} × {}",
                        train.num_users(),
                        opts.cfg.rounds
                    )));
                }
                welcomed += 1;
            }
            Frame::Reject { client, reason } => {
                return Err(NetError::Handshake(format!(
                    "server rejected client {client}: {}",
                    reason.message()
                )));
            }
            Frame::Announce { client, round, .. } => {
                if welcomed < clients.len() {
                    return Err(NetError::Protocol(format!(
                        "round {round} announced before all {} hellos were welcomed",
                        clients.len()
                    )));
                }
                let Some(at) = index_of(client, &clients) else {
                    continue; // not ours — another shard's announcement
                };
                if let Some(s) = opts.straggle {
                    if s.round == round {
                        std::thread::sleep(s.delay);
                    }
                }
                let (upload, loss) =
                    rounds::client_round(&mut clients[at], &opts.cfg, round, &mut scratch);
                let frame = Frame::Upload {
                    client,
                    round,
                    loss,
                    triples: upload
                        .predictions
                        .iter()
                        .map(|&(item, score)| (client, item, score))
                        .collect(),
                };
                summary.bytes_up += frame.data_section_bytes() as u64;
                summary.participations += 1;
                clients[at].recycle_upload(upload);
                conn.send(&frame)?;
            }
            Frame::Disperse { client, triples, .. } => {
                let Some(at) = index_of(client, &clients) else { continue };
                summary.bytes_down += (triples.len() * ptf_comm::message::BYTES_PER_TRIPLE) as u64;
                clients[at]
                    .receive_disperse(triples.into_iter().map(|(_, item, s)| (item, s)).collect());
            }
            Frame::Dropped { .. } => {
                summary.dropped += 1;
            }
            Frame::Finished { rounds } => {
                summary.rounds_finished = rounds;
                return Ok(summary);
            }
            Frame::Hello { .. } | Frame::Upload { .. } => {
                return Err(NetError::Protocol("server sent a client-only frame".into()));
            }
        }
    }
}
