//! Property-based tests of the wire codec: round-trip exactness, byte
//! accounting against the ledger's size model, and rejection of every
//! corrupted prefix.

use proptest::prelude::*;
use ptf_net::wire::{decode_frame, Frame, RejectReason, Triple, HEADER_BYTES, MAGIC, VERSION};

fn triple_strategy() -> impl Strategy<Value = Triple> {
    // score from raw bits: every f32 bit pattern (NaNs, infinities,
    // subnormals) must survive the wire exactly
    (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(u, i, bits)| (u, i, f32::from_bits(bits)))
}

fn triples_strategy() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(triple_strategy(), 0..64)
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), any::<bool>(), any::<u64>()).prop_map(|(client, trainable, fingerprint)| {
            Frame::Hello { client, trainable, fingerprint }
        }),
        (any::<u32>(), any::<u32>(), any::<u32>())
            .prop_map(|(client, fleet, rounds)| Frame::Welcome { client, fleet, rounds }),
        (
            any::<u32>(),
            prop_oneof![
                Just(RejectReason::BadFingerprint),
                Just(RejectReason::UnknownClient),
                Just(RejectReason::DuplicateClient),
            ]
        )
            .prop_map(|(client, reason)| Frame::Reject { client, reason }),
        (any::<u32>(), any::<u32>(), any::<u32>()).prop_map(|(client, round, deadline_ms)| {
            Frame::Announce { client, round, deadline_ms }
        }),
        (any::<u32>(), any::<u32>(), any::<u32>(), triples_strategy()).prop_map(
            |(client, round, bits, triples)| Frame::Upload {
                client,
                round,
                loss: f32::from_bits(bits),
                triples
            }
        ),
        (any::<u32>(), any::<u32>(), triples_strategy())
            .prop_map(|(client, round, triples)| Frame::Disperse { client, round, triples }),
        (any::<u32>(), any::<u32>()).prop_map(|(client, round)| Frame::Dropped { client, round }),
        any::<u32>().prop_map(|rounds| Frame::Finished { rounds }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode ∘ encode = encode — byte-level round-trip law.
    /// (Compared on re-encoded bytes, not `Frame` equality, so NaN
    /// scores — where `PartialEq` fails — are still pinned exactly.)
    #[test]
    fn encode_decode_encode_is_identity(frame in frame_strategy()) {
        let bytes = frame.to_bytes();
        let decoded = decode_frame(&bytes).expect("own encoding must decode");
        prop_assert_eq!(decoded.to_bytes(), bytes);
    }

    /// The encoded data section is byte-for-byte what the in-process
    /// `CommLedger` charges for the same message (`Payload::Triples`),
    /// for *every* frame — the networked byte accounting satellite.
    #[test]
    fn data_section_matches_ledger_size_model(frame in frame_strategy()) {
        let modeled = frame.payload().map_or(0, |p| p.bytes());
        prop_assert_eq!(frame.data_section_bytes(), modeled);
        // and the encoding agrees: body = fixed metadata + data section
        let bytes = frame.to_bytes();
        let body_len = bytes.len() - HEADER_BYTES;
        let metadata = match &frame {
            Frame::Hello { .. } => 13,
            Frame::Welcome { .. } | Frame::Announce { .. } => 12,
            Frame::Reject { .. } => 5,
            Frame::Upload { .. } => 12 + 4,   // ids + loss + triple count
            Frame::Disperse { .. } => 8 + 4,  // ids + triple count
            Frame::Dropped { .. } => 8,
            Frame::Finished { .. } => 4,
        };
        prop_assert_eq!(body_len - metadata, frame.data_section_bytes());
    }

    /// Every strict prefix of a valid frame is rejected, never misread.
    #[test]
    fn truncated_frames_are_rejected(frame in frame_strategy(), cut_seed in any::<usize>()) {
        let bytes = frame.to_bytes();
        let cut = cut_seed % bytes.len(); // 0..len, always a strict prefix
        prop_assert!(decode_frame(&bytes[..cut]).is_err());
    }

    /// Flipping the magic, version, or kind byte is always rejected.
    #[test]
    fn corrupted_headers_are_rejected(frame in frame_strategy(), which in 0usize..3) {
        let mut bytes = frame.to_bytes();
        match which {
            0 => bytes[0] ^= 0xff,           // magic
            1 => bytes[2] = VERSION + 1,     // version
            _ => bytes[3] = 0x7f,            // unknown kind
        }
        prop_assert!(decode_frame(&bytes).is_err());
        // sanity: the untouched header still carries the right magic
        prop_assert_eq!(u16::from_le_bytes([frame.to_bytes()[0], frame.to_bytes()[1]]), MAGIC);
    }
}
