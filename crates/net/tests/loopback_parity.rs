//! The tentpole guarantee: a networked run is **bit-identical** to the
//! in-process engine — same seed, same config, same `RunTrace`, compared
//! as serialized JSON bytes. The loopback transport pushes every frame
//! through the real codec, so these tests cover everything TCP does
//! except the socket itself.

use ptf_core::{PtfConfig, PtfFedRec};
use ptf_data::{Dataset, SyntheticConfig};
use ptf_federated::{Engine, Participation};
use ptf_models::{ModelHyper, ModelKind};
use ptf_net::{
    loopback_hub, run_server, run_shard, NetError, NetServerOptions, ShardOptions, Straggle,
    StragglerDrop,
};
use std::time::Duration;

const CLIENT: ModelKind = ModelKind::Mf;
const SERVER: ModelKind = ModelKind::Mf;

fn dataset() -> Dataset {
    SyntheticConfig::new("net-parity", 24, 48, 10.0).generate(&mut ptf_data::test_rng(77))
}

fn config(threads: usize) -> PtfConfig {
    let mut cfg = PtfConfig::small();
    cfg.rounds = 3;
    cfg.client_epochs = 2;
    cfg.seed = 2024;
    cfg.threads = threads;
    cfg
}

fn server_options(cfg: &PtfConfig) -> NetServerOptions {
    NetServerOptions {
        cfg: cfg.clone(),
        client_kind: CLIENT,
        server_kind: SERVER,
        hyper: ModelHyper::small(),
        round_deadline: Duration::from_secs(30),
        gather_timeout: Duration::from_secs(30),
        verbose: false,
    }
}

/// Runs the in-process engine to completion and returns its trace JSON.
fn engine_trace_json(train: &Dataset, cfg: &PtfConfig) -> String {
    let protocol =
        PtfFedRec::try_new(train, CLIENT, SERVER, &ModelHyper::small(), cfg.clone()).unwrap();
    let mut engine = Engine::new(protocol);
    serde_json::to_string(&engine.run()).unwrap()
}

/// Runs a loopback networked run with the fleet split over `shards`
/// connections and returns (trace JSON, straggler drops).
fn loopback_trace_json(
    train: &Dataset,
    cfg: &PtfConfig,
    shards: &[Vec<u32>],
    straggle: Option<(usize, Straggle)>,
    deadline: Duration,
) -> (String, Vec<StragglerDrop>) {
    let (hub, events) = loopback_hub();
    let mut opts = server_options(cfg);
    opts.round_deadline = deadline;
    let report = std::thread::scope(|scope| {
        for (at, ids) in shards.iter().enumerate() {
            let hub = hub.clone();
            let shard_opts = ShardOptions {
                cfg: cfg.clone(),
                client_kind: CLIENT,
                server_kind: SERVER,
                hyper: ModelHyper::small(),
                ids: ids.clone(),
                straggle: straggle.and_then(|(s, plan)| (s == at).then_some(plan)),
            };
            scope.spawn(move || {
                let mut conn = hub.connect();
                run_shard(train, &mut conn, &shard_opts)
            });
        }
        let (report, _server) = run_server(train, &events, &opts).unwrap();
        report
    });
    (serde_json::to_string(&report.trace).unwrap(), report.stragglers)
}

fn whole_fleet_shards() -> Vec<Vec<u32>> {
    vec![(0..8).collect(), (8..16).collect(), (16..24).collect()]
}

#[test]
fn loopback_run_is_bit_identical_to_engine_at_one_thread() {
    let train = dataset();
    let cfg = config(1);
    let reference = engine_trace_json(&train, &cfg);
    let (net, stragglers) =
        loopback_trace_json(&train, &cfg, &whole_fleet_shards(), None, Duration::from_secs(30));
    assert!(stragglers.is_empty());
    assert_eq!(net, reference, "networked trace must match the engine byte-for-byte");
}

#[test]
fn loopback_run_is_bit_identical_to_engine_at_four_threads() {
    let train = dataset();
    let cfg = config(4);
    let reference = engine_trace_json(&train, &cfg);
    // the networked fleet shards differently than the engine threads —
    // parity must hold regardless
    let shards: Vec<Vec<u32>> = vec![(0..5).collect(), (5..23).collect(), vec![23]];
    let (net, stragglers) =
        loopback_trace_json(&train, &cfg, &shards, None, Duration::from_secs(30));
    assert!(stragglers.is_empty());
    assert_eq!(net, reference);
    // and the engine itself is thread-count invariant, so 4-thread
    // networked == 1-thread engine too
    assert_eq!(net, engine_trace_json(&train, &config(1)));
}

#[test]
fn loopback_partial_participation_matches_engine() {
    let train = dataset();
    let mut cfg = config(2);
    cfg.participation = Participation { fraction: 0.5, min_clients: 1 };
    let reference = engine_trace_json(&train, &cfg);
    let (net, stragglers) =
        loopback_trace_json(&train, &cfg, &whole_fleet_shards(), None, Duration::from_secs(30));
    assert!(stragglers.is_empty());
    assert_eq!(net, reference, "participation sampling must use the same RNG stream");
}

#[test]
fn straggler_is_dropped_and_trace_matches_unsampled_reference() {
    let train = dataset();
    let cfg = config(1);
    let last_round = cfg.rounds - 1;
    let straggler = 7u32;

    // reference: run all but the last round normally, then the last
    // round with the straggler excluded from the participant set — the
    // trace a run would have had if the straggler were never sampled
    let protocol =
        PtfFedRec::try_new(&train, CLIENT, SERVER, &ModelHyper::small(), cfg.clone()).unwrap();
    let trainable = protocol.trainable().to_vec();
    assert!(trainable.contains(&straggler), "test needs a trainable straggler");
    let mut engine = Engine::new(protocol);
    let mut reference = ptf_federated::RunTrace::default();
    for _ in 0..last_round {
        reference.push(engine.run_round());
    }
    let reduced: Vec<u32> = trainable.iter().copied().filter(|&c| c != straggler).collect();
    reference.push(engine.run_round_external(&reduced).expect("protocol supports external sets"));
    let reference = serde_json::to_string(&reference).unwrap();

    // networked: the straggler's shard sleeps through the last round's
    // deadline and gets dropped for that round only
    let shards: Vec<Vec<u32>> =
        vec![(0..24).filter(|&c| c != straggler).collect(), vec![straggler]];
    let plan = Straggle { round: last_round, delay: Duration::from_millis(4000) };
    let (net, stragglers) =
        loopback_trace_json(&train, &cfg, &shards, Some((1, plan)), Duration::from_millis(1000));
    assert_eq!(stragglers, vec![StragglerDrop { round: last_round, client: straggler }]);
    assert_eq!(net, reference, "dropped straggler must equal an unsampled client");
}

#[test]
fn client_reconnect_during_gather_still_reaches_parity() {
    let train = dataset();
    let cfg = config(1);
    let reference = engine_trace_json(&train, &cfg);

    let (hub, events) = loopback_hub();
    let opts = server_options(&cfg);
    let train = &train;

    // client 0 hellos and its connection dies before the server even
    // starts — the events (hello, then close) are queued ahead of the
    // rest of the fleet, so the server must notice the dead slot and
    // hold the gather open for the reconnect
    {
        let mut conn = hub.connect();
        let fp = ptf_net::config_fingerprint(
            &cfg,
            CLIENT,
            SERVER,
            &ModelHyper::small(),
            train.num_users(),
            train.num_items(),
        );
        conn.send(&ptf_net::wire::Frame::Hello { client: 0, trainable: true, fingerprint: fp })
            .unwrap();
    }
    // let the dead connection's pump threads enqueue hello + close
    std::thread::sleep(Duration::from_millis(50));

    let report = std::thread::scope(|scope| {
        // the rest of the fleet
        {
            let hub = hub.clone();
            let shard_opts = ShardOptions {
                cfg: cfg.clone(),
                client_kind: CLIENT,
                server_kind: SERVER,
                hyper: ModelHyper::small(),
                ids: (1..24).collect(),
                straggle: None,
            };
            scope.spawn(move || {
                let mut conn = hub.connect();
                run_shard(train, &mut conn, &shard_opts).unwrap();
            });
        }
        // client 0 reconnects from a fresh connection; a `DuplicateClient`
        // reject only means the server has not yet processed the old
        // connection's close — retry until the slot frees up
        {
            let hub = hub.clone();
            let shard_opts = ShardOptions {
                cfg: cfg.clone(),
                client_kind: CLIENT,
                server_kind: SERVER,
                hyper: ModelHyper::small(),
                ids: vec![0],
                straggle: None,
            };
            scope.spawn(move || {
                for _ in 0..500 {
                    let mut conn = hub.connect();
                    match run_shard(train, &mut conn, &shard_opts) {
                        Ok(_) => return,
                        Err(NetError::Handshake(msg)) if msg.contains("already connected") => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(e) => panic!("reconnect failed: {e}"),
                    }
                }
                panic!("client 0 never managed to reconnect");
            });
        }
        let (report, _server) = run_server(train, &events, &opts).unwrap();
        report
    });
    assert!(report.stragglers.is_empty(), "nobody straggled: {:?}", report.stragglers);
    assert!(report.connections >= 3, "the reconnect must show up as an extra connection");
    assert_eq!(serde_json::to_string(&report.trace).unwrap(), reference);
}

#[test]
fn fingerprint_mismatch_is_rejected_at_handshake() {
    let train = dataset();
    let cfg = config(1);
    let (hub, events) = loopback_hub();
    let mut drifted = cfg.clone();
    drifted.seed += 1; // any semantic drift must be caught before round 0
    let mut opts = server_options(&cfg);
    opts.gather_timeout = Duration::from_millis(400);
    let train = &train;
    let (server_res, client_res) = std::thread::scope(|scope| {
        let shard = scope.spawn({
            let hub = hub.clone();
            move || {
                let mut conn = hub.connect();
                let shard_opts = ShardOptions {
                    cfg: drifted,
                    client_kind: CLIENT,
                    server_kind: SERVER,
                    hyper: ModelHyper::small(),
                    ids: vec![0],
                    straggle: None,
                };
                run_shard(train, &mut conn, &shard_opts)
            }
        });
        // the only client is rejected, so the gather must time out
        let server_res = run_server(train, &events, &opts);
        (server_res, shard.join().unwrap())
    });
    let server_err = match server_res {
        Err(e) => e,
        Ok(_) => panic!("the server must not gather a fleet of rejected clients"),
    };
    assert!(matches!(server_err, NetError::Timeout(_)), "got {server_err}");
    let client_err = client_res.unwrap_err();
    assert!(matches!(client_err, NetError::Handshake(_)), "got {client_err}");
}
