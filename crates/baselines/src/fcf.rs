//! FCF — Federated Collaborative Filtering (Ammad-ud-din et al., 2019).
//!
//! The canonical parameter-transmission FedRec: the server owns global
//! item embeddings; every round each client downloads them, runs local
//! SGD on its private interactions (updating its *private* user vector in
//! place and a local copy of the item rows it touches), and uploads the
//! item-matrix delta. The server averages deltas.
//!
//! Communication per client per round is two full item-matrix transfers —
//! the MB-scale cost Table IV contrasts with PTF-FedRec's KB-scale
//! triples. (Uploading the *full* delta matrix rather than touched rows is
//! deliberate and faithful: a sparse upload would reveal exactly which
//! items the client interacted with.)

use ptf_comm::Payload;
use ptf_data::negative::sample_negatives_into;
use ptf_data::Dataset;
use ptf_federated::{
    partition_clients, round_rng, ClientData, FederatedProtocol, Participation, RngStream,
    RoundCtx, RoundScratch, RoundTrace, Scheduler, ScratchPool,
};
use ptf_models::mf::{mf_sgd_step, MfModel};
use ptf_models::Recommender;
use ptf_tensor::RowTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Observer over one client's item-delta rows: `(client, delta, dim, V)`.
/// The delta is a [`RowTable`] scoped to the items the client touched;
/// each row is `[Δembedding.., Δbias]`.
type DeltaObserver<'a> = dyn FnMut(u32, &RowTable, usize, usize) + 'a;

/// One client's buffered contribution from the parallel phase.
struct ClientResult {
    client: u32,
    /// Trained private user vector (written back serially).
    user_row: Vec<f32>,
    /// Item-row deltas, scoped to the touched items (sorted by id, so
    /// serial aggregation order is deterministic by construction).
    delta: RowTable,
    loss: f32,
}

/// FCF configuration (paper-aligned defaults).
#[derive(Clone, Debug)]
pub struct FcfConfig {
    pub rounds: u32,
    pub local_epochs: u32,
    /// Local SGD learning rate.
    pub lr: f32,
    pub neg_ratio: usize,
    pub dim: usize,
    pub reg: f32,
    pub participation: Participation,
    pub seed: u64,
    /// Worker threads for the parallel client phase (`0` = every
    /// hardware thread); bit-identical results at any value.
    pub threads: usize,
}

impl Default for FcfConfig {
    fn default() -> Self {
        Self {
            rounds: 20,
            local_epochs: 5,
            lr: 0.05,
            neg_ratio: 4,
            dim: 32,
            reg: 1e-4,
            participation: Participation::full(),
            seed: 31,
            threads: 0,
        }
    }
}

impl FcfConfig {
    pub fn small() -> Self {
        Self { rounds: 10, local_epochs: 3, dim: 16, ..Self::default() }
    }
}

/// A running FCF federation.
pub struct Fcf {
    cfg: FcfConfig,
    /// `user_emb` rows are the clients' *private* vectors (held here only
    /// because this is a single-process simulation — they never enter the
    /// wire accounting); the item table (`item_embedding()`/`item_bias()`
    /// per row, `item_row_mut()` for FedAvg) is the global shared state.
    model: MfModel,
    clients: Vec<ClientData>,
    trainable: Vec<u32>,
    scheduler: Scheduler,
    scratch: ScratchPool,
    round: u32,
}

impl Fcf {
    pub fn new(train: &Dataset, cfg: FcfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = MfModel::new(train.num_users(), train.num_items(), cfg.dim, cfg.lr, &mut rng);
        let clients = partition_clients(train);
        let trainable = clients.iter().filter(|c| c.is_trainable()).map(|c| c.id).collect();
        let scheduler = Scheduler::new(cfg.threads);
        Self { cfg, model, clients, trainable, scheduler, scratch: ScratchPool::new(), round: 0 }
    }

    /// The wire size of one direction of the exchange (item matrix+bias).
    fn transfer_payload(&self) -> Payload {
        Payload::DenseMatrix { rows: self.model.num_items(), cols: self.cfg.dim + 1 }
    }

    /// One client's local phase, against a *read-only* model snapshot:
    /// trains a private copy of the user vector plus local copies of the
    /// item rows it touches, and returns the finished [`ClientResult`]
    /// (user row, item-row deltas, mean loss). Runs on scheduler workers —
    /// the only shared state it sees is the pre-round model, so the result
    /// depends solely on `(client, rng)`.
    ///
    /// The local working copies live in a [`RowTable`] scoped to the
    /// client's pool (copy-on-first-touch from the server's current
    /// rows): the same row-sparse client-item-state machinery PTF-FedRec
    /// clients are built on, here sized to `positives × (1 + ratio)`
    /// instead of the full catalogue.
    fn client_update(
        model: &MfModel,
        client: &ClientData,
        cfg: &FcfConfig,
        scratch: &mut RoundScratch,
        rng: &mut StdRng,
    ) -> ClientResult {
        let dim = cfg.dim;
        let mut user_row = model.user_emb.row(client.id as usize).to_vec();
        // local working copies of the item rows this client will touch:
        // `[embedding.., bias]` per row, seeded from the pre-round model
        let mut local = RowTable::sparse_zeroed(model.num_items(), dim + 1);
        local.reserve_rows(client.positives.len() * (1 + cfg.neg_ratio));
        let mut loss_sum = 0.0f32;
        let mut steps = 0usize;
        for _ in 0..cfg.local_epochs {
            sample_negatives_into(
                &client.positives,
                model.num_items(),
                client.positives.len() * cfg.neg_ratio,
                rng,
                &mut scratch.negatives,
                &mut scratch.seen,
            );
            scratch.pairs.clear();
            scratch.pairs.extend(client.positives.iter().map(|&i| (i, 1.0f32)));
            scratch.pairs.extend(scratch.negatives.iter().map(|&i| (i, 0.0f32)));
            let samples = &mut scratch.pairs;
            for i in (1..samples.len()).rev() {
                let j = rng.gen_range(0..=i);
                samples.swap(i, j);
            }
            for &(item, label) in samples.iter() {
                let r = local.ensure_with(item, |row| {
                    row[..dim].copy_from_slice(model.item_embedding(item));
                    row[dim] = model.item_bias(item);
                });
                let (row, bias) = local.row_mut(r).split_at_mut(dim);
                loss_sum += mf_sgd_step(&mut user_row, row, &mut bias[0], label, cfg.lr, cfg.reg);
                steps += 1;
            }
        }
        let loss = if steps == 0 { 0.0 } else { loss_sum / steps as f32 };
        // the gradient message: trained local rows minus the pre-round base
        for r in 0..local.rows() {
            let item = local.id_of(r);
            let base_row = model.item_embedding(item);
            let base_bias = model.item_bias(item);
            let row = local.row_mut(r);
            for (d, &old) in row[..dim].iter_mut().zip(base_row) {
                *d -= old;
            }
            row[dim] -= base_bias;
        }
        ClientResult { client: client.id, user_row, delta: local, loss }
    }
}

impl Fcf {
    /// Like [`FederatedProtocol::run_round`], but hands every client's
    /// full item-matrix delta (V×(dim+1), bias in the last column — the
    /// exact message FCF puts on the wire) to `on_delta` before
    /// aggregation. FedMF uses this to run its encrypt → aggregate →
    /// decrypt cycle over the *real* gradients.
    pub fn run_round_observed(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        mut on_delta: impl FnMut(u32, &ptf_tensor::Matrix),
    ) -> RoundTrace {
        self.run_round_inner(ctx, &mut |cid, delta, dim, num_items| {
            let mut dense = ptf_tensor::Matrix::zeros(num_items, dim + 1);
            for (item, row) in delta.iter() {
                dense.row_mut(item as usize).copy_from_slice(row);
            }
            on_delta(cid, &dense);
        })
    }

    /// Shared round body; `observer` sees `(client, delta rows, dim, V)`.
    ///
    /// Two-phase map/reduce: every participant's [`Fcf::client_update`]
    /// runs in parallel against the pre-round model (clients are mutually
    /// independent — in the real FCF they *are* separate devices), then
    /// the buffered results are replayed serially in participant order so
    /// wire events, the observer, and the floating-point delta
    /// aggregation see exactly the stream a serial loop would produce.
    fn run_round_inner(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        observer: &mut DeltaObserver<'_>,
    ) -> RoundTrace {
        let (seed, round) = (self.cfg.seed, self.round);
        let mut part_rng = round_rng(seed, round, RngStream::Participation);
        let participants = self.cfg.participation.sample(&self.trainable, &mut part_rng);
        ctx.begin(&participants);

        let dim = self.cfg.dim;
        let num_items = self.model.num_items();
        let n = participants.len().max(1) as f32;

        // parallel phase: one derived RNG stream per client, read-only
        // model snapshot, per-worker scratch buffers
        let (model, cfg, clients) = (&self.model, &self.cfg, &self.clients);
        let mut ids: Vec<u32> = participants.clone();
        let results: Vec<ClientResult> =
            self.scheduler.map_clients_with(&self.scratch, &mut ids, |scratch, _, &mut cid| {
                let mut rng = round_rng(seed, round, RngStream::Client(cid));
                Self::client_update(model, &clients[cid as usize], cfg, scratch, &mut rng)
            });

        // serial phase: replay in participant order; the round aggregate
        // is itself a row-sparse table over the union of touched items
        let mut delta_sum = RowTable::sparse_zeroed(num_items, dim + 1);
        let mut losses: Vec<f32> = Vec::with_capacity(results.len());
        for result in results {
            let cid = result.client;
            ctx.disperse(cid, "item-embeddings", self.transfer_payload());
            losses.push(result.loss);
            observer(cid, &result.delta, dim, num_items);
            // per-item accumulation commutes across items (disjoint
            // entries); within an item the order is participant order.
            // Materialize this client's union of touched items in one
            // backward-merge pass first — per-item `ensure` would shift
            // the sorted arena once per fresh item (O(U²) per round at
            // full participation)
            if let Some(ids) = result.delta.ids() {
                delta_sum.ensure_many(ids);
            }
            for (item, row) in result.delta.iter() {
                let r = delta_sum.ensure(item);
                for (d, &v) in delta_sum.row_mut(r).iter_mut().zip(row) {
                    *d += v;
                }
            }
            ctx.upload(cid, "item-gradients", self.transfer_payload());
            self.model.user_emb.row_mut(cid as usize).copy_from_slice(&result.user_row);
        }

        // FedAvg over the participant set
        for (item, drow) in delta_sum.iter() {
            let row = self.model.item_row_mut(item);
            for (p, d) in row.iter_mut().zip(drow) {
                *p += d / n;
            }
        }

        let trace = RoundTrace::new(self.round, &losses, 0.0, ctx.bytes());
        self.round += 1;
        trace
    }
}

impl FederatedProtocol for Fcf {
    fn name(&self) -> &'static str {
        "FCF"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.rounds
    }

    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        self.run_round_inner(ctx, &mut |_, _, _, _| {})
    }

    fn recommender(&self) -> &dyn Recommender {
        &self.model
    }

    fn threads(&self) -> usize {
        self.scheduler.threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;
    use ptf_models::evaluate_model;

    fn split() -> TrainTestSplit {
        let data = SyntheticConfig::new("f", 30, 60, 12.0).generate(&mut ptf_data::test_rng(4));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(5))
    }

    fn quick_cfg() -> FcfConfig {
        FcfConfig { rounds: 5, local_epochs: 2, dim: 8, ..FcfConfig::default() }
    }

    #[test]
    fn federated_training_improves_ranking() {
        let s = split();
        let mut fcf = Engine::new(Fcf::new(&s.train, quick_cfg()));
        let before = evaluate_model(fcf.protocol().recommender(), &s.train, &s.test, 10);
        let trace = fcf.run();
        assert_eq!(trace.num_rounds(), 5);
        assert!(trace.client_loss_improved(), "{:?}", trace.rounds);
        let after = fcf.evaluate(&s.train, &s.test, 10);
        assert!(
            after.metrics.recall >= before.metrics.recall,
            "FCF made ranking worse: {:?} → {:?}",
            before.metrics,
            after.metrics
        );
    }

    #[test]
    fn communication_is_model_sized() {
        let s = split();
        let mut fcf = Engine::new(Fcf::new(&s.train, quick_cfg()));
        fcf.run_round();
        let expected_one_way = (s.train.num_items() * (8 + 1) * 4) as f64;
        let avg = fcf.ledger().avg_client_bytes_per_round();
        assert!(
            (avg - 2.0 * expected_one_way).abs() < 1.0,
            "per-client traffic {avg} should be 2×{expected_one_way}"
        );
    }

    #[test]
    fn private_user_vectors_change_only_for_participants() {
        let s = split();
        let mut cfg = quick_cfg();
        cfg.participation = Participation { fraction: 0.3, min_clients: 1 };
        let mut fcf = Engine::new(Fcf::new(&s.train, cfg));
        let before = fcf.protocol().model.user_emb.clone();
        fcf.run_round();
        let mut changed = 0;
        for u in 0..s.train.num_users() {
            if fcf.protocol().model.user_emb.row(u) != before.row(u) {
                changed += 1;
            }
        }
        let expected = (s.train.num_users() as f64 * 0.3).round() as usize;
        assert_eq!(changed, expected, "non-participants' private state moved");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = split();
        let run = || {
            let mut f = Engine::new(Fcf::new(&s.train, quick_cfg()));
            f.run();
            f.evaluate(&s.train, &s.test, 10).metrics.ndcg
        };
        assert_eq!(run(), run());
    }
}
