//! FCF — Federated Collaborative Filtering (Ammad-ud-din et al., 2019).
//!
//! The canonical parameter-transmission FedRec: the server owns global
//! item embeddings; every round each client downloads them, runs local
//! SGD on its private interactions (updating its *private* user vector in
//! place and a local copy of the item rows it touches), and uploads the
//! item-matrix delta. The server averages deltas.
//!
//! Communication per client per round is two full item-matrix transfers —
//! the MB-scale cost Table IV contrasts with PTF-FedRec's KB-scale
//! triples. (Uploading the *full* delta matrix rather than touched rows is
//! deliberate and faithful: a sparse upload would reveal exactly which
//! items the client interacted with.)

use ptf_comm::Payload;
use ptf_data::negative::sample_negatives;
use ptf_data::Dataset;
use ptf_federated::{
    partition_clients, ClientData, FederatedProtocol, Participation, RoundCtx, RoundTrace,
};
use ptf_models::mf::{mf_sgd_step, MfModel};
use ptf_models::Recommender;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Observer over one client's item-delta rows: `(client, rows, dim, V)`.
type DeltaObserver<'a> = dyn FnMut(u32, &HashMap<u32, (Vec<f32>, f32)>, usize, usize) + 'a;

/// FCF configuration (paper-aligned defaults).
#[derive(Clone, Debug)]
pub struct FcfConfig {
    pub rounds: u32,
    pub local_epochs: u32,
    /// Local SGD learning rate.
    pub lr: f32,
    pub neg_ratio: usize,
    pub dim: usize,
    pub reg: f32,
    pub participation: Participation,
    pub seed: u64,
}

impl Default for FcfConfig {
    fn default() -> Self {
        Self {
            rounds: 20,
            local_epochs: 5,
            lr: 0.05,
            neg_ratio: 4,
            dim: 32,
            reg: 1e-4,
            participation: Participation::full(),
            seed: 31,
        }
    }
}

impl FcfConfig {
    pub fn small() -> Self {
        Self { rounds: 10, local_epochs: 3, dim: 16, ..Self::default() }
    }
}

/// A running FCF federation.
pub struct Fcf {
    cfg: FcfConfig,
    /// `user_emb` rows are the clients' *private* vectors (held here only
    /// because this is a single-process simulation — they never enter the
    /// wire accounting); `item_emb`/`item_bias` are the global shared
    /// state.
    model: MfModel,
    clients: Vec<ClientData>,
    trainable: Vec<u32>,
    rng: StdRng,
    round: u32,
}

impl Fcf {
    pub fn new(train: &Dataset, cfg: FcfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let model = MfModel::new(train.num_users(), train.num_items(), cfg.dim, cfg.lr, &mut rng);
        let clients = partition_clients(train);
        let trainable = clients.iter().filter(|c| c.is_trainable()).map(|c| c.id).collect();
        Self { cfg, model, clients, trainable, rng, round: 0 }
    }

    /// The wire size of one direction of the exchange (item matrix+bias).
    fn transfer_payload(&self) -> Payload {
        Payload::DenseMatrix { rows: self.model.num_items(), cols: self.cfg.dim + 1 }
    }

    /// One client's local contribution: trains its private user vector and
    /// returns `(item-row deltas, mean loss)`.
    fn client_update(
        model: &mut MfModel,
        client: &ClientData,
        cfg: &FcfConfig,
        rng: &mut StdRng,
    ) -> (HashMap<u32, (Vec<f32>, f32)>, f32) {
        // local working copies of the item rows this client will touch
        let mut local_rows: HashMap<u32, (Vec<f32>, f32)> = HashMap::new();
        let mut loss_sum = 0.0f32;
        let mut steps = 0usize;
        for _ in 0..cfg.local_epochs {
            let negatives = sample_negatives(
                &client.positives,
                model.num_items(),
                client.positives.len() * cfg.neg_ratio,
                rng,
            );
            let mut samples: Vec<(u32, f32)> = client
                .positives
                .iter()
                .map(|&i| (i, 1.0f32))
                .chain(negatives.into_iter().map(|i| (i, 0.0f32)))
                .collect();
            for i in (1..samples.len()).rev() {
                let j = rng.gen_range(0..=i);
                samples.swap(i, j);
            }
            for (item, label) in samples {
                let (row, bias) = local_rows.entry(item).or_insert_with(|| {
                    (model.item_emb.row(item as usize).to_vec(), model.item_bias[item as usize])
                });
                let user_row = model.user_emb.row_mut(client.id as usize);
                loss_sum += mf_sgd_step(user_row, row, bias, label, cfg.lr, cfg.reg);
                steps += 1;
            }
        }
        let mean_loss = if steps == 0 { 0.0 } else { loss_sum / steps as f32 };
        (local_rows, mean_loss)
    }
}

impl Fcf {
    /// Like [`FederatedProtocol::run_round`], but hands every client's
    /// full item-matrix delta (V×(dim+1), bias in the last column — the
    /// exact message FCF puts on the wire) to `on_delta` before
    /// aggregation. FedMF uses this to run its encrypt → aggregate →
    /// decrypt cycle over the *real* gradients.
    pub fn run_round_observed(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        mut on_delta: impl FnMut(u32, &ptf_tensor::Matrix),
    ) -> RoundTrace {
        self.run_round_inner(ctx, &mut |cid, rows, dim, num_items| {
            let mut dense = ptf_tensor::Matrix::zeros(num_items, dim + 1);
            for (&item, (drow, dbias)) in rows {
                let out = dense.row_mut(item as usize);
                out[..dim].copy_from_slice(drow);
                out[dim] = *dbias;
            }
            on_delta(cid, &dense);
        })
    }

    /// Shared round body; `observer` sees `(client, delta rows, dim, V)`.
    fn run_round_inner(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        observer: &mut DeltaObserver<'_>,
    ) -> RoundTrace {
        let participants = self.cfg.participation.sample(&self.trainable, &mut self.rng);
        ctx.begin(&participants);

        let dim = self.cfg.dim;
        let num_items = self.model.num_items();
        let n = participants.len().max(1) as f32;
        let mut delta_sum: HashMap<u32, (Vec<f32>, f32)> = HashMap::new();
        let mut losses: Vec<f32> = Vec::with_capacity(participants.len());
        for &cid in &participants {
            ctx.disperse(cid, "item-embeddings", self.transfer_payload());
            let client = self.clients[cid as usize].clone();
            let (rows, loss) =
                Self::client_update(&mut self.model, &client, &self.cfg, &mut self.rng);
            losses.push(loss);
            // per-client delta rows (the gradient message of this client)
            let mut client_delta: HashMap<u32, (Vec<f32>, f32)> = HashMap::new();
            for (item, (row, bias)) in rows {
                let base_row = self.model.item_emb.row(item as usize);
                let base_bias = self.model.item_bias[item as usize];
                let drow: Vec<f32> = row.iter().zip(base_row).map(|(new, old)| new - old).collect();
                client_delta.insert(item, (drow, bias - base_bias));
            }
            observer(cid, &client_delta, dim, num_items);
            for (item, (drow, dbias)) in client_delta {
                let entry = delta_sum.entry(item).or_insert_with(|| (vec![0.0; dim], 0.0));
                for (d, new) in entry.0.iter_mut().zip(&drow) {
                    *d += new;
                }
                entry.1 += dbias;
            }
            ctx.upload(cid, "item-gradients", self.transfer_payload());
        }

        // FedAvg over the participant set
        for (item, (drow, dbias)) in delta_sum {
            let row = self.model.item_emb.row_mut(item as usize);
            for (p, d) in row.iter_mut().zip(&drow) {
                *p += d / n;
            }
            self.model.item_bias[item as usize] += dbias / n;
        }

        let trace = RoundTrace::new(self.round, &losses, 0.0, ctx.bytes());
        self.round += 1;
        trace
    }
}

impl FederatedProtocol for Fcf {
    fn name(&self) -> &'static str {
        "FCF"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.rounds
    }

    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        self.run_round_inner(ctx, &mut |_, _, _, _| {})
    }

    fn recommender(&self) -> &dyn Recommender {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;
    use ptf_models::evaluate_model;

    fn split() -> TrainTestSplit {
        let data = SyntheticConfig::new("f", 30, 60, 12.0).generate(&mut ptf_data::test_rng(4));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(5))
    }

    fn quick_cfg() -> FcfConfig {
        FcfConfig { rounds: 5, local_epochs: 2, dim: 8, ..FcfConfig::default() }
    }

    #[test]
    fn federated_training_improves_ranking() {
        let s = split();
        let mut fcf = Engine::new(Fcf::new(&s.train, quick_cfg()));
        let before = evaluate_model(fcf.protocol().recommender(), &s.train, &s.test, 10);
        let trace = fcf.run();
        assert_eq!(trace.num_rounds(), 5);
        assert!(trace.client_loss_improved(), "{:?}", trace.rounds);
        let after = fcf.evaluate(&s.train, &s.test, 10);
        assert!(
            after.metrics.recall >= before.metrics.recall,
            "FCF made ranking worse: {:?} → {:?}",
            before.metrics,
            after.metrics
        );
    }

    #[test]
    fn communication_is_model_sized() {
        let s = split();
        let mut fcf = Engine::new(Fcf::new(&s.train, quick_cfg()));
        fcf.run_round();
        let expected_one_way = (s.train.num_items() * (8 + 1) * 4) as f64;
        let avg = fcf.ledger().avg_client_bytes_per_round();
        assert!(
            (avg - 2.0 * expected_one_way).abs() < 1.0,
            "per-client traffic {avg} should be 2×{expected_one_way}"
        );
    }

    #[test]
    fn private_user_vectors_change_only_for_participants() {
        let s = split();
        let mut cfg = quick_cfg();
        cfg.participation = Participation { fraction: 0.3, min_clients: 1 };
        let mut fcf = Engine::new(Fcf::new(&s.train, cfg));
        let before = fcf.protocol().model.user_emb.clone();
        fcf.run_round();
        let mut changed = 0;
        for u in 0..s.train.num_users() {
            if fcf.protocol().model.user_emb.row(u) != before.row(u) {
                changed += 1;
            }
        }
        let expected = (s.train.num_users() as f64 * 0.3).round() as usize;
        assert_eq!(changed, expected, "non-participants' private state moved");
    }

    #[test]
    fn deterministic_under_seed() {
        let s = split();
        let run = || {
            let mut f = Engine::new(Fcf::new(&s.train, quick_cfg()));
            f.run();
            f.evaluate(&s.train, &s.test, 10).metrics.ndcg
        };
        assert_eq!(run(), run());
    }
}
