//! # ptf-baselines
//!
//! The comparison points of the paper's evaluation:
//!
//! * [`centralized`] — NeuMF/NGCF/LightGCN trained with full data access
//!   (Table III upper bounds);
//! * [`fcf`] — Federated Collaborative Filtering, the canonical
//!   parameter-transmission FedRec;
//! * [`fedmf`] — FCF dynamics with homomorphically encrypted gradient
//!   uploads ([`he`] provides the simulated additively homomorphic
//!   cipher — see DESIGN.md §4 for the substitution note);
//! * [`metamf`] — a hypernetwork server generating personalized item
//!   embeddings.
//!
//! All federated baselines implement [`traits::FederatedBaseline`], so the
//! bench harness can run them uniformly against PTF-FedRec.

pub mod centralized;
pub mod fcf;
pub mod fedmf;
pub mod he;
pub mod metamf;
pub mod traits;

pub use centralized::{train_centralized, CentralizedConfig};
pub use fcf::{Fcf, FcfConfig};
pub use fedmf::{FedMf, FedMfConfig};
pub use he::HeContext;
pub use metamf::{MetaMf, MetaMfConfig};
pub use traits::FederatedBaseline;
