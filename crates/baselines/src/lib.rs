//! # ptf-baselines
//!
//! The comparison points of the paper's evaluation:
//!
//! * [`centralized`] — NeuMF/NGCF/LightGCN trained with full data access
//!   (Table III upper bounds), driveable round-by-round as a protocol;
//! * [`fcf`] — Federated Collaborative Filtering, the canonical
//!   parameter-transmission FedRec;
//! * [`fedmf`] — FCF dynamics with homomorphically encrypted gradient
//!   uploads ([`he`] provides the simulated additively homomorphic
//!   cipher — see DESIGN.md §4 for the substitution note);
//! * [`metamf`] — a hypernetwork server generating personalized item
//!   embeddings.
//!
//! Every baseline implements [`ptf_federated::FederatedProtocol`] — the
//! same trait as `ptf_core::PtfFedRec` — so the CLI, examples, and bench
//! harness run all of them through one `ptf_federated::Engine` code path.

pub mod centralized;
pub mod fcf;
pub mod fedmf;
pub mod he;
pub mod metamf;

pub use centralized::{train_centralized, Centralized, CentralizedConfig};
pub use fcf::{Fcf, FcfConfig};
pub use fedmf::{FedMf, FedMfConfig};
pub use he::HeContext;
pub use metamf::{MetaMf, MetaMfConfig};
// Re-exported so baseline users need only this crate in scope.
pub use ptf_federated::{Engine, FederatedProtocol};
