//! Legacy location of the common protocol interface.
//!
//! The `FederatedBaseline` trait that used to live here has been
//! superseded by [`ptf_federated::FederatedProtocol`], which PTF-FedRec
//! itself also implements: `run_round` now takes a
//! [`ptf_federated::RoundCtx`] and wire accounting/observers live on the
//! [`ptf_federated::Engine`] instead of a per-protocol ledger. This alias
//! remains for one release so downstream `use` statements keep compiling.

/// Deprecated alias of [`ptf_federated::FederatedProtocol`].
#[deprecated(
    since = "0.2.0",
    note = "use `ptf_federated::FederatedProtocol` (re-exported from this \
            crate) and drive protocols through `ptf_federated::Engine`"
)]
pub use ptf_federated::FederatedProtocol as FederatedBaseline;
