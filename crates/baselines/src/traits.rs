//! Common interface over the parameter-transmission federated baselines.

use ptf_comm::CommLedger;
use ptf_federated::{RoundTrace, RunTrace};
use ptf_models::Recommender;

/// A runnable federated baseline (FCF, FedMF, MetaMF).
pub trait FederatedBaseline {
    /// Name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Configured number of global rounds.
    fn configured_rounds(&self) -> u32;

    /// Executes one global round.
    fn run_round(&mut self) -> RoundTrace;

    /// The communication record of the run so far.
    fn ledger(&self) -> &CommLedger;

    /// A scoring view of the trained global model, for evaluation.
    fn recommender(&self) -> &dyn Recommender;

    /// Runs all configured rounds.
    fn run(&mut self) -> RunTrace {
        let mut trace = RunTrace::default();
        for _ in 0..self.configured_rounds() {
            trace.push(self.run_round());
        }
        trace
    }
}
