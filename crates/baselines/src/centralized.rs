//! Centralized training — the paper's upper-bound baselines.
//!
//! The service provider sees all raw interactions and trains NeuMF / NGCF /
//! LightGCN directly (Table III, "Centralized Recs" block).

use ptf_data::negative::sample_negatives;
use ptf_data::Dataset;
use ptf_models::{build_model, ModelHyper, ModelKind, Recommender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Centralized training configuration.
#[derive(Clone, Debug)]
pub struct CentralizedConfig {
    /// Full passes over the training data. The paper's federated budget is
    /// 20 rounds × 5 local epochs; 30 central epochs is a comparable
    /// optimization budget at far lower orchestration cost.
    pub epochs: u32,
    pub batch: usize,
    /// Negative sampling ratio (paper: 1:4), resampled every epoch.
    pub neg_ratio: usize,
    pub seed: u64,
}

impl Default for CentralizedConfig {
    fn default() -> Self {
        Self { epochs: 30, batch: 1024, neg_ratio: 4, seed: 23 }
    }
}

impl CentralizedConfig {
    pub fn small() -> Self {
        Self { epochs: 12, batch: 256, ..Self::default() }
    }
}

/// Trains `kind` centrally on `train`; returns the fitted model and the
/// per-epoch mean losses.
pub fn train_centralized(
    kind: ModelKind,
    train: &Dataset,
    hyper: &ModelHyper,
    cfg: &CentralizedConfig,
) -> (Box<dyn Recommender>, Vec<f32>) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut model = build_model(kind, train.num_users(), train.num_items(), hyper, &mut rng);
    // graph models see the full interaction graph
    let edges: Vec<(u32, u32, f32)> = train.pairs().map(|(u, i)| (u, i, 1.0)).collect();
    model.set_graph(&edges);

    let mut losses = Vec::with_capacity(cfg.epochs as usize);
    let mut samples: Vec<(u32, u32, f32)> = Vec::new();
    for _ in 0..cfg.epochs {
        samples.clear();
        for u in train.active_users() {
            let positives = train.user_items(u);
            samples.extend(positives.iter().map(|&i| (u, i, 1.0f32)));
            let negs = sample_negatives(
                positives,
                train.num_items(),
                positives.len() * cfg.neg_ratio,
                &mut rng,
            );
            samples.extend(negs.into_iter().map(|i| (u, i, 0.0f32)));
        }
        shuffle(&mut samples, &mut rng);
        losses.push(ptf_models::train_on_samples(&mut *model, &samples, cfg.batch));
    }
    (model, losses)
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_models::evaluate_model;

    fn split() -> TrainTestSplit {
        let data = SyntheticConfig::new("c", 30, 60, 12.0).generate(&mut ptf_data::test_rng(2));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(3))
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 8, batch: 128, neg_ratio: 4, seed: 5 };
        let (_, losses) = train_centralized(ModelKind::NeuMf, &s.train, &ModelHyper::small(), &cfg);
        assert_eq!(losses.len(), 8);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "centralized loss did not improve: {losses:?}"
        );
    }

    #[test]
    fn trained_model_beats_untrained() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 10, batch: 128, neg_ratio: 4, seed: 7 };
        let hyper = ModelHyper::small();
        let (trained, _) = train_centralized(ModelKind::LightGcn, &s.train, &hyper, &cfg);
        let untrained = build_model(
            ModelKind::LightGcn,
            s.train.num_users(),
            s.train.num_items(),
            &hyper,
            &mut ptf_data::test_rng(99),
        );
        let k = 10;
        let got = evaluate_model(&*trained, &s.train, &s.test, k);
        let base = evaluate_model(&*untrained, &s.train, &s.test, k);
        assert!(
            got.metrics.recall > base.metrics.recall,
            "training did not help: {:?} vs {:?}",
            got.metrics,
            base.metrics
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 2, batch: 128, neg_ratio: 4, seed: 11 };
        let hyper = ModelHyper::small();
        let (a, la) = train_centralized(ModelKind::NeuMf, &s.train, &hyper, &cfg);
        let (b, lb) = train_centralized(ModelKind::NeuMf, &s.train, &hyper, &cfg);
        assert_eq!(la, lb);
        assert_eq!(a.score(0, &[0, 1, 2]), b.score(0, &[0, 1, 2]));
    }
}
