//! Centralized training — the paper's upper-bound baselines.
//!
//! The service provider sees all raw interactions and trains NeuMF / NGCF /
//! LightGCN directly (Table III, "Centralized Recs" block). One *round*
//! of the [`Centralized`] protocol is one full epoch over the training
//! data — no clients, no traffic — so the upper bound rides the same
//! [`FederatedProtocol`] engine path as every federated method.

use ptf_data::negative::sample_negatives_into;
use ptf_data::Dataset;
use ptf_federated::{
    round_rng, FederatedProtocol, RngStream, RoundCtx, RoundTrace, Scheduler, ScratchPool,
};
use ptf_models::{build_model, ModelHyper, ModelKind, Recommender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Centralized training configuration.
#[derive(Clone, Debug)]
pub struct CentralizedConfig {
    /// Full passes over the training data. The paper's federated budget is
    /// 20 rounds × 5 local epochs; 30 central epochs is a comparable
    /// optimization budget at far lower orchestration cost.
    pub epochs: u32,
    pub batch: usize,
    /// Negative sampling ratio (paper: 1:4), resampled every epoch.
    pub neg_ratio: usize,
    pub seed: u64,
    /// Worker threads for per-user sample assembly (`0` = every hardware
    /// thread); the SGD pass itself is inherently serial. Bit-identical
    /// results at any value.
    pub threads: usize,
}

impl Default for CentralizedConfig {
    fn default() -> Self {
        Self { epochs: 30, batch: 1024, neg_ratio: 4, seed: 23, threads: 0 }
    }
}

impl CentralizedConfig {
    pub fn small() -> Self {
        Self { epochs: 12, batch: 256, ..Self::default() }
    }
}

/// Centralized training as a (degenerate) federated protocol: one round =
/// one epoch, zero participants, zero bytes on the wire, and the epoch's
/// mean loss reported as the server loss.
pub struct Centralized {
    cfg: CentralizedConfig,
    model: Box<dyn Recommender>,
    train: Dataset,
    scheduler: Scheduler,
    scratch: ScratchPool,
    round: u32,
    losses: Vec<f32>,
}

impl Centralized {
    pub fn new(
        kind: ModelKind,
        train: &Dataset,
        hyper: &ModelHyper,
        cfg: CentralizedConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut model = build_model(kind, train.num_users(), train.num_items(), hyper, &mut rng);
        // graph models see the full interaction graph
        let edges: Vec<(u32, u32, f32)> = train.pairs().map(|(u, i)| (u, i, 1.0)).collect();
        model.set_graph(&edges);
        let scheduler = Scheduler::new(cfg.threads);
        Self {
            cfg,
            model,
            train: train.clone(),
            scheduler,
            scratch: ScratchPool::new(),
            round: 0,
            losses: Vec::new(),
        }
    }

    /// Per-epoch mean losses of the rounds run so far.
    pub fn epoch_losses(&self) -> &[f32] {
        &self.losses
    }

    /// Consumes the protocol, returning the trained model.
    pub fn into_model(self) -> Box<dyn Recommender> {
        self.model
    }
}

impl FederatedProtocol for Centralized {
    fn name(&self) -> &'static str {
        "Centralized"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.epochs
    }

    /// One epoch as a two-phase map/reduce: per-user sample assembly
    /// (negative sampling on a derived per-user RNG stream) runs in
    /// parallel; the epoch shuffle and the SGD pass — serial by nature —
    /// replay in user order on the caller's thread.
    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        ctx.begin(&[]);
        let (seed, round) = (self.cfg.seed, self.round);
        let users: Vec<u32> = self.train.active_users().collect();
        let (train, neg_ratio) = (&self.train, self.cfg.neg_ratio);
        let per_user: Vec<Vec<(u32, u32, f32)>> =
            self.scheduler.map_indices_with(&self.scratch, users.len(), |scratch, idx| {
                let u = users[idx];
                let positives = train.user_items(u);
                let mut rng = round_rng(seed, round, RngStream::Client(u));
                sample_negatives_into(
                    positives,
                    train.num_items(),
                    positives.len() * neg_ratio,
                    &mut rng,
                    &mut scratch.negatives,
                    &mut scratch.seen,
                );
                positives
                    .iter()
                    .map(|&i| (u, i, 1.0f32))
                    .chain(scratch.negatives.iter().map(|&i| (u, i, 0.0f32)))
                    .collect()
            });
        let mut samples: Vec<(u32, u32, f32)> = per_user.into_iter().flatten().collect();
        let mut shuffle_rng = round_rng(seed, round, RngStream::Shuffle);
        shuffle(&mut samples, &mut shuffle_rng);
        let loss = ptf_models::train_on_samples(&mut *self.model, &samples, self.cfg.batch);
        self.losses.push(loss);
        let trace = RoundTrace::new(self.round, &[], loss, ctx.bytes());
        self.round += 1;
        trace
    }

    fn recommender(&self) -> &dyn Recommender {
        &*self.model
    }

    fn threads(&self) -> usize {
        self.scheduler.threads()
    }
}

/// Trains `kind` centrally on `train`; returns the fitted model and the
/// per-epoch mean losses. Convenience wrapper over [`Centralized`].
pub fn train_centralized(
    kind: ModelKind,
    train: &Dataset,
    hyper: &ModelHyper,
    cfg: &CentralizedConfig,
) -> (Box<dyn Recommender>, Vec<f32>) {
    let mut central = Centralized::new(kind, train, hyper, cfg.clone());
    for round in 0..cfg.epochs {
        let mut ctx = RoundCtx::detached(round);
        central.run_round(&mut ctx);
    }
    let losses = central.epoch_losses().to_vec();
    (central.into_model(), losses)
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;
    use ptf_models::evaluate_model;

    fn split() -> TrainTestSplit {
        let data = SyntheticConfig::new("c", 30, 60, 12.0).generate(&mut ptf_data::test_rng(2));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(3))
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 8, batch: 128, neg_ratio: 4, seed: 5, threads: 0 };
        let (_, losses) = train_centralized(ModelKind::NeuMf, &s.train, &ModelHyper::small(), &cfg);
        assert_eq!(losses.len(), 8);
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "centralized loss did not improve: {losses:?}"
        );
    }

    #[test]
    fn trained_model_beats_untrained() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 10, batch: 128, neg_ratio: 4, seed: 7, threads: 0 };
        let hyper = ModelHyper::small();
        let (trained, _) = train_centralized(ModelKind::LightGcn, &s.train, &hyper, &cfg);
        let untrained = build_model(
            ModelKind::LightGcn,
            s.train.num_users(),
            s.train.num_items(),
            &hyper,
            &mut ptf_data::test_rng(99),
        );
        let k = 10;
        let got = evaluate_model(&*trained, &s.train, &s.test, k);
        let base = evaluate_model(&*untrained, &s.train, &s.test, k);
        assert!(
            got.metrics.recall > base.metrics.recall,
            "training did not help: {:?} vs {:?}",
            got.metrics,
            base.metrics
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 2, batch: 128, neg_ratio: 4, seed: 11, threads: 0 };
        let hyper = ModelHyper::small();
        let (a, la) = train_centralized(ModelKind::NeuMf, &s.train, &hyper, &cfg);
        let (b, lb) = train_centralized(ModelKind::NeuMf, &s.train, &hyper, &cfg);
        assert_eq!(la, lb);
        assert_eq!(a.score(0, &[0, 1, 2]), b.score(0, &[0, 1, 2]));
    }

    #[test]
    fn runs_through_the_engine_like_any_protocol() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 3, batch: 128, neg_ratio: 4, seed: 13, threads: 0 };
        let mut engine =
            Engine::new(Centralized::new(ModelKind::NeuMf, &s.train, &ModelHyper::small(), cfg));
        let trace = engine.run();
        assert_eq!(trace.num_rounds(), 3);
        for r in &trace.rounds {
            assert_eq!(r.participants, 0, "centralized training has no federated participants");
            assert_eq!(r.bytes, 0, "centralized training moves nothing on the wire");
            assert!(r.server_loss.is_finite());
        }
        assert_eq!(engine.ledger().summary().total_bytes, 0);
        assert!(engine.evaluate(&s.train, &s.test, 10).users_evaluated > 0);
    }

    #[test]
    fn engine_run_matches_train_centralized_wrapper() {
        let s = split();
        let cfg = CentralizedConfig { epochs: 2, batch: 128, neg_ratio: 4, seed: 17, threads: 0 };
        let hyper = ModelHyper::small();
        let (model, losses) = train_centralized(ModelKind::NeuMf, &s.train, &hyper, &cfg);
        let mut engine =
            Engine::new(Centralized::new(ModelKind::NeuMf, &s.train, &hyper, cfg.clone()));
        let trace = engine.run();
        let engine_losses: Vec<f32> = trace.rounds.iter().map(|r| r.server_loss).collect();
        assert_eq!(losses, engine_losses);
        assert_eq!(
            model.score(0, &[0, 1, 2]),
            engine.protocol().recommender().score(0, &[0, 1, 2])
        );
    }
}
