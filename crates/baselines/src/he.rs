//! Additively homomorphic encryption, simulated (see DESIGN.md §4).
//!
//! FedMF wraps item-embedding gradients in Paillier ciphertexts so the
//! server can aggregate without reading them. A real Paillier needs
//! arbitrary-precision arithmetic; what the paper's experiments actually
//! exercise is (a) an *exact* additively homomorphic aggregate (up to
//! fixed-point quantization — Paillier encodes reals the same way) and
//! (b) ciphertext expansion on the wire. This module provides both with a
//! shared-key masking scheme:
//!
//! `Enc_k(x, tag) = fp(x) + PRF_k(tag)  (mod 2¹²⁸)`
//!
//! Ciphertext sums decrypt with the summed masks of the contributing
//! tags, which all key holders (the clients) can recompute; the server
//! never holds `k`. The wire size is modelled explicitly as
//! [`HeContext::ciphertext_bytes`] per value, calibrated to 1024-bit
//! Paillier with 2-value packing (64 B/value ⇒ the ≈16× FCF expansion of
//! Table IV). **No security is claimed** — this is a behavioural stand-in.

/// Identifies one encryption so its mask can be reproduced by key holders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MaskTag {
    pub round: u32,
    pub client: u32,
    /// Flat index of the value inside the client's gradient matrix.
    pub index: u32,
}

/// A simulated additively homomorphic cipher with a shared client key.
#[derive(Clone, Copy, Debug)]
pub struct HeContext {
    key: u64,
    /// Fixed-point scale (Paillier-style real encoding).
    pub scale: f64,
    /// Modelled wire bytes per ciphertext value.
    pub ciphertext_bytes: usize,
}

impl HeContext {
    /// 2³² fixed-point steps ≈ 9 decimal digits of gradient precision.
    pub fn new(key: u64) -> Self {
        Self { key, scale: 4_294_967_296.0, ciphertext_bytes: 64 }
    }

    fn fixed_point(&self, x: f32) -> i128 {
        (x as f64 * self.scale).round() as i128
    }

    /// The PRF mask of one tag (SplitMix64 over the tag words).
    fn mask(&self, tag: MaskTag) -> i128 {
        let mut z = self
            .key
            .wrapping_add((tag.round as u64) << 40)
            .wrapping_add((tag.client as u64) << 8)
            .wrapping_add(tag.index as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // spread masks over both signs so sums stay centered
        (z as i64) as i128
    }

    /// Encrypts one value under `tag`.
    pub fn encrypt(&self, x: f32, tag: MaskTag) -> i128 {
        self.fixed_point(x).wrapping_add(self.mask(tag))
    }

    /// Homomorphic addition is plain integer addition of ciphertexts.
    pub fn aggregate(ciphertexts: impl IntoIterator<Item = i128>) -> i128 {
        ciphertexts.into_iter().fold(0i128, i128::wrapping_add)
    }

    /// Decrypts an aggregate given every contributing tag.
    pub fn decrypt_sum(&self, ct_sum: i128, tags: impl IntoIterator<Item = MaskTag>) -> f32 {
        let mask_sum = tags.into_iter().fold(0i128, |acc, t| acc.wrapping_add(self.mask(t)));
        (ct_sum.wrapping_sub(mask_sum) as f64 / self.scale) as f32
    }

    /// Encrypts a gradient matrix (flat slice) for `(round, client)`.
    pub fn encrypt_slice(&self, values: &[f32], round: u32, client: u32) -> Vec<i128> {
        values
            .iter()
            .enumerate()
            .map(|(i, &x)| self.encrypt(x, MaskTag { round, client, index: i as u32 }))
            .collect()
    }

    /// Decrypts per-index aggregates contributed by `clients` in `round`.
    pub fn decrypt_aggregate(&self, sums: &[i128], round: u32, clients: &[u32]) -> Vec<f32> {
        sums.iter()
            .enumerate()
            .map(|(i, &ct)| {
                self.decrypt_sum(
                    ct,
                    clients.iter().map(|&c| MaskTag { round, client: c, index: i as u32 }),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_value() {
        let he = HeContext::new(42);
        let tag = MaskTag { round: 3, client: 7, index: 11 };
        let ct = he.encrypt(0.123456, tag);
        let back = he.decrypt_sum(ct, [tag]);
        assert!((back - 0.123456).abs() < 1e-6, "{back}");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let he = HeContext::new(42);
        let tag = MaskTag { round: 0, client: 0, index: 0 };
        let ct = he.encrypt(0.5, tag);
        // without the mask the fixed-point value is ~2^31; the ciphertext
        // must be dominated by the mask
        assert!(
            (ct - he.fixed_point(0.5)).unsigned_abs() > u64::MAX as u128 / 1_000_000,
            "mask too weak: {ct}"
        );
    }

    #[test]
    fn homomorphic_sum_matches_plain_sum() {
        let he = HeContext::new(9);
        let values = [0.25f32, -0.75, 0.125, 2.5];
        let tags: Vec<MaskTag> =
            (0..4).map(|c| MaskTag { round: 1, client: c, index: 0 }).collect();
        let cts: Vec<i128> = values.iter().zip(&tags).map(|(&v, &t)| he.encrypt(v, t)).collect();
        let agg = HeContext::aggregate(cts);
        let sum = he.decrypt_sum(agg, tags);
        let expected: f32 = values.iter().sum();
        assert!((sum - expected).abs() < 1e-5, "{sum} vs {expected}");
    }

    #[test]
    fn slice_roundtrip_across_clients() {
        let he = HeContext::new(77);
        let a = [0.1f32, -0.2, 0.3];
        let b = [1.0f32, 0.5, -0.25];
        let ct_a = he.encrypt_slice(&a, 5, 0);
        let ct_b = he.encrypt_slice(&b, 5, 1);
        let sums: Vec<i128> = ct_a.iter().zip(&ct_b).map(|(&x, &y)| x.wrapping_add(y)).collect();
        let dec = he.decrypt_aggregate(&sums, 5, &[0, 1]);
        for (d, (x, y)) in dec.iter().zip(a.iter().zip(&b)) {
            assert!((d - (x + y)).abs() < 1e-5);
        }
    }

    #[test]
    fn wrong_key_decrypts_garbage() {
        let he = HeContext::new(1);
        let eve = HeContext::new(2);
        let tag = MaskTag { round: 0, client: 0, index: 0 };
        let ct = he.encrypt(0.5, tag);
        let stolen = eve.decrypt_sum(ct, [tag]);
        assert!((stolen - 0.5).abs() > 1.0, "wrong key nearly decrypted: {stolen}");
    }

    #[test]
    fn ciphertext_expansion_matches_table4_ratio() {
        let he = HeContext::new(0);
        // 64 ciphertext bytes per 4 plaintext bytes = the 16× of Table IV
        assert_eq!(he.ciphertext_bytes / 4, 16);
    }
}
