//! MetaMF — meta matrix factorization (Lin et al., SIGIR 2020), as a
//! hypernetwork baseline.
//!
//! The server learns a *meta network* that generates personalized item
//! embeddings per user; clients keep a private user vector and train it
//! against the generated embeddings, returning gradients w.r.t. the
//! embeddings (never their raw data). Our generator follows the
//! hypernetwork shape of the original: per-user code `z_u`, a shared item
//! basis `B`, and a *residual* gating layer
//!
//! `E_u = B ⊙ (1 + tanh(z_u W + b))`   (gate broadcast over items)
//!
//! so the server-side trainables are `{z_u}, B, W, b`. The `1 +` keeps the
//! generator near the identity at initialization (small `z`, `W` make the
//! tanh vanish), so training starts from a plain-MF basis instead of
//! all-zero embeddings. Per §IV of the
//! paper, traffic is embedding-matrix-sized in both directions (slightly
//! above FCF once codes/gradients are counted), and accuracy lands in the
//! same band as the other MF-family baselines — which is exactly the role
//! MetaMF plays in Tables III/IV.

use ptf_comm::Payload;
use ptf_data::negative::sample_negatives_into;
use ptf_data::Dataset;
use ptf_federated::{
    partition_clients, round_rng, ClientData, FederatedProtocol, Participation, RngStream,
    RoundCtx, RoundScratch, RoundTrace, Scheduler, ScratchPool,
};
use ptf_models::mf::bce_loss;
use ptf_models::Recommender;
use ptf_tensor::{Matrix, RowTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// MetaMF configuration.
#[derive(Clone, Debug)]
pub struct MetaMfConfig {
    pub rounds: u32,
    pub local_epochs: u32,
    /// Client-side SGD rate (private user vectors).
    pub lr_client: f32,
    /// Server-side SGD rate (meta parameters).
    pub lr_server: f32,
    pub dim: usize,
    pub neg_ratio: usize,
    pub participation: Participation,
    pub seed: u64,
    /// Worker threads for the parallel client phase (`0` = every
    /// hardware thread); bit-identical results at any value.
    pub threads: usize,
}

impl Default for MetaMfConfig {
    fn default() -> Self {
        Self {
            rounds: 20,
            local_epochs: 5,
            lr_client: 0.05,
            lr_server: 0.2,
            dim: 32,
            neg_ratio: 4,
            participation: Participation::full(),
            seed: 41,
            threads: 0,
        }
    }
}

impl MetaMfConfig {
    pub fn small() -> Self {
        Self { rounds: 10, local_epochs: 3, dim: 16, ..Self::default() }
    }
}

/// A running MetaMF federation.
pub struct MetaMf {
    cfg: MetaMfConfig,
    /// Shared item basis B (V×d) — server meta parameter.
    basis: Matrix,
    /// Gating layer W (d×d), b (1×d) — server meta parameters.
    w_gate: Matrix,
    b_gate: Matrix,
    /// Per-user codes z_u (U×d) — server meta parameters.
    codes: Matrix,
    /// Private client user vectors (U×d) — *never transmitted*.
    user_emb: Matrix,
    clients: Vec<ClientData>,
    trainable: Vec<u32>,
    scheduler: Scheduler,
    scratch: ScratchPool,
    round: u32,
}

impl MetaMf {
    pub fn new(train: &Dataset, cfg: MetaMfConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.dim;
        let clients = partition_clients(train);
        let trainable = clients.iter().filter(|c| c.is_trainable()).map(|c| c.id).collect();
        let scheduler = Scheduler::new(cfg.threads);
        Self {
            basis: Matrix::randn(train.num_items(), d, 0.1, &mut rng),
            w_gate: Matrix::randn(d, d, 0.1, &mut rng),
            b_gate: Matrix::zeros(1, d),
            codes: Matrix::randn(train.num_users(), d, 0.1, &mut rng),
            user_emb: Matrix::randn(train.num_users(), d, 0.1, &mut rng),
            clients,
            trainable,
            scheduler,
            scratch: ScratchPool::new(),
            round: 0,
            cfg,
        }
    }

    /// The gate vector `1 + tanh(z_u W + b)` and its pre-activation.
    fn gate_of(&self, user: u32) -> (Vec<f32>, Vec<f32>) {
        let d = self.cfg.dim;
        let z = self.codes.row(user as usize);
        let mut pre = self.b_gate.as_slice().to_vec();
        for (k, &zk) in z.iter().enumerate() {
            let wrow = self.w_gate.row(k);
            for (p, &w) in pre.iter_mut().zip(wrow) {
                *p += zk * w;
            }
        }
        debug_assert_eq!(pre.len(), d);
        let gate: Vec<f32> = pre.iter().map(|&x| 1.0 + x.tanh()).collect();
        (gate, pre)
    }

    /// Generated personalized embedding of one item: `B_i ⊙ gate`.
    fn gen_item(&self, gate: &[f32], item: u32) -> Vec<f32> {
        self.basis.row(item as usize).iter().zip(gate).map(|(&b, &g)| b * g).collect()
    }

    /// One client's local phase against the read-only pre-round server
    /// state: trains a private copy of the user vector and *pre-reduces*
    /// its generated-embedding gradients `dE_u` (per-step vectors are
    /// folded into `d_gate` and per-item basis-gradient rows in step
    /// order, so the buffered result is O(touched items × d), not
    /// O(steps × d) — the whole participant fleet's results are resident
    /// at once between the phases). Runs on scheduler workers; the basis
    /// it reads is the pre-round snapshot, matching the serial semantics.
    fn client_phase(
        &self,
        cid: u32,
        scratch: &mut RoundScratch,
        rng: &mut StdRng,
    ) -> MetaClientResult {
        let d = self.cfg.dim;
        let num_items = self.basis.rows();
        let (gate, pre) = self.gate_of(cid);
        let positives = &self.clients[cid as usize].positives;
        let mut user_row = self.user_emb.row(cid as usize).to_vec();

        // per-client reduction targets: dL/d(gate) and the per-item rows
        // of dL/dB (gradient through E_u = B ⊙ gate) — staged in a
        // row-sparse table scoped to the client's pool, the same
        // client-item-state machinery the scoped PTF clients run on
        let mut d_gate = vec![0.0f32; d];
        let mut g_basis_rows = RowTable::sparse_zeroed(num_items, d);
        g_basis_rows.reserve_rows(positives.len() * (1 + self.cfg.neg_ratio));
        let mut client_loss = 0.0f32;
        let mut steps = 0usize;
        for _ in 0..self.cfg.local_epochs {
            sample_negatives_into(
                positives,
                num_items,
                positives.len() * self.cfg.neg_ratio,
                rng,
                &mut scratch.negatives,
                &mut scratch.seen,
            );
            scratch.pairs.clear();
            scratch.pairs.extend(positives.iter().map(|&i| (i, 1.0f32)));
            scratch.pairs.extend(scratch.negatives.iter().map(|&i| (i, 0.0f32)));
            let samples = &mut scratch.pairs;
            for i in (1..samples.len()).rev() {
                let j = rng.gen_range(0..=i);
                samples.swap(i, j);
            }
            for &(item, label) in samples.iter() {
                let e_i = self.gen_item(&gate, item);
                let logit: f32 = e_i.iter().zip(user_row.iter()).map(|(&a, &b)| a * b).sum();
                let err = sigmoid(logit) - label;
                client_loss += bce_loss(logit, label);
                steps += 1;
                // dE_i = err · p, folded straight into the reductions
                let brow = self.basis.row(item as usize);
                let r = g_basis_rows.ensure(item);
                let grow = g_basis_rows.row_mut(r);
                for k in 0..d {
                    let de = err * user_row[k];
                    d_gate[k] += de * brow[k];
                    grow[k] += de * gate[k];
                }
                // dp = err · E_i (applied locally, stays private)
                for (pk, &ek) in user_row.iter_mut().zip(&e_i) {
                    *pk -= self.cfg.lr_client * err * ek;
                }
            }
        }
        let loss = client_loss / steps.max(1) as f32;
        MetaClientResult { client: cid, user_row, d_gate, g_basis_rows, pre, loss }
    }
}

/// One client's buffered contribution from the parallel phase.
struct MetaClientResult {
    client: u32,
    /// Trained private user vector (written back serially).
    user_row: Vec<f32>,
    /// Pre-reduced dL/d(gate) over the client's steps (in step order).
    d_gate: Vec<f32>,
    /// Pre-reduced per-item rows of dL/dB (sorted by item id).
    g_basis_rows: RowTable,
    /// Gate pre-activation (reused by the server-side backprop so it
    /// matches what the client trained against).
    pre: Vec<f32>,
    loss: f32,
}

impl FederatedProtocol for MetaMf {
    fn name(&self) -> &'static str {
        "MetaMF"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.rounds
    }

    /// One round as a two-phase map/reduce: the client-side SGD (the
    /// dominant cost) and the per-client gradient pre-reduction run in
    /// parallel on per-client derived RNG streams against the read-only
    /// pre-round meta parameters; wire events and the cross-client
    /// accumulation into the meta gradients replay serially in
    /// participant order, so the result is identical at any thread count.
    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        let (seed, round) = (self.cfg.seed, self.round);
        let mut part_rng = round_rng(seed, round, RngStream::Participation);
        let participants = self.cfg.participation.sample(&self.trainable, &mut part_rng);
        ctx.begin(&participants);
        let n = participants.len().max(1) as f32;
        let d = self.cfg.dim;
        let num_items = self.basis.rows();

        // parallel client phase (per-worker scratch buffers)
        let this = &*self;
        let mut ids: Vec<u32> = participants.clone();
        let results: Vec<MetaClientResult> =
            this.scheduler.map_clients_with(&this.scratch, &mut ids, |scratch, _, &mut cid| {
                let mut rng = round_rng(seed, round, RngStream::Client(cid));
                this.client_phase(cid, scratch, &mut rng)
            });

        // serial phase: wire events + server-side backprop through the
        // generator (E_u = B ⊙ g, g = 1 + tanh(pre), pre = z W + b), in
        // participant order
        let mut g_basis = Matrix::zeros(num_items, d);
        let mut g_w = Matrix::zeros(d, d);
        let mut g_b = Matrix::zeros(1, d);
        let mut g_codes: Vec<(u32, Vec<f32>)> = Vec::with_capacity(results.len());
        let mut losses: Vec<f32> = Vec::with_capacity(results.len());

        for result in results {
            let cid = result.client;
            // server → client: generated embeddings E_u (V×d) + gate codes
            ctx.disperse(
                cid,
                "generated-embeddings",
                Payload::DenseMatrix { rows: num_items, cols: d },
            );
            ctx.disperse(cid, "meta-codes", Payload::Vector { len: d });
            losses.push(result.loss);
            // client → server: dE_u (full matrix on the wire, same privacy
            // rationale as FCF) + code gradient
            ctx.upload(
                cid,
                "embedding-gradients",
                Payload::DenseMatrix { rows: num_items, cols: d },
            );
            ctx.upload(cid, "code-gradients", Payload::Vector { len: d });
            self.user_emb.row_mut(cid as usize).copy_from_slice(&result.user_row);

            // fold the client's pre-reduced basis gradient into the round
            // aggregate; rows are disjoint per item, and the table
            // iterates in sorted id order, so aggregation order is
            // deterministic by construction
            for (item, row) in result.g_basis_rows.iter() {
                let grow = g_basis.row_mut(item as usize);
                for (g, &v) in grow.iter_mut().zip(row) {
                    *g += v;
                }
            }
            // through tanh
            let d_pre: Vec<f32> = result
                .d_gate
                .iter()
                .zip(&result.pre)
                .map(|(&dg, &x)| dg * (1.0 - x.tanh() * x.tanh()))
                .collect();
            let z = self.codes.row(cid as usize).to_vec();
            for (k, &zk) in z.iter().enumerate() {
                let wgrad = g_w.row_mut(k);
                for (w, &dp) in wgrad.iter_mut().zip(&d_pre) {
                    *w += zk * dp;
                }
            }
            for (gb, &dp) in g_b.row_mut(0).iter_mut().zip(&d_pre) {
                *gb += dp;
            }
            let wz: Vec<f32> = (0..d)
                .map(|k| self.w_gate.row(k).iter().zip(&d_pre).map(|(&w, &dp)| w * dp).sum())
                .collect();
            g_codes.push((cid, wz));
        }

        // apply averaged server updates
        let lr = self.cfg.lr_server / n;
        self.basis.scaled_add_assign(-lr, &g_basis);
        self.w_gate.scaled_add_assign(-lr, &g_w);
        self.b_gate.scaled_add_assign(-lr, &g_b);
        for (cid, dz) in g_codes {
            let row = self.codes.row_mut(cid as usize);
            for (zk, &d) in row.iter_mut().zip(&dz) {
                *zk -= self.cfg.lr_server * d;
            }
        }

        let trace = RoundTrace::new(self.round, &losses, 0.0, ctx.bytes());
        self.round += 1;
        trace
    }

    fn recommender(&self) -> &dyn Recommender {
        self
    }

    fn threads(&self) -> usize {
        self.scheduler.threads()
    }
}

impl Recommender for MetaMf {
    fn name(&self) -> &'static str {
        "MetaMF"
    }

    fn num_users(&self) -> usize {
        self.codes.rows()
    }

    fn num_items(&self) -> usize {
        self.basis.rows()
    }

    fn num_params(&self) -> usize {
        self.basis.len() + self.w_gate.len() + self.b_gate.len() + self.codes.len()
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let (gate, _) = self.gate_of(user);
        let p = self.user_emb.row(user as usize);
        items
            .iter()
            .map(|&i| {
                let logit: f32 = self.gen_item(&gate, i).iter().zip(p).map(|(&a, &b)| a * b).sum();
                sigmoid(logit)
            })
            .collect()
    }

    fn train_batch(&mut self, _batch: &[(u32, u32, f32)]) -> f32 {
        unimplemented!("MetaMF trains through its federated protocol, not batches")
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;

    fn split() -> TrainTestSplit {
        let data = SyntheticConfig::new("mm", 30, 60, 12.0).generate(&mut ptf_data::test_rng(8));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(9))
    }

    fn quick_cfg() -> MetaMfConfig {
        MetaMfConfig { rounds: 5, local_epochs: 2, dim: 8, ..MetaMfConfig::default() }
    }

    #[test]
    fn training_improves_loss() {
        let s = split();
        let mut mm = Engine::new(MetaMf::new(&s.train, quick_cfg()));
        let trace = mm.run();
        assert_eq!(trace.num_rounds(), 5);
        assert!(trace.client_loss_improved(), "{:?}", trace.rounds);
    }

    #[test]
    fn scores_are_probabilities_and_personalized() {
        let s = split();
        let mut mm = Engine::new(MetaMf::new(&s.train, quick_cfg()));
        mm.run();
        let a = mm.protocol().score(0, &[0, 1, 2]);
        let b = mm.protocol().score(1, &[0, 1, 2]);
        assert!(a.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_ne!(a, b, "personalized embeddings should differ across users");
    }

    #[test]
    fn traffic_slightly_exceeds_fcf() {
        let s = split();
        let mut mm = Engine::new(MetaMf::new(&s.train, quick_cfg()));
        mm.run_round();
        let avg = mm.ledger().avg_client_bytes_per_round();
        let matrix_only = (s.train.num_items() * 8 * 4 * 2) as f64;
        assert!(avg > matrix_only, "codes should add to the matrix traffic");
        assert!(avg < matrix_only * 1.2, "overhead should stay small: {avg}");
    }

    #[test]
    fn evaluation_runs() {
        let s = split();
        let mut mm = Engine::new(MetaMf::new(&s.train, quick_cfg()));
        mm.run();
        let report = mm.evaluate(&s.train, &s.test, 10);
        assert!(report.users_evaluated > 0);
    }
}
