//! FedMF — secure federated matrix factorization (Chai et al., 2020).
//!
//! Identical learning dynamics to [`crate::fcf::Fcf`], but item-gradient
//! uploads travel as additively homomorphic ciphertexts ([`crate::he`])
//! that the server aggregates without reading, and the item matrix itself
//! is ciphertext on the wire. The cost: every value expands to
//! `ciphertext_bytes` (64 B ≈ 1024-bit Paillier with packing), producing
//! the MB-scale traffic of Table IV's FedMF row.
//!
//! Simulation note (DESIGN.md §4): the real FedMF keeps the item matrix
//! encrypted server-side across rounds; we run the encrypt → aggregate →
//! decrypt cycle within each round over every client's *actual* gradient
//! matrix (the key-holding clients could do the same decryption) and keep
//! plaintext bookkeeping between rounds. Every round asserts the decrypted
//! aggregate matches the plaintext gradient sum
//! ([`FedMf::last_round_he_verified`]); the learning outcome is identical
//! up to fixed-point quantization, and the wire costs are modelled
//! exactly. The inner FCF exchange runs against a *detached*
//! [`RoundCtx`], so only the ciphertext messages — the ones that really
//! cross the wire — reach the engine's observers.
//!
//! Parallelism: FedMF inherits FCF's two-phase round loop (parallel
//! client phase on `cfg.base.threads` workers, serial aggregation), and
//! the encrypt → aggregate → verify cycle runs inside the serial phase
//! in participant order — so FedMF is bit-identical at any thread count
//! and stays model-identical to FCF under the same base seed.

use crate::fcf::{Fcf, FcfConfig};
use crate::he::HeContext;
use ptf_comm::Payload;
use ptf_data::Dataset;
use ptf_federated::{FederatedProtocol, RoundCtx, RoundTrace};
use ptf_models::Recommender;

/// FedMF configuration: FCF dynamics + an HE context.
#[derive(Clone, Debug)]
pub struct FedMfConfig {
    pub base: FcfConfig,
    /// Shared client key for the simulated cipher.
    pub he_key: u64,
}

impl Default for FedMfConfig {
    fn default() -> Self {
        Self { base: FcfConfig { seed: 37, ..FcfConfig::default() }, he_key: 0xFEDF }
    }
}

impl FedMfConfig {
    pub fn small() -> Self {
        Self { base: FcfConfig { seed: 37, ..FcfConfig::small() }, he_key: 0xFED }
    }
}

/// A running FedMF federation.
pub struct FedMf {
    inner: Fcf,
    he: HeContext,
    round: u32,
    rounds: u32,
    dim: usize,
    he_verified: bool,
}

impl FedMf {
    pub fn new(train: &Dataset, cfg: FedMfConfig) -> Self {
        let dim = cfg.base.dim;
        let rounds = cfg.base.rounds;
        Self {
            inner: Fcf::new(train, cfg.base),
            he: HeContext::new(cfg.he_key),
            round: 0,
            rounds,
            dim,
            he_verified: false,
        }
    }

    /// True if the most recent round's homomorphic aggregate decrypted to
    /// the plaintext gradient sum (within fixed-point tolerance).
    pub fn last_round_he_verified(&self) -> bool {
        self.he_verified
    }
}

impl FederatedProtocol for FedMf {
    fn name(&self) -> &'static str {
        "FedMF"
    }

    fn configured_rounds(&self) -> u32 {
        self.rounds
    }

    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        let num_items = self.inner.recommender().num_items();
        let values_per_transfer = num_items * (self.dim + 1);

        // Run the FCF learning dynamics, passing every client's *actual*
        // gradient matrix through the homomorphic path: encrypt per
        // client, aggregate ciphertexts entry-wise, and remember the
        // plaintext sum so the aggregate can be verified after decryption.
        // The plaintext exchange goes to a detached context — the real
        // wire carries ciphertexts, reported below.
        let he = self.he;
        let round = self.round;
        let mut ct_sum: Vec<i128> = vec![0; values_per_transfer];
        let mut plain_sum: Vec<f32> = vec![0.0; values_per_transfer];
        let mut contributors: Vec<u32> = Vec::new();
        let mut inner_ctx = RoundCtx::detached(round);
        let inner_trace = self.inner.run_round_observed(&mut inner_ctx, |client, delta| {
            let flat = delta.as_slice();
            let ct = he.encrypt_slice(flat, round, client);
            for (acc, c) in ct_sum.iter_mut().zip(&ct) {
                *acc = acc.wrapping_add(*c);
            }
            for (acc, &p) in plain_sum.iter_mut().zip(flat) {
                *acc += p;
            }
            contributors.push(client);
        });

        // key-holder side: decrypt the aggregate and verify it carried the
        // gradients exactly (up to fixed-point quantization)
        if contributors.is_empty() {
            self.he_verified = false;
        } else {
            let decrypted = self.he.decrypt_aggregate(&ct_sum, round, &contributors);
            self.he_verified = decrypted
                .iter()
                .zip(&plain_sum)
                .all(|(d, p)| (d - p).abs() < 1e-3 * contributors.len() as f32);
            debug_assert!(self.he_verified, "HE aggregate mismatch");
        }

        ctx.begin(&contributors);
        for &c in &contributors {
            ctx.disperse(
                c,
                "enc-item-embeddings",
                Payload::Ciphertexts {
                    count: values_per_transfer,
                    bytes_each: self.he.ciphertext_bytes,
                },
            );
            ctx.upload(
                c,
                "enc-item-gradients",
                Payload::Ciphertexts {
                    count: values_per_transfer,
                    bytes_each: self.he.ciphertext_bytes,
                },
            );
        }
        let trace = RoundTrace { round: self.round, bytes: ctx.bytes(), ..inner_trace };
        self.round += 1;
        trace
    }

    fn recommender(&self) -> &dyn Recommender {
        self.inner.recommender()
    }

    fn threads(&self) -> usize {
        self.inner.threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;

    fn split() -> TrainTestSplit {
        let data = SyntheticConfig::new("fm", 30, 60, 12.0).generate(&mut ptf_data::test_rng(6));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(7))
    }

    fn quick_cfg() -> FedMfConfig {
        let mut cfg = FedMfConfig::small();
        cfg.base.rounds = 5;
        cfg.base.local_epochs = 2;
        cfg.base.dim = 8;
        cfg
    }

    #[test]
    fn training_works_like_fcf() {
        let s = split();
        let mut fedmf = Engine::new(FedMf::new(&s.train, quick_cfg()));
        let trace = fedmf.run();
        assert_eq!(trace.num_rounds(), 5);
        assert!(trace.client_loss_improved(), "{:?}", trace.rounds);
        let report = fedmf.evaluate(&s.train, &s.test, 10);
        assert!(report.users_evaluated > 0);
    }

    #[test]
    fn traffic_is_ciphertext_expanded() {
        let s = split();
        let mut fedmf = Engine::new(FedMf::new(&s.train, quick_cfg()));
        fedmf.run_round();
        let plain_one_way = (s.train.num_items() * (8 + 1) * 4) as f64;
        let avg = fedmf.ledger().avg_client_bytes_per_round();
        let expansion = avg / (2.0 * plain_one_way);
        assert!(
            (expansion - 16.0).abs() < 0.01,
            "expected the 16× Paillier expansion, got {expansion}"
        );
    }

    #[test]
    fn name_and_rounds() {
        let s = split();
        let fedmf = FedMf::new(&s.train, quick_cfg());
        assert_eq!(fedmf.name(), "FedMF");
        assert_eq!(fedmf.configured_rounds(), 5);
    }
}

#[cfg(test)]
mod he_integration_tests {
    use super::*;
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;

    #[test]
    fn real_gradients_survive_the_homomorphic_path() {
        let data = SyntheticConfig::new("he", 20, 40, 10.0).generate(&mut ptf_data::test_rng(51));
        let split = TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(52));
        let mut cfg = FedMfConfig::small();
        cfg.base.rounds = 3;
        cfg.base.local_epochs = 2;
        cfg.base.dim = 8;
        let mut fedmf = Engine::new(FedMf::new(&split.train, cfg));
        for _ in 0..3 {
            fedmf.run_round();
            assert!(
                fedmf.protocol().last_round_he_verified(),
                "homomorphic aggregate diverged from plaintext gradients"
            );
        }
    }
}
