//! Dataset-level ranking evaluation.

use crate::ranking::{rank_metrics, RankingMetrics};
use serde::Serialize;

/// Averaged ranking metrics over the evaluated users.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct RankingReport {
    pub metrics: RankingMetrics,
    /// Users that had at least one held-out item and were averaged.
    pub users_evaluated: usize,
    pub k: usize,
}

impl std::fmt::Display for RankingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Recall@{k}={recall:.4} NDCG@{k}={ndcg:.4} HR@{k}={hr:.4} (over {n} users)",
            k = self.k,
            recall = self.metrics.recall,
            ndcg = self.metrics.ndcg,
            hr = self.metrics.hit_rate,
            n = self.users_evaluated
        )
    }
}

impl RankingReport {
    /// Averages per-user metrics into a report. `None` entries are users
    /// without held-out items; they are skipped, not averaged as zeros.
    ///
    /// The accumulation order is the iterator order, so callers that
    /// compute per-user metrics in parallel get a bit-deterministic
    /// report by aggregating in user order (which is what
    /// `ptf_models::evaluate_model` does).
    pub fn aggregate(per_user: impl IntoIterator<Item = Option<RankingMetrics>>, k: usize) -> Self {
        let mut sum = RankingMetrics::default();
        let mut n = 0usize;
        for m in per_user.into_iter().flatten() {
            sum.recall += m.recall;
            sum.ndcg += m.ndcg;
            sum.hit_rate += m.hit_rate;
            sum.precision += m.precision;
            sum.mrr += m.mrr;
            sum.map += m.map;
            n += 1;
        }
        if n > 0 {
            sum.recall /= n as f64;
            sum.ndcg /= n as f64;
            sum.hit_rate /= n as f64;
            sum.precision /= n as f64;
            sum.mrr /= n as f64;
            sum.map /= n as f64;
        }
        RankingReport { metrics: sum, users_evaluated: n, k }
    }
}

/// Evaluates a scoring function over every user.
///
/// For each user `u`, `score_items(u)` must return one score per item;
/// `excluded(u)` returns the (sorted) items to remove from the candidate
/// pool — normally the user's training items; `relevant(u)` the (sorted)
/// held-out test items. Users with no relevant items are skipped.
///
/// `excluded`/`relevant` may return anything slice-shaped — in
/// particular `&[u32]` borrowed straight from a dataset, so per-user
/// evaluation does not clone interaction histories.
pub fn evaluate_ranking<E, R>(
    num_users: usize,
    k: usize,
    mut score_items: impl FnMut(u32) -> Vec<f32>,
    mut excluded: impl FnMut(u32) -> E,
    mut relevant: impl FnMut(u32) -> R,
) -> RankingReport
where
    E: AsRef<[u32]>,
    R: AsRef<[u32]>,
{
    let per_user = (0..num_users as u32).map(|u| {
        let rel = relevant(u);
        if rel.as_ref().is_empty() {
            return None;
        }
        let scores = score_items(u);
        let exc = excluded(u);
        rank_metrics(&scores, exc.as_ref(), rel.as_ref(), k)
    });
    RankingReport::aggregate(per_user, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_over_users_with_test_items() {
        // user 0: perfect (relevant item ranked first)
        // user 1: no test items (skipped)
        // user 2: complete miss
        let report = evaluate_ranking(
            3,
            1,
            |u| match u {
                0 => vec![0.9, 0.1, 0.1],
                _ => vec![0.9, 0.1, 0.1],
            },
            |_| vec![],
            |u| match u {
                0 => vec![0],
                1 => vec![],
                _ => vec![2],
            },
        );
        assert_eq!(report.users_evaluated, 2);
        assert!((report.metrics.recall - 0.5).abs() < 1e-12);
        assert!((report.metrics.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_users_is_all_zero() {
        let report = evaluate_ranking(2, 5, |_| vec![0.0; 3], |_| vec![], |_| vec![]);
        assert_eq!(report.users_evaluated, 0);
        assert_eq!(report.metrics.recall, 0.0);
    }

    #[test]
    fn display_mentions_k() {
        let report = evaluate_ranking(1, 20, |_| vec![1.0, 0.0], |_| vec![], |_| vec![0]);
        let s = report.to_string();
        assert!(s.contains("Recall@20"), "{s}");
        assert!(s.contains("NDCG@20"), "{s}");
    }
}
