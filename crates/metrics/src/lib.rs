//! # ptf-metrics
//!
//! Evaluation metrics for the PTF-FedRec reproduction:
//!
//! * [`ranking`] — Recall@K, NDCG@K, HitRate@K, Precision@K over full-item
//!   ranking with training-item exclusion (the paper "calculate\[s\] the
//!   metrics scores for all items that have not interacted with users").
//! * [`classification`] — set precision/recall/F1, used to score the
//!   Top-Guess membership-inference attack (Table V).
//! * [`eval`] — dataset-level averaging of per-user ranking metrics.

pub mod classification;
pub mod eval;
pub mod ranking;

pub use classification::{set_f1, PrecisionRecallF1};
pub use eval::{evaluate_ranking, RankingReport};
pub use ranking::{rank_metrics, top_k_indices, RankingMetrics};
