//! # ptf-metrics
//!
//! Evaluation metrics for the PTF-FedRec reproduction:
//!
//! * [`ranking`] — Recall@K, NDCG@K, HitRate@K, Precision@K over full-item
//!   ranking with training-item exclusion (the paper "calculate\[s\] the
//!   metrics scores for all items that have not interacted with users").
//! * [`classification`] — set precision/recall/F1, used to score the
//!   Top-Guess membership-inference attack (Table V).
//! * [`eval`] — dataset-level averaging of per-user ranking metrics.

pub mod classification;
pub mod eval;
pub mod ranking;

pub use classification::{set_f1, PrecisionRecallF1};
pub use eval::{evaluate_ranking, RankingReport};
pub use ranking::{
    cmp_scores_desc, rank_metrics, rank_metrics_into, top_k_indices, top_k_indices_into,
    RankingMetrics,
};
