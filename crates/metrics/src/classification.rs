//! Set-based precision / recall / F1 (attack evaluation).

/// Precision, recall and F1 of a predicted set against an actual set.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PrecisionRecallF1 {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
    pub true_positives: usize,
}

/// Computes set precision/recall/F1. Both slices must be sorted and
/// deduplicated.
pub fn set_f1(predicted: &[u32], actual: &[u32]) -> PrecisionRecallF1 {
    debug_assert!(predicted.windows(2).all(|w| w[0] < w[1]), "predicted must be sorted");
    debug_assert!(actual.windows(2).all(|w| w[0] < w[1]), "actual must be sorted");
    let tp = predicted.iter().filter(|p| actual.binary_search(p).is_ok()).count();
    let precision = if predicted.is_empty() { 0.0 } else { tp as f64 / predicted.len() as f64 };
    let recall = if actual.is_empty() { 0.0 } else { tp as f64 / actual.len() as f64 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    PrecisionRecallF1 { precision, recall, f1, true_positives: tp }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let m = set_f1(&[1, 2, 3], &[1, 2, 3]);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.true_positives, 3);
    }

    #[test]
    fn disjoint_prediction() {
        let m = set_f1(&[4, 5], &[1, 2, 3]);
        assert_eq!(m.f1, 0.0);
        assert_eq!(m.true_positives, 0);
    }

    #[test]
    fn partial_overlap() {
        // precision 1/2, recall 1/4 → F1 = 2·(0.5·0.25)/(0.75) = 1/3
        let m = set_f1(&[1, 9], &[1, 2, 3, 4]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 0.25).abs() < 1e-12);
        assert!((m.f1 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sets() {
        assert_eq!(set_f1(&[], &[1]).f1, 0.0);
        assert_eq!(set_f1(&[1], &[]).f1, 0.0);
        assert_eq!(set_f1(&[], &[]).f1, 0.0);
    }
}
