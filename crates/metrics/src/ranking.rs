//! Per-user ranking metrics.

use serde::Serialize;

/// Metrics of one ranked list against a relevant set, all in `[0, 1]`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct RankingMetrics {
    /// |top-K ∩ relevant| / |relevant|.
    pub recall: f64,
    /// DCG@K / IDCG@K with binary relevance.
    pub ndcg: f64,
    /// 1 if any relevant item is in the top-K.
    pub hit_rate: f64,
    /// |top-K ∩ relevant| / K.
    pub precision: f64,
    /// Reciprocal rank of the first relevant item (0 if none retrieved).
    pub mrr: f64,
    /// Average precision at K, normalized by min(|relevant|, K).
    pub map: f64,
}

/// Descending score order that ranks **NaN last** (after every finite
/// value and −∞), built on [`f32::total_cmp`] so it is a total order.
///
/// A diverged model can emit NaN scores; ranking such items last turns
/// divergence into degraded metrics instead of a panic that kills a
/// multi-hour federated run (the old comparator `expect`ed NaN-free
/// input). Finite values and infinities compare as before; the one
/// `total_cmp` refinement is that `+0.0` now orders ahead of `-0.0`
/// (previously an index tie-break) — still fully deterministic.
#[inline]
pub fn cmp_scores_desc(a: f32, b: f32) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater, // NaN sorts after b
        (false, true) => Ordering::Less,    // a sorts before NaN
        (false, false) => b.total_cmp(&a),
    }
}

/// Indices of the `k` largest scores, excluding `excluded` (sorted ids),
/// ties broken toward lower index for determinism. NaN scores rank last.
pub fn top_k_indices(scores: &[f32], excluded: &[u32], k: usize) -> Vec<u32> {
    let mut candidates = Vec::new();
    let mut head = Vec::new();
    top_k_indices_into(scores, excluded, k, &mut candidates, &mut head);
    head
}

/// [`top_k_indices`] into caller-owned buffers: `head` receives the
/// result, `candidates` is selection workspace. Both are cleared on entry
/// and keep their capacity, so a steady-state caller (one buffer pair per
/// evaluation worker) allocates nothing.
pub fn top_k_indices_into(
    scores: &[f32],
    excluded: &[u32],
    k: usize,
    candidates: &mut Vec<u32>,
    head: &mut Vec<u32>,
) {
    debug_assert!(excluded.windows(2).all(|w| w[0] < w[1]), "excluded must be sorted");
    candidates.clear();
    head.clear();
    // single merge walk over the sorted exclusion list instead of a
    // binary search per candidate — same result, O(n + m) not O(n log m),
    // and this filter runs once per user per evaluation pass
    let mut ex = 0usize;
    for i in 0..scores.len() as u32 {
        if ex < excluded.len() && excluded[ex] == i {
            ex += 1;
        } else {
            candidates.push(i);
        }
    }
    let k = k.min(candidates.len());
    if k == 0 {
        return;
    }
    // partial selection, then exact ordering of the selected head
    candidates.select_nth_unstable_by(k - 1, |&a, &b| {
        cmp_scores_desc(scores[a as usize], scores[b as usize]).then(a.cmp(&b))
    });
    head.extend_from_slice(&candidates[..k]);
    head.sort_unstable_by(|&a, &b| {
        cmp_scores_desc(scores[a as usize], scores[b as usize]).then(a.cmp(&b))
    });
}

/// Ranks all non-excluded items by `scores` and evaluates the top-`k`
/// against the sorted `relevant` set.
///
/// Returns `None` when `relevant` is empty (the user contributes nothing
/// to the average, matching common recsys evaluation practice).
pub fn rank_metrics(
    scores: &[f32],
    excluded: &[u32],
    relevant: &[u32],
    k: usize,
) -> Option<RankingMetrics> {
    let mut candidates = Vec::new();
    let mut head = Vec::new();
    rank_metrics_into(scores, excluded, relevant, k, &mut candidates, &mut head)
}

/// [`rank_metrics`] with caller-owned ranking workspace (see
/// [`top_k_indices_into`]); the allocation-free form the parallel
/// evaluator feeds with per-worker scratch buffers.
pub fn rank_metrics_into(
    scores: &[f32],
    excluded: &[u32],
    relevant: &[u32],
    k: usize,
    candidates: &mut Vec<u32>,
    head: &mut Vec<u32>,
) -> Option<RankingMetrics> {
    debug_assert!(relevant.windows(2).all(|w| w[0] < w[1]), "relevant must be sorted");
    if relevant.is_empty() {
        return None;
    }
    top_k_indices_into(scores, excluded, k, candidates, head);
    let top: &[u32] = head;
    let mut hits = 0usize;
    let mut dcg = 0.0f64;
    let mut mrr = 0.0f64;
    let mut ap_sum = 0.0f64;
    for (pos, &i) in top.iter().enumerate() {
        if relevant.binary_search(&i).is_ok() {
            hits += 1;
            dcg += 1.0 / ((pos + 2) as f64).log2();
            if mrr == 0.0 {
                mrr = 1.0 / (pos + 1) as f64;
            }
            // precision at this hit's position
            ap_sum += hits as f64 / (pos + 1) as f64;
        }
    }
    let ideal_hits = relevant.len().min(k);
    let idcg: f64 = (0..ideal_hits).map(|pos| 1.0 / ((pos + 2) as f64).log2()).sum();
    Some(RankingMetrics {
        recall: hits as f64 / relevant.len() as f64,
        ndcg: if idcg > 0.0 { dcg / idcg } else { 0.0 },
        hit_rate: if hits > 0 { 1.0 } else { 0.0 },
        precision: if k > 0 { hits as f64 / k as f64 } else { 0.0 },
        mrr,
        map: if ideal_hits > 0 { ap_sum / ideal_hits as f64 } else { 0.0 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, &[], 2), vec![1, 3]);
        assert_eq!(top_k_indices(&scores, &[], 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn top_k_excludes() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&scores, &[1, 3], 2), vec![2, 0]);
    }

    #[test]
    fn top_k_ties_break_by_index() {
        let scores = [0.5, 0.5, 0.5];
        assert_eq!(top_k_indices(&scores, &[], 2), vec![0, 1]);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        // relevant items hold the top positions
        let scores = [0.9, 0.8, 0.1, 0.2];
        let m = rank_metrics(&scores, &[], &[0, 1], 2).unwrap();
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.ndcg, 1.0);
        assert_eq!(m.hit_rate, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.mrr, 1.0);
        assert_eq!(m.map, 1.0);
    }

    #[test]
    fn worst_ranking_scores_zero() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let m = rank_metrics(&scores, &[], &[2], 2).unwrap();
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
        assert_eq!(m.hit_rate, 0.0);
    }

    #[test]
    fn ndcg_position_discount() {
        // one relevant item at rank 2 (0-based position 1)
        let scores = [0.9, 0.8, 0.1];
        let m = rank_metrics(&scores, &[], &[1], 2).unwrap();
        let expected = (1.0 / 3.0f64.log2()) / 1.0; // dcg at pos 1, idcg at pos 0
        assert!((m.ndcg - expected).abs() < 1e-12);
    }

    #[test]
    fn recall_at_20_shape() {
        // 5 relevant, 2 retrieved in top-20 → recall 0.4
        let mut scores = vec![0.0f32; 100];
        scores[3] = 0.99;
        scores[7] = 0.98;
        for (rank, idx) in (40..58).enumerate() {
            scores[idx] = 0.9 - rank as f32 * 0.01;
        }
        let m = rank_metrics(&scores, &[], &[3, 7, 90, 95, 99], 20).unwrap();
        assert!((m.recall - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_relevant_gives_none() {
        assert!(rank_metrics(&[0.1, 0.2], &[], &[], 2).is_none());
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        // regression: the old comparator `expect`ed NaN-free scores, so a
        // single diverged prediction aborted the whole evaluation
        let scores = [0.1, f32::NAN, 0.5, f32::NAN, 0.7];
        assert_eq!(top_k_indices(&scores, &[], 3), vec![4, 2, 0]);
        // NaN entries fill the tail, tie-broken by index
        assert_eq!(top_k_indices(&scores, &[], 5), vec![4, 2, 0, 1, 3]);
    }

    #[test]
    fn nan_ranks_after_negative_infinity() {
        let scores = [f32::NAN, f32::NEG_INFINITY, -1.0];
        assert_eq!(top_k_indices(&scores, &[], 3), vec![2, 1, 0]);
    }

    #[test]
    fn all_nan_scores_give_finite_metrics() {
        let scores = [f32::NAN; 6];
        let m = rank_metrics(&scores, &[0], &[3, 5], 3).unwrap();
        for v in [m.recall, m.ndcg, m.hit_rate, m.precision, m.mrr, m.map] {
            assert!(v.is_finite(), "{m:?}");
        }
    }

    #[test]
    fn scratch_variant_matches_allocating_variant() {
        let scores = [0.3f32, f32::NAN, 0.9, 0.9, 0.2];
        let mut candidates = Vec::new();
        let mut head = Vec::new();
        for k in 0..=5 {
            let fresh = rank_metrics(&scores, &[1], &[0, 3], k);
            let pooled = rank_metrics_into(&scores, &[1], &[0, 3], k, &mut candidates, &mut head);
            assert_eq!(fresh, pooled, "k={k}");
        }
    }

    #[test]
    fn excluded_relevant_items_cannot_be_retrieved() {
        // the single relevant item is excluded from candidates (it was a
        // training item) — metrics must be 0, not a crash
        let scores = [0.9, 0.1];
        let m = rank_metrics(&scores, &[0], &[0], 1).unwrap();
        assert_eq!(m.recall, 0.0);
    }
}

#[cfg(test)]
mod mrr_map_tests {
    use super::*;

    #[test]
    fn mrr_is_reciprocal_rank_of_first_hit() {
        // first relevant item lands at position 2 (0-based 1)
        let scores = [0.9f32, 0.8, 0.7];
        let m = rank_metrics(&scores, &[], &[1], 3).unwrap();
        assert!((m.mrr - 0.5).abs() < 1e-12);
    }

    #[test]
    fn map_averages_precision_at_hits() {
        // relevant at positions 1 and 3 → AP = (1/1 + 2/3)/2
        let scores = [0.9f32, 0.8, 0.7, 0.6];
        let m = rank_metrics(&scores, &[], &[0, 2], 4).unwrap();
        let expected = (1.0 + 2.0 / 3.0) / 2.0;
        assert!((m.map - expected).abs() < 1e-12, "{}", m.map);
    }

    #[test]
    fn miss_gives_zero_mrr_and_map() {
        let scores = [0.9f32, 0.8];
        let m = rank_metrics(&scores, &[], &[1], 1).unwrap();
        assert_eq!(m.mrr, 0.0);
        assert_eq!(m.map, 0.0);
    }
}
