//! Property-based tests of the ranking metrics.

use proptest::prelude::*;
use ptf_metrics::{rank_metrics, set_f1, top_k_indices};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn top_k_is_sorted_by_score_and_excludes(
        scores in proptest::collection::vec(0.0f32..1.0, 1..80),
        k in 1usize..30,
        excluded in proptest::collection::btree_set(0u32..80, 0..20),
    ) {
        let excluded: Vec<u32> =
            excluded.into_iter().filter(|&i| (i as usize) < scores.len()).collect();
        let top = top_k_indices(&scores, &excluded, k);
        prop_assert!(top.len() <= k);
        // descending scores
        for w in top.windows(2) {
            prop_assert!(scores[w[0] as usize] >= scores[w[1] as usize]);
        }
        // exclusion respected
        for i in &top {
            prop_assert!(excluded.binary_search(i).is_err());
        }
        // completeness: as many as available
        prop_assert_eq!(top.len(), k.min(scores.len() - excluded.len()));
    }

    #[test]
    fn metrics_are_bounded_and_consistent(
        scores in proptest::collection::vec(0.0f32..1.0, 2..60),
        relevant in proptest::collection::btree_set(0u32..60, 1..15),
        k in 1usize..25,
    ) {
        let relevant: Vec<u32> =
            relevant.into_iter().filter(|&i| (i as usize) < scores.len()).collect();
        if relevant.is_empty() {
            return Ok(());
        }
        let m = rank_metrics(&scores, &[], &relevant, k).unwrap();
        for v in [m.recall, m.ndcg, m.hit_rate, m.precision] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }
        // hit_rate is 1 iff recall > 0
        prop_assert_eq!(m.hit_rate > 0.0, m.recall > 0.0);
        // precision·k == recall·|relevant| (both count hits)
        let hits_from_p = m.precision * k as f64;
        let hits_from_r = m.recall * relevant.len() as f64;
        prop_assert!((hits_from_p - hits_from_r).abs() < 1e-9);
    }

    #[test]
    fn perfect_scores_give_perfect_metrics(
        n_rel in 1usize..10,
        n_items in 10usize..50,
    ) {
        let n_rel = n_rel.min(n_items);
        // relevant items hold the highest scores
        let scores: Vec<f32> = (0..n_items)
            .map(|i| if i < n_rel { 1.0 } else { 0.1 })
            .collect();
        let relevant: Vec<u32> = (0..n_rel as u32).collect();
        let m = rank_metrics(&scores, &[], &relevant, n_rel).unwrap();
        prop_assert_eq!(m.recall, 1.0);
        prop_assert!((m.ndcg - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_is_symmetric_in_perfect_cases(
        set in proptest::collection::btree_set(0u32..100, 1..30),
    ) {
        let v: Vec<u32> = set.into_iter().collect();
        let m = set_f1(&v, &v);
        prop_assert_eq!(m.f1, 1.0);
        prop_assert_eq!(m.true_positives, v.len());
    }

    #[test]
    fn f1_never_exceeds_precision_or_recall_max(
        predicted in proptest::collection::btree_set(0u32..40, 0..20),
        actual in proptest::collection::btree_set(0u32..40, 0..20),
    ) {
        let p: Vec<u32> = predicted.into_iter().collect();
        let a: Vec<u32> = actual.into_iter().collect();
        let m = set_f1(&p, &a);
        prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
        prop_assert!(m.f1 >= 0.0);
    }
}
