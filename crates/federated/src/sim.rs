//! Run traces: what every federated protocol reports per round.

use serde::{Deserialize, Serialize};

/// Statistics of one global round.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RoundTrace {
    pub round: u32,
    /// Mean client-side training loss over this round's participants.
    pub mean_client_loss: f32,
    /// Server-side training loss (0 for protocols without server training).
    pub server_loss: f32,
    /// Clients that participated.
    pub participants: usize,
    /// Total bytes moved this round (all participants, both directions).
    pub bytes: u64,
}

impl RoundTrace {
    /// Builds a round trace from per-participant client losses.
    ///
    /// Non-finite losses (NaN/±∞ from a diverged participant) are excluded
    /// from the average so one broken client cannot poison the whole
    /// trace; `participants` still counts every sampled client. A round
    /// where *every* loss is non-finite (or no client participated)
    /// reports a mean loss of 0.
    pub fn new(round: u32, client_losses: &[f32], server_loss: f32, bytes: u64) -> Self {
        let mut sum = 0.0f64;
        let mut finite = 0usize;
        for &l in client_losses {
            if l.is_finite() {
                sum += l as f64;
                finite += 1;
            }
        }
        Self {
            round,
            mean_client_loss: if finite == 0 { 0.0 } else { (sum / finite as f64) as f32 },
            server_loss,
            participants: client_losses.len(),
            bytes,
        }
    }
}

/// The full trace of a federated run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RunTrace {
    pub rounds: Vec<RoundTrace>,
}

impl RunTrace {
    pub fn push(&mut self, r: RoundTrace) {
        self.rounds.push(r);
    }

    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// Final-round mean client loss (0 for an empty trace).
    ///
    /// NaN-free *provided* the rounds were built with [`RoundTrace::new`],
    /// which excludes non-finite participant losses from the average —
    /// hand-constructed `RoundTrace` literals can still carry anything.
    pub fn final_client_loss(&self) -> f32 {
        self.rounds.last().map_or(0.0, |r| r.mean_client_loss)
    }

    pub fn final_server_loss(&self) -> f32 {
        self.rounds.last().map_or(0.0, |r| r.server_loss)
    }

    /// True if the client loss decreased between the first and last round.
    pub fn client_loss_improved(&self) -> bool {
        match (self.rounds.first(), self.rounds.last()) {
            (Some(a), Some(b)) => b.mean_client_loss < a.mean_client_loss,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(round: u32, loss: f32) -> RoundTrace {
        RoundTrace { round, mean_client_loss: loss, server_loss: 0.1, participants: 4, bytes: 100 }
    }

    #[test]
    fn accumulates_rounds() {
        let mut t = RunTrace::default();
        t.push(trace(0, 0.9));
        t.push(trace(1, 0.5));
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.final_client_loss(), 0.5);
        assert!(t.client_loss_improved());
    }

    #[test]
    fn empty_trace_defaults() {
        let t = RunTrace::default();
        assert_eq!(t.final_client_loss(), 0.0);
        assert!(!t.client_loss_improved());
    }

    #[test]
    fn constructor_averages_client_losses() {
        let t = RoundTrace::new(3, &[0.2, 0.4], 0.7, 64);
        assert_eq!(t.round, 3);
        assert_eq!(t.participants, 2);
        assert!((t.mean_client_loss - 0.3).abs() < 1e-6);
        assert_eq!(t.server_loss, 0.7);
        assert_eq!(t.bytes, 64);
    }

    #[test]
    fn constructor_filters_nan_participants() {
        // regression: one diverged client must not poison the round mean
        let t = RoundTrace::new(0, &[1.0, f32::NAN, 3.0, f32::INFINITY], 0.0, 0);
        assert_eq!(t.participants, 4, "NaN clients still participated");
        assert!((t.mean_client_loss - 2.0).abs() < 1e-6, "{}", t.mean_client_loss);

        let mut run = RunTrace::default();
        run.push(t);
        assert!(run.final_client_loss().is_finite(), "final_client_loss must stay NaN-free");
    }

    #[test]
    fn constructor_all_nan_or_empty_is_zero() {
        assert_eq!(RoundTrace::new(0, &[], 0.0, 0).mean_client_loss, 0.0);
        assert_eq!(RoundTrace::new(0, &[f32::NAN, f32::NAN], 0.0, 0).mean_client_loss, 0.0);
    }

    #[test]
    fn traces_serialize_to_json() {
        let mut t = RunTrace::default();
        t.push(trace(0, 0.5));
        let json = serde_json::to_string(&t).expect("RunTrace serializes");
        assert!(json.contains("\"rounds\""), "{json}");
        assert!(json.contains("\"mean_client_loss\""), "{json}");
    }
}
