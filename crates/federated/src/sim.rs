//! Run traces: what every federated protocol reports per round.

/// Statistics of one global round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RoundTrace {
    pub round: u32,
    /// Mean client-side training loss over this round's participants.
    pub mean_client_loss: f32,
    /// Server-side training loss (0 for protocols without server training).
    pub server_loss: f32,
    /// Clients that participated.
    pub participants: usize,
    /// Total bytes moved this round (all participants, both directions).
    pub bytes: u64,
}

/// The full trace of a federated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTrace {
    pub rounds: Vec<RoundTrace>,
}

impl RunTrace {
    pub fn push(&mut self, r: RoundTrace) {
        self.rounds.push(r);
    }

    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// Final-round mean client loss (NaN-free convenience for tests).
    pub fn final_client_loss(&self) -> f32 {
        self.rounds.last().map_or(0.0, |r| r.mean_client_loss)
    }

    pub fn final_server_loss(&self) -> f32 {
        self.rounds.last().map_or(0.0, |r| r.server_loss)
    }

    /// True if the client loss decreased between the first and last round.
    pub fn client_loss_improved(&self) -> bool {
        match (self.rounds.first(), self.rounds.last()) {
            (Some(a), Some(b)) => b.mean_client_loss < a.mean_client_loss,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(round: u32, loss: f32) -> RoundTrace {
        RoundTrace { round, mean_client_loss: loss, server_loss: 0.1, participants: 4, bytes: 100 }
    }

    #[test]
    fn accumulates_rounds() {
        let mut t = RunTrace::default();
        t.push(trace(0, 0.9));
        t.push(trace(1, 0.5));
        assert_eq!(t.num_rounds(), 2);
        assert_eq!(t.total_bytes(), 200);
        assert_eq!(t.final_client_loss(), 0.5);
        assert!(t.client_loss_improved());
    }

    #[test]
    fn empty_trace_defaults() {
        let t = RunTrace::default();
        assert_eq!(t.final_client_loss(), 0.0);
        assert!(!t.client_loss_improved());
    }
}
