//! The protocol-agnostic federation engine.
//!
//! One [`FederatedProtocol`] trait covers PTF-FedRec *and* every
//! parameter-transmission baseline; an [`Engine`] owns a protocol plus an
//! observer stack ([`RoundObserver`]) and drives rounds through it. The
//! protocol reports its wire traffic through the per-round [`RoundCtx`]
//! instead of owning a ledger, so run/evaluate/report plumbing is written
//! once — the CLI, examples, and bench harness all drive a
//! `Box<dyn FederatedProtocol>` through the same code path.

use crate::observer::RoundObserver;
use crate::sim::{RoundTrace, RunTrace};
use ptf_comm::{CommLedger, Endpoint, Message, Payload};
use ptf_data::Dataset;
use ptf_metrics::RankingReport;
use ptf_models::{evaluate_model_with_threads, Recommender};

/// A runnable federated recommendation protocol.
///
/// Implementations own their model state, client fleet, and RNG; they do
/// *not* own a ledger or observers — all wire traffic is reported through
/// the [`RoundCtx`] so any sink can be plugged in from outside.
pub trait FederatedProtocol {
    /// Name as printed in the paper's tables.
    fn name(&self) -> &'static str;

    /// Configured number of global rounds.
    fn configured_rounds(&self) -> u32;

    /// Executes one global round, reporting traffic and hooks via `ctx`.
    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace;

    /// Executes one round over an *externally chosen* participant set
    /// instead of sampling one — the hook externally-driven deployments
    /// (a networked round server that collects uploads until a deadline,
    /// or a replay harness) use to keep this in-process engine as their
    /// bit-exact reference. Protocols that cannot honor an external set
    /// return `None` (the default) and the round does not run.
    fn run_round_external(
        &mut self,
        _ctx: &mut RoundCtx<'_>,
        _participants: &[u32],
    ) -> Option<RoundTrace> {
        None
    }

    /// A scoring view of the trained global model, for evaluation.
    fn recommender(&self) -> &dyn Recommender;

    /// Worker threads the protocol's scheduler resolved from its config
    /// (`0` = every hardware thread). [`Engine::evaluate`] reuses this so
    /// one `threads` knob caps *all* CPU use of a run, evaluation
    /// included.
    fn threads(&self) -> usize {
        0
    }
}

impl<P: FederatedProtocol + ?Sized> FederatedProtocol for Box<P> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn configured_rounds(&self) -> u32 {
        (**self).configured_rounds()
    }

    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        (**self).run_round(ctx)
    }

    fn run_round_external(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        participants: &[u32],
    ) -> Option<RoundTrace> {
        (**self).run_round_external(ctx, participants)
    }

    fn recommender(&self) -> &dyn Recommender {
        (**self).recommender()
    }

    fn threads(&self) -> usize {
        (**self).threads()
    }
}

/// The per-round channel between a protocol and its observers.
///
/// Protocols call [`RoundCtx::begin`] once after sampling participants,
/// then [`RoundCtx::upload`]/[`RoundCtx::disperse`] for every message they
/// put on the wire; [`RoundCtx::bytes`] is the running byte total of the
/// round (both directions), which is what a [`RoundTrace`] should report.
pub struct RoundCtx<'a> {
    round: u32,
    observers: Vec<&'a mut dyn RoundObserver>,
    bytes: u64,
}

impl<'a> RoundCtx<'a> {
    pub fn new(round: u32, observers: Vec<&'a mut dyn RoundObserver>) -> Self {
        Self { round, observers, bytes: 0 }
    }

    /// A context with no observers — for protocols that run an inner
    /// protocol whose plaintext traffic must *not* be observed (FedMF
    /// re-reports FCF's exchange as ciphertext messages) and for
    /// engine-less convenience wrappers like `train_centralized`.
    pub fn detached(round: u32) -> Self {
        Self::new(round, Vec::new())
    }

    /// The global round index messages of this context are tagged with.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Announces the sampled participant set to all observers.
    pub fn begin(&mut self, participants: &[u32]) {
        let round = self.round;
        for o in &mut self.observers {
            o.on_round_start(round, participants);
        }
    }

    /// Reports a client → server message.
    pub fn upload(&mut self, client: u32, label: &'static str, payload: Payload) {
        self.send(Message {
            from: Endpoint::Client(client),
            to: Endpoint::Server,
            round: self.round,
            label,
            payload,
        });
    }

    /// Reports a server → client message.
    pub fn disperse(&mut self, client: u32, label: &'static str, payload: Payload) {
        self.send(Message {
            from: Endpoint::Server,
            to: Endpoint::Client(client),
            round: self.round,
            label,
            payload,
        });
    }

    /// Total bytes reported so far this round (both directions).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    fn send(&mut self, msg: Message) {
        self.bytes += msg.bytes() as u64;
        let up = matches!(msg.from, Endpoint::Client(_));
        for o in &mut self.observers {
            if up {
                o.on_upload(&msg);
            } else {
                o.on_disperse(&msg);
            }
        }
    }

    fn finish(&mut self, trace: &RoundTrace) {
        for o in &mut self.observers {
            o.on_round_end(trace);
        }
    }
}

/// Outcome of [`Engine::run_with_early_stopping`].
#[derive(Clone, Debug)]
pub struct ConvergedRun {
    pub trace: RunTrace,
    /// Round index (0-based) with the best validation NDCG.
    pub best_round: u32,
    pub best_ndcg: f64,
    /// True if training stopped before the configured round budget.
    pub stopped_early: bool,
}

/// Drives a [`FederatedProtocol`] with a pluggable observer stack.
///
/// The engine always carries a [`CommLedger`] (as its first observer) so
/// every run has Table IV style accounting for free; further observers —
/// a [`crate::TraceRecorder`], convergence probes, transport shims — are
/// attached with [`Engine::with_observer`].
pub struct Engine<P> {
    protocol: P,
    ledger: CommLedger,
    observers: Vec<Box<dyn RoundObserver>>,
    next_round: u32,
}

impl<P: FederatedProtocol> Engine<P> {
    /// Wraps a *fresh* protocol (round counter at 0). Protocols pre-run
    /// outside an engine (e.g. via detached contexts) would desync the
    /// engine's round numbering from the protocol's internal counter.
    pub fn new(protocol: P) -> Self {
        Self { protocol, ledger: CommLedger::new(), observers: Vec::new(), next_round: 0 }
    }

    /// Wraps a protocol restored from a checkpoint: the engine continues
    /// at `next_round` with the restored ledger, so a resumed run's
    /// accounting is indistinguishable from one that never stopped. The
    /// protocol's internal round counter must already agree with
    /// `next_round` (the checkpoint subsystem restores both from one
    /// manifest).
    pub fn resume(protocol: P, ledger: CommLedger, next_round: u32) -> Self {
        Self { protocol, ledger, observers: Vec::new(), next_round }
    }

    /// Attaches an observer (builder style).
    pub fn with_observer(mut self, observer: impl RoundObserver + 'static) -> Self {
        self.add_observer(Box::new(observer));
        self
    }

    /// Attaches an observer.
    pub fn add_observer(&mut self, observer: Box<dyn RoundObserver>) {
        self.observers.push(observer);
    }

    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    pub fn protocol_mut(&mut self) -> &mut P {
        &mut self.protocol
    }

    /// The engine's communication ledger (recording since round 0).
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    pub fn rounds_completed(&self) -> u32 {
        self.next_round
    }

    /// Executes one global round through the observer stack.
    pub fn run_round(&mut self) -> RoundTrace {
        let mut observers: Vec<&mut dyn RoundObserver> =
            Vec::with_capacity(1 + self.observers.len());
        observers.push(&mut self.ledger);
        for o in &mut self.observers {
            observers.push(o.as_mut());
        }
        let mut ctx = RoundCtx::new(self.next_round, observers);
        let trace = self.protocol.run_round(&mut ctx);
        ctx.finish(&trace);
        self.next_round += 1;
        trace
    }

    /// Executes one round over an externally chosen participant set (see
    /// [`FederatedProtocol::run_round_external`]) through the same
    /// observer stack as [`Engine::run_round`]. Returns `None` — without
    /// consuming a round — if the protocol does not support external
    /// participant sets.
    pub fn run_round_external(&mut self, participants: &[u32]) -> Option<RoundTrace> {
        let mut observers: Vec<&mut dyn RoundObserver> =
            Vec::with_capacity(1 + self.observers.len());
        observers.push(&mut self.ledger);
        for o in &mut self.observers {
            observers.push(o.as_mut());
        }
        let mut ctx = RoundCtx::new(self.next_round, observers);
        let trace = self.protocol.run_round_external(&mut ctx, participants)?;
        ctx.finish(&trace);
        self.next_round += 1;
        Some(trace)
    }

    /// Runs the remaining configured rounds and returns their trace.
    pub fn run(&mut self) -> RunTrace {
        let mut trace = RunTrace::default();
        while self.next_round < self.protocol.configured_rounds() {
            trace.push(self.run_round());
        }
        trace
    }

    /// Evaluates the protocol's trained model with the paper's ranking
    /// protocol (rank all non-train items per test user), on the
    /// protocol's configured worker count.
    pub fn evaluate(&self, train: &Dataset, test: &Dataset, k: usize) -> RankingReport {
        evaluate_model_with_threads(
            self.protocol.recommender(),
            train,
            test,
            k,
            self.protocol.threads(),
        )
    }

    /// Runs up to the configured round budget, evaluating on `validation`
    /// after each round; stops when NDCG@`k` has not improved for
    /// `patience` consecutive rounds.
    ///
    /// The model is left in its *final* state (no best-round rollback):
    /// federated recommenders keep improving from accumulated knowledge,
    /// so the final state is almost always the best, and restoring would
    /// require snapshotting the (possibly hidden) model.
    pub fn run_with_early_stopping(
        &mut self,
        train: &Dataset,
        validation: &Dataset,
        k: usize,
        patience: u32,
    ) -> ConvergedRun {
        assert!(patience > 0, "patience must be at least 1 round");
        let mut trace = RunTrace::default();
        let mut best_ndcg = f64::NEG_INFINITY;
        let mut best_round = 0u32;
        let mut since_best = 0u32;
        let budget = self.protocol.configured_rounds();
        let mut stopped_early = false;
        // like `run`, only the *remaining* budget is spent, and `round`
        // is the engine's absolute index so `best_round` matches the
        // round numbers in the trace
        while self.next_round < budget {
            let round = self.next_round;
            trace.push(self.run_round());
            let ndcg = self.evaluate(train, validation, k).metrics.ndcg;
            if ndcg > best_ndcg {
                best_ndcg = ndcg;
                best_round = round;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    stopped_early = self.next_round < budget;
                    break;
                }
            }
        }
        ConvergedRun { trace, best_round, best_ndcg, stopped_early }
    }
}

impl<P: FederatedProtocol> std::fmt::Debug for Engine<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("protocol", &self.protocol.name())
            .field("rounds_completed", &self.next_round)
            .field("observers", &self.observers.len())
            .finish_non_exhaustive()
    }
}

impl<P: FederatedProtocol + 'static> Engine<P> {
    /// Type-erases the protocol so engines over different protocols can
    /// share one code path (`Engine<Box<dyn FederatedProtocol>>`). The
    /// ledger, observers, and round counter carry over unchanged.
    pub fn boxed(self) -> Engine<Box<dyn FederatedProtocol>> {
        Engine {
            protocol: Box::new(self.protocol),
            ledger: self.ledger,
            observers: self.observers,
            next_round: self.next_round,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::TraceRecorder;

    /// A deterministic toy protocol: every round, each of three clients
    /// uploads one triple and gets two scored items back; "validation
    /// NDCG" rises for `improving_rounds` rounds and then plateaus.
    struct MockProtocol {
        rounds: u32,
        done: u32,
        improving_rounds: u32,
        model: ConstModel,
    }

    struct ConstModel {
        score: f32,
    }

    impl Recommender for ConstModel {
        fn name(&self) -> &'static str {
            "Const"
        }
        fn num_users(&self) -> usize {
            3
        }
        fn num_items(&self) -> usize {
            4
        }
        fn num_params(&self) -> usize {
            1
        }
        fn score(&self, _user: u32, items: &[u32]) -> Vec<f32> {
            items.iter().map(|&i| self.score - i as f32 * 0.01).collect()
        }
        fn train_batch(&mut self, _batch: &[(u32, u32, f32)]) -> f32 {
            0.0
        }
    }

    impl FederatedProtocol for MockProtocol {
        fn name(&self) -> &'static str {
            "Mock"
        }

        fn configured_rounds(&self) -> u32 {
            self.rounds
        }

        fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
            let participants = [0u32, 1, 2];
            ctx.begin(&participants);
            for &c in &participants {
                ctx.upload(c, "mock-up", Payload::Triples { count: 1 });
                ctx.disperse(c, "mock-down", Payload::ScoredItems { count: 2 });
            }
            // the "model improves" for the first `improving_rounds` rounds
            if self.done < self.improving_rounds {
                self.model.score += 0.1;
            }
            let losses = [0.5, 0.5, 0.5];
            let trace = RoundTrace::new(self.done, &losses, 0.0, ctx.bytes());
            self.done += 1;
            trace
        }

        fn recommender(&self) -> &dyn Recommender {
            &self.model
        }
    }

    fn mock(rounds: u32, improving: u32) -> MockProtocol {
        MockProtocol {
            rounds,
            done: 0,
            improving_rounds: improving,
            model: ConstModel { score: 0.2 },
        }
    }

    #[test]
    fn engine_runs_configured_rounds_and_ledgers_traffic() {
        let mut engine = Engine::new(mock(4, 4));
        let trace = engine.run();
        assert_eq!(trace.num_rounds(), 4);
        assert_eq!(engine.rounds_completed(), 4);
        // 3 clients × (12B triple + 16B scored items) per round
        assert_eq!(trace.rounds[0].bytes, 3 * (12 + 16));
        assert_eq!(engine.ledger().summary().total_bytes, trace.total_bytes());
        assert_eq!(engine.ledger().summary().rounds, 4);
        // run() again is a no-op once the budget is spent
        assert_eq!(engine.run().num_rounds(), 0);
    }

    #[test]
    fn ledger_counts_message_free_trailing_rounds() {
        // regression: a protocol whose trailing rounds sample nobody (and
        // so send nothing) must still advance the ledger's round count —
        // it used to be derived from message tags alone, inflating
        // per-round traffic averages
        struct QuietTail {
            done: u32,
            model: ConstModel,
        }
        impl FederatedProtocol for QuietTail {
            fn name(&self) -> &'static str {
                "QuietTail"
            }
            fn configured_rounds(&self) -> u32 {
                4
            }
            fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
                if self.done == 0 {
                    ctx.begin(&[0]);
                    ctx.upload(0, "up", Payload::Triples { count: 1 });
                } else {
                    ctx.begin(&[]); // zero sampled participants
                }
                let trace = RoundTrace::new(self.done, &[], 0.0, ctx.bytes());
                self.done += 1;
                trace
            }
            fn recommender(&self) -> &dyn Recommender {
                &self.model
            }
        }
        let mut engine = Engine::new(QuietTail { done: 0, model: ConstModel { score: 0.5 } });
        engine.run();
        let s = engine.ledger().summary();
        assert_eq!(s.rounds, 4, "message-free rounds must count");
        assert_eq!(s.messages, 1);
    }

    #[test]
    fn manual_rounds_then_run_completes_the_budget() {
        let mut engine = Engine::new(mock(5, 5));
        engine.run_round();
        engine.run_round();
        let rest = engine.run();
        assert_eq!(rest.num_rounds(), 3);
        assert_eq!(engine.rounds_completed(), 5);
    }

    #[test]
    fn observers_see_every_hook() {
        #[derive(Default)]
        struct Counter {
            starts: std::rc::Rc<std::cell::RefCell<(u32, u32, u32, u32)>>,
        }
        impl RoundObserver for Counter {
            fn on_round_start(&mut self, _r: u32, _p: &[u32]) {
                self.starts.borrow_mut().0 += 1;
            }
            fn on_upload(&mut self, _m: &Message) {
                self.starts.borrow_mut().1 += 1;
            }
            fn on_disperse(&mut self, _m: &Message) {
                self.starts.borrow_mut().2 += 1;
            }
            fn on_round_end(&mut self, _t: &RoundTrace) {
                self.starts.borrow_mut().3 += 1;
            }
        }
        let counter = Counter::default();
        let counts = counter.starts.clone();
        let mut engine = Engine::new(mock(2, 2)).with_observer(counter);
        engine.run();
        assert_eq!(*counts.borrow(), (2, 6, 6, 2));
    }

    #[test]
    fn trace_recorder_matches_returned_trace() {
        let recorder = TraceRecorder::new();
        let mut engine = Engine::new(mock(3, 3)).with_observer(recorder.clone());
        let trace = engine.run();
        assert_eq!(recorder.trace(), trace);
    }

    #[test]
    fn boxed_engine_keeps_ledger_and_round_counter() {
        let mut engine = Engine::new(mock(3, 3));
        engine.run_round();
        let mut boxed: Engine<Box<dyn FederatedProtocol>> = engine.boxed();
        assert_eq!(boxed.rounds_completed(), 1);
        assert_eq!(boxed.protocol().name(), "Mock");
        let rest = boxed.run();
        assert_eq!(rest.num_rounds(), 2);
        assert_eq!(boxed.ledger().summary().rounds, 3);
    }

    #[test]
    fn early_stopping_stops_on_plateau() {
        let train = Dataset::from_user_items("t", 4, vec![vec![0], vec![0], vec![0]]);
        let validation = Dataset::from_user_items("v", 4, vec![vec![1], vec![1], vec![1]]);
        // improves for 3 rounds, then plateaus; patience 2 ⇒ stop at round 5
        let mut engine = Engine::new(mock(20, 3));
        let run = engine.run_with_early_stopping(&train, &validation, 2, 2);
        assert!(run.stopped_early, "plateau not detected");
        assert!(run.trace.num_rounds() < 20);
        assert!(run.best_ndcg.is_finite());
        assert!((run.best_round as usize) < run.trace.num_rounds());
    }

    #[test]
    fn early_stopping_respects_budget() {
        let train = Dataset::from_user_items("t", 4, vec![vec![0], vec![0], vec![0]]);
        let validation = Dataset::from_user_items("v", 4, vec![vec![1], vec![1], vec![1]]);
        let mut engine = Engine::new(mock(4, 99));
        let run = engine.run_with_early_stopping(&train, &validation, 2, 10);
        assert_eq!(run.trace.num_rounds(), 4);
        assert!(!run.stopped_early);
    }

    #[test]
    fn early_stopping_spends_only_the_remaining_budget() {
        // regression: manual rounds before early stopping must count
        // against the budget, and best_round must match trace numbering
        let train = Dataset::from_user_items("t", 4, vec![vec![0], vec![0], vec![0]]);
        let validation = Dataset::from_user_items("v", 4, vec![vec![1], vec![1], vec![1]]);
        let mut engine = Engine::new(mock(5, 99));
        engine.run_round();
        engine.run_round();
        let run = engine.run_with_early_stopping(&train, &validation, 2, 10);
        assert_eq!(run.trace.num_rounds(), 3, "only the remaining 3 rounds may run");
        assert_eq!(engine.rounds_completed(), 5);
        // best_round is an absolute engine round (2..=4), present in trace
        assert!(run.best_round >= 2);
        assert!(run.trace.rounds.iter().any(|r| r.round == run.best_round));
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn early_stopping_rejects_zero_patience() {
        let train = Dataset::from_user_items("t", 4, vec![vec![0]]);
        let mut engine = Engine::new(mock(2, 2));
        let _ = engine.run_with_early_stopping(&train, &train, 2, 0);
    }

    #[test]
    fn detached_ctx_observes_nothing_but_counts_bytes() {
        let mut ctx = RoundCtx::detached(7);
        assert_eq!(ctx.round(), 7);
        ctx.begin(&[0]);
        ctx.upload(0, "up", Payload::Triples { count: 2 });
        ctx.disperse(0, "down", Payload::Vector { len: 4 });
        assert_eq!(ctx.bytes(), 24 + 16);
    }
}
