//! # ptf-federated
//!
//! The federated-learning substrate shared by PTF-FedRec and the
//! parameter-transmission baselines:
//!
//! * [`client`] — per-client data partitions of a dataset (each user *is*
//!   a client in federated recommendation);
//! * [`sampler`] — per-round participant selection (`U^t ⊆ U`);
//! * [`sim`] — round-by-round run traces every protocol reports.

pub mod client;
pub mod sampler;
pub mod sim;

pub use client::{partition_clients, ClientData};
pub use sampler::Participation;
pub use sim::{RoundTrace, RunTrace};
