//! # ptf-federated
//!
//! The federated-learning substrate shared by PTF-FedRec and the
//! parameter-transmission baselines:
//!
//! * [`client`] — per-client data partitions of a dataset (each user *is*
//!   a client in federated recommendation);
//! * [`sampler`] — per-round participant selection (`U^t ⊆ U`);
//! * [`sim`] — round-by-round run traces every protocol reports;
//! * [`engine`] — the [`FederatedProtocol`] trait and the [`Engine`] that
//!   drives any protocol through a pluggable observer stack;
//! * [`observer`] — the [`RoundObserver`] hook API (communication ledger,
//!   JSON [`TraceRecorder`], custom sinks);
//! * [`scheduler`] — the deterministic parallel client [`Scheduler`] and
//!   the per-`(seed, round, stream)` RNG derivation every protocol's
//!   two-phase round loop is built on.

pub mod client;
pub mod engine;
pub mod observer;
pub mod sampler;
pub mod scheduler;
pub mod sim;

pub use client::{partition_clients, ClientData};
pub use engine::{ConvergedRun, Engine, FederatedProtocol, RoundCtx};
pub use observer::{RoundObserver, TraceRecorder};
pub use sampler::Participation;
pub use scheduler::{derive_seed, round_rng, RngStream, RoundScratch, Scheduler, ScratchPool};
pub use sim::{RoundTrace, RunTrace};
