//! Round observers — the engine's hook API.
//!
//! Everything that used to be baked into `PtfFedRec` (the communication
//! ledger, trace capture) now rides along as a [`RoundObserver`]: the
//! [`crate::Engine`] fires the hooks as its protocol reports wire traffic
//! through the [`crate::RoundCtx`], so adding a metric sink or a transport
//! probe is a one-file change that touches no protocol code.

use crate::sim::{RoundTrace, RunTrace};
use ptf_comm::{CommLedger, Message};
use std::cell::RefCell;
use std::rc::Rc;

/// Hooks fired around every global round of a federated run.
///
/// All methods default to no-ops, so an observer implements only what it
/// cares about. Hook order within one round: `on_round_start` once, then
/// any number of `on_upload`/`on_disperse` (in wire order), then
/// `on_round_end` with the finished [`RoundTrace`].
pub trait RoundObserver {
    /// A round began; `participants` are the sampled client ids.
    fn on_round_start(&mut self, _round: u32, _participants: &[u32]) {}

    /// A client → server message crossed the wire.
    fn on_upload(&mut self, _msg: &Message) {}

    /// A server → client message crossed the wire.
    fn on_disperse(&mut self, _msg: &Message) {}

    /// The round finished with `trace`.
    fn on_round_end(&mut self, _trace: &RoundTrace) {}
}

/// The communication ledger *is* an observer: it records every message it
/// sees, exactly as protocols used to record into a privately-owned
/// ledger, and counts rounds authoritatively from the engine's
/// round-start notification — so a round with an empty participant set
/// (no messages) still counts. [`crate::Engine`] wires one in by default.
impl RoundObserver for CommLedger {
    fn on_round_start(&mut self, round: u32, _participants: &[u32]) {
        self.begin_round(round);
    }

    fn on_upload(&mut self, msg: &Message) {
        self.record(msg);
    }

    fn on_disperse(&mut self, msg: &Message) {
        self.record(msg);
    }
}

/// Captures every [`RoundTrace`] and serializes the run as JSON — the
/// sink behind `ptf train --json`.
///
/// A `TraceRecorder` is a cheap shared handle (`Clone` shares the same
/// buffer), so callers keep one copy and hand the other to the engine:
///
/// ```
/// use ptf_federated::{RoundObserver, RoundTrace, TraceRecorder};
///
/// let recorder = TraceRecorder::new();
/// let mut observer = recorder.clone(); // give this one to the engine
/// observer.on_round_end(&RoundTrace::new(0, &[0.5], 0.1, 64));
/// assert_eq!(recorder.trace().num_rounds(), 1);
/// assert!(recorder.to_json().contains("\"round\":0"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceRecorder {
    rounds: Rc<RefCell<Vec<RoundTrace>>>,
}

impl TraceRecorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the rounds recorded so far.
    pub fn trace(&self) -> RunTrace {
        RunTrace { rounds: self.rounds.borrow().clone() }
    }

    /// The recorded rounds as a JSON array of round objects.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.trace()).expect("RunTrace serialization cannot fail")
    }
}

impl RoundObserver for TraceRecorder {
    fn on_round_end(&mut self, trace: &RoundTrace) {
        self.rounds.borrow_mut().push(*trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_comm::{Endpoint, Payload};

    fn msg(client: u32, up: bool) -> Message {
        let (from, to) = if up {
            (Endpoint::Client(client), Endpoint::Server)
        } else {
            (Endpoint::Server, Endpoint::Client(client))
        };
        Message { from, to, round: 0, label: "t", payload: Payload::Triples { count: 2 } }
    }

    #[test]
    fn ledger_observes_both_directions() {
        let mut ledger = CommLedger::new();
        ledger.on_upload(&msg(1, true));
        ledger.on_disperse(&msg(1, false));
        let s = ledger.summary();
        assert_eq!(s.messages, 2);
        assert_eq!(s.uploads_bytes, 24);
        assert_eq!(s.downloads_bytes, 24);
    }

    #[test]
    fn recorder_handles_share_one_buffer() {
        let recorder = TraceRecorder::new();
        let mut engine_side = recorder.clone();
        engine_side.on_round_end(&RoundTrace::new(0, &[0.4], 0.2, 10));
        engine_side.on_round_end(&RoundTrace::new(1, &[0.3], 0.1, 10));
        assert_eq!(recorder.trace().num_rounds(), 2);
        assert_eq!(recorder.trace().total_bytes(), 20);
    }

    #[test]
    fn recorder_json_is_a_full_run_trace() {
        let recorder = TraceRecorder::new();
        recorder.clone().on_round_end(&RoundTrace::new(0, &[0.5, 0.7], 0.3, 99));
        let json = recorder.to_json();
        for field in ["\"rounds\"", "\"mean_client_loss\"", "\"server_loss\"", "\"bytes\":99"] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn default_hooks_are_noops() {
        struct Inert;
        impl RoundObserver for Inert {}
        let mut o = Inert;
        o.on_round_start(0, &[1, 2]);
        o.on_upload(&msg(0, true));
        o.on_disperse(&msg(0, false));
        o.on_round_end(&RoundTrace::new(0, &[], 0.0, 0));
    }
}
