//! Per-round participant selection.

use rand::Rng;

/// Participation policy: which fraction of trainable clients joins a
/// round. The paper uses full participation (`fraction = 1.0`); partial
/// participation is supported for scalability studies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Participation {
    pub fraction: f64,
    /// Lower bound so tiny fractions still train someone.
    pub min_clients: usize,
}

impl Default for Participation {
    fn default() -> Self {
        Self { fraction: 1.0, min_clients: 1 }
    }
}

impl Participation {
    pub fn full() -> Self {
        Self::default()
    }

    /// Samples this round's participant set `U^t` from the trainable
    /// client ids. Full participation returns the input order unchanged
    /// (deterministic, no RNG consumption).
    pub fn sample(&self, trainable: &[u32], rng: &mut impl Rng) -> Vec<u32> {
        assert!((0.0..=1.0).contains(&self.fraction), "fraction must be in [0,1]");
        if trainable.is_empty() {
            return Vec::new();
        }
        if self.fraction >= 1.0 {
            return trainable.to_vec();
        }
        let want = ((trainable.len() as f64 * self.fraction).round() as usize)
            .max(self.min_clients.min(trainable.len()))
            .min(trainable.len());
        // partial Fisher–Yates over a copy
        let mut ids = trainable.to_vec();
        for i in 0..want {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        ids.truncate(want);
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn full_participation_keeps_everyone() {
        let ids: Vec<u32> = (0..10).collect();
        assert_eq!(Participation::full().sample(&ids, &mut rng()), ids);
    }

    #[test]
    fn fraction_selects_subset() {
        let ids: Vec<u32> = (0..100).collect();
        let p = Participation { fraction: 0.25, min_clients: 1 };
        let sel = p.sample(&ids, &mut rng());
        assert_eq!(sel.len(), 25);
        let mut dedup = sel.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 25, "duplicates selected");
        assert!(sel.iter().all(|&c| c < 100));
    }

    #[test]
    fn min_clients_floor() {
        let ids: Vec<u32> = (0..10).collect();
        let p = Participation { fraction: 0.01, min_clients: 3 };
        assert_eq!(p.sample(&ids, &mut rng()).len(), 3);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(Participation::full().sample(&[], &mut rng()).is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_bad_fraction() {
        let p = Participation { fraction: 1.5, min_clients: 1 };
        let _ = p.sample(&[1], &mut rng());
    }
}
