//! Client-side data partitions.

use ptf_data::Dataset;

/// One client's immutable private partition: the user's positive items.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientData {
    pub id: u32,
    /// Sorted positive item ids (the user's `D_i`).
    pub positives: Vec<u32>,
}

impl ClientData {
    /// True if the client has anything to train on.
    pub fn is_trainable(&self) -> bool {
        !self.positives.is_empty()
    }

    /// The item-embedding scope this partition justifies: exactly the
    /// client's positives. Sampled negatives and server-dispersed items
    /// materialize lazily on first touch, so a client model built from
    /// this scope holds only rows it has actually used.
    pub fn item_scope(&self, num_items: usize) -> ptf_tensor::ItemScope {
        // the validating constructor sorts/dedups/range-checks: ClientData's
        // fields are public, so hand-built partitions must not be able to
        // smuggle an unsorted or out-of-range id set past the binary-search
        // index invariants
        ptf_tensor::ItemScope::rows(num_items, self.positives.clone())
    }
}

/// Splits a training dataset into per-user client partitions. Every user
/// gets a client (possibly empty — such clients are skipped by the
/// participation sampler).
pub fn partition_clients(train: &Dataset) -> Vec<ClientData> {
    (0..train.num_users() as u32)
        .map(|u| ClientData { id: u, positives: train.user_items(u).to_vec() })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_follow_users() {
        let d = Dataset::from_user_items("d", 6, vec![vec![0, 3], vec![], vec![5]]);
        let clients = partition_clients(&d);
        assert_eq!(clients.len(), 3);
        assert_eq!(clients[0].positives, vec![0, 3]);
        assert!(!clients[1].is_trainable());
        assert_eq!(clients[2].id, 2);
        assert!(clients[2].is_trainable());
    }
}
