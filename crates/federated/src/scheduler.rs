//! Deterministic parallel client execution.
//!
//! Every protocol round in this workspace is a two-phase map/reduce:
//!
//! 1. **Parallel client phase** — each sampled participant's local work
//!    (training, negative sampling, upload construction) runs on a
//!    [`Scheduler`] worker, touching only client-local state plus
//!    read-only server state.
//! 2. **Serial aggregation phase** — the buffered per-client results are
//!    replayed on the caller's thread **in participant order**: wire
//!    events go into the [`crate::RoundCtx`] exactly as a serial loop
//!    would have emitted them, and server state is updated.
//!
//! # Why runs are bit-identical at any thread count
//!
//! Two things traditionally make parallel simulations drift:
//!
//! * **Shared RNG streams.** A single `StdRng` threaded through the
//!   client loop makes every draw depend on every previous client's draw
//!   count. This module replaces it with *derived streams*: each logical
//!   consumer gets its own generator seeded by [`round_rng`] from the
//!   triple `(master seed, round, stream)` via two rounds of
//!   SplitMix64-style finalization (see [`derive_seed`]). A client's
//!   stream depends only on *who it is and which round it is* — never on
//!   scheduling, thread count, or sibling clients.
//! * **Reduction order.** Floating-point accumulation does not commute
//!   bit-for-bit, so all cross-client reductions (loss averaging, delta
//!   aggregation, observer callbacks) happen in the serial phase in
//!   participant order. The parallel phase only produces per-client
//!   values; [`ptf_tensor::par`] returns them in input order regardless
//!   of which worker computed what.
//!
//! Together these give the headline guarantee: for a fixed seed, a run is
//! **byte-identical at 1, 2, or 64 threads** — serial execution is just
//! the `threads = 1` special case of the same code path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;

/// Reusable per-worker buffers for the parallel client phase.
///
/// Every protocol's hot path used to allocate fresh vectors per client
/// per round — negative-sample pools, training triples, score buffers,
/// upload staging. A `RoundScratch` owns all of them; workers check one
/// out of a [`ScratchPool`] for each client task, every consumer clears
/// a buffer before reading it, and capacities survive across rounds, so
/// a steady-state round allocates nothing on the client path (asserted
/// end-to-end by the release-mode allocator-shim test; see
/// `ptf_tensor::alloc`).
///
/// Reuse is observationally pure: results depend only on
/// `(client, round, seed)`, never on which warmed buffer served the task
/// — the determinism suite runs every protocol with pooling on and in
/// fresh-buffers mode ([`ScratchPool::fresh`]) and asserts bit-identical
/// traces.
#[derive(Default)]
pub struct RoundScratch {
    /// Sampled negative item ids ([`ptf_data::negative::sample_negatives_into`]).
    pub negatives: Vec<u32>,
    /// Sorted unique ids of the round's whole trained pool, handed to
    /// `Recommender::prepare_items` so scoped models batch-materialize
    /// their rows in one pass.
    pub pool_ids: Vec<u32>,
    /// Rejection-sampling workspace for negative sampling.
    pub seen: HashSet<u32>,
    /// `(user, item, label)` training triples.
    pub triples: Vec<(u32, u32, f32)>,
    /// `(item, label-or-score)` pairs (single-user sample lists).
    pub pairs: Vec<(u32, f32)>,
    /// Weighted `(user, item, weight)` edges for graph-model clients.
    pub edges: Vec<(u32, u32, f32)>,
    /// Model scores for the positive pool.
    pub scores_pos: Vec<f32>,
    /// Model scores for the negative pool.
    pub scores_neg: Vec<f32>,
    /// Scored positives (upload staging).
    pub scored_pos: Vec<(u32, f32)>,
    /// Scored negatives (upload staging).
    pub scored_neg: Vec<(u32, f32)>,
}

/// A shared checkout/restore pool of [`RoundScratch`] values — a thin
/// alias over the generic [`ptf_tensor::par::Pool`], constructed in
/// production (reusing) or fresh-buffers (debug) mode.
pub type ScratchPool = ptf_tensor::par::Pool<RoundScratch>;

/// A logical random stream within one `(seed, round)` scope.
///
/// Streams are spaced so that no two variants can collide for any client
/// id: the discriminant occupies the high bits of the mixed word while
/// the client id occupies the low 32.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RngStream {
    /// Participant sampling (one draw sequence per round).
    Participation,
    /// One client's local phase (training, negative sampling, defenses).
    Client(u32),
    /// Server-side training for the round.
    Server,
    /// Server-side dispersal targeted at one client.
    Disperse(u32),
    /// Sample shuffling in protocols that shuffle a global pool.
    Shuffle,
    /// Per-client model construction during the federation build (the
    /// parallel build derives one stream per client, so client `c`'s
    /// initial model never depends on how many siblings built before it).
    ClientInit(u32),
    /// Server model construction during the federation build.
    ServerInit,
}

impl RngStream {
    /// The stream discriminant mixed into [`derive_seed`] (public so
    /// callers outside the round loop — e.g. scoped model construction —
    /// can derive seeds on the same namespace without collisions).
    pub fn id(self) -> u64 {
        match self {
            Self::Participation => 0x0100_0000_0000,
            Self::Client(c) => 0x0200_0000_0000 | c as u64,
            Self::Server => 0x0300_0000_0000,
            Self::Disperse(c) => 0x0400_0000_0000 | c as u64,
            Self::Shuffle => 0x0500_0000_0000,
            Self::ClientInit(c) => 0x0600_0000_0000 | c as u64,
            Self::ServerInit => 0x0700_0000_0000,
            // 0x0800_0000_0000 is reserved by `ptf_data::scale::SCALE_STREAM`
            // (per-user synthetic row generation) — keep new variants clear
            // of it.
        }
    }
}

/// Mixes `(master, round, stream)` into one well-distributed 64-bit seed
/// — re-exported from [`ptf_tensor::rowtable`], which owns the
/// workspace's single SplitMix-style derivation primitive (scoped
/// embedding tables derive their per-row initializers from the same
/// function, which is what keeps scheduler-driven lazy materialization
/// deterministic).
pub use ptf_tensor::rowtable::derive_seed;

/// The per-round generator of one [`RngStream`] under `master`.
pub fn round_rng(master: u64, round: u32, stream: RngStream) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, round as u64, stream.id()))
}

/// A worker pool handle for the parallel client phase.
///
/// Thin wrapper over [`ptf_tensor::par`] carrying the resolved thread
/// count; protocols build one from their config's `threads` knob
/// (`0` = every hardware thread) and reuse it each round.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    threads: usize,
}

impl Scheduler {
    /// `requested == 0` resolves to the number of hardware threads.
    pub fn new(requested: usize) -> Self {
        Self { threads: ptf_tensor::par::resolve_threads(requested) }
    }

    /// The resolved worker count (≥ 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Ordered parallel map over mutably borrowed per-client state.
    pub fn map_clients<T, R, F>(self, clients: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        ptf_tensor::par::map_slice_mut(self.threads, clients, f)
    }

    /// Ordered parallel map over `0..n` (e.g. one task per user).
    pub fn map_indices<R, F>(self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ptf_tensor::par::map_indices(self.threads, n, f)
    }

    /// [`Scheduler::map_clients`] with a per-task [`RoundScratch`] checked
    /// out of `pool` — the allocation-free client phase every protocol's
    /// round loop runs on.
    pub fn map_clients_with<T, R, F>(self, pool: &ScratchPool, clients: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut RoundScratch, usize, &mut T) -> R + Sync,
    {
        ptf_tensor::par::map_slice_mut(self.threads, clients, |i, t| {
            let mut scratch = pool.checkout();
            let out = f(&mut scratch, i, t);
            pool.restore(scratch);
            out
        })
    }

    /// [`Scheduler::map_indices`] with a per-task [`RoundScratch`].
    pub fn map_indices_with<R, F>(self, pool: &ScratchPool, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(&mut RoundScratch, usize) -> R + Sync,
    {
        ptf_tensor::par::map_indices(self.threads, n, |i| {
            let mut scratch = pool.checkout();
            let out = f(&mut scratch, i);
            pool.restore(scratch);
            out
        })
    }
}

impl Default for Scheduler {
    /// All hardware threads.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn streams_are_disjoint_within_a_round() {
        let mut seeds = vec![
            derive_seed(7, 0, RngStream::Participation.id()),
            derive_seed(7, 0, RngStream::Server.id()),
            derive_seed(7, 0, RngStream::Shuffle.id()),
        ];
        seeds.push(derive_seed(7, 0, RngStream::ServerInit.id()));
        for c in 0..100u32 {
            seeds.push(derive_seed(7, 0, RngStream::Client(c).id()));
            seeds.push(derive_seed(7, 0, RngStream::Disperse(c).id()));
            seeds.push(derive_seed(7, 0, RngStream::ClientInit(c).id()));
        }
        let n = seeds.len();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), n, "derived seeds collided");
    }

    #[test]
    fn derivation_depends_on_every_input() {
        let base = derive_seed(1, 2, 3);
        assert_ne!(base, derive_seed(2, 2, 3));
        assert_ne!(base, derive_seed(1, 3, 3));
        assert_ne!(base, derive_seed(1, 2, 4));
        assert_eq!(base, derive_seed(1, 2, 3));
    }

    #[test]
    fn client_stream_is_independent_of_other_clients() {
        // the whole point: client 5's stream is the same whether clients
        // 0..4 ran before it or not (no shared generator state)
        let mut a = round_rng(11, 3, RngStream::Client(5));
        let _burn: Vec<u64> =
            (0..40).map(|c| round_rng(11, 3, RngStream::Client(c)).gen()).collect();
        let mut b = round_rng(11, 3, RngStream::Client(5));
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn scheduler_resolves_thread_knob() {
        assert!(Scheduler::new(0).threads() >= 1);
        assert_eq!(Scheduler::new(4).threads(), 4);
        assert_eq!(Scheduler::default().threads(), Scheduler::new(0).threads());
    }

    #[test]
    fn scratch_map_is_pure_across_pool_modes_and_threads() {
        // the pooled map must be bit-identical to the fresh-buffers map at
        // any thread count — buffers only change where bytes live
        let run = |threads: usize, pool: &ScratchPool| {
            let mut state: Vec<u32> = (0..23).collect();
            Scheduler::new(threads).map_clients_with(pool, &mut state, |s, i, c| {
                let mut rng = round_rng(9, 1, RngStream::Client(i as u32));
                s.negatives.clear();
                s.negatives.extend((0..*c).map(|_| rng.gen_range(0..100u32)));
                *c += 1;
                s.negatives.iter().map(|&x| x as u64).sum::<u64>() ^ *c as u64
            })
        };
        let baseline = run(1, &ScratchPool::fresh());
        for threads in [1, 2, 8] {
            assert_eq!(run(threads, &ScratchPool::new()), baseline, "{threads} threads pooled");
            assert_eq!(run(threads, &ScratchPool::fresh()), baseline, "{threads} threads fresh");
        }
    }

    #[test]
    fn map_clients_is_ordered_at_any_thread_count() {
        let run = |threads| {
            let mut state: Vec<u64> = (0..17).collect();
            Scheduler::new(threads).map_clients(&mut state, |i, s| {
                let mut rng = round_rng(5, 0, RngStream::Client(i as u32));
                *s += 1;
                rng.gen::<u64>() ^ *s
            })
        };
        let serial = run(1);
        for t in [2, 4, 8] {
            assert_eq!(run(t), serial, "{t} threads");
        }
    }
}
