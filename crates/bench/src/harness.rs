//! Shared plumbing for the experiment binaries.

use ptf_baselines::{CentralizedConfig, FcfConfig, FedMfConfig, MetaMfConfig};
use ptf_core::{Federation, PtfConfig, PtfFedRec};
use ptf_data::{DatasetPreset, Scale, TrainTestSplit};
use ptf_federated::{Engine, FederatedProtocol};
use ptf_models::{ModelHyper, ModelKind};
use ptf_privacy::TopGuessAttack;
use rand::SeedableRng;
use serde::Serialize;
use std::io::Write as _;

/// Evaluation cut-off: the paper reports Recall@20 / NDCG@20.
pub const EVAL_K: usize = 20;

/// Experiment scale from `PTF_SCALE` (default small).
pub fn scale() -> Scale {
    Scale::from_env()
}

/// Master seed from `PTF_SEED` (default 2024).
pub fn seed() -> u64 {
    std::env::var("PTF_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2024)
}

/// Generates a preset dataset, deterministically per preset.
pub fn dataset_for(preset: DatasetPreset, scale: Scale) -> ptf_data::Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed() ^ preset_salt(preset));
    preset.generate(scale, &mut rng)
}

/// Generates a preset and splits it 8:2, deterministically per preset.
pub fn split_for(preset: DatasetPreset, scale: Scale) -> TrainTestSplit {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed() ^ preset_salt(preset));
    let data = preset.generate(scale, &mut rng);
    TrainTestSplit::split_80_20(&data, &mut rng)
}

fn preset_salt(preset: DatasetPreset) -> u64 {
    match preset {
        DatasetPreset::MovieLens100K => 0x4D4C,
        DatasetPreset::Steam200K => 0x5354,
        DatasetPreset::Gowalla => 0x474F,
    }
}

/// Model hyperparameters per scale.
pub fn hyper(scale: Scale) -> ModelHyper {
    match scale {
        Scale::Paper => ModelHyper::default(),
        Scale::Small => ModelHyper::small(),
    }
}

/// PTF-FedRec configuration per scale. `PTF_ROUNDS` overrides the round
/// budget for quick sensitivity checks.
pub fn ptf_config(scale: Scale) -> PtfConfig {
    let mut cfg = match scale {
        Scale::Paper => PtfConfig::paper(),
        Scale::Small => PtfConfig::small(),
    };
    cfg.seed = seed();
    if let Some(r) = std::env::var("PTF_ROUNDS").ok().and_then(|s| s.parse().ok()) {
        cfg.rounds = r;
    }
    cfg
}

/// FCF configuration per scale.
pub fn fcf_config(scale: Scale) -> FcfConfig {
    let mut cfg = match scale {
        Scale::Paper => FcfConfig::default(),
        Scale::Small => FcfConfig::small(),
    };
    cfg.seed = seed() ^ 0xFCF;
    cfg
}

/// FedMF configuration per scale.
pub fn fedmf_config(scale: Scale) -> FedMfConfig {
    let mut cfg = match scale {
        Scale::Paper => FedMfConfig::default(),
        Scale::Small => FedMfConfig::small(),
    };
    cfg.base.seed = seed() ^ 0xFED;
    cfg
}

/// MetaMF configuration per scale.
pub fn metamf_config(scale: Scale) -> MetaMfConfig {
    let mut cfg = match scale {
        Scale::Paper => MetaMfConfig::default(),
        Scale::Small => MetaMfConfig::small(),
    };
    cfg.seed = seed() ^ 0x4D4D;
    cfg
}

/// Centralized configuration per scale.
pub fn centralized_config(scale: Scale) -> CentralizedConfig {
    let mut cfg = match scale {
        Scale::Paper => CentralizedConfig::default(),
        Scale::Small => CentralizedConfig::small(),
    };
    cfg.seed = seed() ^ 0xCE;
    cfg
}

/// Builds a PTF-FedRec federation engine without running it.
pub fn build_ptf(
    split: &TrainTestSplit,
    client_kind: ModelKind,
    server_kind: ModelKind,
    cfg: PtfConfig,
    hyper: &ModelHyper,
) -> Engine<PtfFedRec> {
    Federation::builder(&split.train)
        .client_model(client_kind)
        .server_model(server_kind)
        .hyper(hyper.clone())
        .config(cfg)
        .build()
        .expect("harness config is valid")
}

/// Builds and runs a PTF-FedRec federation to completion.
pub fn run_ptf(
    split: &TrainTestSplit,
    client_kind: ModelKind,
    server_kind: ModelKind,
    cfg: PtfConfig,
    hyper: &ModelHyper,
) -> Engine<PtfFedRec> {
    let mut fed = build_ptf(split, client_kind, server_kind, cfg, hyper);
    fed.run();
    fed
}

/// Runs any protocol to completion through the shared engine path.
pub fn run_protocol(protocol: Box<dyn FederatedProtocol>) -> Engine<Box<dyn FederatedProtocol>> {
    let mut engine = Engine::new(protocol);
    engine.run();
    engine
}

/// Mean Top-Guess-Attack F1 over the final round's uploads (Table V).
pub fn attack_f1(fed: &Engine<PtfFedRec>) -> f64 {
    let attack = TopGuessAttack::default();
    attack.mean_f1(
        fed.protocol()
            .last_uploads()
            .iter()
            .map(|u| (u.predictions.as_slice(), u.audit_positives.as_slice())),
    )
}

/// The LDP budget used for the Table V comparison row
/// (`PTF_LDP_EPS`, default 5.0 — the paper does not state its ε; 5.0 lands
/// the attack F1 between the sampling rows as in Table V).
pub fn ldp_epsilon() -> f64 {
    std::env::var("PTF_LDP_EPS").ok().and_then(|s| s.parse().ok()).unwrap_or(5.0)
}

/// The four defense rows of Table V.
pub fn defense_rows() -> [ptf_core::DefenseKind; 4] {
    use ptf_core::DefenseKind;
    [
        DefenseKind::NoDefense,
        DefenseKind::Ldp { epsilon: ldp_epsilon() },
        DefenseKind::Sampling,
        DefenseKind::SamplingSwapping,
    ]
}

/// Runs PTF-FedRec(NGCF) under one defense; returns `(attack F1, NDCG@20)`.
/// Shared by Tables V and VI.
pub fn privacy_run(
    split: &TrainTestSplit,
    defense: ptf_core::DefenseKind,
    scale: Scale,
) -> (f64, f64) {
    let mut cfg = ptf_config(scale);
    cfg.defense = defense;
    let h = hyper(scale);
    let fed = run_ptf(split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
    let ndcg = fed.evaluate(&split.train, &split.test, EVAL_K).metrics.ndcg;
    (attack_f1(&fed), ndcg)
}

/// A printable/serializable experiment table.
#[derive(Serialize)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let _ = writeln!(out, "\n=== {} ===", self.title);
        let header: Vec<String> =
            self.headers.iter().zip(&widths).map(|(h, w)| format!("{h:<w$}")).collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> =
                row.iter().zip(&widths).map(|(c, w)| format!("{c:<w$}")).collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
    }

    /// Writes the table as JSON under `<workspace>/experiments/<name>.json`.
    pub fn save(&self, name: &str) {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../experiments");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.json"));
        if let Ok(json) = serde_json::to_string_pretty(self) {
            let _ = std::fs::write(&path, json);
            println!("[saved {}]", path.display());
        }
    }
}

/// Formats a metric to the paper's 4-decimal style.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_align_with_headers() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn configs_inherit_master_seed() {
        assert_eq!(ptf_config(Scale::Small).seed, seed());
        assert_eq!(fcf_config(Scale::Small).seed, seed() ^ 0xFCF);
    }

    #[test]
    fn split_is_deterministic_per_preset() {
        let a = split_for(DatasetPreset::MovieLens100K, Scale::Small);
        let b = split_for(DatasetPreset::MovieLens100K, Scale::Small);
        assert_eq!(a.train, b.train);
    }
}
