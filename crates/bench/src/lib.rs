//! # ptf-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§IV). Each `benches/tableN_*.rs` / `benches/figN_*.rs`
//! target is a standalone binary (`harness = false`) that prints the
//! paper-formatted rows and writes machine-readable JSON next to the
//! workspace root under `experiments/`.
//!
//! Scale is controlled by `PTF_SCALE` (`small` default, `paper` for
//! Table II sized runs) and the master seed by `PTF_SEED`.

pub mod harness;

pub use harness::*;
