//! Criterion micro-benchmarks of protocol building blocks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ptf_core::{build_upload, DefenseKind, Federation, PtfConfig};
use ptf_data::SyntheticConfig;
use ptf_models::{ModelHyper, ModelKind};
use ptf_privacy::{SamplingConfig, ScoredItem, TopGuessAttack};
use rand::SeedableRng;

fn bench_upload_construction(c: &mut Criterion) {
    let pos: Vec<ScoredItem> = (0..100).map(|i| (i, 0.9 - i as f32 * 0.001)).collect();
    let neg: Vec<ScoredItem> = (100..500).map(|i| (i, 0.1)).collect();
    c.bench_function("build_upload_sampling_swapping_500items", |bench| {
        bench.iter_batched(
            || (pos.clone(), neg.clone(), rand::rngs::StdRng::seed_from_u64(1)),
            |(p, n, mut rng)| {
                std::hint::black_box(build_upload(
                    0,
                    p,
                    n,
                    DefenseKind::SamplingSwapping,
                    &SamplingConfig::default(),
                    0.1,
                    &mut rng,
                ))
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_top_guess_attack(c: &mut Criterion) {
    let upload: Vec<ScoredItem> = (0..1000).map(|i| (i, ((i * 37) % 100) as f32 / 100.0)).collect();
    let truth: Vec<u32> = (0..200).collect();
    let attack = TopGuessAttack::default();
    c.bench_function("top_guess_attack_1000items", |bench| {
        bench.iter(|| std::hint::black_box(attack.evaluate(&upload, &truth)));
    });
}

fn bench_protocol_round(c: &mut Criterion) {
    let data = SyntheticConfig::new("bench", 24, 60, 10.0)
        .generate(&mut rand::rngs::StdRng::seed_from_u64(2));
    let mut cfg = PtfConfig::small();
    cfg.rounds = 1;
    cfg.client_epochs = 1;
    c.bench_function("ptf_round_24clients_neumf_ngcf", |bench| {
        bench.iter_batched(
            || {
                Federation::builder(&data)
                    .client_model(ModelKind::NeuMf)
                    .server_model(ModelKind::Ngcf)
                    .hyper(ModelHyper::small())
                    .config(cfg.clone())
                    .build()
                    .expect("bench config is valid")
            },
            |mut fed| std::hint::black_box(fed.run_round()),
            BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_upload_construction, bench_top_guess_attack, bench_protocol_round
}
criterion_main!(benches);
