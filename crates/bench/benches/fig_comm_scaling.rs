//! Extension figure (§III-C2) — how communication scales with catalogue
//! size and embedding dimension.
//!
//! Parameter-transmission costs grow linearly in `|V|·d` (and FedMF's in
//! ciphertext width); PTF-FedRec's cost depends only on the user's profile
//! length and α — flat in both axes. Computed from the same wire-size
//! model the ledgers use.

use ptf_bench::Table;
use ptf_comm::{format_bytes, Payload};

/// Expected PTF upload size: E[β]·len·(1+E[γ]) triples + α downloaded.
fn ptf_bytes(avg_profile_len: f64, alpha: usize) -> f64 {
    let expected_beta = 0.55; // mean of U[0.1, 1]
    let expected_gamma = 2.5; // mean of U[1, 4]
    let uploaded = expected_beta * avg_profile_len * (1.0 + expected_gamma);
    let up = Payload::Triples { count: uploaded.round() as usize }.bytes() as f64;
    let down = Payload::Triples { count: alpha }.bytes() as f64;
    up + down
}

fn main() {
    let dims = [32usize, 64, 128];
    let item_counts = [1_682usize, 10_086, 100_000, 1_000_000];
    let avg_len = 46.0; // Gowalla-like profile
    let alpha = 30;

    let mut table = Table::new(
        "Comm scaling — per-client per-round bytes vs catalogue size and dim",
        &["Items", "dim", "FCF", "FedMF(64B ct)", "MetaMF", "PTF-FedRec"],
    );
    for &v in &item_counts {
        for &d in &dims {
            let fcf = 2.0 * Payload::DenseMatrix { rows: v, cols: d + 1 }.bytes() as f64;
            let fedmf =
                2.0 * Payload::Ciphertexts { count: v * (d + 1), bytes_each: 64 }.bytes() as f64;
            let metamf = 2.0
                * (Payload::DenseMatrix { rows: v, cols: d }.bytes()
                    + Payload::Vector { len: d }.bytes()) as f64;
            table.row(vec![
                v.to_string(),
                d.to_string(),
                format_bytes(fcf),
                format_bytes(fedmf),
                format_bytes(metamf),
                format_bytes(ptf_bytes(avg_len, alpha)),
            ]);
        }
    }
    table.print();
    table.save("fig_comm_scaling");
    println!("\n(PTF-FedRec stays flat: its column never changes with |V| or dim)");
}
