//! Table VII — ablation of the confidence-based hard D̃ᵢ construction.
//!
//! Replaces the confidence share, the hard share, or both with uniform
//! random item selection and measures the drop in server-model ranking
//! quality.

use ptf_bench::*;
use ptf_core::DisperseStrategy;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let mut table = Table::new(
        format!(
            "Table VII — D̃ construction ablation, Recall@{EVAL_K}/NDCG@{EVAL_K} ({scale:?} scale)"
        ),
        &["Method", "ML R", "ML N", "Steam R", "Steam N", "Gowalla R", "Gowalla N"],
    );
    let mut cells: Vec<Vec<String>> =
        DisperseStrategy::ALL.iter().map(|s| vec![s.name().to_string()]).collect();

    for preset in DatasetPreset::ALL {
        let split = split_for(preset, scale);
        for (row, &strategy) in DisperseStrategy::ALL.iter().enumerate() {
            eprintln!("[table7] {} with {}", preset.name(), strategy.name());
            let mut cfg = ptf_config(scale);
            cfg.disperse = strategy;
            let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
            let r = fed.evaluate(&split.train, &split.test, EVAL_K);
            cells[row].push(fmt4(r.metrics.recall));
            cells[row].push(fmt4(r.metrics.ndcg));
        }
    }

    for row in cells {
        table.row(row);
    }
    table.print();
    table.save("table7_ablation");
    println!(
        "\n(paper ML-100K Recall@20: full 0.1623, -hard 0.1611, \
         -confidence 0.1602, -confidence -hard 0.1566)"
    );
}
