//! Fig. 4 — impact of the dispersed-set size α on model performance.
//!
//! Too little server knowledge starves the clients; too much drowns their
//! local signal. The paper's peak sits at α = 50 (ML/Steam) and α = 30
//! (Gowalla).

use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let alphas = [10usize, 30, 50, 70, 90];

    let mut table = Table::new(
        format!("Fig. 4 — NDCG@{EVAL_K} vs dispersed set size α ({scale:?} scale)"),
        &["Dataset", "alpha=10", "alpha=30", "alpha=50", "alpha=70", "alpha=90"],
    );

    for preset in DatasetPreset::ALL {
        let split = split_for(preset, scale);
        let mut row = vec![preset.name().to_string()];
        for &alpha in &alphas {
            eprintln!("[fig4] {} alpha={alpha}", preset.name());
            let mut cfg = ptf_config(scale);
            cfg.alpha = alpha;
            let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
            let r = fed.evaluate(&split.train, &split.test, EVAL_K);
            row.push(fmt4(r.metrics.ndcg));
        }
        table.row(row);
    }

    table.print();
    table.save("fig4_alpha");
    println!("\n(paper: rise-then-fall, peaking at α=50 for ML/Steam, α=30 for Gowalla)");
}
