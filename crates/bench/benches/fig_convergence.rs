//! Extension experiment — convergence of the hidden server model.
//!
//! NDCG@20 after every global round for each server architecture,
//! justifying the paper's 20-round budget.

use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let split = split_for(DatasetPreset::MovieLens100K, scale);
    let rounds = ptf_config(scale).rounds;

    let mut table = Table::new(
        format!("Convergence — per-round NDCG@{EVAL_K}, MovieLens ({scale:?} scale)"),
        &["round", "NeuMF server", "NGCF server", "LightGCN server"],
    );
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for server in ModelKind::ALL {
        eprintln!("[convergence] server={}", server.name());
        let mut cfg = ptf_config(scale);
        cfg.rounds = rounds;
        let mut fed = build_ptf(&split, ModelKind::NeuMf, server, cfg, &h);
        let mut curve = Vec::with_capacity(rounds as usize);
        for _ in 0..rounds {
            fed.run_round();
            curve.push(fed.evaluate(&split.train, &split.test, EVAL_K).metrics.ndcg);
        }
        columns.push(curve);
    }
    for (r, ((a, b), c)) in columns[0].iter().zip(&columns[1]).zip(&columns[2]).enumerate() {
        table.row(vec![(r + 1).to_string(), fmt4(*a), fmt4(*b), fmt4(*c)]);
    }
    table.print();
    table.save("fig_convergence");
}
