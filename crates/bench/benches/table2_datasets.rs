//! Table II — statistics of the three evaluation datasets.
//!
//! Regenerates the synthetic equivalents and prints their statistics next
//! to the published values so the calibration is auditable.

use ptf_bench::{dataset_for, scale, Table};
use ptf_data::{DatasetPreset, DatasetStats, Scale};

fn main() {
    let scale = scale();
    let mut table = Table::new(
        format!("Table II — dataset statistics ({scale:?} scale)"),
        &["Dataset", "Users", "Items", "Interactions", "AvgLen", "Density%", "Paper(U/I/Inter)"],
    );
    for preset in DatasetPreset::ALL {
        eprintln!("[table2] generating {}", preset.name());
        let stats = DatasetStats::of(&dataset_for(preset, scale));
        let paper_ref = match preset {
            DatasetPreset::MovieLens100K => "943 / 1,682 / 100,000",
            DatasetPreset::Steam200K => "3,753 / 5,134 / 114,713",
            DatasetPreset::Gowalla => "8,392 / 10,086 / 391,238",
        };
        table.row(vec![
            stats.name.clone(),
            stats.users.to_string(),
            stats.items.to_string(),
            stats.interactions.to_string(),
            format!("{:.1}", stats.avg_length),
            format!("{:.2}", stats.density_pct),
            paper_ref.to_string(),
        ]);
    }
    table.print();
    table.save("table2_datasets");
    if scale == Scale::Small {
        println!("\n(small scale: ~20x reduced; run with PTF_SCALE=paper for Table II sizes)");
    }
}
