//! Criterion micro-benchmarks of the tensor substrate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ptf_tensor::prelude::*;
use ptf_tensor::test_rng;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = test_rng(1);
    let a = Matrix::randn(128, 128, 1.0, &mut rng);
    let b = Matrix::randn(128, 128, 1.0, &mut rng);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)));
    });
}

fn bench_spmm(c: &mut Criterion) {
    let mut rng = test_rng(2);
    // ~1% dense 1000×1000 adjacency × 1000×32 embeddings
    let triplets: Vec<(u32, u32, f32)> =
        (0..10_000).map(|k| (((k * 37) % 1000) as u32, ((k * 91) % 1000) as u32, 0.5)).collect();
    let m = Csr::from_triplets(1000, 1000, &triplets);
    let x = Matrix::randn(1000, 32, 1.0, &mut rng);
    c.bench_function("spmm_1000x1000_nnz10k_d32", |bench| {
        bench.iter(|| std::hint::black_box(m.matmul(&x)));
    });
}

fn bench_mlp_train_step(c: &mut Criterion) {
    // a NeuMF-shaped forward+backward+Adam step on a 64-row batch
    let mut rng = test_rng(3);
    let mut params = Params::new();
    let emb_u = params.push("eu", Matrix::randn(1000, 32, 0.1, &mut rng));
    let emb_v = params.push("ev", Matrix::randn(2000, 32, 0.1, &mut rng));
    let w1 = params.push("w1", Matrix::randn(64, 64, 0.1, &mut rng));
    let w2 = params.push("w2", Matrix::randn(64, 1, 0.1, &mut rng));
    let users: Vec<u32> = (0..64).map(|i| i % 1000).collect();
    let items: Vec<u32> = (0..64).map(|i| (i * 7) % 2000).collect();
    let labels: Vec<f32> = (0..64).map(|i| (i % 2) as f32).collect();
    let adam = Adam::with_defaults(&params, 1e-3);

    c.bench_function("neumf_shaped_train_step_batch64", |bench| {
        bench.iter_batched(
            || (params.clone(), adam.clone()),
            |(mut p, mut opt)| {
                let grads = {
                    let mut g = Graph::new(&p);
                    let eu = g.param(emb_u);
                    let ev = g.param(emb_v);
                    let u = g.gather(eu, &users);
                    let v = g.gather(ev, &items);
                    let h = g.concat_cols(u, v);
                    let w1v = g.param(w1);
                    let h = g.matmul(h, w1v);
                    let h = g.relu(h);
                    let w2v = g.param(w2);
                    let o = g.matmul(h, w2v);
                    let loss = g.bce_with_logits(o, &labels);
                    g.backward(loss)
                };
                opt.step(&mut p, &grads);
                std::hint::black_box(p.num_scalars())
            },
            BatchSize::SmallInput,
        );
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_matmul, bench_spmm, bench_mlp_train_step
}
criterion_main!(benches);
