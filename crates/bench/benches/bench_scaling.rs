//! Wall-clock scaling of the parallel client scheduler.
//!
//! Runs the same synthetic PTF-FedRec workload at 1, 2, and 4 worker
//! threads, reports rounds/second for each, and asserts (softly — by
//! printing, not failing) the expected speedup. Because the scheduler is
//! deterministic, every configuration trains the *same* federation
//! bit-for-bit, so the rows are directly comparable.
//!
//! Writes `BENCH_scaling.json` at the workspace root:
//! `{threads, rounds, seconds, rounds_per_sec, speedup_vs_serial}` per
//! row, plus the host's hardware thread count. Scale knobs: `PTF_SEED`,
//! `PTF_BENCH_USERS`, `PTF_BENCH_ROUNDS`.

use ptf_bench::{fmt4, Table};
use ptf_core::{Federation, PtfConfig};
use ptf_data::{SyntheticConfig, TrainTestSplit};
use ptf_models::{ModelHyper, ModelKind};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ScalingRow {
    threads: usize,
    rounds: u32,
    seconds: f64,
    rounds_per_sec: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct ScalingReport {
    hardware_threads: usize,
    users: usize,
    rows: Vec<ScalingRow>,
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let users = env_usize("PTF_BENCH_USERS", 120);
    let rounds = env_usize("PTF_BENCH_ROUNDS", 3) as u32;
    let seed = env_usize("PTF_SEED", 2024) as u64;

    let data = SyntheticConfig::new("scaling", users, users * 2, 14.0)
        .generate(&mut ptf_data::test_rng(seed));
    let split = TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(seed ^ 1));

    let time_run = |threads: usize| -> f64 {
        let mut cfg = PtfConfig::small();
        cfg.rounds = rounds;
        cfg.client_epochs = 2;
        cfg.seed = seed;
        cfg.threads = threads;
        let mut fed = Federation::builder(&split.train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("bench config is valid");
        let start = Instant::now();
        let trace = fed.run();
        let secs = start.elapsed().as_secs_f64();
        assert_eq!(trace.num_rounds(), rounds as usize);
        secs
    };

    // warm-up (page in the binary, allocate model buffers once)
    let _ = time_run(1);

    let mut rows = Vec::new();
    let mut serial_rps = 0.0f64;
    for threads in [1usize, 2, 4] {
        let seconds = time_run(threads);
        let rps = rounds as f64 / seconds;
        if threads == 1 {
            serial_rps = rps;
        }
        rows.push(ScalingRow {
            threads,
            rounds,
            seconds,
            rounds_per_sec: rps,
            speedup_vs_serial: if serial_rps > 0.0 { rps / serial_rps } else { 0.0 },
        });
    }

    let mut table = Table::new(
        "Scheduler scaling (PTF-FedRec, synthetic)",
        &["threads", "rounds/sec", "speedup"],
    );
    for row in &rows {
        table.row(vec![
            row.threads.to_string(),
            fmt4(row.rounds_per_sec),
            fmt4(row.speedup_vs_serial),
        ]);
    }
    table.print();

    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if hardware < 4 {
        println!(
            "[note: only {hardware} hardware thread(s) — speedups are only \
             meaningful on multi-core hosts]"
        );
    }

    let report = ScalingReport { hardware_threads: hardware, users, rows };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_scaling.json");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if std::fs::write(&path, json).is_ok() {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize scaling report: {e}"),
    }
}
