//! Fig. 3 — sensitivity of the privacy mechanism's hyperparameters.
//!
//! Sweeps the β sampling range, the γ sampling range and the swap
//! fraction λ, reporting NDCG@20 (utility) and Top-Guess F1 (leakage) per
//! setting on all three datasets.

use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let mut table = Table::new(
        format!("Fig. 3 — privacy hyperparameter sweeps ({scale:?} scale)"),
        &["Dataset", "Parameter", "Setting", "NDCG@20", "Attack F1"],
    );

    let beta_lows = [0.1, 0.3, 0.5, 0.7];
    let gamma_lows = [1.0, 2.0, 3.0, 4.0];
    let lambdas = [0.05, 0.1, 0.15, 0.2];

    for preset in DatasetPreset::ALL {
        let split = split_for(preset, scale);

        for &beta_lo in &beta_lows {
            eprintln!("[fig3] {} beta=[{beta_lo},1]", preset.name());
            let mut cfg = ptf_config(scale);
            cfg.sampling.beta_range = (beta_lo, 1.0);
            let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
            let ndcg = fed.evaluate(&split.train, &split.test, EVAL_K).metrics.ndcg;
            table.row(vec![
                preset.name().into(),
                "beta".into(),
                format!("[{beta_lo},1]"),
                fmt4(ndcg),
                fmt4(attack_f1(&fed)),
            ]);
        }

        for &gamma_lo in &gamma_lows {
            eprintln!("[fig3] {} gamma=[{gamma_lo},4]", preset.name());
            let mut cfg = ptf_config(scale);
            cfg.sampling.gamma_range = (gamma_lo, 4.0);
            let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
            let ndcg = fed.evaluate(&split.train, &split.test, EVAL_K).metrics.ndcg;
            table.row(vec![
                preset.name().into(),
                "gamma".into(),
                format!("[{gamma_lo},4]"),
                fmt4(ndcg),
                fmt4(attack_f1(&fed)),
            ]);
        }

        for &lambda in &lambdas {
            eprintln!("[fig3] {} lambda={lambda}", preset.name());
            let mut cfg = ptf_config(scale);
            cfg.lambda = lambda;
            let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
            let ndcg = fed.evaluate(&split.train, &split.test, EVAL_K).metrics.ndcg;
            table.row(vec![
                preset.name().into(),
                "lambda".into(),
                format!("{lambda}"),
                fmt4(ndcg),
                fmt4(attack_f1(&fed)),
            ]);
        }
    }

    table.print();
    table.save("fig3_hyperparams");
    println!(
        "\n(paper trends: wider beta floor ⇒ both NDCG and F1 rise; \
         narrower gamma range ⇒ F1 recovers; larger lambda ⇒ both drop)"
    );
}
