//! Table V — Top Guess Attack F1 and model NDCG under each defense.
//!
//! The server attacks every client's final-round upload by declaring the
//! top 20% of scores positive; lower F1 = better privacy. NDCG@20 of
//! PTF-FedRec(NGCF) shows the utility each defense costs.

use ptf_bench::*;
use ptf_data::DatasetPreset;

fn main() {
    let scale = scale();
    let mut table = Table::new(
        format!("Table V — Top Guess Attack F1 / NDCG@{EVAL_K} ({scale:?} scale)"),
        &["Defense", "ML F1", "ML NDCG", "Steam F1", "Steam NDCG", "Gowalla F1", "Gowalla NDCG"],
    );

    let defenses = defense_rows();
    let mut cells: Vec<Vec<String>> = defenses.iter().map(|d| vec![d.name().to_string()]).collect();

    for preset in DatasetPreset::ALL {
        let split = split_for(preset, scale);
        for (row, &defense) in defenses.iter().enumerate() {
            eprintln!("[table5] {} under {}", preset.name(), defense.name());
            let (f1, ndcg) = privacy_run(&split, defense, scale);
            cells[row].push(fmt4(f1));
            cells[row].push(fmt4(ndcg));
        }
    }

    for row in cells {
        table.row(row);
    }
    table.print();
    table.save("table5_privacy");
    println!(
        "\n(paper ML-100K: No Defense 0.9836/0.1909, LDP 0.5873/0.1503, \
         Sampling 0.5171/0.1834, Sampling+Swapping 0.4539/0.1775)"
    );
}
