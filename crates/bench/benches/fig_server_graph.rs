//! Extension ablation (DESIGN.md §5) — the server-side graph threshold.
//!
//! The hidden NGCF builds its bipartite graph from uploaded soft labels
//! with `r̂ ≥ threshold` treated as edges. The paper does not specify this
//! knob (its server sees no raw interactions either); this sweep justifies
//! our 0.5 default.

use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let split = split_for(DatasetPreset::MovieLens100K, scale);
    let thresholds = [0.3f32, 0.5, 0.7, 0.9];

    let mut table = Table::new(
        format!("Server graph threshold sweep — PTF-FedRec(NGCF), MovieLens ({scale:?} scale)"),
        &["threshold", "Recall@20", "NDCG@20", "server loss (final)"],
    );
    for &t in &thresholds {
        eprintln!("[server_graph] threshold={t}");
        let mut cfg = ptf_config(scale);
        cfg.graph_threshold = t;
        let mut fed = build_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
        let trace = fed.run();
        let r = fed.evaluate(&split.train, &split.test, EVAL_K);
        table.row(vec![
            format!("{t}"),
            fmt4(r.metrics.recall),
            fmt4(r.metrics.ndcg),
            format!("{:.4}", trace.final_server_loss()),
        ]);
    }
    table.print();
    table.save("fig_server_graph");
}
