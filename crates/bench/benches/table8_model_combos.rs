//! Table VIII — NDCG@20 of every client-model × server-model combination
//! on MovieLens-100K.
//!
//! The paper's findings: stronger *server* models help (horizontal), while
//! more complex *client* models hurt (vertical — clients have too little
//! data for GCNs over one-hop ego graphs).

use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let split = split_for(DatasetPreset::MovieLens100K, scale);

    let mut table = Table::new(
        format!("Table VIII — NDCG@{EVAL_K} per client×server model (MovieLens, {scale:?} scale)"),
        &["Client \\ Server", "NeuMF", "NGCF", "LightGCN"],
    );
    for client in ModelKind::ALL {
        let mut row = vec![client.name().to_string()];
        for server in ModelKind::ALL {
            eprintln!("[table8] client={} server={}", client.name(), server.name());
            let fed = run_ptf(&split, client, server, ptf_config(scale), &h);
            let r = fed.evaluate(&split.train, &split.test, EVAL_K);
            row.push(fmt4(r.metrics.ndcg));
        }
        table.row(row);
    }
    table.print();
    table.save("table8_model_combos");
    println!(
        "\n(paper: NeuMF-client row 0.1482/0.1775/0.1739; NGCF best server \
         column; NeuMF best client row)"
    );
}
