//! Extension experiment — partial participation.
//!
//! The paper trains with full participation; Algorithm 1 nevertheless
//! samples `U^t ⊆ U` each round. This sweep shows how PTF-FedRec degrades
//! as fewer clients join per round (at a fixed round budget), which
//! matters for deployments with stragglers.

use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_federated::Participation;
use ptf_models::ModelKind;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let split = split_for(DatasetPreset::MovieLens100K, scale);
    let fractions = [0.1f64, 0.25, 0.5, 1.0];

    let mut table = Table::new(
        format!("Participation sweep — PTF-FedRec(NGCF), MovieLens ({scale:?} scale)"),
        &["fraction", "Recall@20", "NDCG@20", "avg bytes/client-round"],
    );
    for &f in &fractions {
        eprintln!("[participation] fraction={f}");
        let mut cfg = ptf_config(scale);
        cfg.participation = Participation { fraction: f, min_clients: 1 };
        let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
        let r = fed.evaluate(&split.train, &split.test, EVAL_K);
        table.row(vec![
            format!("{f}"),
            fmt4(r.metrics.recall),
            fmt4(r.metrics.ndcg),
            format!("{:.0}", fed.ledger().avg_client_bytes_per_round()),
        ]);
    }
    table.print();
    table.save("fig_participation");
}
