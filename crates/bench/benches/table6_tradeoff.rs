//! Table VI — privacy/utility cost-effectiveness ΔF1/ΔNDCG.
//!
//! How much attack F1 each defense buys per point of NDCG sacrificed,
//! relative to the undefended run. Higher is better.

use ptf_bench::*;
use ptf_core::DefenseKind;
use ptf_data::DatasetPreset;

fn main() {
    let scale = scale();
    let mut table = Table::new(
        format!("Table VI — ΔF1/ΔNDCG cost-effectiveness ({scale:?} scale)"),
        &["Method", "MovieLens-100K", "Steam-200K", "Gowalla"],
    );
    let defenses = defense_rows();
    let mut cells: Vec<Vec<String>> = defenses
        .iter()
        .skip(1) // the baseline row (No Defense) defines the deltas
        .map(|d| vec![d.name().to_string()])
        .collect();

    for preset in DatasetPreset::ALL {
        let split = split_for(preset, scale);
        eprintln!("[table6] {} — baseline (no defense)", preset.name());
        let (f1_base, ndcg_base) = privacy_run(&split, DefenseKind::NoDefense, scale);
        for (row, &defense) in defenses.iter().skip(1).enumerate() {
            eprintln!("[table6] {} — {}", preset.name(), defense.name());
            let (f1, ndcg) = privacy_run(&split, defense, scale);
            let d_f1 = f1_base - f1;
            let d_ndcg = ndcg_base - ndcg;
            // a defense that costs zero (or negative) NDCG has unbounded
            // cost-effectiveness
            cells[row].push(if d_ndcg <= 1e-4 {
                "inf (no utility cost)".to_string()
            } else {
                format!("{:.1}", d_f1 / d_ndcg)
            });
        }
    }

    for row in cells {
        table.row(row);
    }
    table.print();
    table.save("table6_tradeoff");
    println!(
        "\n(paper: LDP 9.7/4.45/97.6; Sampling 62.2/60.3/680.8; \
         Sampling+Swapping 39.5/30.9/421.1)"
    );
}
