//! Networked-mode overhead benchmark: loopback vs in-process.
//!
//! Runs PTF-FedRec at the ML-100K preset twice with the same seed —
//! once through the in-process `Engine`, once through the `ptf-net`
//! round server over the loopback transport (every frame through the
//! real wire codec, fleet split over several connections) — and
//! reports rounds/sec for both plus the relative overhead of the
//! networked path. The traces are asserted byte-identical, so the
//! number is a pure transport/codec cost, not a different computation.
//!
//! Writes `BENCH_net_loopback.json` at the workspace root. Knobs:
//! `PTF_BENCH_ROUNDS` (default 3), `PTF_BENCH_EPOCHS` (default 2),
//! `PTF_SEED`, `PTF_BENCH_SHARDS` (client connections, default 4),
//! `PTF_SCALE` (`paper` default, `small` for quick runs).

use ptf_bench::{fmt4, Table};
use ptf_core::{DefenseKind, PtfConfig, PtfFedRec};
use ptf_data::{DatasetPreset, Scale, TrainTestSplit};
use ptf_federated::Engine;
use ptf_models::{ModelHyper, ModelKind};
use ptf_net::{loopback_hub, run_server, run_shard, NetServerOptions, ShardOptions};
use serde::Serialize;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct NetLoopbackReport {
    preset: String,
    users: usize,
    items: usize,
    rounds: u32,
    client_epochs: u32,
    seed: u64,
    shards: usize,
    /// Compute-kernel backend the run used ("scalar" or "vector").
    kernel_backend: String,
    in_process_seconds: f64,
    in_process_rounds_per_sec: f64,
    /// Includes the handshake/gather phase — what a deployment pays.
    loopback_seconds: f64,
    loopback_rounds_per_sec: f64,
    /// `loopback_seconds / in_process_seconds - 1`, as a percentage.
    overhead_pct: f64,
    /// Protocol data bytes the ledger charged the networked run.
    loopback_total_bytes: u64,
    traces_identical: bool,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let rounds = env_u64("PTF_BENCH_ROUNDS", 3) as u32;
    let epochs = env_u64("PTF_BENCH_EPOCHS", 2) as u32;
    let seed = env_u64("PTF_SEED", 2024);
    let shards = env_u64("PTF_BENCH_SHARDS", 4).max(1) as usize;
    let scale = match std::env::var("PTF_SCALE").as_deref() {
        Ok("small") => Scale::Small,
        _ => Scale::Paper,
    };

    let preset = DatasetPreset::MovieLens100K;
    let data = preset.generate(scale, &mut ptf_data::test_rng(seed));
    let split = TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(seed ^ 1));
    let train = &split.train;

    let mut cfg = match scale {
        Scale::Paper => PtfConfig::paper(),
        Scale::Small => PtfConfig::small(),
    };
    cfg.rounds = rounds;
    cfg.client_epochs = epochs;
    cfg.seed = seed;
    cfg.defense = DefenseKind::NoDefense;
    let hyper = match scale {
        Scale::Paper => ModelHyper::default(),
        Scale::Small => ModelHyper::small(),
    };

    // in-process reference
    let start = Instant::now();
    let protocol = PtfFedRec::try_new(train, ModelKind::Mf, ModelKind::Mf, &hyper, cfg.clone())
        .expect("bench config is valid");
    let mut engine = Engine::new(protocol);
    let trace = engine.run();
    let in_process_seconds = start.elapsed().as_secs_f64();
    let reference = serde_json::to_string(&trace).expect("trace serializes");

    // networked run over loopback: same fleet split over `shards`
    // connections, every frame through the wire codec
    let users = train.num_users() as u32;
    let per = users.div_ceil(shards as u32);
    let opts = NetServerOptions {
        cfg: cfg.clone(),
        client_kind: ModelKind::Mf,
        server_kind: ModelKind::Mf,
        hyper: hyper.clone(),
        round_deadline: Duration::from_secs(600),
        gather_timeout: Duration::from_secs(600),
        verbose: false,
    };
    let start = Instant::now();
    let (hub, events) = loopback_hub();
    let report = std::thread::scope(|scope| {
        for s in 0..shards {
            let ids: Vec<u32> = (s as u32 * per..users.min((s as u32 + 1) * per)).collect();
            if ids.is_empty() {
                continue;
            }
            let hub = hub.clone();
            let shard_opts = ShardOptions {
                cfg: cfg.clone(),
                client_kind: ModelKind::Mf,
                server_kind: ModelKind::Mf,
                hyper: hyper.clone(),
                ids,
                straggle: None,
            };
            scope.spawn(move || {
                let mut conn = hub.connect();
                run_shard(train, &mut conn, &shard_opts).expect("shard completes");
            });
        }
        let (report, _server) = run_server(train, &events, &opts).expect("server completes");
        report
    });
    let loopback_seconds = start.elapsed().as_secs_f64();

    let net_json = serde_json::to_string(&report.trace).expect("trace serializes");
    assert!(report.stragglers.is_empty(), "nobody straggles under 600s deadlines");
    assert_eq!(net_json, reference, "loopback trace must be bit-identical to the engine");

    let out = NetLoopbackReport {
        preset: preset.name().to_string(),
        users: train.num_users(),
        items: train.num_items(),
        rounds,
        client_epochs: epochs,
        seed,
        shards,
        kernel_backend: ptf_tensor::kernels::backend().name().to_string(),
        in_process_seconds,
        in_process_rounds_per_sec: rounds as f64 / in_process_seconds,
        loopback_seconds,
        loopback_rounds_per_sec: rounds as f64 / loopback_seconds,
        overhead_pct: (loopback_seconds / in_process_seconds - 1.0) * 100.0,
        loopback_total_bytes: report.communication.total_bytes,
        traces_identical: true,
    };

    let mut table = Table::new(
        "Networked-mode overhead (ML-100K, MF/MF, loopback transport)",
        &["path", "rounds/sec", "seconds"],
    );
    table.row(vec![
        "in-process".to_string(),
        fmt4(out.in_process_rounds_per_sec),
        fmt4(out.in_process_seconds),
    ]);
    table.row(vec![
        format!("loopback x{shards}"),
        fmt4(out.loopback_rounds_per_sec),
        fmt4(out.loopback_seconds),
    ]);
    table.print();
    println!("overhead: {:.1}% (traces bit-identical)", out.overhead_pct);

    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_net_loopback.json");
    match serde_json::to_string_pretty(&out) {
        Ok(json) => {
            if std::fs::write(&path, json).is_ok() {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize net-loopback report: {e}"),
    }
}
