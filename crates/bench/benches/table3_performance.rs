//! Table III — recommendation performance of PTF-FedRec against
//! centralized and federated baselines on all three datasets.

use ptf_baselines::{train_centralized, Fcf, FedMf, FederatedProtocol, MetaMf};
use ptf_bench::*;
use ptf_data::DatasetPreset;
use ptf_models::{evaluate_model, ModelKind};

fn main() {
    let scale = scale();
    let h = hyper(scale);

    // method name → (recall, ndcg) per dataset, in preset order
    let mut rows: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    fn push(rows: &mut Vec<(String, Vec<(f64, f64)>)>, name: String, val: (f64, f64)) {
        if let Some(entry) = rows.iter_mut().find(|(n, _)| *n == name) {
            entry.1.push(val);
        } else {
            rows.push((name, vec![val]));
        }
    }

    for preset in DatasetPreset::ALL {
        let split = split_for(preset, scale);
        eprintln!("[table3] {} — centralized baselines", preset.name());
        for kind in ModelKind::ALL {
            let (model, _) = train_centralized(kind, &split.train, &h, &centralized_config(scale));
            let r = evaluate_model(&*model, &split.train, &split.test, EVAL_K);
            push(
                &mut rows,
                format!("Centralized {}", kind.name()),
                (r.metrics.recall, r.metrics.ndcg),
            );
        }

        // every federated baseline rides the same engine code path
        let baselines: Vec<Box<dyn FederatedProtocol>> = vec![
            Box::new(Fcf::new(&split.train, fcf_config(scale))),
            Box::new(FedMf::new(&split.train, fedmf_config(scale))),
            Box::new(MetaMf::new(&split.train, metamf_config(scale))),
        ];
        for protocol in baselines {
            eprintln!("[table3] {} — {}", preset.name(), protocol.name());
            let name = protocol.name().to_string();
            let engine = run_protocol(protocol);
            let r = engine.evaluate(&split.train, &split.test, EVAL_K);
            push(&mut rows, name, (r.metrics.recall, r.metrics.ndcg));
        }

        for server in ModelKind::ALL {
            eprintln!("[table3] {} — PTF-FedRec({})", preset.name(), server.name());
            let fed = run_ptf(&split, ModelKind::NeuMf, server, ptf_config(scale), &h);
            let r = fed.evaluate(&split.train, &split.test, EVAL_K);
            push(
                &mut rows,
                format!("PTF-FedRec({})", server.name()),
                (r.metrics.recall, r.metrics.ndcg),
            );
        }
    }

    let mut table = Table::new(
        format!("Table III — Recall@{EVAL_K} / NDCG@{EVAL_K} ({scale:?} scale)"),
        &[
            "Method",
            "ML R@20",
            "ML N@20",
            "Steam R@20",
            "Steam N@20",
            "Gowalla R@20",
            "Gowalla N@20",
        ],
    );
    for (name, vals) in &rows {
        let mut cells = vec![name.clone()];
        for &(r, n) in vals {
            cells.push(fmt4(r));
            cells.push(fmt4(n));
        }
        while cells.len() < 7 {
            cells.push("-".into());
        }
        table.row(cells);
    }
    table.print();
    table.save("table3_performance");
}
