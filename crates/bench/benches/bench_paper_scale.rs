//! Paper-scale throughput and memory benchmark.
//!
//! Runs PTF-FedRec at the **full Table II scale** of all three presets
//! (MovieLens-100K 943×1,682, Steam-200K 3,753×5,134, Gowalla
//! 8,392×10,086 — ~391k interactions) for a few rounds each, on MF
//! client/server models with **item-scoped clients** (each client holds
//! only the embedding rows of its own pool — the PR-5 redesign that cut
//! Gowalla peak heap from 10.9 GB and its 213 s build to a fraction),
//! and records the numbers that define the repo's perf trajectory:
//!
//! * **rounds/sec** — federated round throughput (client phase + server
//!   training + dispersal);
//! * **peak heap bytes** — live-heap high-water mark via the
//!   `ptf_tensor::alloc` counting-allocator shim (an allocator-precise
//!   "peak RSS": it excludes binary/allocator slack, so it is the figure
//!   a regression gate can trust);
//! * **bytes/round** and avg client bytes/round from the communication
//!   ledger (the Table IV quantity, now at full scale);
//! * **client-path allocations in the final round** — asserted zero, the
//!   scratch-pool guarantee at paper scale.
//!
//! Writes `BENCH_paper_scale.json` at the workspace root. Knobs:
//! `PTF_BENCH_ROUNDS` (default 3), `PTF_BENCH_EPOCHS` (client epochs,
//! default 2), `PTF_SEED`, `PTF_BENCH_PRESETS` (comma list of
//! `ml100k,steam,gowalla,scale-10k,scale-100k,scale-1m`; default the
//! three paper presets), `PTF_BENCH_KERNEL` (`scalar|vector` pins the
//! compute-kernel backend; `ab` runs every paper preset under **both**
//! backends and records the scalar rounds/sec and the vector speedup
//! per row; the primary backend is recorded as `kernel_backend` in the
//! JSON), and `PTF_BENCH_MODELS` (`client/server`, e.g. `neumf/ngcf` —
//! swaps the MF/MF throughput pairing for one of the paper's autograd
//! models; the pairing is recorded as `client_model`/`server_model`).
//!
//! The `scale-*` presets exercise the million-user cohort runtime
//! instead of the resident fleet: the dataset is generated streaming
//! into an on-disk CSR arena and trained through `CohortFedRec`
//! (`ServerScope::ActiveParticipants`, envelopes on disk), so the row's
//! `peak_heap_bytes` is the number the flat-heap story stands on —
//! `ci/check_scale_flat_heap.py` gates that it stays bounded by the
//! cohort, not the user count, as users grow 10×. Scale rows always run
//! MF/MF under the active backend (no A/B) with
//! `PTF_BENCH_SCALE_PARTICIPANTS` sampled clients per round (default
//! 256) in cohorts of `PTF_BENCH_SCALE_COHORT` (default 1024), and
//! land in the report's separate `scale_rows` section.

use ptf_bench::{fmt4, Table};
use ptf_core::{
    CohortData, CohortFedRec, CohortOptions, DefenseKind, Federation, PtfConfig, ServerScope,
    StorageMode, StoreKind,
};
use ptf_data::{CsrArena, DatasetPreset, DatasetStats, ScaleConfig, TrainTestSplit};
use ptf_federated::{Engine, Participation};
use ptf_models::{ModelHyper, ModelKind};
use ptf_tensor::alloc;
use ptf_tensor::kernels::{set_backend, Backend};
use serde::Serialize;
use std::time::Instant;

#[global_allocator]
static COUNTER: alloc::CountingAlloc = alloc::CountingAlloc;

#[derive(Serialize)]
struct PresetRow {
    preset: String,
    users: usize,
    items: usize,
    interactions: usize,
    rounds: u32,
    /// Client-fleet + server construction (dominated by per-client
    /// embedding init at Gowalla scale).
    build_seconds: f64,
    /// Wall-clock of the measured rounds alone.
    run_seconds: f64,
    rounds_per_sec: f64,
    /// Live-heap high-water mark over build + all rounds (bytes).
    peak_heap_bytes: usize,
    /// Live heap held by the dataset + split alone (bytes).
    dataset_heap_bytes: usize,
    /// Ledger total for the run divided by rounds.
    bytes_per_round: f64,
    /// The Table IV metric at paper scale.
    avg_client_bytes_per_round: f64,
    /// Client-path heap allocations in the final (steady-state) round.
    /// With item-scoped clients this is bounded by first-touch row
    /// materialization (fresh negatives appear every round), not zero.
    final_round_client_allocs: u64,
    /// Clients the storage policy built with a full (dense) item table —
    /// the adaptive-storage decision at paper scale (ML-100K's ~100-positive
    /// clients go dense and skip the id→row lookup; Gowalla's stay sparse).
    dense_clients: usize,
    /// Materialized item-embedding rows across the fleet after the run.
    client_item_rows: usize,
    /// What full per-client tables would hold (`clients × items`) — the
    /// scoped-client memory story is the ratio of these two numbers.
    full_table_rows: usize,
    /// Scalar-backend rounds/sec for the same preset — present (non-null)
    /// only in `PTF_BENCH_KERNEL=ab` runs, where `rounds_per_sec` above
    /// is the vector backend's number for the same seed and config.
    scalar_rounds_per_sec: Option<f64>,
    /// `rounds_per_sec / scalar_rounds_per_sec` (A/B runs only).
    kernel_speedup: Option<f64>,
}

/// One run of a `scale-*` preset through the cohort runtime. The
/// resident-fleet metrics (`dense_clients`, per-round alloc counts) do
/// not apply — clients live in envelopes between participations — so
/// scale rows carry their own schema.
#[derive(Serialize)]
struct ScaleRow {
    preset: String,
    users: usize,
    items: usize,
    /// Total interactions in the generated arena.
    interactions: u64,
    rounds: u32,
    /// Sampled clients per round (`Participation::min_clients`).
    participants: usize,
    /// Max clients resident during the parallel client phase.
    cohort: usize,
    /// Streaming arena generation (the dataset never goes resident).
    gen_seconds: f64,
    /// `CohortFedRec` construction (trainable sweep + server build).
    build_seconds: f64,
    run_seconds: f64,
    rounds_per_sec: f64,
    /// Live-heap high-water mark over generation + build + all rounds.
    /// The flat-heap claim: bounded by `O(cohort)` model state plus
    /// `O(users)` *index* transients (u32/u64 vectors in the arena
    /// writer, trainable sweep, and participation draw) — never by
    /// per-user model state.
    peak_heap_bytes: usize,
    /// On-disk size of the CSR arena (the part that stayed off-heap).
    arena_bytes: u64,
    /// Rows of the server's user table — the ever-participating set
    /// under `ServerScope::ActiveParticipants`, not the fleet.
    server_user_rows: usize,
    bytes_per_round: f64,
    avg_client_bytes_per_round: f64,
}

#[derive(Serialize)]
struct PaperScaleReport {
    hardware_threads: usize,
    seed: u64,
    client_epochs: u32,
    /// Which compute-kernel backend the run used ("scalar" or "vector")
    /// — the `PTF_BENCH_KERNEL` A/B axis.
    kernel_backend: String,
    /// Client/server architecture pairing — the `PTF_BENCH_MODELS` axis
    /// (default MF/MF; `neumf/ngcf` exercises the autograd tape).
    client_model: String,
    server_model: String,
    rows: Vec<PresetRow>,
    /// `scale-*` presets through the cohort runtime (MF/MF).
    scale_rows: Vec<ScaleRow>,
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// A benchmarkable preset: a paper dataset through the resident-fleet
/// engine, or a `scale-*` synthetic through the cohort runtime.
enum BenchPreset {
    Paper(DatasetPreset),
    Scale(&'static str),
}

fn wanted_presets() -> Vec<BenchPreset> {
    let Ok(spec) = std::env::var("PTF_BENCH_PRESETS") else {
        return DatasetPreset::ALL.iter().copied().map(BenchPreset::Paper).collect();
    };
    let mut out = Vec::new();
    for token in spec.split(',') {
        match token.trim().to_ascii_lowercase().as_str() {
            "ml100k" | "movielens" => out.push(BenchPreset::Paper(DatasetPreset::MovieLens100K)),
            "steam" => out.push(BenchPreset::Paper(DatasetPreset::Steam200K)),
            "gowalla" => out.push(BenchPreset::Paper(DatasetPreset::Gowalla)),
            "scale-10k" | "scale10k" => out.push(BenchPreset::Scale("scale-10k")),
            "scale-100k" | "scale100k" => out.push(BenchPreset::Scale("scale-100k")),
            "scale-1m" | "scale1m" => out.push(BenchPreset::Scale("scale-1m")),
            "" => {}
            other => eprintln!("[bench_paper_scale] unknown preset {other:?}, skipping"),
        }
    }
    if out.is_empty() {
        DatasetPreset::ALL.iter().copied().map(BenchPreset::Paper).collect()
    } else {
        out
    }
}

/// `PTF_BENCH_MODELS=client/server` swaps the model pairing: MF/MF is
/// the default (allocation-free, sampling-bound — the throughput
/// pairing), while e.g. `neumf/ngcf` measures the paper's autograd
/// models, where the kernel layer and arena tape carry the round.
fn wanted_models() -> (ModelKind, ModelKind) {
    let default = (ModelKind::Mf, ModelKind::Mf);
    let Ok(spec) = std::env::var("PTF_BENCH_MODELS") else {
        return default;
    };
    let parse = |s: &str| {
        ModelKind::parse(s.trim()).unwrap_or_else(|| {
            eprintln!("[bench_paper_scale] unknown model {s:?} in PTF_BENCH_MODELS, using MF");
            ModelKind::Mf
        })
    };
    match spec.split_once('/') {
        Some((client, server)) => (parse(client), parse(server)),
        None => (parse(&spec), parse(&spec)),
    }
}

/// The `PTF_BENCH_KERNEL` axis: pin one backend, or `ab` — run every
/// preset under both and record the pair in one report.
enum KernelMode {
    Default,
    Pinned(Backend),
    Ab,
}

fn kernel_mode() -> KernelMode {
    match std::env::var("PTF_BENCH_KERNEL").as_deref() {
        Ok("scalar") => KernelMode::Pinned(Backend::Scalar),
        Ok("vector") => KernelMode::Pinned(Backend::Vector),
        Ok("ab") => KernelMode::Ab,
        Ok(other) => {
            eprintln!("[bench_paper_scale] unknown PTF_BENCH_KERNEL {other:?}, ignoring");
            KernelMode::Default
        }
        Err(_) => KernelMode::Default,
    }
}

/// One full build + run of a preset under the currently active kernel
/// backend; returns the measured row.
fn run_preset(
    preset: DatasetPreset,
    rounds: u32,
    epochs: u32,
    seed: u64,
    client_kind: ModelKind,
    server_kind: ModelKind,
) -> PresetRow {
    let heap_before = alloc::current_bytes();
    let data = preset.paper().generate(&mut ptf_data::test_rng(seed));
    let split = TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(seed ^ 1));
    let stats = DatasetStats::of(&data);
    let dataset_heap_bytes = alloc::current_bytes().saturating_sub(heap_before);

    let mut cfg = PtfConfig::paper();
    cfg.rounds = rounds;
    cfg.client_epochs = epochs;
    cfg.seed = seed;
    // NoDefense keeps upload staging on the recycled-buffer path, so
    // the steady-state zero-allocation guarantee is measurable here
    cfg.defense = DefenseKind::NoDefense;
    // PTF_BENCH_STORAGE=sparse|auto|dense A/Bs the client storage
    // policy (default: the adaptive Auto heuristic)
    match std::env::var("PTF_BENCH_STORAGE").as_deref() {
        Ok("sparse") => cfg.storage.mode = StorageMode::Sparse,
        Ok("dense") => cfg.storage.mode = StorageMode::Dense,
        _ => {}
    }

    alloc::reset_peak();
    let start = Instant::now();
    let mut fed = Federation::builder(&split.train)
        .client_model(client_kind)
        .server_model(server_kind)
        .hyper(ModelHyper::default())
        .config(cfg)
        .build()
        .expect("paper-scale config is valid");
    let build_seconds = start.elapsed().as_secs_f64();
    let run_start = Instant::now();
    let trace = fed.run();
    let run_seconds = run_start.elapsed().as_secs_f64();
    let peak_heap_bytes = alloc::peak_bytes();

    assert_eq!(trace.num_rounds(), rounds as usize);
    let final_round_client_allocs = fed.protocol().last_round_client_allocs();
    // the strict steady-state allocation bound is an MF-client
    // guarantee; autograd clients warm per-thread arenas instead
    if rounds >= 3 && client_kind == ModelKind::Mf {
        // scoped clients sample fresh negatives every round, so a few
        // first-touch row materializations still happen in steady
        // state; each costs at most a couple of (amortized) arena
        // growths. Anything past this bound means per-sample
        // allocations crept back into the hot path.
        let bound = 16 * stats.users as u64;
        assert!(
            final_round_client_allocs <= bound,
            "{}: steady-state client path allocated {final_round_client_allocs} times \
             (> {bound} = 16/client)",
            preset.name()
        );
    }

    let summary = fed.ledger().summary();
    let dense_clients = fed.protocol().dense_clients();
    let client_item_rows = fed.protocol().materialized_item_rows();
    let full_table_rows = stats.users * stats.items;
    PresetRow {
        preset: preset.name().to_string(),
        users: stats.users,
        items: stats.items,
        interactions: stats.interactions,
        rounds,
        build_seconds,
        run_seconds,
        rounds_per_sec: rounds as f64 / run_seconds,
        peak_heap_bytes,
        dataset_heap_bytes,
        bytes_per_round: summary.total_bytes as f64 / rounds.max(1) as f64,
        avg_client_bytes_per_round: summary.avg_client_bytes_per_round,
        final_round_client_allocs,
        dense_clients,
        client_item_rows,
        full_table_rows,
        scalar_rounds_per_sec: None,
        kernel_speedup: None,
    }
}

/// One `scale-*` preset through the cohort runtime: streamed arena
/// generation, `CohortFedRec` with on-disk envelopes and an
/// active-participant server scope, MF/MF models.
fn run_scale_preset(name: &str, rounds: u32, epochs: u32, seed: u64) -> ScaleRow {
    let sc = ScaleConfig::preset(name).expect("known scale preset");
    let participants =
        (env_u64("PTF_BENCH_SCALE_PARTICIPANTS", 256) as usize).clamp(1, sc.num_users);
    let cohort = env_u64("PTF_BENCH_SCALE_COHORT", 1024) as usize;

    let root = std::env::temp_dir().join(format!("ptf-bench-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("bench scratch dir");
    let arena_path = root.join("data.arena");

    let mut cfg = PtfConfig::paper();
    cfg.rounds = rounds;
    cfg.client_epochs = epochs;
    cfg.seed = seed;
    cfg.defense = DefenseKind::NoDefense;
    cfg.participation = Participation { fraction: 0.0, min_clients: participants };

    alloc::reset_peak();
    let gen_start = Instant::now();
    sc.write_arena(seed, &arena_path).expect("arena generation");
    let gen_seconds = gen_start.elapsed().as_secs_f64();
    let arena_bytes = std::fs::metadata(&arena_path).map(|m| m.len()).unwrap_or(0);
    let arena = CsrArena::open(&arena_path).expect("arena open");
    let interactions = arena.nnz();

    let build_start = Instant::now();
    let opts = CohortOptions {
        cohort,
        store: StoreKind::Disk(root.join("clients")),
        server_scope: ServerScope::ActiveParticipants,
    };
    let cohort_fed = CohortFedRec::try_new(
        CohortData::Arena(arena),
        ModelKind::Mf,
        ModelKind::Mf,
        &ModelHyper::default(),
        cfg,
        opts,
    )
    .expect("scale config is valid");
    let build_seconds = build_start.elapsed().as_secs_f64();
    let server_user_rows = cohort_fed.server_users();

    let mut engine = Engine::new(cohort_fed);
    let run_start = Instant::now();
    let trace = engine.run();
    let run_seconds = run_start.elapsed().as_secs_f64();
    let peak_heap_bytes = alloc::peak_bytes();
    assert_eq!(trace.num_rounds(), rounds as usize);

    let summary = engine.ledger().summary();
    let _ = std::fs::remove_dir_all(&root);
    ScaleRow {
        preset: name.to_string(),
        users: sc.num_users,
        items: sc.num_items,
        interactions,
        rounds,
        participants,
        cohort,
        gen_seconds,
        build_seconds,
        run_seconds,
        rounds_per_sec: rounds as f64 / run_seconds,
        peak_heap_bytes,
        arena_bytes,
        server_user_rows,
        bytes_per_round: summary.total_bytes as f64 / rounds.max(1) as f64,
        avg_client_bytes_per_round: summary.avg_client_bytes_per_round,
    }
}

fn main() {
    let rounds = env_u64("PTF_BENCH_ROUNDS", 3) as u32;
    let epochs = env_u64("PTF_BENCH_EPOCHS", 2) as u32;
    let seed = env_u64("PTF_SEED", 2024);
    let mode = kernel_mode();
    if let KernelMode::Pinned(b) = mode {
        set_backend(b);
    }
    let (client_kind, server_kind) = wanted_models();

    let title =
        format!("Paper-scale PTF-FedRec ({client_kind}/{server_kind}, item-scoped clients)");
    let mut table = Table::new(
        title,
        &["dataset", "users×items", "rounds/sec", "peak heap MB", "KB/client/round", "row cut"],
    );
    let mut scale_table = Table::new(
        "Million-user cohort runtime (MF/MF, streamed arena)".to_string(),
        &["preset", "users", "rounds/sec", "peak heap MB", "arena MB", "gen s"],
    );
    let mut rows = Vec::new();
    let mut scale_rows = Vec::new();

    for preset in wanted_presets() {
        let preset = match preset {
            BenchPreset::Paper(p) => p,
            BenchPreset::Scale(name) => {
                // scale rows run once under the primary backend — in ab
                // mode that is vector, the committed report's default
                if matches!(mode, KernelMode::Ab) {
                    set_backend(Backend::Vector);
                }
                let row = run_scale_preset(name, rounds, epochs, seed);
                scale_table.row(vec![
                    row.preset.clone(),
                    row.users.to_string(),
                    fmt4(row.rounds_per_sec),
                    format!("{:.1}", row.peak_heap_bytes as f64 / (1024.0 * 1024.0)),
                    format!("{:.1}", row.arena_bytes as f64 / (1024.0 * 1024.0)),
                    format!("{:.1}", row.gen_seconds),
                ]);
                scale_rows.push(row);
                continue;
            }
        };
        let row = match mode {
            KernelMode::Ab => {
                // scalar first, vector second: the committed report's
                // primary numbers are the default (vector) backend's
                set_backend(Backend::Scalar);
                let scalar = run_preset(preset, rounds, epochs, seed, client_kind, server_kind);
                set_backend(Backend::Vector);
                let mut vector = run_preset(preset, rounds, epochs, seed, client_kind, server_kind);
                let speedup = vector.rounds_per_sec / scalar.rounds_per_sec;
                println!(
                    "[A/B {}] scalar {:.4} r/s, vector {:.4} r/s ({:+.1}%)",
                    preset.name(),
                    scalar.rounds_per_sec,
                    vector.rounds_per_sec,
                    (speedup - 1.0) * 100.0
                );
                vector.scalar_rounds_per_sec = Some(scalar.rounds_per_sec);
                vector.kernel_speedup = Some(speedup);
                vector
            }
            _ => run_preset(preset, rounds, epochs, seed, client_kind, server_kind),
        };
        table.row(vec![
            row.preset.clone(),
            format!("{}×{}", row.users, row.items),
            fmt4(row.rounds_per_sec),
            format!("{:.1}", row.peak_heap_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", row.avg_client_bytes_per_round / 1024.0),
            format!("{:.1}x", row.full_table_rows as f64 / row.client_item_rows.max(1) as f64),
        ]);
        rows.push(row);
    }

    if !rows.is_empty() {
        table.print();
    }
    if !scale_rows.is_empty() {
        scale_table.print();
    }

    let report = PaperScaleReport {
        hardware_threads: ptf_tensor::par::available_threads(),
        seed,
        client_epochs: epochs,
        kernel_backend: ptf_tensor::kernels::backend().name().to_string(),
        client_model: client_kind.name().to_string(),
        server_model: server_kind.name().to_string(),
        rows,
        scale_rows,
    };
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_paper_scale.json");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if std::fs::write(&path, json).is_ok() {
                println!("[saved {}]", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize paper-scale report: {e}"),
    }
}
