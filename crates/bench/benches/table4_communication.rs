//! Table IV — average per-client, per-round communication costs.
//!
//! Parameter-transmission baselines move embedding-matrix-sized (or
//! ciphertext-expanded) payloads; PTF-FedRec moves a few dozen prediction
//! triples. Costs are *measured* from the engine's ledger — all four
//! protocols run through the same `FederatedProtocol` code path.

use ptf_baselines::{Engine, Fcf, FedMf, FederatedProtocol, MetaMf};
use ptf_bench::*;
use ptf_comm::format_bytes;
use ptf_core::PtfFedRec;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

/// Communication per round is stationary, so a few rounds suffice.
const MEASURE_ROUNDS: u32 = 3;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let mut table = Table::new(
        format!("Table IV — avg communication per client per round ({scale:?} scale)"),
        &["Method", "MovieLens-100K", "Steam-200K", "Gowalla"],
    );
    let mut rows: Vec<Vec<String>> = Vec::new();

    for (col, preset) in DatasetPreset::ALL.into_iter().enumerate() {
        eprintln!("[table4] measuring {}", preset.name());
        let split = split_for(preset, scale);

        let mut ptf_cfg = ptf_config(scale);
        ptf_cfg.rounds = MEASURE_ROUNDS;
        let protocols: Vec<Box<dyn FederatedProtocol>> = vec![
            Box::new(Fcf::new(&split.train, fcf_config(scale))),
            Box::new(FedMf::new(&split.train, fedmf_config(scale))),
            Box::new(MetaMf::new(&split.train, metamf_config(scale))),
            Box::new(
                PtfFedRec::try_new(&split.train, ModelKind::NeuMf, ModelKind::Ngcf, &h, ptf_cfg)
                    .expect("harness config is valid"),
            ),
        ];
        for (row, protocol) in protocols.into_iter().enumerate() {
            if col == 0 {
                rows.push(vec![protocol.name().to_string()]);
            }
            let mut engine = Engine::new(protocol);
            for _ in 0..MEASURE_ROUNDS {
                engine.run_round();
            }
            rows[row].push(format_bytes(engine.ledger().avg_client_bytes_per_round()));
        }
    }

    for row in rows {
        table.row(row);
    }
    table.print();
    table.save("table4_communication");
    println!(
        "\n(paper: FCF 0.46/1.31/2.59 MB; FedMF 7.32/20.98/41.43 MB; \
         MetaMF 0.54/1.63/3.22 MB; PTF-FedRec 3.02/1.21/1.59 KB)"
    );
}
