//! Table IV — average per-client, per-round communication costs.
//!
//! Parameter-transmission baselines move embedding-matrix-sized (or
//! ciphertext-expanded) payloads; PTF-FedRec moves a few dozen prediction
//! triples. Costs are *measured* from the protocols' ledgers, not
//! computed analytically.

use ptf_baselines::{Fcf, FedMf, FederatedBaseline, MetaMf};
use ptf_bench::*;
use ptf_comm::format_bytes;
use ptf_data::DatasetPreset;
use ptf_models::ModelKind;

/// Communication per round is stationary, so a few rounds suffice.
const MEASURE_ROUNDS: u32 = 3;

fn main() {
    let scale = scale();
    let h = hyper(scale);
    let mut table = Table::new(
        format!("Table IV — avg communication per client per round ({scale:?} scale)"),
        &["Method", "MovieLens-100K", "Steam-200K", "Gowalla"],
    );
    let mut rows: Vec<Vec<String>> = vec![
        vec!["FCF".into()],
        vec!["FedMF".into()],
        vec!["MetaMF".into()],
        vec!["PTF-FedRec".into()],
    ];

    for preset in DatasetPreset::ALL {
        eprintln!("[table4] measuring {}", preset.name());
        let split = split_for(preset, scale);

        let mut fcf = Fcf::new(&split.train, fcf_config(scale));
        for _ in 0..MEASURE_ROUNDS {
            fcf.run_round();
        }
        rows[0].push(format_bytes(fcf.ledger().avg_client_bytes_per_round()));

        let mut fedmf = FedMf::new(&split.train, fedmf_config(scale));
        for _ in 0..MEASURE_ROUNDS {
            fedmf.run_round();
        }
        rows[1].push(format_bytes(fedmf.ledger().avg_client_bytes_per_round()));

        let mut metamf = MetaMf::new(&split.train, metamf_config(scale));
        for _ in 0..MEASURE_ROUNDS {
            metamf.run_round();
        }
        rows[2].push(format_bytes(metamf.ledger().avg_client_bytes_per_round()));

        let mut cfg = ptf_config(scale);
        cfg.rounds = MEASURE_ROUNDS;
        let fed = run_ptf(&split, ModelKind::NeuMf, ModelKind::Ngcf, cfg, &h);
        rows[3].push(format_bytes(fed.ledger().avg_client_bytes_per_round()));
    }

    for row in rows {
        table.row(row);
    }
    table.print();
    table.save("table4_communication");
    println!(
        "\n(paper: FCF 0.46/1.31/2.59 MB; FedMF 7.32/20.98/41.43 MB; \
         MetaMF 0.54/1.63/3.22 MB; PTF-FedRec 3.02/1.21/1.59 KB)"
    );
}
