//! # ptf-privacy
//!
//! The privacy machinery of PTF-FedRec (§III-B2, §IV-G):
//!
//! * [`sampling`] — the noise-free-DP *sampling* defense: each round the
//!   client draws βᵗᵢ (fraction of positives uploaded) and γᵗᵢ (negatives
//!   per positive) at random, hiding the positive/negative ratio of the
//!   upload.
//! * [`swapping`] — the *swap* mechanism: a λ fraction of high-scoring
//!   positives exchange their prediction scores with negatives, perturbing
//!   the order information that LDP noise cannot hide.
//! * [`ldp`] — the Laplace-noise baseline the paper compares against.
//! * [`attack`] — the honest-but-curious server's *Top Guess Attack*:
//!   treat the top `γ·|upload|` scores as positives.
//! * [`accountant`] — privacy-amplification-by-subsampling accounting for
//!   the sampling defense.

pub mod accountant;
pub mod attack;
pub mod ldp;
pub mod sampling;
pub mod swapping;

pub use attack::{OracleCountAttack, TopGuessAttack};
pub use ldp::Ldp;
pub use sampling::{sample_upload, SampledUpload, SamplingConfig};
pub use swapping::swap_scores;

/// One scored item inside an upload: `(item id, predicted score)`.
pub type ScoredItem = (u32, f32);

/// A deterministic RNG for examples and tests.
pub fn test_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
