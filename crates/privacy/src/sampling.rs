//! The sampling defense (noise-free differential privacy).
//!
//! §III-B2: "in round t, the client uᵢ randomly initializes two values βᵗᵢ
//! and γᵗᵢ. βᵗᵢ is used to control the proportion of positive items that
//! client uᵢ will upload, while γᵗᵢ controls the positive and negative
//! item ratio." Because both are redrawn every round and never revealed,
//! the curious server cannot pick the "right" cut-off for its Top Guess
//! Attack.

use rand::Rng;

/// Per-round sampling ranges (§IV-D defaults: β ∈ [0.1, 1], γ ∈ [1, 4]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SamplingConfig {
    pub beta_range: (f64, f64),
    pub gamma_range: (f64, f64),
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self { beta_range: (0.1, 1.0), gamma_range: (1.0, 4.0) }
    }
}

impl SamplingConfig {
    /// "Upload everything" — the No Defense row of Table V.
    pub fn no_defense() -> Self {
        Self { beta_range: (1.0, 1.0), gamma_range: (4.0, 4.0) }
    }
}

/// The result of the sampling step.
#[derive(Clone, Debug, PartialEq)]
pub struct SampledUpload {
    /// Selected positive item indices (into the caller's positive pool).
    pub positives: Vec<usize>,
    /// Selected negative item indices (into the caller's negative pool).
    pub negatives: Vec<usize>,
    /// The β drawn this round.
    pub beta: f64,
    /// The γ drawn this round.
    pub gamma: f64,
}

/// Draws βᵗᵢ and γᵗᵢ and subsamples the trained pools.
///
/// `num_positives`/`num_negatives` are the sizes of the client's trained
/// positive/negative pools this round; returned indices point into those
/// pools. At least one positive is kept whenever any exists (an upload of
/// zero predictions carries no knowledge), and the negative request is
/// capped by availability.
pub fn sample_upload(
    num_positives: usize,
    num_negatives: usize,
    cfg: &SamplingConfig,
    rng: &mut impl Rng,
) -> SampledUpload {
    let beta = draw(cfg.beta_range, rng);
    let gamma = draw(cfg.gamma_range, rng);
    let n_pos = if num_positives == 0 {
        0
    } else {
        ((num_positives as f64 * beta).round() as usize).clamp(1, num_positives)
    };
    let n_neg = ((n_pos as f64 * gamma).round() as usize).min(num_negatives);
    SampledUpload {
        positives: sample_indices(num_positives, n_pos, rng),
        negatives: sample_indices(num_negatives, n_neg, rng),
        beta,
        gamma,
    }
}

fn draw(range: (f64, f64), rng: &mut impl Rng) -> f64 {
    assert!(range.0 <= range.1, "invalid sampling range {range:?}");
    if range.0 == range.1 {
        range.0
    } else {
        rng.gen_range(range.0..=range.1)
    }
}

/// Uniformly samples `k` distinct indices from `0..n` (partial
/// Fisher–Yates on an index vector).
fn sample_indices(n: usize, k: usize, rng: &mut impl Rng) -> Vec<usize> {
    debug_assert!(k <= n);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_beta_and_gamma_bounds() {
        let cfg = SamplingConfig::default();
        for seed in 0..50 {
            let mut rng = crate::test_rng(seed);
            let s = sample_upload(100, 400, &cfg, &mut rng);
            assert!((0.1..=1.0).contains(&s.beta));
            assert!((1.0..=4.0).contains(&s.gamma));
            assert!(!s.positives.is_empty() && s.positives.len() <= 100);
            let expected_neg = ((s.positives.len() as f64 * s.gamma).round() as usize).min(400);
            assert_eq!(s.negatives.len(), expected_neg);
        }
    }

    #[test]
    fn indices_are_distinct_and_in_range() {
        let mut rng = crate::test_rng(3);
        let s = sample_upload(20, 50, &SamplingConfig::default(), &mut rng);
        let mut pos = s.positives.clone();
        pos.sort_unstable();
        pos.dedup();
        assert_eq!(pos.len(), s.positives.len(), "duplicate positive indices");
        assert!(pos.iter().all(|&i| i < 20));
        let mut neg = s.negatives.clone();
        neg.sort_unstable();
        neg.dedup();
        assert_eq!(neg.len(), s.negatives.len(), "duplicate negative indices");
        assert!(neg.iter().all(|&i| i < 50));
    }

    #[test]
    fn no_defense_uploads_everything() {
        let mut rng = crate::test_rng(4);
        let s = sample_upload(10, 40, &SamplingConfig::no_defense(), &mut rng);
        assert_eq!(s.positives.len(), 10);
        assert_eq!(s.negatives.len(), 40);
        assert_eq!(s.beta, 1.0);
        assert_eq!(s.gamma, 4.0);
    }

    #[test]
    fn ratio_varies_across_rounds() {
        // the whole point of the defense: the server cannot predict the
        // positive fraction of an upload
        let cfg = SamplingConfig::default();
        let mut rng = crate::test_rng(5);
        let fractions: Vec<f64> = (0..40)
            .map(|_| {
                let s = sample_upload(100, 400, &cfg, &mut rng);
                s.positives.len() as f64 / (s.positives.len() + s.negatives.len()) as f64
            })
            .collect();
        let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = fractions.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.15, "positive fraction barely varies: {min}..{max}");
    }

    #[test]
    fn handles_empty_pools() {
        let mut rng = crate::test_rng(6);
        let s = sample_upload(0, 10, &SamplingConfig::default(), &mut rng);
        assert!(s.positives.is_empty());
        let s = sample_upload(5, 0, &SamplingConfig::default(), &mut rng);
        assert!(s.negatives.is_empty());
        assert!(!s.positives.is_empty());
    }

    #[test]
    fn negative_request_capped_by_pool() {
        let mut rng = crate::test_rng(7);
        // γ up to 4 × 10 positives = 40 requested, only 8 available
        let s = sample_upload(10, 8, &SamplingConfig::no_defense(), &mut rng);
        assert_eq!(s.negatives.len(), 8);
    }
}
