//! Local differential privacy baseline: the Laplace mechanism.
//!
//! Table V compares the paper's sampling/swapping defense against "the
//! gold standard privacy protection method in traditional FedRecs":
//! additive Laplace noise on the uploaded prediction scores, clipped back
//! to `[0, 1]`. As §IV-G1 observes, the noise must be large to disturb the
//! positive/negative *ordering*, by which point utility is gone.

use crate::ScoredItem;
use rand::Rng;

/// The Laplace mechanism over prediction scores.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ldp {
    /// Privacy budget per uploaded score.
    pub epsilon: f64,
    /// L1 sensitivity of one score (scores live in `[0, 1]` → 1.0).
    pub sensitivity: f64,
}

impl Ldp {
    pub fn new(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "epsilon must be positive");
        Self { epsilon, sensitivity: 1.0 }
    }

    /// The Laplace scale `b = sensitivity / ε`.
    pub fn scale(&self) -> f64 {
        self.sensitivity / self.epsilon
    }

    /// Draws one Laplace(0, b) variate by inverse-CDF.
    pub fn sample_noise(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(-0.5..0.5);
        -self.scale() * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Perturbs every score in place, clipping to `[0, 1]`.
    pub fn perturb(&self, scores: &mut [ScoredItem], rng: &mut impl Rng) {
        for (_, s) in scores.iter_mut() {
            let noisy = *s as f64 + self.sample_noise(rng);
            *s = noisy.clamp(0.0, 1.0) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_has_zero_median_and_laplace_spread() {
        let ldp = Ldp::new(2.0);
        let mut rng = crate::test_rng(1);
        let samples: Vec<f64> = (0..20_000).map(|_| ldp.sample_noise(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Var of Laplace(b) is 2b²; b = 0.5 → var 0.5
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!((var - 0.5).abs() < 0.05, "var {var}");
    }

    #[test]
    fn perturb_clips_to_unit_interval() {
        let ldp = Ldp::new(0.5); // large noise
        let mut scores: Vec<ScoredItem> = (0..200).map(|i| (i, 0.5)).collect();
        ldp.perturb(&mut scores, &mut crate::test_rng(2));
        assert!(scores.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));
        // and actually changed something
        assert!(scores.iter().any(|&(_, s)| s != 0.5));
    }

    #[test]
    fn small_epsilon_means_more_noise() {
        let strong = Ldp::new(0.1);
        let weak = Ldp::new(10.0);
        assert!(strong.scale() > weak.scale());
    }

    #[test]
    fn order_survives_weak_noise() {
        // the paper's critique: Laplace noise that preserves utility also
        // preserves ordering — verify the mechanism reproduces that trait
        let ldp = Ldp::new(20.0);
        let mut scores: Vec<ScoredItem> = vec![(0, 0.95), (1, 0.05)];
        let mut preserved = 0;
        for seed in 0..100 {
            let mut s = scores.clone();
            ldp.perturb(&mut s, &mut crate::test_rng(seed));
            if s[0].1 > s[1].1 {
                preserved += 1;
            }
        }
        assert!(preserved > 90, "weak noise flipped order too often: {preserved}/100");
        let _ = &mut scores;
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn rejects_non_positive_epsilon() {
        let _ = Ldp::new(0.0);
    }
}
