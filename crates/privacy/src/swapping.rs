//! The swap mechanism.
//!
//! §III-B2: "the client randomly selects a proportion λ of positive items
//! with high prediction scores. Subsequently, it exchanges these positive
//! items' prediction scores with negative items." Swapping directly
//! corrupts the *order* information that a ranking attack relies on —
//! which additive LDP noise largely preserves.

use crate::ScoredItem;
use rand::Rng;

/// Swaps the scores of `⌈λ·|positives|⌉` top-scoring positives with the
/// scores of uniformly chosen distinct negatives. No-ops when either pool
/// is empty or `λ ≤ 0`.
pub fn swap_scores(
    positives: &mut [ScoredItem],
    negatives: &mut [ScoredItem],
    lambda: f64,
    rng: &mut impl Rng,
) {
    if lambda <= 0.0 || positives.is_empty() || negatives.is_empty() {
        return;
    }
    let k = ((positives.len() as f64 * lambda).ceil() as usize)
        .min(positives.len())
        .min(negatives.len());

    // top-k positive slots by score, descending. Two fixes over the naive
    // comparator: (1) NaN ranks last (shared `cmp_scores_desc` contract),
    // so a diverged local model degrades the defense instead of panicking
    // mid-run; (2) equal scores tie-break by slot index —
    // `sort_unstable_by` gives equal keys an *unspecified* order, which
    // would let a compiler/std upgrade silently break the bit-identical
    // determinism guarantee.
    let mut pos_order: Vec<usize> = (0..positives.len()).collect();
    pos_order.sort_unstable_by(|&a, &b| {
        ptf_metrics::cmp_scores_desc(positives[a].1, positives[b].1).then(a.cmp(&b))
    });

    // k distinct negative partners (partial Fisher–Yates)
    let mut neg_idx: Vec<usize> = (0..negatives.len()).collect();
    for i in 0..k {
        let j = rng.gen_range(i..neg_idx.len());
        neg_idx.swap(i, j);
    }

    for (slot, &p) in pos_order[..k].iter().enumerate() {
        let n = neg_idx[slot];
        std::mem::swap(&mut positives[p].1, &mut negatives[n].1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> (Vec<ScoredItem>, Vec<ScoredItem>) {
        let pos = vec![(0, 0.95), (1, 0.90), (2, 0.85), (3, 0.80), (4, 0.75)];
        let neg = vec![(10, 0.10), (11, 0.12), (12, 0.08), (13, 0.15)];
        (pos, neg)
    }

    #[test]
    fn swaps_expected_count() {
        let (mut pos, mut neg) = pools();
        let before_pos = pos.clone();
        swap_scores(&mut pos, &mut neg, 0.4, &mut crate::test_rng(1));
        // ceil(0.4 × 5) = 2 positives changed
        let changed = pos.iter().zip(&before_pos).filter(|(a, b)| a.1 != b.1).count();
        assert_eq!(changed, 2);
    }

    #[test]
    fn swapped_positives_are_the_top_scorers() {
        let (mut pos, mut neg) = pools();
        swap_scores(&mut pos, &mut neg, 0.4, &mut crate::test_rng(2));
        // items 0 and 1 had the highest scores; they must now hold low scores
        assert!(pos[0].1 < 0.5, "top positive kept its score: {:?}", pos[0]);
        assert!(pos[1].1 < 0.5, "second positive kept its score: {:?}", pos[1]);
        assert_eq!(pos[2].1, 0.85, "non-selected positive must be untouched");
    }

    #[test]
    fn scores_are_conserved() {
        // swapping permutes the multiset of scores, never invents values
        let (mut pos, mut neg) = pools();
        let mut all_before: Vec<f32> = pos.iter().chain(neg.iter()).map(|&(_, s)| s).collect();
        swap_scores(&mut pos, &mut neg, 0.6, &mut crate::test_rng(3));
        let mut all_after: Vec<f32> = pos.iter().chain(neg.iter()).map(|&(_, s)| s).collect();
        all_before.sort_by(f32::total_cmp);
        all_after.sort_by(f32::total_cmp);
        assert_eq!(all_before, all_after);
    }

    #[test]
    fn item_ids_never_move() {
        let (mut pos, mut neg) = pools();
        swap_scores(&mut pos, &mut neg, 1.0, &mut crate::test_rng(4));
        assert_eq!(pos.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
        assert_eq!(neg.iter().map(|&(i, _)| i).collect::<Vec<_>>(), vec![10, 11, 12, 13]);
    }

    #[test]
    fn lambda_zero_is_noop() {
        let (mut pos, mut neg) = pools();
        let before = (pos.clone(), neg.clone());
        swap_scores(&mut pos, &mut neg, 0.0, &mut crate::test_rng(5));
        assert_eq!((pos, neg), before);
    }

    #[test]
    fn capped_by_negative_pool() {
        let mut pos = vec![(0, 0.9), (1, 0.8), (2, 0.7)];
        let mut neg = vec![(9, 0.1)];
        swap_scores(&mut pos, &mut neg, 1.0, &mut crate::test_rng(6));
        // only one negative exists → exactly one swap
        assert_eq!(neg[0].1, 0.9);
        let changed = pos.iter().filter(|&&(_, s)| s == 0.1).count();
        assert_eq!(changed, 1);
    }

    #[test]
    fn equal_scores_tie_break_by_slot_index() {
        // with all-equal scores the selected "top" positives must be the
        // first k slots, on every std/compiler version
        let mut pos = vec![(0, 0.5), (1, 0.5), (2, 0.5), (3, 0.5)];
        let mut neg = vec![(10, 0.1), (11, 0.2)];
        swap_scores(&mut pos, &mut neg, 0.5, &mut crate::test_rng(8));
        assert_ne!(pos[0].1, 0.5, "slot 0 must be selected first");
        assert_ne!(pos[1].1, 0.5, "slot 1 must be selected second");
        assert_eq!(pos[2].1, 0.5);
        assert_eq!(pos[3].1, 0.5);
    }

    #[test]
    fn nan_scores_swap_without_panicking() {
        // regression: a diverged local model produces NaN prediction
        // scores; the defense must still run (NaN positives rank last,
        // so real high-scorers are swapped first)
        let mut pos = vec![(0, f32::NAN), (1, 0.9), (2, f32::NAN)];
        let mut neg = vec![(10, 0.1)];
        swap_scores(&mut pos, &mut neg, 0.4, &mut crate::test_rng(9));
        assert_eq!(pos[1].1, 0.1, "the only finite top-scorer must be swapped");
        assert_eq!(neg[0].1, 0.9);
    }

    #[test]
    fn empty_pools_are_noop() {
        let mut pos: Vec<ScoredItem> = vec![];
        let mut neg = vec![(0, 0.1)];
        swap_scores(&mut pos, &mut neg, 0.5, &mut crate::test_rng(7));
        assert_eq!(neg, vec![(0, 0.1)]);
    }
}
