//! The Top Guess Attack (§III-B2, evaluated in §IV-G).
//!
//! The honest-but-curious server knows the de-facto standard negative
//! sampling ratio (1:4), so when a client uploads predictions for its
//! trained items, the server simply declares the top `γ·n` scores to be
//! the client's true positives (γ = 0.2 = 1/(1+4)).

use crate::ScoredItem;
use ptf_metrics::{set_f1, PrecisionRecallF1};

/// The attack, parameterized by the server's assumed positive fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopGuessAttack {
    /// Assumed fraction of positives in an upload (paper: 0.2).
    pub gamma: f64,
}

impl Default for TopGuessAttack {
    fn default() -> Self {
        Self { gamma: 0.2 }
    }
}

impl TopGuessAttack {
    /// Guesses the positive set of one upload: the `round(γ·n)` items with
    /// the highest scores (at least 1 when the upload is non-empty).
    /// Returns sorted item ids.
    pub fn guess(&self, upload: &[ScoredItem]) -> Vec<u32> {
        if upload.is_empty() {
            return Vec::new();
        }
        let k = ((upload.len() as f64 * self.gamma).round() as usize).clamp(1, upload.len());
        let mut order: Vec<usize> = (0..upload.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            upload[b].1.partial_cmp(&upload[a].1).expect("scores must not be NaN")
        });
        let mut guessed: Vec<u32> = order[..k].iter().map(|&i| upload[i].0).collect();
        guessed.sort_unstable();
        guessed
    }

    /// Runs the attack on one upload and scores it against the client's
    /// true positives *within the upload* (sorted ids).
    pub fn evaluate(&self, upload: &[ScoredItem], true_positives: &[u32]) -> PrecisionRecallF1 {
        set_f1(&self.guess(upload), true_positives)
    }

    /// Mean attack F1 over many uploads (Table V aggregates per client).
    pub fn mean_f1<'a>(
        &self,
        uploads: impl IntoIterator<Item = (&'a [ScoredItem], &'a [u32])>,
    ) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for (upload, truth) in uploads {
            if upload.is_empty() || truth.is_empty() {
                continue;
            }
            total += self.evaluate(upload, truth).f1;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_succeeds_on_undefended_upload() {
        // 2 positives with top scores among 10 items, attack γ=0.2 → guesses 2
        let upload: Vec<ScoredItem> = vec![
            (0, 0.99),
            (1, 0.97),
            (2, 0.3),
            (3, 0.2),
            (4, 0.25),
            (5, 0.1),
            (6, 0.15),
            (7, 0.22),
            (8, 0.18),
            (9, 0.12),
        ];
        let attack = TopGuessAttack::default();
        assert_eq!(attack.guess(&upload), vec![0, 1]);
        let m = attack.evaluate(&upload, &[0, 1]);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn attack_fails_when_order_is_destroyed() {
        // positives hold *low* scores after a swap defense
        let upload: Vec<ScoredItem> = vec![
            (0, 0.05),
            (1, 0.08),
            (2, 0.9),
            (3, 0.85),
            (4, 0.2),
            (5, 0.3),
            (6, 0.25),
            (7, 0.22),
            (8, 0.28),
            (9, 0.12),
        ];
        let m = TopGuessAttack::default().evaluate(&upload, &[0, 1]);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn guess_count_follows_gamma() {
        let upload: Vec<ScoredItem> = (0..30).map(|i| (i, i as f32 / 30.0)).collect();
        assert_eq!(TopGuessAttack { gamma: 0.2 }.guess(&upload).len(), 6);
        assert_eq!(TopGuessAttack { gamma: 0.5 }.guess(&upload).len(), 15);
        assert_eq!(TopGuessAttack { gamma: 0.0 }.guess(&upload).len(), 1, "at least one guess");
    }

    #[test]
    fn empty_upload_guesses_nothing() {
        assert!(TopGuessAttack::default().guess(&[]).is_empty());
    }

    #[test]
    fn mean_f1_averages_and_skips_empty() {
        let attack = TopGuessAttack::default();
        let perfect: Vec<ScoredItem> = vec![(0, 0.9), (1, 0.1), (2, 0.1), (3, 0.1), (4, 0.1)];
        let miss: Vec<ScoredItem> = vec![(0, 0.1), (1, 0.9), (2, 0.1), (3, 0.2), (4, 0.3)];
        let empty: Vec<ScoredItem> = vec![];
        let truth0 = vec![0u32];
        let uploads: Vec<(&[ScoredItem], &[u32])> = vec![
            (&perfect, truth0.as_slice()),
            (&miss, truth0.as_slice()),
            (&empty, truth0.as_slice()),
        ];
        let f1 = attack.mean_f1(uploads);
        assert!((f1 - 0.5).abs() < 1e-12, "expected mean of 1.0 and 0.0, got {f1}");
    }
}

/// A *stronger* attacker than the paper's: an oracle that somehow learned
/// exactly how many positives each upload contains (e.g. via a side
/// channel), removing the uncertainty the sampling defense creates. It
/// still ranks by score, so the swapping defense keeps working — which is
/// precisely the point of evaluating it.
#[derive(Clone, Copy, Debug, Default)]
pub struct OracleCountAttack;

impl OracleCountAttack {
    /// Guesses the `true_count` top-scored items as positives.
    pub fn guess(&self, upload: &[ScoredItem], true_count: usize) -> Vec<u32> {
        if upload.is_empty() || true_count == 0 {
            return Vec::new();
        }
        let k = true_count.min(upload.len());
        let mut order: Vec<usize> = (0..upload.len()).collect();
        order.sort_unstable_by(|&a, &b| {
            upload[b].1.partial_cmp(&upload[a].1).expect("scores must not be NaN")
        });
        let mut guessed: Vec<u32> = order[..k].iter().map(|&i| upload[i].0).collect();
        guessed.sort_unstable();
        guessed
    }

    /// Runs the oracle attack against one upload.
    pub fn evaluate(&self, upload: &[ScoredItem], true_positives: &[u32]) -> PrecisionRecallF1 {
        set_f1(&self.guess(upload, true_positives.len()), true_positives)
    }
}

#[cfg(test)]
mod oracle_tests {
    use super::*;

    #[test]
    fn oracle_defeats_sampling_alone() {
        // sampling hides the ratio, but with perfect score separation an
        // oracle that knows the count recovers everything
        let upload: Vec<ScoredItem> =
            vec![(0, 0.95), (1, 0.90), (2, 0.91), (10, 0.1), (11, 0.2), (12, 0.15), (13, 0.12)];
        let m = OracleCountAttack.evaluate(&upload, &[0, 1, 2]);
        assert_eq!(m.f1, 1.0, "oracle should recover perfectly separated positives");
    }

    #[test]
    fn swapping_still_blunts_the_oracle() {
        // two of three positives carry swapped (low) scores
        let upload: Vec<ScoredItem> = vec![
            (0, 0.95),
            (1, 0.05), // swapped
            (2, 0.08), // swapped
            (10, 0.90),
            (11, 0.88),
            (12, 0.15),
            (13, 0.12),
        ];
        let m = OracleCountAttack.evaluate(&upload, &[0, 1, 2]);
        assert!(m.f1 < 0.5, "swapping should defeat even the count oracle: {}", m.f1);
    }

    #[test]
    fn oracle_bounds() {
        let upload: Vec<ScoredItem> = vec![(0, 0.5)];
        assert!(OracleCountAttack.guess(&upload, 0).is_empty());
        assert_eq!(OracleCountAttack.guess(&upload, 5), vec![0]);
        assert!(OracleCountAttack.guess(&[], 3).is_empty());
    }
}
