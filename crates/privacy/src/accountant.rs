//! Privacy accounting for the sampling defense.
//!
//! The paper grounds its sampling step in *noise-free differential
//! privacy* (Sun & Lyu, IJCAI 2021): releasing a random subsample of a
//! dataset is itself (ε, δ)-differentially private, and post-processing
//! (the swap step) preserves the guarantee. This module provides the
//! standard privacy-amplification-by-subsampling bookkeeping used to
//! reason about those guarantees.

/// Amplification by subsampling: running an ε-DP mechanism on a uniform
/// q-subsample of the data is `ln(1 + q·(e^ε − 1))`-DP.
pub fn amplified_epsilon(epsilon: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0,1], got {q}");
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    (1.0 + q * (epsilon.exp() - 1.0)).ln()
}

/// δ under subsampling scales linearly: δ' = q·δ.
pub fn amplified_delta(delta: f64, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "sampling rate must be in [0,1], got {q}");
    q * delta
}

/// Accounting view of PTF-FedRec's sampling defense over many rounds.
///
/// Each round the client reveals a β-subsample of its positives. With the
/// per-round release treated as an ε₀-DP mechanism (Sun & Lyu's noise-free
/// analysis supplies ε₀ as a function of the hidden sampling rate), basic
/// composition over `rounds` gives the totals reported here.
#[derive(Clone, Copy, Debug)]
pub struct SamplingAccountant {
    /// Per-round base epsilon of the release mechanism.
    pub base_epsilon: f64,
    /// Worst-case (largest) positive sampling rate, e.g. `beta_range.1`.
    pub max_rate: f64,
}

impl SamplingAccountant {
    /// Effective per-round epsilon after amplification.
    pub fn per_round_epsilon(&self) -> f64 {
        amplified_epsilon(self.base_epsilon, self.max_rate)
    }

    /// Basic (linear) composition across rounds.
    pub fn total_epsilon(&self, rounds: u32) -> f64 {
        self.per_round_epsilon() * rounds as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sampling_is_identity() {
        assert!((amplified_epsilon(1.0, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(amplified_delta(1e-5, 1.0), 1e-5);
    }

    #[test]
    fn full_suppression_gives_zero() {
        assert_eq!(amplified_epsilon(3.0, 0.0), 0.0);
        assert_eq!(amplified_delta(1e-5, 0.0), 0.0);
    }

    #[test]
    fn amplification_is_monotone_in_rate() {
        let eps = 2.0;
        let mut last = 0.0;
        for q in [0.1, 0.3, 0.5, 0.9] {
            let amp = amplified_epsilon(eps, q);
            assert!(amp > last, "not monotone at q={q}");
            assert!(amp < eps, "amplified epsilon must shrink");
            last = amp;
        }
    }

    #[test]
    fn small_q_is_approximately_linear() {
        // for small q, ln(1+q(e^ε−1)) ≈ q(e^ε−1)
        let eps = 0.5;
        let q = 1e-4;
        let exact = amplified_epsilon(eps, q);
        let approx = q * (eps.exp() - 1.0);
        assert!((exact - approx).abs() / approx < 1e-3);
    }

    #[test]
    fn accountant_composes_linearly() {
        let acc = SamplingAccountant { base_epsilon: 1.0, max_rate: 0.5 };
        let one = acc.total_epsilon(1);
        assert!((acc.total_epsilon(20) - 20.0 * one).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn rejects_bad_rate() {
        let _ = amplified_epsilon(1.0, 1.5);
    }
}
