//! Property-based tests of the privacy mechanisms' invariants.

use proptest::prelude::*;
use ptf_privacy::{sample_upload, swap_scores, Ldp, SamplingConfig, ScoredItem, TopGuessAttack};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sampling_counts_respect_config(
        num_pos in 1usize..200,
        num_neg in 0usize..800,
        seed in 0u64..1000,
    ) {
        let cfg = SamplingConfig::default();
        let s = sample_upload(num_pos, num_neg, &cfg, &mut rng(seed));
        // β bounds: at least 1, at most all positives
        prop_assert!(!s.positives.is_empty());
        prop_assert!(s.positives.len() <= num_pos);
        // γ bounds: requested = round(n_pos · γ) capped by pool
        let requested = (s.positives.len() as f64 * s.gamma).round() as usize;
        prop_assert_eq!(s.negatives.len(), requested.min(num_neg));
        // indices valid and distinct
        let mut pos = s.positives.clone();
        pos.sort_unstable();
        pos.dedup();
        prop_assert_eq!(pos.len(), s.positives.len());
        prop_assert!(pos.iter().all(|&i| i < num_pos));
    }

    #[test]
    fn swapping_permutes_scores_only(
        pos_scores in proptest::collection::vec(0.0f32..1.0, 1..40),
        neg_scores in proptest::collection::vec(0.0f32..1.0, 1..40),
        lambda in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let mut pos: Vec<ScoredItem> =
            pos_scores.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
        let mut neg: Vec<ScoredItem> = neg_scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (1000 + i as u32, s))
            .collect();
        let mut before: Vec<f32> =
            pos.iter().chain(neg.iter()).map(|&(_, s)| s).collect();
        let ids_before: Vec<u32> =
            pos.iter().chain(neg.iter()).map(|&(i, _)| i).collect();
        swap_scores(&mut pos, &mut neg, lambda, &mut rng(seed));
        let mut after: Vec<f32> =
            pos.iter().chain(neg.iter()).map(|&(_, s)| s).collect();
        let ids_after: Vec<u32> =
            pos.iter().chain(neg.iter()).map(|&(i, _)| i).collect();
        before.sort_by(f32::total_cmp);
        after.sort_by(f32::total_cmp);
        prop_assert_eq!(before, after, "swap must conserve the score multiset");
        prop_assert_eq!(ids_before, ids_after, "swap must never move item ids");
    }

    #[test]
    fn ldp_outputs_stay_in_unit_interval(
        scores in proptest::collection::vec(0.0f32..1.0, 1..100),
        epsilon in 0.1f64..20.0,
        seed in 0u64..1000,
    ) {
        let mut items: Vec<ScoredItem> =
            scores.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
        Ldp::new(epsilon).perturb(&mut items, &mut rng(seed));
        prop_assert!(items.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn attack_guess_is_subset_of_upload(
        scores in proptest::collection::vec(0.0f32..1.0, 1..120),
        gamma in 0.01f64..0.9,
    ) {
        let upload: Vec<ScoredItem> =
            scores.iter().enumerate().map(|(i, &s)| (i as u32 * 3, s)).collect();
        let guess = TopGuessAttack { gamma }.guess(&upload);
        // sorted, distinct, within the uploaded id set, correct size
        prop_assert!(guess.windows(2).all(|w| w[0] < w[1]));
        for id in &guess {
            prop_assert!(upload.iter().any(|&(i, _)| i == *id));
        }
        let expected = ((upload.len() as f64 * gamma).round() as usize)
            .clamp(1, upload.len());
        prop_assert_eq!(guess.len(), expected);
    }

    #[test]
    fn attack_f1_bounded(
        scores in proptest::collection::vec(0.0f32..1.0, 2..60),
        n_pos in 1usize..20,
    ) {
        let upload: Vec<ScoredItem> =
            scores.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
        let truth: Vec<u32> = (0..n_pos.min(upload.len()) as u32).collect();
        let m = TopGuessAttack::default().evaluate(&upload, &truth);
        prop_assert!((0.0..=1.0).contains(&m.f1));
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
    }
}
