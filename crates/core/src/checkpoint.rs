//! Durable checkpoint/resume for cohort runs.
//!
//! A checkpoint is a directory the trainer can be pointed back at after a
//! crash (or a deliberate kill) such that the resumed run reproduces the
//! uninterrupted run's `RunTrace` byte for byte. The layout and the
//! guarantees are specified normatively in `docs/checkpoint-format.md`;
//! in short:
//!
//! ```text
//! CKPT/
//!   manifest.json        round counter, config fingerprint, traces,
//!                        ledger snapshot, server full-state envelope
//!   commit-r{N}/         committed client envelopes as of round N
//!     {id % 256:02x}/{id}.json
//! ```
//!
//! **Crash safety by ordering.** A commit is written as (1) fresh
//! `commit-r{N}` directory, (2) `manifest.json` via tmp-file + rename,
//! (3) prune of older `commit-r{M}` directories. The manifest rename is
//! the atomic commit point: a crash before it leaves the previous
//! manifest (pointing at the previous, still-present commit dir) in
//! force; a crash after it leaves at worst a stale `commit-r{M}` that the
//! next save prunes. The live client store is *never* the thing resumed
//! from — resume copies the committed envelopes back over it, discarding
//! whatever the interrupted run wrote after the commit.
//!
//! **Validation before state.** [`load_manifest`] checks the format
//! version and [`Manifest::verify_fingerprint`] checks the config
//! fingerprint before any state is touched, so resuming with a drifted
//! config/model/dataset shape fails with an error (CLI exit 1), not a
//! panic or a silently diverging run.

use crate::cohort::CohortFedRec;
use ptf_comm::{CommLedger, LedgerWire};
use ptf_federated::RoundTrace;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Bumped whenever the manifest or envelope wire shapes change.
pub const MANIFEST_VERSION: u32 = 1;

/// The checkpoint manifest — everything a resume needs besides the
/// committed client envelopes.
#[derive(Serialize, Deserialize)]
pub struct Manifest {
    pub version: u32,
    /// `crate::config_fingerprint` of the run, as a 16-digit hex string
    /// (a full-range u64 does not survive the JSON number channel).
    pub fingerprint: String,
    /// The next round the resumed engine will execute; `commit-r{next_round}`
    /// holds the matching client envelopes.
    pub next_round: u32,
    /// Traces of rounds `0..next_round`, replayed into the resumed
    /// recorder so the final `RunTrace` covers the whole run.
    pub traces: Vec<RoundTrace>,
    /// Communication-ledger snapshot at the commit point.
    pub ledger: LedgerWire,
    /// `PtfServer::export_full_state` envelope.
    pub server: String,
}

impl Manifest {
    /// Decodes the hex fingerprint field.
    pub fn fingerprint_u64(&self) -> Result<u64, CheckpointError> {
        u64::from_str_radix(&self.fingerprint, 16).map_err(|_| {
            CheckpointError::Corrupt(format!(
                "manifest fingerprint is not hex: {}",
                self.fingerprint
            ))
        })
    }

    /// Rejects a manifest written under a different config/model/dataset
    /// shape than the one the resume was invoked with.
    pub fn verify_fingerprint(&self, expected: u64) -> Result<(), CheckpointError> {
        let found = self.fingerprint_u64()?;
        if found != expected {
            return Err(CheckpointError::Mismatch(format!(
                "config fingerprint mismatch: checkpoint {found:016x}, run {expected:016x} \
                 (the resumed invocation must use the original config, models, and dataset)"
            )));
        }
        Ok(())
    }
}

/// Why a checkpoint could not be written or resumed from.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    /// Unparseable or internally inconsistent checkpoint contents.
    Corrupt(String),
    /// Valid contents that do not belong to this run (version or
    /// fingerprint drift).
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io: {e}"),
            Self::Corrupt(m) => write!(f, "checkpoint corrupt: {m}"),
            Self::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Path of the manifest inside a checkpoint directory.
pub fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("manifest.json")
}

/// Path of the committed-envelope directory for a given `next_round`.
pub fn commit_dir(dir: &Path, next_round: u32) -> PathBuf {
    dir.join(format!("commit-r{next_round}"))
}

/// Commits the run's state after `protocol.rounds_completed()` rounds:
/// client envelopes, then the manifest (the atomic commit point), then
/// the prune of older commits. See the module docs for the crash-safety
/// argument.
pub fn save_checkpoint(
    dir: &Path,
    protocol: &CohortFedRec,
    ledger: &CommLedger,
    traces: &[RoundTrace],
    fingerprint: u64,
) -> Result<(), CheckpointError> {
    std::fs::create_dir_all(dir)?;
    let next_round = protocol.rounds_completed();
    let commit = commit_dir(dir, next_round);
    if commit.exists() {
        // leftover from a crash between envelope copy and manifest rename
        std::fs::remove_dir_all(&commit)?;
    }
    protocol.snapshot_clients_to(&commit).map_err(CheckpointError::Corrupt)?;
    let server = protocol.export_server_state().ok_or_else(|| {
        CheckpointError::Corrupt("server model does not support full-state export".to_string())
    })?;
    let manifest = Manifest {
        version: MANIFEST_VERSION,
        fingerprint: format!("{fingerprint:016x}"),
        next_round,
        traces: traces.to_vec(),
        ledger: ledger.snapshot(),
        server,
    };
    let json =
        serde_json::to_string(&manifest).map_err(|e| CheckpointError::Corrupt(e.to_string()))?;
    let tmp = dir.join("manifest.json.tmp");
    std::fs::write(&tmp, json.as_bytes())?;
    std::fs::rename(&tmp, manifest_path(dir))?;
    prune_old_commits(dir, next_round)?;
    Ok(())
}

/// Removes `commit-r{M}` directories other than the one the manifest
/// points at. Unrecognized entries are left alone.
fn prune_old_commits(dir: &Path, keep: u32) -> Result<(), CheckpointError> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(num) = name.strip_prefix("commit-r") else { continue };
        match num.parse::<u32>() {
            Ok(n) if n != keep => std::fs::remove_dir_all(entry.path())?,
            _ => {}
        }
    }
    Ok(())
}

/// Reads and structurally validates the manifest. The config fingerprint
/// is *not* checked here — the caller computes its own and calls
/// [`Manifest::verify_fingerprint`], so the two failure modes (unreadable
/// checkpoint vs. wrong run) stay distinguishable.
pub fn load_manifest(dir: &Path) -> Result<Manifest, CheckpointError> {
    let path = manifest_path(dir);
    let text = std::fs::read_to_string(&path)?;
    let manifest: Manifest = serde_json::from_str(&text)
        .map_err(|e| CheckpointError::Corrupt(format!("manifest: {e}")))?;
    if manifest.version != MANIFEST_VERSION {
        return Err(CheckpointError::Mismatch(format!(
            "manifest version {} (this build reads version {MANIFEST_VERSION})",
            manifest.version
        )));
    }
    if manifest.traces.len() != manifest.next_round as usize {
        return Err(CheckpointError::Corrupt(format!(
            "manifest holds {} traces for next_round {}",
            manifest.traces.len(),
            manifest.next_round
        )));
    }
    Ok(manifest)
}

/// Rewinds a freshly constructed protocol to the manifest's commit
/// point: server state, committed client envelopes (each validated to
/// parse), round counter. The caller pairs this with
/// `ptf_federated::Engine::resume` at the same round and a
/// `CommLedger::restore` of the manifest's ledger snapshot.
pub fn resume_protocol(
    dir: &Path,
    manifest: &Manifest,
    protocol: &mut CohortFedRec,
) -> Result<(), CheckpointError> {
    protocol.restore_server_state(&manifest.server).map_err(CheckpointError::Corrupt)?;
    let commit = commit_dir(dir, manifest.next_round);
    protocol.reset_clients_from(&commit).map_err(CheckpointError::Corrupt)?;
    protocol.set_rounds_completed(manifest.next_round);
    Ok(())
}
