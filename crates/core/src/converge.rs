//! Validation-driven early stopping.
//!
//! The paper trains for a fixed 20 rounds and samples validation data
//! "from the client's local training set". This module adds the natural
//! production variant: monitor the hidden server model's validation
//! NDCG@K after every round and stop once it stops improving.

use crate::protocol::PtfFedRec;
use ptf_data::Dataset;
use ptf_federated::RunTrace;

/// Outcome of [`PtfFedRec::run_with_early_stopping`].
#[derive(Clone, Debug)]
pub struct ConvergedRun {
    pub trace: RunTrace,
    /// Round index (0-based) with the best validation NDCG.
    pub best_round: u32,
    pub best_ndcg: f64,
    /// True if training stopped before the configured round budget.
    pub stopped_early: bool,
}

impl PtfFedRec {
    /// Runs up to `cfg.rounds` rounds, evaluating the server model on
    /// `validation` after each; stops when NDCG@`k` has not improved for
    /// `patience` consecutive rounds.
    ///
    /// The server model is left in its *final* state (no best-round
    /// rollback): PTF-FedRec's server model keeps improving from
    /// accumulated uploads, so the final state is almost always the best,
    /// and restoring would require snapshotting the hidden model.
    pub fn run_with_early_stopping(
        &mut self,
        train: &Dataset,
        validation: &Dataset,
        k: usize,
        patience: u32,
    ) -> ConvergedRun {
        assert!(patience > 0, "patience must be at least 1 round");
        let mut trace = RunTrace::default();
        let mut best_ndcg = f64::NEG_INFINITY;
        let mut best_round = 0u32;
        let mut since_best = 0u32;
        let budget = self.cfg.rounds;
        let mut stopped_early = false;
        for round in 0..budget {
            trace.push(self.run_round());
            let ndcg = self.evaluate(train, validation, k).metrics.ndcg;
            if ndcg > best_ndcg {
                best_ndcg = ndcg;
                best_round = round;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    stopped_early = round + 1 < budget;
                    break;
                }
            }
        }
        ConvergedRun { trace, best_round, best_ndcg, stopped_early }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PtfConfig;
    use ptf_data::{SyntheticConfig, ThreeWaySplit};
    use ptf_models::{ModelHyper, ModelKind};

    fn setup(rounds: u32) -> (ThreeWaySplit, PtfFedRec) {
        let data = SyntheticConfig::new("es", 30, 60, 12.0).generate(&mut ptf_data::test_rng(41));
        let split = ThreeWaySplit::split(&data, 0.2, 0.1, &mut ptf_data::test_rng(42));
        let mut cfg = PtfConfig::small();
        cfg.rounds = rounds;
        cfg.client_epochs = 2;
        let fed = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            cfg,
        );
        (split, fed)
    }

    #[test]
    fn respects_round_budget() {
        let (split, mut fed) = setup(4);
        let run = fed.run_with_early_stopping(&split.train, &split.validation, 10, 10);
        assert!(run.trace.num_rounds() <= 4);
        assert!(!run.stopped_early || run.trace.num_rounds() < 4);
        assert!(run.best_ndcg.is_finite());
        assert!((run.best_round as usize) < run.trace.num_rounds());
    }

    #[test]
    fn impatient_run_stops_at_first_plateau() {
        let (split, mut fed) = setup(12);
        let run = fed.run_with_early_stopping(&split.train, &split.validation, 10, 1);
        // with patience 1, the run ends one round after any dip — on a
        // noisy tiny dataset that happens well before 12 rounds
        assert!(
            run.trace.num_rounds() < 12 || !run.stopped_early,
            "rounds: {}",
            run.trace.num_rounds()
        );
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn rejects_zero_patience() {
        let (split, mut fed) = setup(2);
        let _ = fed.run_with_early_stopping(&split.train, &split.validation, 10, 0);
    }
}
