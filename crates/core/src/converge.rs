//! Validation-driven early stopping.
//!
//! The paper trains for a fixed 20 rounds. The production variant —
//! monitor the hidden server model's validation NDCG@K after every round
//! and stop once it plateaus — used to be a `PtfFedRec` inherent method;
//! it now lives on the protocol-agnostic engine as
//! [`Engine::run_with_early_stopping`], so every [`FederatedProtocol`]
//! gets it for free. This module re-exports the result type and keeps the
//! PTF-FedRec integration tests.
//!
//! [`Engine::run_with_early_stopping`]: ptf_federated::Engine::run_with_early_stopping
//! [`FederatedProtocol`]: ptf_federated::FederatedProtocol

pub use ptf_federated::ConvergedRun;

#[cfg(test)]
mod tests {
    use crate::builder::Federation;
    use crate::config::PtfConfig;
    use crate::protocol::PtfFedRec;
    use ptf_data::{SyntheticConfig, ThreeWaySplit};
    use ptf_federated::Engine;
    use ptf_models::{ModelHyper, ModelKind};

    fn setup(rounds: u32) -> (ThreeWaySplit, Engine<PtfFedRec>) {
        let data = SyntheticConfig::new("es", 30, 60, 12.0).generate(&mut ptf_data::test_rng(41));
        let split = ThreeWaySplit::split(&data, 0.2, 0.1, &mut ptf_data::test_rng(42));
        let mut cfg = PtfConfig::small();
        cfg.rounds = rounds;
        cfg.client_epochs = 2;
        let fed = Federation::builder(&split.train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid test config");
        (split, fed)
    }

    #[test]
    fn respects_round_budget() {
        let (split, mut fed) = setup(4);
        let run = fed.run_with_early_stopping(&split.train, &split.validation, 10, 10);
        assert!(run.trace.num_rounds() <= 4);
        assert!(!run.stopped_early || run.trace.num_rounds() < 4);
        assert!(run.best_ndcg.is_finite());
        assert!((run.best_round as usize) < run.trace.num_rounds());
    }

    #[test]
    fn impatient_run_stops_at_first_plateau() {
        let (split, mut fed) = setup(12);
        let run = fed.run_with_early_stopping(&split.train, &split.validation, 10, 1);
        // with patience 1, the run ends one round after any dip — on a
        // noisy tiny dataset that happens well before 12 rounds
        assert!(
            run.trace.num_rounds() < 12 || !run.stopped_early,
            "rounds: {}",
            run.trace.num_rounds()
        );
    }

    #[test]
    #[should_panic(expected = "patience")]
    fn rejects_zero_patience() {
        let (split, mut fed) = setup(2);
        let _ = fed.run_with_early_stopping(&split.train, &split.validation, 10, 0);
    }
}
