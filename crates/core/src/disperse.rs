//! Confidence-based hard construction of D̃ᵢ (§III-B3, Eq. 9).
//!
//! The server picks α items per client: a µ share by *confidence* (items
//! whose embeddings were updated most often across all uploads — their
//! predictions are best-trained) and the rest by *hardness* (the highest
//! server-predicted scores for this client), always excluding items the
//! client itself just uploaded. Table VII ablates each part by replacing
//! it with uniform random selection.

use crate::config::DisperseStrategy;
use rand::Rng;

/// Selects the item ids of D̃ᵢ.
///
/// * `update_counts[i]` — how often item `i`'s embedding was touched by
///   server training (the confidence signal);
/// * `server_scores[i]` — the server model's prediction of this client's
///   preference for item `i` (the hardness signal);
/// * `uploaded` — sorted items of the client's current upload V̂ᵗᵢ
///   (excluded per Eq. 9).
///
/// Returns at most `alpha` distinct item ids.
pub fn select_disperse_items(
    update_counts: &[u64],
    server_scores: &[f32],
    uploaded: &[u32],
    alpha: usize,
    mu: f64,
    strategy: DisperseStrategy,
    rng: &mut impl Rng,
) -> Vec<u32> {
    let num_items = server_scores.len();
    assert_eq!(update_counts.len(), num_items, "signal length mismatch");
    debug_assert!(uploaded.windows(2).all(|w| w[0] < w[1]), "uploaded must be sorted");

    let conf_quota = ((alpha as f64) * mu).round() as usize;
    let hard_quota = alpha.saturating_sub(conf_quota);

    let mut selected: Vec<u32> = Vec::with_capacity(alpha);
    let mut taken = vec![false; num_items];
    for &i in uploaded {
        if (i as usize) < num_items {
            taken[i as usize] = true;
        }
    }

    let use_confidence =
        matches!(strategy, DisperseStrategy::ConfidenceHard | DisperseStrategy::ConfidenceRandom);
    let use_hard =
        matches!(strategy, DisperseStrategy::ConfidenceHard | DisperseStrategy::RandomHard);

    // first share: confidence (or its random replacement)
    if use_confidence {
        take_top_by(&mut selected, &mut taken, conf_quota, |i| update_counts[i] as f64);
    } else {
        take_random(&mut selected, &mut taken, conf_quota, num_items, rng);
    }

    // second share: hardness (or its random replacement)
    if use_hard {
        take_top_by(&mut selected, &mut taken, hard_quota, |i| server_scores[i] as f64);
    } else {
        take_random(&mut selected, &mut taken, hard_quota, num_items, rng);
    }

    selected
}

/// Greedily takes the `quota` untaken items maximizing `key`.
fn take_top_by(
    selected: &mut Vec<u32>,
    taken: &mut [bool],
    quota: usize,
    key: impl Fn(usize) -> f64,
) {
    if quota == 0 {
        return;
    }
    let mut candidates: Vec<u32> =
        (0..taken.len() as u32).filter(|&i| !taken[i as usize]).collect();
    let quota = quota.min(candidates.len());
    if quota == 0 {
        return;
    }
    candidates.select_nth_unstable_by(quota - 1, |&a, &b| {
        key(b as usize)
            .partial_cmp(&key(a as usize))
            .expect("selection keys must not be NaN")
            .then(a.cmp(&b))
    });
    for &i in &candidates[..quota] {
        taken[i as usize] = true;
        selected.push(i);
    }
}

/// Takes `quota` untaken items uniformly at random (rejection sampling
/// with a fallback scan for nearly-exhausted item spaces).
fn take_random(
    selected: &mut Vec<u32>,
    taken: &mut [bool],
    quota: usize,
    num_items: usize,
    rng: &mut impl Rng,
) {
    let free = taken.iter().filter(|&&t| !t).count();
    let quota = quota.min(free);
    let mut got = 0usize;
    let mut attempts = 0usize;
    while got < quota && attempts < quota.saturating_mul(20) {
        let i = rng.gen_range(0..num_items);
        attempts += 1;
        if !taken[i] {
            taken[i] = true;
            selected.push(i as u32);
            got += 1;
        }
    }
    if got < quota {
        // dense fallback
        for (i, slot) in taken.iter_mut().enumerate() {
            if got == quota {
                break;
            }
            if !*slot {
                *slot = true;
                selected.push(i as u32);
                got += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    fn signals() -> (Vec<u64>, Vec<f32>) {
        // items 0..20; update counts favour low ids, scores favour high ids
        let counts: Vec<u64> = (0..20).map(|i| (20 - i) as u64).collect();
        let scores: Vec<f32> = (0..20).map(|i| i as f32 / 20.0).collect();
        (counts, scores)
    }

    #[test]
    fn confidence_hard_picks_both_signals() {
        let (counts, scores) = signals();
        let sel = select_disperse_items(
            &counts,
            &scores,
            &[],
            6,
            0.5,
            DisperseStrategy::ConfidenceHard,
            &mut test_rng(1),
        );
        assert_eq!(sel.len(), 6);
        // confidence share: items 0,1,2 (highest counts)
        assert!(sel.contains(&0) && sel.contains(&1) && sel.contains(&2), "{sel:?}");
        // hard share: items 19,18,17 (highest scores)
        assert!(sel.contains(&19) && sel.contains(&18) && sel.contains(&17), "{sel:?}");
    }

    #[test]
    fn uploaded_items_are_excluded() {
        let (counts, scores) = signals();
        let uploaded = vec![0, 1, 18, 19];
        let sel = select_disperse_items(
            &counts,
            &scores,
            &uploaded,
            6,
            0.5,
            DisperseStrategy::ConfidenceHard,
            &mut test_rng(2),
        );
        for &i in &sel {
            assert!(uploaded.binary_search(&i).is_err(), "uploaded item {i} dispersed");
        }
        // next-best replacements appear instead
        assert!(sel.contains(&2) && sel.contains(&3), "{sel:?}");
        assert!(sel.contains(&17) && sel.contains(&16), "{sel:?}");
    }

    #[test]
    fn no_duplicates_across_shares() {
        // make the same items best on both signals
        let counts: Vec<u64> = (0..10).map(|i| if i < 3 { 100 } else { 1 }).collect();
        let scores: Vec<f32> = (0..10).map(|i| if i < 3 { 0.9 } else { 0.1 }).collect();
        let sel = select_disperse_items(
            &counts,
            &scores,
            &[],
            6,
            0.5,
            DisperseStrategy::ConfidenceHard,
            &mut test_rng(3),
        );
        let mut dedup = sel.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), sel.len(), "duplicate selections: {sel:?}");
    }

    #[test]
    fn random_strategy_ignores_signals() {
        let (counts, scores) = signals();
        // with 20 items and α=6, a signal-driven pick would always include
        // item 0 (top count) or 19 (top score); random eventually misses both
        let mut missed_either = false;
        for seed in 0..20 {
            let sel = select_disperse_items(
                &counts,
                &scores,
                &[],
                6,
                0.5,
                DisperseStrategy::Random,
                &mut test_rng(seed),
            );
            assert_eq!(sel.len(), 6);
            if !sel.contains(&0) || !sel.contains(&19) {
                missed_either = true;
            }
        }
        assert!(missed_either, "random selection suspiciously mirrors the signals");
    }

    #[test]
    fn mu_controls_share_split() {
        let (counts, scores) = signals();
        // µ=1: all confidence
        let sel = select_disperse_items(
            &counts,
            &scores,
            &[],
            4,
            1.0,
            DisperseStrategy::ConfidenceHard,
            &mut test_rng(4),
        );
        assert_eq!(sel, vec![0, 1, 2, 3]);
        // µ=0: all hard
        let sel = select_disperse_items(
            &counts,
            &scores,
            &[],
            4,
            0.0,
            DisperseStrategy::ConfidenceHard,
            &mut test_rng(5),
        );
        assert_eq!(
            {
                let mut s = sel;
                s.sort_unstable();
                s
            },
            vec![16, 17, 18, 19]
        );
    }

    #[test]
    fn exhausted_item_space_returns_fewer() {
        let counts = vec![1u64; 5];
        let scores = vec![0.5f32; 5];
        let uploaded = vec![0, 1, 2, 3];
        let sel = select_disperse_items(
            &counts,
            &scores,
            &uploaded,
            10,
            0.5,
            DisperseStrategy::Random,
            &mut test_rng(6),
        );
        assert_eq!(sel, vec![4], "only one free item existed");
    }
}
