//! The PTF-FedRec client (Algorithm 1, `CLIENT TRAIN`).
//!
//! Each client owns a *single-user* local model (its user table has one
//! row), its private positives `D_i`, and the latest server-dispersed
//! soft-label set `D̃_i`. One local round is Eq. 3 — several epochs of BCE
//! over `D_i ∪ D̃_i` — followed by the privacy-preserving construction of
//! the upload `D̂ᵗᵢ` (§III-B2).

use crate::config::PtfConfig;
use crate::upload::{build_upload_into, ClientUpload};
use ptf_data::negative::sample_negatives_into;
use ptf_federated::{ClientData, RoundScratch};
use ptf_models::{
    build_model, build_model_scoped, ItemScope, ModelHyper, ModelKind, Recommender, ScopeView,
};
use ptf_privacy::ScoredItem;
use rand::Rng;

/// A PTF-FedRec client.
pub struct PtfClient {
    pub id: u32,
    /// Private positives `D_i` (sorted item ids).
    positives: Vec<u32>,
    /// Server-dispersed soft labels `D̃_i` (empty before first dispersal).
    server_data: Vec<ScoredItem>,
    /// The client's local model; its internal user id is always 0.
    model: Box<dyn Recommender>,
    kind: ModelKind,
    /// Upload backing storage recycled from this client's previous round
    /// (see [`PtfClient::recycle_upload`]); per-client upload sizes are
    /// stable, so steady-state rounds reuse the same capacity.
    spare_upload: Option<(Vec<ScoredItem>, Vec<u32>)>,
    /// Local rounds this client has trained (its own counter, robust
    /// under partial participation); drives the eviction schedule.
    local_rounds: u32,
    /// `(item id, last local round it was touched)`, sorted by id — the
    /// recency signal the eviction pass ranks cold rows by. Maintained
    /// only when eviction is enabled.
    touched: Vec<(u32, u32)>,
    /// Reusable keep-set buffer for eviction passes.
    keep: Vec<u32>,
}

impl PtfClient {
    /// Builds an item-scoped client from its data partition and a
    /// per-client derived seed: the local model materializes only the
    /// embedding rows of the client's positives — sampled negatives and
    /// dispersed items materialize lazily on first touch — so a client
    /// never allocates the full `items × dim` table it can never use.
    ///
    /// The storage policy may override the representation per client:
    /// one whose expected training pool covers a large catalogue fraction
    /// is built dense from the *same* derived seed (`ItemScope::Full`),
    /// which skips the per-sample id→row binary search while holding
    /// bit-identical values on every shared row.
    ///
    /// Seeding by value (not by a shared `&mut rng`) is what lets the
    /// federation build the whole fleet in parallel with bit-identical
    /// results at any thread count.
    pub fn new(
        data: ClientData,
        kind: ModelKind,
        hyper: &ModelHyper,
        num_items: usize,
        seed: u64,
        cfg: &PtfConfig,
    ) -> Self {
        let scope = if cfg.storage.mode.wants_dense(data.positives.len(), cfg.neg_ratio, num_items)
        {
            ItemScope::Full(num_items)
        } else {
            data.item_scope(num_items)
        };
        Self {
            id: data.id,
            positives: data.positives,
            server_data: Vec::new(),
            model: build_model_scoped(kind, 1, hyper, &scope, seed),
            kind,
            spare_upload: None,
            local_rounds: 0,
            touched: Vec::new(),
            keep: Vec::new(),
        }
    }

    /// Builds a client with a full (unscoped) item table from a shared
    /// sequential RNG — the legacy construction path, kept as the
    /// `scoped_clients = false` debug mode.
    pub fn new_full(
        data: ClientData,
        kind: ModelKind,
        hyper: &ModelHyper,
        num_items: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            id: data.id,
            positives: data.positives,
            server_data: Vec::new(),
            model: build_model(kind, 1, num_items, hyper, rng),
            kind,
            spare_upload: None,
            local_rounds: 0,
            touched: Vec::new(),
            keep: Vec::new(),
        }
    }

    pub fn num_positives(&self) -> usize {
        self.positives.len()
    }

    /// The item-embedding rows this client's model currently holds.
    pub fn item_scope(&self) -> ScopeView<'_> {
        self.model.item_scope()
    }

    /// Materialized item-embedding rows (≤ `num_items`; the scoped-client
    /// memory story in one number).
    pub fn item_rows(&self) -> usize {
        self.model.item_scope().len()
    }

    pub fn model_kind(&self) -> ModelKind {
        self.kind
    }

    /// Current `D̃_i` (for inspection/tests).
    pub fn server_data(&self) -> &[ScoredItem] {
        &self.server_data
    }

    /// Receives the server's dispersed predictions, replacing `D̃_i`.
    pub fn receive_disperse(&mut self, data: Vec<ScoredItem>) {
        self.server_data = data;
    }

    /// Serializes the model's complete training state (parameters,
    /// optimizer moments, RNG streams) as a portable envelope, or `None`
    /// for models without full-state support. The cohort runtime stores
    /// this between a client's participations; together with
    /// [`eviction_state`](Self::eviction_state) and
    /// [`server_data`](Self::server_data) it captures everything that
    /// carries across rounds (upload buffers are capacity-only, and the
    /// ego graph is rebuilt each local round).
    pub fn export_model_state(&self) -> Option<String> {
        self.model.export_full_state()
    }

    /// Restores a model envelope from [`Self::export_model_state`]. The client
    /// must have been built from the same architecture, per-client seed,
    /// and data partition as the exporter.
    pub fn import_model_state(&mut self, envelope: &str) -> Result<(), String> {
        self.model.import_full_state(envelope)
    }

    /// The eviction-schedule state that must survive a client being
    /// recycled: its local-round counter and the recency index.
    pub fn eviction_state(&self) -> (u32, &[(u32, u32)]) {
        (self.local_rounds, &self.touched)
    }

    /// Restores [`eviction_state`](Self::eviction_state).
    pub fn restore_eviction_state(&mut self, local_rounds: u32, touched: Vec<(u32, u32)>) {
        self.local_rounds = local_rounds;
        self.touched = touched;
    }

    /// Returns a spent upload's backing storage for reuse by this
    /// client's next round. The protocol calls this with the previous
    /// round's retained uploads before sampling the next one.
    pub fn recycle_upload(&mut self, upload: ClientUpload) {
        debug_assert_eq!(upload.client, self.id);
        let ClientUpload { mut predictions, mut audit_positives, .. } = upload;
        predictions.clear();
        audit_positives.clear();
        self.spare_upload = Some((predictions, audit_positives));
    }

    /// Local model scores for `items` (exposed for evaluation/attacks).
    pub fn score(&self, items: &[u32]) -> Vec<f32> {
        self.model.score(0, items)
    }

    /// One local round: train on `D_i ∪ D̃_i`, then build the upload.
    /// Returns the upload and the mean training loss.
    ///
    /// All transient state lives in `scratch` (worker-owned, reused
    /// across rounds) and in the recycled upload buffers, so with an
    /// allocation-free model (MF) a steady-state round performs zero
    /// heap allocations here.
    pub fn local_round(
        &mut self,
        cfg: &PtfConfig,
        scratch: &mut RoundScratch,
        rng: &mut impl Rng,
    ) -> (ClientUpload, f32) {
        let num_items = self.model.num_items();

        // 1. this round's trained pool V^t_i: positives + fresh 1:ratio negatives
        sample_negatives_into(
            &self.positives,
            num_items,
            self.positives.len() * cfg.neg_ratio,
            rng,
            &mut scratch.negatives,
            &mut scratch.seen,
        );

        // 2. one batched materialization of the round's whole pool, so a
        // scoped model merges its fresh rows in a single arena pass
        // instead of shifting once per first-touched sample
        scratch.pool_ids.clear();
        scratch.pool_ids.extend_from_slice(&self.positives);
        scratch.pool_ids.extend_from_slice(&scratch.negatives);
        scratch.pool_ids.extend(self.server_data.iter().map(|&(i, _)| i));
        scratch.pool_ids.sort_unstable();
        scratch.pool_ids.dedup();

        // Auto storage re-evaluation: the construction-time dense/sparse
        // choice only sees `D_i`, but the dispersed set `D̃_i` grows the
        // trained pool over rounds. Once the actual pool crosses the
        // dense threshold, switch to the dense representation — a one-way
        // ratchet that is bit-identical on every shared row (`densify` is
        // representation-only). Skipped under eviction (the opposite
        // policy: bound rows, don't materialize them all) and for NGCF,
        // whose message-dropout stream is drawn over materialized rows —
        // densifying would shift that stream.
        if cfg.storage.evict_interval == 0
            && self.kind != ModelKind::Ngcf
            && self.model.scoped()
            && cfg.storage.mode.wants_dense_pool(scratch.pool_ids.len(), num_items)
        {
            self.model.densify();
        }
        self.model.prepare_items(&scratch.pool_ids);

        // 3. training samples (user id 0 inside the local model)
        scratch.triples.clear();
        scratch.triples.extend(self.positives.iter().map(|&i| (0u32, i, 1.0f32)));
        scratch.triples.extend(scratch.negatives.iter().map(|&i| (0u32, i, 0.0f32)));
        scratch.triples.extend(self.server_data.iter().map(|&(i, s)| (0u32, i, s)));

        // graph clients rebuild their one-hop ego graph from everything
        // they currently believe is positive; non-graph models skip the
        // edge assembly entirely
        if self.model.uses_graph() {
            scratch.edges.clear();
            scratch.edges.extend(self.positives.iter().map(|&i| (0u32, i, 1.0f32)));
            scratch.edges.extend(
                self.server_data
                    .iter()
                    .filter(|&&(_, s)| s >= cfg.graph_threshold)
                    .map(|&(i, s)| (0u32, i, s)),
            );
            self.model.set_graph(&scratch.edges);
        }

        // 4. Eq. 3: several epochs of soft-label BCE
        let mut loss_sum = 0.0f32;
        for _ in 0..cfg.client_epochs {
            shuffle(&mut scratch.triples, rng);
            loss_sum +=
                ptf_models::train_on_samples(&mut *self.model, &scratch.triples, cfg.client_batch);
        }
        let mean_loss = loss_sum / cfg.client_epochs as f32;

        // 5. §III-B2: score the trained pool and build D̂ᵗᵢ
        self.model.score_into(0, &self.positives, &mut scratch.scores_pos);
        self.model.score_into(0, &scratch.negatives, &mut scratch.scores_neg);
        scratch.scored_pos.clear();
        scratch
            .scored_pos
            .extend(self.positives.iter().copied().zip(scratch.scores_pos.iter().copied()));
        scratch.scored_neg.clear();
        scratch
            .scored_neg
            .extend(scratch.negatives.iter().copied().zip(scratch.scores_neg.iter().copied()));
        let (predictions, audit) = self.spare_upload.take().unwrap_or_default();
        let upload = build_upload_into(
            self.id,
            &mut scratch.scored_pos,
            &mut scratch.scored_neg,
            cfg.defense,
            &cfg.sampling,
            cfg.lambda,
            rng,
            predictions,
            audit,
        );

        // 6. cold-row eviction: keep a client's materialized rows bounded
        // over long runs. This is off the allocation-free hot path — an
        // eviction round may allocate — but interval rounds in between
        // stay clean because the whole block is skipped when disabled.
        if cfg.storage.evict_interval > 0 {
            self.local_rounds += 1;
            self.note_touched(&scratch.pool_ids);
            if self.local_rounds.is_multiple_of(cfg.storage.evict_interval) {
                self.evict_cold_rows(cfg.storage.evict_budget, &scratch.pool_ids);
            }
        }

        (upload, mean_loss)
    }

    /// Merges this round's trained pool into the recency index
    /// (`touched` stays sorted by item id; each entry keeps its *last*
    /// touched local round).
    fn note_touched(&mut self, pool: &[u32]) {
        let round = self.local_rounds;
        let old = std::mem::take(&mut self.touched);
        let mut merged = Vec::with_capacity(old.len() + pool.len());
        let (mut i, mut j) = (0, 0);
        while i < old.len() && j < pool.len() {
            match old[i].0.cmp(&pool[j]) {
                std::cmp::Ordering::Less => {
                    merged.push(old[i]);
                    i += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((pool[j], round));
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push((pool[j], round));
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&old[i..]);
        merged.extend(pool[j..].iter().map(|&id| (id, round)));
        self.touched = merged;
    }

    /// Drops cold embedding rows back to their derived init. The keep set
    /// is this round's pool (⊇ positives, and for graph models ⊇ every
    /// ego-graph edge item) topped up to `budget` rows with the most
    /// recently touched survivors (ties broken by ascending id) — so the
    /// working set a client re-touches every round is never churned.
    fn evict_cold_rows(&mut self, budget: usize, pool: &[u32]) {
        self.keep.clear();
        self.keep.extend_from_slice(pool);
        if self.keep.len() < budget {
            let mut extra: Vec<(u32, u32)> = self
                .touched
                .iter()
                .copied()
                .filter(|(id, _)| pool.binary_search(id).is_err())
                .collect();
            extra.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            extra.truncate(budget - self.keep.len());
            self.keep.extend(extra.iter().map(|&(id, _)| id));
            self.keep.sort_unstable();
        }
        self.model.evict_items(&self.keep);
        let keep = &self.keep;
        self.touched.retain(|(id, _)| keep.binary_search(id).is_ok());
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DefenseKind, StorageMode};
    use ptf_tensor::test_rng;

    fn client(kind: ModelKind) -> PtfClient {
        let data = ClientData { id: 7, positives: vec![1, 4, 9, 15, 22] };
        PtfClient::new(data, kind, &ModelHyper::small(), 40, 1, &cfg())
    }

    fn cfg() -> PtfConfig {
        let mut c = PtfConfig::small();
        c.client_epochs = 2;
        // these tests assert scoped row counts; a 5-positive client over a
        // 40-item catalogue would trip the dense fallback
        c.storage.mode = StorageMode::Sparse;
        c
    }

    #[test]
    fn local_round_produces_upload_from_trained_pool() {
        let mut c = client(ModelKind::NeuMf);
        let (upload, loss) = c.local_round(&cfg(), &mut RoundScratch::default(), &mut test_rng(2));
        assert_eq!(upload.client, 7);
        assert!(!upload.is_empty());
        assert!(loss.is_finite() && loss > 0.0);
        // uploads only trained items: positives or sampled negatives (which
        // are never positives) — so every audit positive is a true positive
        for &p in &upload.audit_positives {
            assert!(c.positives.binary_search(&p).is_ok());
        }
    }

    #[test]
    fn training_improves_local_separation() {
        let mut c = client(ModelKind::NeuMf);
        let mut config = cfg();
        config.client_epochs = 15;
        config.defense = DefenseKind::NoDefense;
        let mut rng = test_rng(3);
        let mut scratch = RoundScratch::default();
        let (_, first_loss) = c.local_round(&config, &mut scratch, &mut rng);
        let mut last_loss = first_loss;
        for _ in 0..4 {
            let (_, l) = c.local_round(&config, &mut scratch, &mut rng);
            last_loss = l;
        }
        assert!(last_loss < first_loss, "client loss did not improve: {first_loss} → {last_loss}");
        // positives should now outscore random non-items
        let pos_score = c.score(&[1])[0];
        let neg_score = c.score(&[30])[0];
        assert!(pos_score > neg_score, "{pos_score} vs {neg_score}");
    }

    #[test]
    fn server_data_enters_training() {
        let mut c = client(ModelKind::NeuMf);
        let mut config = cfg();
        config.client_epochs = 20;
        // keep uploading simple
        config.defense = DefenseKind::NoDefense;
        // teach the client that item 33 is great via D̃ only
        c.receive_disperse(vec![(33, 0.95)]);
        let mut rng = test_rng(4);
        let mut scratch = RoundScratch::default();
        for _ in 0..4 {
            let _ = c.local_round(&config, &mut scratch, &mut rng);
        }
        let taught = c.score(&[33])[0];
        // the soft-labelled item must massively outscore items the client
        // only ever saw as sampled negatives (which collapse toward 0
        // under this many epochs); an absolute threshold is too
        // init-sensitive for a 5-positive client
        let neg = c.score(&[36])[0];
        assert!(taught > 0.3 && taught > neg + 0.25, "not learned: {taught} vs negative {neg}");
    }

    #[test]
    fn graph_client_builds_ego_graph() {
        let mut c = client(ModelKind::LightGcn);
        let (upload, loss) = c.local_round(&cfg(), &mut RoundScratch::default(), &mut test_rng(5));
        assert!(loss.is_finite());
        assert!(!upload.is_empty());
    }

    #[test]
    fn clients_are_item_scoped_and_grow_lazily() {
        let c = client(ModelKind::Mf);
        assert_eq!(c.item_rows(), 5, "fresh client holds exactly its positives");
        let mut c = client(ModelKind::NeuMf);
        let before = c.item_rows();
        let _ = c.local_round(&cfg(), &mut RoundScratch::default(), &mut test_rng(9));
        assert!(c.item_rows() > before, "negative sampling must materialize rows");
        assert!(c.item_rows() <= 40);
    }

    #[test]
    fn full_table_debug_clients_still_work() {
        let data = ClientData { id: 3, positives: vec![1, 4, 9] };
        let mut c =
            PtfClient::new_full(data, ModelKind::Mf, &ModelHyper::small(), 40, &mut test_rng(2));
        assert_eq!(c.item_rows(), 40);
        let (upload, loss) = c.local_round(&cfg(), &mut RoundScratch::default(), &mut test_rng(3));
        assert!(!upload.is_empty());
        assert!(loss.is_finite());
    }

    #[test]
    fn dense_fallback_builds_a_full_table_from_the_same_seed() {
        let data = ClientData { id: 7, positives: vec![1, 4, 9, 15, 22] };
        let mut auto_cfg = cfg();
        // 5 positives × (1 + 4) = 25 expected pool ≥ ¼ of 40 → dense
        auto_cfg.storage.mode = StorageMode::Auto { dense_fraction: 0.25 };
        let dense =
            PtfClient::new(data.clone(), ModelKind::Mf, &ModelHyper::small(), 40, 1, &auto_cfg);
        assert_eq!(dense.item_rows(), 40, "dense fallback materializes the catalogue");

        // same seed, forced sparse: every shared row must be bit-identical
        let sparse = PtfClient::new(data, ModelKind::Mf, &ModelHyper::small(), 40, 1, &cfg());
        assert_eq!(sparse.item_rows(), 5);
        let items: Vec<u32> = vec![1, 4, 9, 15, 22];
        assert_eq!(dense.score(&items), sparse.score(&items));
    }

    #[test]
    fn eviction_keeps_rows_bounded_across_rounds() {
        let mut evicting = client(ModelKind::Mf);
        let mut control = client(ModelKind::Mf);
        let mut config = cfg();
        // budget must sit above the ~25-id per-round pool (5 positives ×
        // (1 + neg_ratio)): the keep set never drops rows the client is
        // actively training this round
        config.storage.evict_interval = 2;
        config.storage.evict_budget = 30;
        let plain = cfg();
        let mut rng_a = test_rng(11);
        let mut rng_b = test_rng(11);
        let mut scratch = RoundScratch::default();
        for _ in 0..8 {
            let _ = evicting.local_round(&config, &mut scratch, &mut rng_a);
            let _ = control.local_round(&plain, &mut scratch, &mut rng_b);
        }
        // interval just elapsed: the evicting client sits at ≤ budget while
        // the control has coupon-collected most of the catalogue
        assert!(
            evicting.item_rows() <= 30,
            "evicting client holds {} rows, budget 30",
            evicting.item_rows()
        );
        assert!(control.item_rows() > 30, "control should keep growing");
        // positives are always in the keep set
        for &p in &[1u32, 4, 9, 15, 22] {
            assert!(evicting.item_scope().contains(p), "positive {p} was evicted");
        }
    }

    #[test]
    fn receive_disperse_replaces_previous_set() {
        let mut c = client(ModelKind::NeuMf);
        c.receive_disperse(vec![(1, 0.9), (2, 0.8)]);
        assert_eq!(c.server_data().len(), 2);
        c.receive_disperse(vec![(3, 0.7)]);
        assert_eq!(c.server_data(), &[(3, 0.7)]);
    }
}
