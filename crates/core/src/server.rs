//! The PTF-FedRec central server (Algorithm 1, lines 9–12).
//!
//! The server's elaborately designed model never leaves this struct — the
//! only things that cross the trust boundary are prediction triples in
//! (via [`ClientUpload`]) and scored items out (via [`PtfServer::disperse_for`]).

use crate::config::PtfConfig;
use crate::disperse::select_disperse_items;
use crate::upload::ClientUpload;
use ptf_models::{build_model, ModelHyper, ModelKind, Recommender};
use ptf_privacy::ScoredItem;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Checkpoint wire format of the server's full state. The soft-edge
/// memory is flattened into parallel arrays in `BTreeMap` (key) order,
/// so the encoding is deterministic; the model rides along as its own
/// nested full-state envelope.
#[derive(Serialize, Deserialize)]
struct ServerWire {
    kind: String,
    model: String,
    counts: Vec<u64>,
    edge_users: Vec<u32>,
    edge_items: Vec<u32>,
    edge_scores: Vec<f32>,
}

/// The central server: hidden model + the state backing D̃ construction.
pub struct PtfServer {
    model: Box<dyn Recommender>,
    kind: ModelKind,
    /// Per-item embedding-update counts — the confidence signal (§III-B3).
    item_update_counts: Vec<u64>,
    /// Persistent soft-edge memory `(user, item) → last uploaded score`,
    /// backing the graph models' adjacency (DESIGN.md §5). A `BTreeMap`
    /// so iteration order — which feeds `set_graph` — is a function of
    /// the keys, never of a per-process hash seed.
    edges: BTreeMap<(u32, u32), f32>,
}

impl PtfServer {
    pub fn new(
        num_users: usize,
        num_items: usize,
        kind: ModelKind,
        hyper: &ModelHyper,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            model: build_model(kind, num_users, num_items, hyper, rng),
            kind,
            item_update_counts: vec![0; num_items],
            edges: BTreeMap::new(),
        }
    }

    pub fn model(&self) -> &dyn Recommender {
        &*self.model
    }

    pub fn model_kind(&self) -> ModelKind {
        self.kind
    }

    pub fn item_update_counts(&self) -> &[u64] {
        &self.item_update_counts
    }

    /// Eq. 5: trains the hidden model on this round's uploads with a
    /// soft-label BCE. Returns the mean training loss.
    pub fn train_on_uploads(
        &mut self,
        uploads: &[ClientUpload],
        cfg: &PtfConfig,
        rng: &mut impl Rng,
    ) -> f32 {
        let mut samples: Vec<(u32, u32, f32)> = Vec::new();
        for up in uploads {
            for &(item, score) in &up.predictions {
                samples.push((up.client, item, score));
                self.item_update_counts[item as usize] += 1;
                self.edges.insert((up.client, item), score);
            }
        }
        if samples.is_empty() {
            return 0.0;
        }

        // graph models rebuild their bipartite graph from the accumulated
        // high-confidence soft edges
        let edges: Vec<(u32, u32, f32)> = self
            .edges
            .iter()
            .filter(|&(_, &s)| s >= cfg.graph_threshold)
            .map(|(&(u, i), &s)| (u, i, s))
            .collect();
        self.model.set_graph(&edges);

        let mut loss_sum = 0.0f32;
        for _ in 0..cfg.server_epochs {
            shuffle(&mut samples, rng);
            loss_sum += ptf_models::train_on_samples(&mut *self.model, &samples, cfg.server_batch);
        }
        loss_sum / cfg.server_epochs as f32
    }

    /// §III-B3: builds D̃ᵢ for one client — α confidence/hard items scored
    /// by the hidden model.
    pub fn disperse_for(
        &self,
        client: u32,
        uploaded_sorted: &[u32],
        cfg: &PtfConfig,
        rng: &mut impl Rng,
    ) -> Vec<ScoredItem> {
        let scores = self.model.score_all(client);
        let items = select_disperse_items(
            &self.item_update_counts,
            &scores,
            uploaded_sorted,
            cfg.alpha,
            cfg.mu,
            cfg.disperse,
            rng,
        );
        items.into_iter().map(|i| (i, scores[i as usize])).collect()
    }

    /// Serializes the server's complete training state — hidden-model
    /// envelope, per-item update counts, and the soft-edge memory — for a
    /// checkpoint manifest. Returns `None` if the model does not support
    /// full-state export.
    pub fn export_full_state(&self) -> Option<String> {
        let model = self.model.export_full_state()?;
        let wire = ServerWire {
            kind: self.kind.name().to_string(),
            model,
            counts: self.item_update_counts.clone(),
            edge_users: self.edges.keys().map(|&(u, _)| u).collect(),
            edge_items: self.edges.keys().map(|&(_, i)| i).collect(),
            edge_scores: self.edges.values().copied().collect(),
        };
        serde_json::to_string(&wire).ok()
    }

    /// Rebuilds a server from [`export_full_state`](Self::export_full_state).
    ///
    /// `num_users`/`num_items`/`kind`/`hyper` must match the exporting
    /// server's construction; `graph_threshold` is needed because the
    /// model's graph is not part of any envelope — it is re-derived here
    /// from the restored soft edges, exactly as `train_on_uploads` would.
    pub fn import_full_state(
        envelope: &str,
        num_users: usize,
        num_items: usize,
        kind: ModelKind,
        hyper: &ModelHyper,
        graph_threshold: f32,
    ) -> Result<Self, String> {
        let wire: ServerWire =
            serde_json::from_str(envelope).map_err(|e| format!("server envelope: {e}"))?;
        if wire.kind != kind.name() {
            return Err(format!(
                "server model mismatch: checkpoint has {}, run configured {}",
                wire.kind,
                kind.name()
            ));
        }
        if wire.counts.len() != num_items {
            return Err(format!(
                "server item count mismatch: checkpoint has {}, run has {num_items}",
                wire.counts.len()
            ));
        }
        if wire.edge_users.len() != wire.edge_items.len()
            || wire.edge_users.len() != wire.edge_scores.len()
        {
            return Err(format!(
                "server edge arrays disagree: {} users, {} items, {} scores",
                wire.edge_users.len(),
                wire.edge_items.len(),
                wire.edge_scores.len()
            ));
        }
        // throwaway init — every parameter is overwritten by the envelope
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let mut model = build_model(kind, num_users, num_items, hyper, &mut rng);
        model.import_full_state(&wire.model)?;
        let mut edges = BTreeMap::new();
        for k in 0..wire.edge_users.len() {
            edges.insert((wire.edge_users[k], wire.edge_items[k]), wire.edge_scores[k]);
        }
        // the graph is not part of the model envelope: re-derive it so a
        // resumed server disperses identically even if its first
        // post-resume round trains on nothing
        let graph: Vec<(u32, u32, f32)> = edges
            .iter()
            .filter(|&(_, &s)| s >= graph_threshold)
            .map(|(&(u, i), &s)| (u, i, s))
            .collect();
        model.set_graph(&graph);
        Ok(Self { model, kind, item_update_counts: wire.counts, edges })
    }
}

fn shuffle<T>(xs: &mut [T], rng: &mut impl Rng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    fn cfg() -> PtfConfig {
        let mut c = PtfConfig::small();
        c.alpha = 6;
        c
    }

    fn upload(client: u32, items: &[(u32, f32)]) -> ClientUpload {
        let mut audit: Vec<u32> =
            items.iter().filter(|&&(_, s)| s >= 0.5).map(|&(i, _)| i).collect();
        audit.sort_unstable();
        ClientUpload { client, predictions: items.to_vec(), audit_positives: audit }
    }

    fn server(kind: ModelKind) -> PtfServer {
        PtfServer::new(4, 30, kind, &ModelHyper::small(), &mut test_rng(1))
    }

    #[test]
    fn update_counts_track_uploads() {
        let mut s = server(ModelKind::NeuMf);
        let ups = vec![upload(0, &[(3, 0.9), (7, 0.1)]), upload(1, &[(3, 0.8), (9, 0.2)])];
        let loss = s.train_on_uploads(&ups, &cfg(), &mut test_rng(2));
        assert!(loss > 0.0 && loss.is_finite());
        assert_eq!(s.item_update_counts()[3], 2);
        assert_eq!(s.item_update_counts()[7], 1);
        assert_eq!(s.item_update_counts()[0], 0);
    }

    #[test]
    fn server_learns_uploaded_preferences() {
        let mut s = server(ModelKind::NeuMf);
        let mut config = cfg();
        config.server_epochs = 30;
        let ups = vec![upload(0, &[(3, 0.95), (7, 0.05), (9, 0.05), (11, 0.05)])];
        for _ in 0..6 {
            s.train_on_uploads(&ups, &config, &mut test_rng(3));
        }
        let scores = s.model().score(0, &[3, 7]);
        assert!(scores[0] > scores[1], "server did not learn the uploaded ordering: {scores:?}");
    }

    #[test]
    fn graph_server_accumulates_edges() {
        let mut s = server(ModelKind::LightGcn);
        let config = cfg();
        let mut rng = test_rng(4);
        s.train_on_uploads(&[upload(0, &[(3, 0.9), (7, 0.2)])], &config, &mut rng);
        s.train_on_uploads(&[upload(1, &[(3, 0.85)])], &config, &mut rng);
        // edges (0,3) and (1,3) survive the 0.5 threshold; (0,7) does not
        let high: Vec<_> = s.edges.iter().filter(|&(_, &v)| v >= 0.5).map(|(&k, _)| k).collect();
        assert!(high.contains(&(0, 3)));
        assert!(high.contains(&(1, 3)));
        assert!(!high.contains(&(0, 7)));
    }

    #[test]
    fn disperse_excludes_uploaded_and_scores_with_server_model() {
        let mut s = server(ModelKind::NeuMf);
        let config = cfg();
        let mut rng = test_rng(5);
        s.train_on_uploads(&[upload(0, &[(3, 0.9), (7, 0.1)])], &config, &mut rng);
        let d = s.disperse_for(0, &[3, 7], &config, &mut rng);
        assert_eq!(d.len(), config.alpha);
        for &(i, score) in &d {
            assert!(i != 3 && i != 7, "uploaded item {i} dispersed back");
            let model_score = s.model().score(0, &[i])[0];
            assert!((score - model_score).abs() < 1e-6, "dispersed score is stale");
        }
    }

    #[test]
    fn empty_round_is_harmless() {
        let mut s = server(ModelKind::Ngcf);
        assert_eq!(s.train_on_uploads(&[], &cfg(), &mut test_rng(6)), 0.0);
    }
}
