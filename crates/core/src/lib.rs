//! # ptf-core
//!
//! **PTF-FedRec** — the parameter transmission-free federated
//! recommendation protocol of *"Hide Your Model: A Parameter
//! Transmission-free Federated Recommender System"* (ICDE 2024).
//!
//! Instead of shipping model parameters, clients and the central server
//! exchange *prediction triples*:
//!
//! 1. [`client::PtfClient::local_round`] — each client trains its small
//!    local model on `D_i ∪ D̃_i` (Eq. 3) and uploads a subsampled,
//!    score-swapped prediction set `D̂ᵗᵢ` ([`upload`], §III-B2);
//! 2. [`server::PtfServer::train_on_uploads`] — the server trains its
//!    *hidden* model on the union of uploads with soft-label BCE (Eq. 5);
//! 3. [`server::PtfServer::disperse_for`] — the server returns α
//!    confidence/hard scored items per client ([`disperse`], §III-B3).
//!
//! [`protocol::PtfFedRec`] implements Algorithm 1 as a
//! [`ptf_federated::FederatedProtocol`]; build it with the typed
//! [`Federation::builder`], which wires the protocol into an
//! [`ptf_federated::Engine`] whose observer stack carries the
//! communication ledger, JSON trace recording, and any custom
//! [`ptf_federated::RoundObserver`]:
//!
//! ```no_run
//! use ptf_core::{Federation, PtfConfig};
//! use ptf_data::{DatasetPreset, Scale, TrainTestSplit};
//! use ptf_federated::TraceRecorder;
//! use ptf_models::{ModelHyper, ModelKind};
//!
//! let mut rng = ptf_data::test_rng(7);
//! let data = DatasetPreset::MovieLens100K.generate(Scale::Small, &mut rng);
//! let split = TrainTestSplit::split_80_20(&data, &mut rng);
//!
//! let recorder = TraceRecorder::new();
//! let mut fed = Federation::builder(&split.train)
//!     .client_model(ModelKind::NeuMf)   // public client model
//!     .server_model(ModelKind::Ngcf)    // hidden server model — never transmitted
//!     .hyper(ModelHyper::default())
//!     .config(PtfConfig::paper())
//!     .observer(recorder.clone())       // JSON round traces, for free
//!     .build()?;                        // ConfigError instead of a panic
//! fed.run();
//! println!("{}", fed.evaluate(&split.train, &split.test, 20));
//! println!("{}", recorder.to_json());
//! # Ok::<(), ptf_core::ConfigError>(())
//! ```

pub mod builder;
pub mod checkpoint;
pub mod client;
pub mod cohort;
pub mod config;
pub mod converge;
pub mod disperse;
pub mod fingerprint;
pub mod protocol;
pub mod rounds;
pub mod server;
pub mod upload;

pub use builder::{Federation, FederationBuilder};
pub use checkpoint::{CheckpointError, Manifest, MANIFEST_VERSION};
pub use client::PtfClient;
pub use cohort::{CohortData, CohortFedRec, CohortOptions, ServerScope, StoreKind};
pub use config::{
    ConfigError, DefenseKind, DisperseStrategy, PtfConfig, StorageMode, StoragePolicy,
};
pub use converge::ConvergedRun;
pub use fingerprint::{config_fingerprint, fnv1a64};
pub use protocol::PtfFedRec;
pub use server::PtfServer;
pub use upload::{build_upload, ClientUpload};
