//! The reusable halves of a PTF-FedRec round.
//!
//! The in-process engine (`ptf-federated`) and the networked deployment in
//! `ptf-net` must produce bit-identical results for the same seed and
//! config — the loopback parity test asserts a byte-equal `RunTrace`.
//! Instead of keeping two copies of the round choreography in sync, the
//! pieces live here and both drivers call them:
//!
//! * [`build_client`] / [`build_server`] — fleet construction from the
//!   per-participant derived `ClientInit`/`ServerInit` RNG streams, so a
//!   client built alone in a remote process is bit-identical to the same
//!   client built inside the in-process fleet;
//! * [`sample_participants`] — the per-round `Participation` draw;
//! * [`client_round`] — one client's local training + upload on its own
//!   `RngStream::Client` stream;
//! * [`server_phase`] — the serial reduce: upload replay into the
//!   observer stack (in ascending client order), hidden-model training,
//!   and per-client dispersal on `RngStream::Disperse` streams.
//!
//! Everything here is deterministic given `(cfg.seed, round)`: no step
//! reads ambient state, so the caller may be an in-process scheduler, a
//! TCP server thread, or a test harness.

use crate::client::PtfClient;
use crate::config::PtfConfig;
use crate::server::PtfServer;
use crate::upload::ClientUpload;
use ptf_comm::Payload;
use ptf_data::Dataset;
use ptf_federated::{
    derive_seed, round_rng, ClientData, RngStream, RoundCtx, RoundScratch, RoundTrace,
};
use ptf_models::{ModelHyper, ModelKind};
use ptf_privacy::ScoredItem;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the client for user `id` exactly as the in-process fleet
/// build does: partition from `train`, model seeded by the client's own
/// derived `RngStream::ClientInit` stream. Callers that host only a
/// subset of the fleet (a `ptf client` process) get bit-identical
/// client state to an in-process run.
pub fn build_client(
    train: &Dataset,
    id: u32,
    kind: ModelKind,
    hyper: &ModelHyper,
    cfg: &PtfConfig,
) -> PtfClient {
    let data = ClientData { id, positives: train.user_items(id).to_vec() };
    let client_seed = derive_seed(cfg.seed, 0, RngStream::ClientInit(id).id());
    PtfClient::new(data, kind, hyper, train.num_items(), client_seed, cfg)
}

/// Builds the hidden server model from the `RngStream::ServerInit`
/// stream — independent of client construction order (or location).
pub fn build_server(
    num_users: usize,
    num_items: usize,
    kind: ModelKind,
    hyper: &ModelHyper,
    cfg: &PtfConfig,
) -> PtfServer {
    let mut rng = StdRng::seed_from_u64(derive_seed(cfg.seed, 0, RngStream::ServerInit.id()));
    PtfServer::new(num_users, num_items, kind, hyper, &mut rng)
}

/// Draws the round's participant set `U^t` from the trainable fleet on
/// the `RngStream::Participation` stream (sorted ascending).
pub fn sample_participants(cfg: &PtfConfig, trainable: &[u32], round: u32) -> Vec<u32> {
    let mut rng = round_rng(cfg.seed, round, RngStream::Participation);
    cfg.participation.sample(trainable, &mut rng)
}

/// One client's half of a round (Algorithm 1 lines 5–8): local training
/// on `D_i ∪ D̃_i` plus upload construction, on the client's own derived
/// `RngStream::Client` stream. Where the client runs — scheduler worker,
/// remote process — cannot change the result.
pub fn client_round(
    client: &mut PtfClient,
    cfg: &PtfConfig,
    round: u32,
    scratch: &mut RoundScratch,
) -> (ClientUpload, f32) {
    let mut rng = round_rng(cfg.seed, round, RngStream::Client(client.id));
    client.local_round(cfg, scratch, &mut rng)
}

/// The server's serial half of a round (Algorithm 1 lines 9–12): replay
/// the collected uploads into the observer stack, train the hidden model
/// on their union, and compute each participant's dispersal set.
///
/// `uploads` must be in ascending client order — the order the
/// in-process engine replays participants in, and the order a networked
/// server must sort received uploads into before calling this.
/// Returns the server training loss and one `(client, items)` dispersal
/// per upload; delivering the items (locally or over a wire) is the
/// caller's job.
pub fn server_phase(
    server: &mut PtfServer,
    cfg: &PtfConfig,
    round: u32,
    uploads: &[ClientUpload],
    ctx: &mut RoundCtx<'_>,
) -> (f32, Vec<(u32, Vec<ScoredItem>)>) {
    server_phase_mapped(server, cfg, round, uploads, ctx, None)
}

/// [`server_phase`] with an optional user-id compaction map.
///
/// The cohort runtime's *active-participants* server scope builds the
/// hidden model over only the users that can ever participate, indexed
/// by their position in the sorted active set. With `map = Some(active)`
/// the server model and its soft-edge memory see compact ids, while
/// everything observable from outside — observer/ledger records, the
/// dispersal keys, and every RNG stream — stays keyed by the raw client
/// id. With `map = None` this *is* [`server_phase`], byte for byte.
pub fn server_phase_mapped(
    server: &mut PtfServer,
    cfg: &PtfConfig,
    round: u32,
    uploads: &[ClientUpload],
    ctx: &mut RoundCtx<'_>,
    map: Option<&[u32]>,
) -> (f32, Vec<(u32, Vec<ScoredItem>)>) {
    debug_assert!(uploads.windows(2).all(|w| w[0].client < w[1].client));
    for up in uploads {
        ctx.upload(up.client, "client-predictions", Payload::Triples { count: up.len() });
    }
    let compact = |raw: u32| -> u32 {
        match map {
            None => raw,
            Some(active) => {
                active.binary_search(&raw).expect("participant missing from the active-user map")
                    as u32
            }
        }
    };
    let mut server_rng = round_rng(cfg.seed, round, RngStream::Server);
    let server_loss = if map.is_none() {
        server.train_on_uploads(uploads, cfg, &mut server_rng)
    } else {
        let remapped: Vec<ClientUpload> = uploads
            .iter()
            .map(|up| ClientUpload {
                client: compact(up.client),
                predictions: up.predictions.clone(),
                audit_positives: up.audit_positives.clone(),
            })
            .collect();
        server.train_on_uploads(&remapped, cfg, &mut server_rng)
    };
    let mut disperses = Vec::with_capacity(uploads.len());
    for up in uploads {
        let mut uploaded: Vec<u32> = up.predictions.iter().map(|&(i, _)| i).collect();
        uploaded.sort_unstable();
        let mut disperse_rng = round_rng(cfg.seed, round, RngStream::Disperse(up.client));
        let items = server.disperse_for(compact(up.client), &uploaded, cfg, &mut disperse_rng);
        ctx.disperse(up.client, "server-predictions", Payload::Triples { count: items.len() });
        disperses.push((up.client, items));
    }
    (server_loss, disperses)
}

/// Assembles the round's trace exactly as the in-process protocol does:
/// `losses` in participant order (ascending client id), the server loss,
/// and the context's byte total.
pub fn round_trace(round: u32, losses: &[f32], server_loss: f32, ctx: &RoundCtx<'_>) -> RoundTrace {
    RoundTrace::new(round, losses, server_loss, ctx.bytes())
}
