//! PTF-FedRec hyperparameters (§IV-D of the paper) and their validation.

use ptf_federated::Participation;
use ptf_privacy::SamplingConfig;

/// Why a federation could not be configured.
///
/// Returned by [`PtfConfig::validate`] and
/// [`crate::FederationBuilder::build`] instead of panicking, so the CLI
/// and library callers can surface a message (and a non-zero exit) rather
/// than a backtrace.
#[derive(Clone, Debug, PartialEq)]
pub enum ConfigError {
    /// A required builder field was never set.
    MissingField(&'static str),
    /// A count/size field that must be strictly positive was zero.
    NotPositive(&'static str),
    /// A fraction field left `[0, 1]`.
    OutOfUnitRange { field: &'static str, got: f64 },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingField(field) => {
                write!(f, "missing required field `{field}` (set it on the builder)")
            }
            Self::NotPositive(field) => write!(f, "{field} must be positive"),
            Self::OutOfUnitRange { field, got } => {
                write!(f, "{field} must be in [0,1], got {got}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which client-side defense shapes the uploaded prediction set D̂ᵗᵢ
/// (the rows of Table V).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DefenseKind {
    /// Upload predictions for the whole trained pool.
    NoDefense,
    /// Laplace noise on every uploaded score (the LDP baseline row).
    Ldp { epsilon: f64 },
    /// The paper's sampling step only.
    Sampling,
    /// Sampling followed by score swapping — the full PTF-FedRec defense.
    SamplingSwapping,
}

impl DefenseKind {
    pub fn name(self) -> &'static str {
        match self {
            Self::NoDefense => "No Defense",
            Self::Ldp { .. } => "LDP",
            Self::Sampling => "Sampling",
            Self::SamplingSwapping => "Sampling + Swapping",
        }
    }
}

/// How the server selects the α items of D̃ᵢ (Table VII ablation rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DisperseStrategy {
    /// µα by embedding-update frequency + (1−µ)α hardest (the paper's
    /// confidence-based hard construction).
    ConfidenceHard,
    /// "-confidence": random items replace the confidence share.
    RandomHard,
    /// "-hard": random items replace the hard share.
    ConfidenceRandom,
    /// "-confidence -hard": α random items.
    Random,
}

impl DisperseStrategy {
    pub const ALL: [DisperseStrategy; 4] =
        [Self::ConfidenceHard, Self::RandomHard, Self::ConfidenceRandom, Self::Random];

    pub fn name(self) -> &'static str {
        match self {
            Self::ConfidenceHard => "PTF-FedRec",
            Self::RandomHard => "-confidence",
            Self::ConfidenceRandom => "-hard",
            Self::Random => "-confidence -hard",
        }
    }
}

/// How a client decides between row-sparse and dense item storage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StorageMode {
    /// Per-client heuristic: a client whose expected per-round training
    /// pool `positives × (1 + neg_ratio)` reaches `dense_fraction` of the
    /// catalogue is built dense (it would materialize most rows anyway,
    /// and dense tables skip the binary-search id→row lookup per sample);
    /// everyone else stays row-sparse. Either representation is built
    /// from the same derived seed, so the choice never changes results.
    Auto {
        /// Catalogue fraction at which a client goes dense (default ¼).
        dense_fraction: f64,
    },
    /// Every client row-sparse, regardless of density.
    Sparse,
    /// Every client dense (seed-derived full tables — *not* the legacy
    /// `scoped_clients = false` sequential-RNG path).
    Dense,
}

impl StorageMode {
    /// True if a client with `positives` positive interactions over a
    /// `num_items` catalogue should be built dense.
    pub fn wants_dense(self, positives: usize, neg_ratio: usize, num_items: usize) -> bool {
        match self {
            Self::Sparse => false,
            Self::Dense => true,
            Self::Auto { dense_fraction } => {
                let expected = (positives * (1 + neg_ratio)) as f64;
                expected >= dense_fraction * num_items as f64
            }
        }
    }

    /// Re-evaluation form of [`wants_dense`](Self::wants_dense) for a
    /// training pool whose size is known exactly. Construction can only
    /// *estimate* the pool from `D_i`; the dispersed set `D̃_i` grows it
    /// over rounds, so `Auto` clients re-check this every local round and
    /// densify once the actual pool crosses the threshold.
    pub fn wants_dense_pool(self, pool: usize, num_items: usize) -> bool {
        match self {
            Self::Sparse => false,
            Self::Dense => true,
            Self::Auto { dense_fraction } => pool as f64 >= dense_fraction * num_items as f64,
        }
    }
}

/// Per-client storage policy: the dense-fallback heuristic plus the
/// cold-row eviction schedule that bounds a client's materialized row set
/// over long runs (without eviction the set grows monotonically — every
/// sampled negative materializes a row that is never dropped).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoragePolicy {
    pub mode: StorageMode,
    /// Evict cold rows every this many *local* rounds (0 = never — the
    /// default; eviction is opt-in because it trades re-materialization
    /// work for bounded memory).
    pub evict_interval: u32,
    /// Target materialized rows per client after an eviction pass. The
    /// keep set is positives ∪ the current round's pool (always retained,
    /// which also keeps every graph-edge item resolvable), topped up with
    /// the most recently touched other rows — so the budget is a floor
    /// the keep set can exceed only when a single round's pool does.
    pub evict_budget: usize,
}

impl Default for StoragePolicy {
    fn default() -> Self {
        Self {
            mode: StorageMode::Auto { dense_fraction: 0.25 },
            evict_interval: 0,
            evict_budget: 0,
        }
    }
}

/// Full protocol configuration. [`PtfConfig::paper`] reproduces §IV-D;
/// [`PtfConfig::small`] shrinks rounds/epochs for quick runs while keeping
/// every mechanism active.
#[derive(Clone, Debug)]
pub struct PtfConfig {
    /// Global federation rounds T (paper: 20).
    pub rounds: u32,
    /// Client local epochs L (paper: 5).
    pub client_epochs: u32,
    /// Server training epochs per round (paper: 2).
    pub server_epochs: u32,
    /// Client mini-batch size (paper: 64).
    pub client_batch: usize,
    /// Server mini-batch size (paper: 1024).
    pub server_batch: usize,
    /// Negative sampling ratio (paper: 1:4).
    pub neg_ratio: usize,
    /// Size of the server-dispersed set D̃ᵢ (paper: α = 30).
    pub alpha: usize,
    /// Confidence share of D̃ᵢ (paper: µ = 0.5).
    pub mu: f64,
    /// Swap fraction (paper: λ = 0.1).
    pub lambda: f64,
    /// β/γ sampling ranges (paper: β ∈ [0.1, 1], γ ∈ [1, 4]).
    pub sampling: SamplingConfig,
    /// Client-side upload defense (paper default: sampling + swapping).
    pub defense: DefenseKind,
    /// Server-side D̃ᵢ construction strategy.
    pub disperse: DisperseStrategy,
    /// Participation policy (paper: all clients every round).
    pub participation: Participation,
    /// Soft-label threshold above which an uploaded prediction becomes an
    /// edge of the server's interaction graph (see DESIGN.md §5).
    pub graph_threshold: f32,
    /// Master seed for all protocol randomness.
    pub seed: u64,
    /// Worker threads for the parallel client phase (`0` = every hardware
    /// thread). Runs are bit-identical at any value — see
    /// `ptf_federated::scheduler`.
    pub threads: usize,
    /// Reuse per-worker scratch buffers across rounds (the production
    /// mode; steady-state rounds allocate nothing on the client path).
    /// `false` checks out fresh buffers for every client task — a debug
    /// mode that must produce bit-identical runs, which the determinism
    /// suite asserts.
    pub scratch_reuse: bool,
    /// Build client models item-scoped (the production mode): each client
    /// holds only the embedding rows of its own pool — positives at
    /// construction, sampled negatives and dispersed items on first touch
    /// — cutting paper-scale peak heap ~15–50× and collapsing federation
    /// build time (client init is parallel and proportional to the
    /// partition, not the catalogue). `false` restores full per-client
    /// `items × dim` tables built from one sequential RNG — a debug mode
    /// for A/B-ing the scoped path.
    pub scoped_clients: bool,
    /// Per-client storage representation and eviction schedule (only
    /// meaningful when `scoped_clients` is true; the legacy path always
    /// builds full sequential-RNG tables, which cannot evict).
    pub storage: StoragePolicy,
}

impl PtfConfig {
    /// The paper's §IV-D settings.
    pub fn paper() -> Self {
        Self {
            rounds: 20,
            client_epochs: 5,
            server_epochs: 2,
            client_batch: 64,
            server_batch: 1024,
            neg_ratio: 4,
            alpha: 30,
            mu: 0.5,
            lambda: 0.1,
            sampling: SamplingConfig::default(),
            defense: DefenseKind::SamplingSwapping,
            disperse: DisperseStrategy::ConfidenceHard,
            participation: Participation::full(),
            graph_threshold: 0.5,
            seed: 17,
            threads: 0,
            scratch_reuse: true,
            scoped_clients: true,
            storage: StoragePolicy::default(),
        }
    }

    /// Reduced rounds/epochs for quick experiments; every mechanism stays
    /// enabled so qualitative behaviour is unchanged.
    pub fn small() -> Self {
        Self {
            rounds: 10,
            client_epochs: 3,
            server_epochs: 2,
            client_batch: 64,
            server_batch: 256,
            alpha: 20,
            ..Self::paper()
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn positive(ok: bool, field: &'static str) -> Result<(), ConfigError> {
            if ok {
                Ok(())
            } else {
                Err(ConfigError::NotPositive(field))
            }
        }
        fn unit(value: f64, field: &'static str) -> Result<(), ConfigError> {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(ConfigError::OutOfUnitRange { field, got: value })
            }
        }
        positive(self.rounds > 0, "rounds")?;
        positive(self.client_epochs > 0, "client_epochs")?;
        positive(self.server_epochs > 0, "server_epochs")?;
        positive(self.client_batch > 0, "client_batch")?;
        positive(self.server_batch > 0, "server_batch")?;
        unit(self.mu, "mu")?;
        unit(self.lambda, "lambda")?;
        unit(self.graph_threshold as f64, "graph_threshold")?;
        if let StorageMode::Auto { dense_fraction } = self.storage.mode {
            unit(dense_fraction, "storage.dense_fraction")?;
        }
        if self.storage.evict_interval > 0 {
            positive(self.storage.evict_budget > 0, "storage.evict_budget")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4d() {
        let c = PtfConfig::paper();
        assert_eq!(c.rounds, 20);
        assert_eq!(c.client_epochs, 5);
        assert_eq!(c.server_epochs, 2);
        assert_eq!(c.client_batch, 64);
        assert_eq!(c.server_batch, 1024);
        assert_eq!(c.neg_ratio, 4);
        assert_eq!(c.alpha, 30);
        assert_eq!(c.mu, 0.5);
        assert_eq!(c.lambda, 0.1);
        assert_eq!(c.sampling.beta_range, (0.1, 1.0));
        assert_eq!(c.sampling.gamma_range, (1.0, 4.0));
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn small_keeps_mechanisms() {
        let c = PtfConfig::small();
        assert_eq!(c.defense, DefenseKind::SamplingSwapping);
        assert_eq!(c.disperse, DisperseStrategy::ConfidenceHard);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_catches_bad_mu() {
        let mut c = PtfConfig::paper();
        c.mu = 1.5;
        assert_eq!(c.validate(), Err(ConfigError::OutOfUnitRange { field: "mu", got: 1.5 }));
    }

    #[test]
    fn validate_catches_zero_counts() {
        type Mutator = fn(&mut PtfConfig);
        let cases: [(&str, Mutator); 5] = [
            ("rounds", |c| c.rounds = 0),
            ("client_epochs", |c| c.client_epochs = 0),
            ("server_epochs", |c| c.server_epochs = 0),
            ("client_batch", |c| c.client_batch = 0),
            ("server_batch", |c| c.server_batch = 0),
        ];
        for (field, set) in cases {
            let mut c = PtfConfig::paper();
            set(&mut c);
            assert_eq!(c.validate(), Err(ConfigError::NotPositive(field)));
        }
    }

    #[test]
    fn storage_defaults_and_validation() {
        let c = PtfConfig::paper();
        assert_eq!(c.storage.mode, StorageMode::Auto { dense_fraction: 0.25 });
        assert_eq!(c.storage.evict_interval, 0, "eviction is opt-in");

        let mut c = PtfConfig::paper();
        c.storage.mode = StorageMode::Auto { dense_fraction: 1.5 };
        assert_eq!(
            c.validate(),
            Err(ConfigError::OutOfUnitRange { field: "storage.dense_fraction", got: 1.5 })
        );
        let mut c = PtfConfig::paper();
        c.storage.evict_interval = 5;
        assert_eq!(c.validate(), Err(ConfigError::NotPositive("storage.evict_budget")));
        c.storage.evict_budget = 64;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn dense_fallback_heuristic_matches_the_quarter_catalogue_rule() {
        let auto = StorageMode::Auto { dense_fraction: 0.25 };
        // 100 positives × (1+4) = 500 ≥ 0.25 × 1682 → dense (ML-100K shape)
        assert!(auto.wants_dense(100, 4, 1682));
        // 30 positives × 5 = 150 < 0.25 × 40_000 → sparse (Gowalla shape)
        assert!(!auto.wants_dense(30, 4, 40_000));
        assert!(!StorageMode::Sparse.wants_dense(1_000, 4, 100));
        assert!(StorageMode::Dense.wants_dense(0, 4, 100));
    }

    #[test]
    fn config_error_displays_actionable_messages() {
        assert_eq!(ConfigError::NotPositive("rounds").to_string(), "rounds must be positive");
        assert_eq!(
            ConfigError::OutOfUnitRange { field: "lambda", got: -0.5 }.to_string(),
            "lambda must be in [0,1], got -0.5"
        );
        let e = ConfigError::MissingField("client_model");
        assert!(e.to_string().contains("client_model"), "{e}");
        // it is a real std error
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn strategy_names_match_table7_rows() {
        assert_eq!(DisperseStrategy::ConfidenceHard.name(), "PTF-FedRec");
        assert_eq!(DisperseStrategy::ConfidenceRandom.name(), "-hard");
        assert_eq!(DisperseStrategy::RandomHard.name(), "-confidence");
        assert_eq!(DisperseStrategy::Random.name(), "-confidence -hard");
    }
}
