//! The full PTF-FedRec learning protocol (Algorithm 1).
//!
//! One [`PtfFedRec`] owns the protocol state a run needs: the client
//! fleet (each with its private data and local model), the server with
//! its hidden model, and the master RNG. It implements
//! [`FederatedProtocol`], so an [`ptf_federated::Engine`] drives its
//! rounds and wires in the communication ledger, trace recording, and any
//! other [`ptf_federated::RoundObserver`] from the outside — construct it
//! through [`crate::Federation::builder`].

use crate::client::PtfClient;
use crate::config::{ConfigError, PtfConfig};
use crate::server::PtfServer;
use crate::upload::ClientUpload;
use ptf_comm::Payload;
use ptf_data::Dataset;
use ptf_federated::{partition_clients, FederatedProtocol, RoundCtx, RoundTrace, RunTrace};
use ptf_metrics::RankingReport;
use ptf_models::{evaluate_model, ModelHyper, ModelKind, Recommender};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A configured PTF-FedRec federation.
pub struct PtfFedRec {
    pub cfg: PtfConfig,
    clients: Vec<PtfClient>,
    trainable: Vec<u32>,
    server: PtfServer,
    rng: StdRng,
    round: u32,
    /// Uploads of the most recent round (kept for privacy auditing).
    last_uploads: Vec<ClientUpload>,
}

impl PtfFedRec {
    /// Builds the federation: one client per user of `train`, a hidden
    /// server model, and fresh per-participant state. Fails (instead of
    /// panicking) if `cfg` is inconsistent.
    ///
    /// Most callers want [`crate::Federation::builder`], which wraps this
    /// in an engine with an observer stack.
    pub fn try_new(
        train: &Dataset,
        client_kind: ModelKind,
        server_kind: ModelKind,
        hyper: &ModelHyper,
        cfg: PtfConfig,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let partitions = partition_clients(train);
        let clients: Vec<PtfClient> = partitions
            .iter()
            .map(|p| PtfClient::new(p, client_kind, hyper, train.num_items(), &mut rng))
            .collect();
        let trainable: Vec<u32> =
            partitions.iter().filter(|p| p.is_trainable()).map(|p| p.id).collect();
        let server =
            PtfServer::new(train.num_users(), train.num_items(), server_kind, hyper, &mut rng);
        Ok(Self { cfg, clients, trainable, server, rng, round: 0, last_uploads: Vec::new() })
    }

    /// Legacy positional constructor; panics on an invalid `cfg`.
    #[deprecated(
        since = "0.2.0",
        note = "use `Federation::builder(..)` (or `PtfFedRec::try_new`) \
                which returns `Result<_, ConfigError>`"
    )]
    pub fn new(
        train: &Dataset,
        client_kind: ModelKind,
        server_kind: ModelKind,
        hyper: &ModelHyper,
        cfg: PtfConfig,
    ) -> Self {
        match Self::try_new(train, client_kind, server_kind, hyper, cfg) {
            Ok(fed) => fed,
            Err(e) => panic!("{e}"),
        }
    }

    pub fn server(&self) -> &PtfServer {
        &self.server
    }

    pub fn client(&self, id: u32) -> &PtfClient {
        &self.clients[id as usize]
    }

    /// The uploads of the most recent round (for privacy audits).
    pub fn last_uploads(&self) -> &[ClientUpload] {
        &self.last_uploads
    }

    pub fn rounds_completed(&self) -> u32 {
        self.round
    }

    /// Legacy engine-less full run: all configured rounds, no observers
    /// (byte accounting in the trace still works).
    #[deprecated(
        since = "0.2.0",
        note = "drive the protocol through `ptf_federated::Engine` \
                (see `Federation::builder`) to get ledger/observer wiring"
    )]
    pub fn run(&mut self) -> RunTrace {
        let mut trace = RunTrace::default();
        for _ in 0..self.cfg.rounds {
            let mut ctx = RoundCtx::detached(self.round);
            trace.push(FederatedProtocol::run_round(self, &mut ctx));
        }
        trace
    }

    /// Evaluates the *server* model — the artifact PTF-FedRec trains —
    /// with the paper's ranking protocol.
    pub fn evaluate(&self, train: &Dataset, test: &Dataset, k: usize) -> RankingReport {
        evaluate_model(self.server.model(), train, test, k)
    }
}

impl FederatedProtocol for PtfFedRec {
    fn name(&self) -> &'static str {
        "PTF-FedRec"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.rounds
    }

    /// Executes one global round of Algorithm 1.
    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        let participants = self.cfg.participation.sample(&self.trainable, &mut self.rng);
        ctx.begin(&participants);

        // lines 5–8: local training + prediction upload
        let mut uploads: Vec<ClientUpload> = Vec::with_capacity(participants.len());
        let mut losses: Vec<f32> = Vec::with_capacity(participants.len());
        for &cid in &participants {
            let (upload, loss) = self.clients[cid as usize].local_round(&self.cfg, &mut self.rng);
            losses.push(loss);
            ctx.upload(cid, "client-predictions", Payload::Triples { count: upload.len() });
            uploads.push(upload);
        }

        // lines 10–11: server model training on the collected predictions
        let server_loss = self.server.train_on_uploads(&uploads, &self.cfg, &mut self.rng);

        // line 12: confidence-based hard knowledge dispersal
        for up in &uploads {
            let mut uploaded: Vec<u32> = up.predictions.iter().map(|&(i, _)| i).collect();
            uploaded.sort_unstable();
            let disperse = self.server.disperse_for(up.client, &uploaded, &self.cfg, &mut self.rng);
            ctx.disperse(
                up.client,
                "server-predictions",
                Payload::Triples { count: disperse.len() },
            );
            self.clients[up.client as usize].receive_disperse(disperse);
        }

        let trace = RoundTrace::new(self.round, &losses, server_loss, ctx.bytes());
        self.last_uploads = uploads;
        self.round += 1;
        trace
    }

    fn recommender(&self) -> &dyn Recommender {
        self.server.model()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Federation;
    use crate::config::{DefenseKind, DisperseStrategy};
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;
    use ptf_models::ModelHyper;

    fn tiny_split() -> TrainTestSplit {
        let cfg = SyntheticConfig::new("tiny", 24, 48, 10.0);
        let data = cfg.generate(&mut ptf_data::test_rng(5));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(6))
    }

    fn quick_cfg() -> PtfConfig {
        let mut c = PtfConfig::small();
        c.rounds = 3;
        c.client_epochs = 2;
        c.server_epochs = 1;
        c.alpha = 8;
        c
    }

    fn quick_engine(
        train: &Dataset,
        client: ModelKind,
        server: ModelKind,
        cfg: PtfConfig,
    ) -> Engine<PtfFedRec> {
        Federation::builder(train)
            .client_model(client)
            .server_model(server)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn full_protocol_round_trip() {
        let split = tiny_split();
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
        let trace = fed.run();
        assert_eq!(trace.num_rounds(), 3);
        assert_eq!(fed.rounds_completed(), 3);
        assert_eq!(fed.protocol().rounds_completed(), 3);
        // every round has participants and non-zero traffic
        for r in &trace.rounds {
            assert!(r.participants > 0);
            assert!(r.bytes > 0);
            assert!(r.mean_client_loss.is_finite());
            assert!(r.server_loss.is_finite());
        }
        // uploads retained for auditing
        assert!(!fed.protocol().last_uploads().is_empty());
        // evaluation runs end to end
        let report = fed.evaluate(&split.train, &split.test, 5);
        assert!(report.users_evaluated > 0);
    }

    #[test]
    fn clients_receive_dispersed_knowledge() {
        let split = tiny_split();
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
        fed.run_round();
        let with_data = (0..split.train.num_users() as u32)
            .filter(|&u| !fed.protocol().client(u).server_data().is_empty())
            .count();
        assert!(with_data > 0, "no client received D̃ after a round");
        let ptf = fed.protocol();
        let d = ptf.client(ptf.last_uploads()[0].client).server_data();
        assert_eq!(d.len(), quick_cfg().alpha);
    }

    #[test]
    fn communication_is_kilobyte_scale() {
        let split = tiny_split();
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::Ngcf, quick_cfg());
        fed.run();
        let avg = fed.ledger().avg_client_bytes_per_round();
        assert!(avg > 0.0);
        // the headline claim: KB-level, not MB-level (model has ~40k params)
        let model_bytes = (fed.protocol().server().model().num_params() * 4) as f64;
        assert!(
            avg < model_bytes / 10.0,
            "prediction traffic {avg}B should be far below parameter traffic {model_bytes}B"
        );
    }

    #[test]
    fn defense_reduces_upload_sizes() {
        let split = tiny_split();
        let mut no_def = quick_cfg();
        no_def.defense = DefenseKind::NoDefense;
        no_def.rounds = 1;
        let mut with_def = quick_cfg();
        with_def.defense = DefenseKind::SamplingSwapping;
        with_def.rounds = 1;

        let mut fed_a = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, no_def);
        let mut fed_b = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, with_def);
        fed_a.run();
        fed_b.run();
        let full: usize = fed_a.protocol().last_uploads().iter().map(|u| u.len()).sum();
        let sampled: usize = fed_b.protocol().last_uploads().iter().map(|u| u.len()).sum();
        assert!(sampled < full, "sampling defense should shrink uploads: {sampled} vs {full}");
    }

    #[test]
    fn deterministic_under_seed() {
        let split = tiny_split();
        let run = || {
            let mut fed =
                quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
            fed.run();
            fed.evaluate(&split.train, &split.test, 5).metrics.ndcg
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_disperse_strategies_run() {
        let split = tiny_split();
        for strategy in DisperseStrategy::ALL {
            let mut cfg = quick_cfg();
            cfg.rounds = 1;
            cfg.disperse = strategy;
            let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, cfg);
            let trace = fed.run();
            assert_eq!(trace.num_rounds(), 1, "strategy {strategy:?} failed");
        }
    }

    #[test]
    fn heterogeneous_model_grid_runs() {
        // Table VIII: every client×server combination must work
        let split = tiny_split();
        for client_kind in [ModelKind::NeuMf, ModelKind::LightGcn] {
            for server_kind in [ModelKind::Ngcf, ModelKind::NeuMf] {
                let mut cfg = quick_cfg();
                cfg.rounds = 1;
                cfg.client_epochs = 1;
                let mut fed = quick_engine(&split.train, client_kind, server_kind, cfg);
                let trace = fed.run();
                assert!(trace.rounds[0].participants > 0);
            }
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_constructor_and_builder_produce_identical_traces() {
        // the deprecated positional path must stay byte-for-byte equivalent
        // while it exists, so downstreams can migrate without re-tuning
        let split = tiny_split();
        let mut legacy = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            quick_cfg(),
        );
        let legacy_trace = legacy.run();

        let mut engine =
            quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
        let engine_trace = engine.run();

        assert_eq!(legacy_trace, engine_trace);
        assert_eq!(
            legacy.evaluate(&split.train, &split.test, 5),
            engine.evaluate(&split.train, &split.test, 5)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_constructor_still_panics_on_invalid_config() {
        let split = tiny_split();
        let mut cfg = quick_cfg();
        cfg.mu = 2.0;
        let err = match std::panic::catch_unwind(|| {
            PtfFedRec::new(
                &split.train,
                ModelKind::NeuMf,
                ModelKind::NeuMf,
                &ModelHyper::small(),
                cfg,
            )
        }) {
            Err(payload) => payload,
            Ok(_) => panic!("invalid config must still panic through the legacy path"),
        };
        let msg = err.downcast_ref::<String>().expect("panic carries the display message");
        assert!(msg.contains("mu must be in [0,1]"), "{msg}");
    }
}
