//! The full PTF-FedRec learning protocol (Algorithm 1).
//!
//! One [`PtfFedRec`] owns everything a run needs: the client fleet (each
//! with its private data and local model), the server with its hidden
//! model, a [`CommLedger`] recording every message, and the master RNG.
//! `run()` iterates Algorithm 1 until `cfg.rounds` and reports a
//! [`RunTrace`].

use crate::client::PtfClient;
use crate::config::PtfConfig;
use crate::server::PtfServer;
use crate::upload::ClientUpload;
use ptf_comm::{CommLedger, Payload};
use ptf_data::Dataset;
use ptf_federated::{partition_clients, RoundTrace, RunTrace};
use ptf_metrics::RankingReport;
use ptf_models::{evaluate_model, ModelHyper, ModelKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A configured PTF-FedRec federation.
pub struct PtfFedRec {
    pub cfg: PtfConfig,
    clients: Vec<PtfClient>,
    trainable: Vec<u32>,
    server: PtfServer,
    ledger: CommLedger,
    rng: StdRng,
    round: u32,
    /// Uploads of the most recent round (kept for privacy auditing).
    last_uploads: Vec<ClientUpload>,
}

impl PtfFedRec {
    /// Builds the federation: one client per user of `train`, a hidden
    /// server model, and fresh per-participant state.
    pub fn new(
        train: &Dataset,
        client_kind: ModelKind,
        server_kind: ModelKind,
        hyper: &ModelHyper,
        cfg: PtfConfig,
    ) -> Self {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let partitions = partition_clients(train);
        let clients: Vec<PtfClient> = partitions
            .iter()
            .map(|p| PtfClient::new(p, client_kind, hyper, train.num_items(), &mut rng))
            .collect();
        let trainable: Vec<u32> =
            partitions.iter().filter(|p| p.is_trainable()).map(|p| p.id).collect();
        let server =
            PtfServer::new(train.num_users(), train.num_items(), server_kind, hyper, &mut rng);
        Self {
            cfg,
            clients,
            trainable,
            server,
            ledger: CommLedger::new(),
            rng,
            round: 0,
            last_uploads: Vec::new(),
        }
    }

    pub fn server(&self) -> &PtfServer {
        &self.server
    }

    pub fn client(&self, id: u32) -> &PtfClient {
        &self.clients[id as usize]
    }

    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// The uploads of the most recent round (for privacy audits).
    pub fn last_uploads(&self) -> &[ClientUpload] {
        &self.last_uploads
    }

    pub fn rounds_completed(&self) -> u32 {
        self.round
    }

    /// Executes one global round of Algorithm 1.
    pub fn run_round(&mut self) -> RoundTrace {
        let bytes_before = self.ledger.total_bytes();
        let participants = self.cfg.participation.sample(&self.trainable, &mut self.rng);

        // lines 5–8: local training + prediction upload
        let mut uploads: Vec<ClientUpload> = Vec::with_capacity(participants.len());
        let mut loss_sum = 0.0f64;
        for &cid in &participants {
            let (upload, loss) = self.clients[cid as usize].local_round(&self.cfg, &mut self.rng);
            loss_sum += loss as f64;
            self.ledger.upload(
                cid,
                self.round,
                "client-predictions",
                Payload::Triples { count: upload.len() },
            );
            uploads.push(upload);
        }

        // lines 10–11: server model training on the collected predictions
        let server_loss = self.server.train_on_uploads(&uploads, &self.cfg, &mut self.rng);

        // line 12: confidence-based hard knowledge dispersal
        for up in &uploads {
            let mut uploaded: Vec<u32> = up.predictions.iter().map(|&(i, _)| i).collect();
            uploaded.sort_unstable();
            let disperse = self.server.disperse_for(up.client, &uploaded, &self.cfg, &mut self.rng);
            self.ledger.download(
                up.client,
                self.round,
                "server-predictions",
                Payload::Triples { count: disperse.len() },
            );
            self.clients[up.client as usize].receive_disperse(disperse);
        }

        let trace = RoundTrace {
            round: self.round,
            mean_client_loss: if participants.is_empty() {
                0.0
            } else {
                (loss_sum / participants.len() as f64) as f32
            },
            server_loss,
            participants: participants.len(),
            bytes: self.ledger.total_bytes() - bytes_before,
        };
        self.last_uploads = uploads;
        self.round += 1;
        trace
    }

    /// Runs all configured rounds.
    pub fn run(&mut self) -> RunTrace {
        let mut trace = RunTrace::default();
        for _ in 0..self.cfg.rounds {
            trace.push(self.run_round());
        }
        trace
    }

    /// Evaluates the *server* model — the artifact PTF-FedRec trains —
    /// with the paper's ranking protocol.
    pub fn evaluate(&self, train: &Dataset, test: &Dataset, k: usize) -> RankingReport {
        evaluate_model(self.server.model(), train, test, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DefenseKind, DisperseStrategy};
    use ptf_data::{SyntheticConfig, TrainTestSplit};

    fn tiny_split() -> TrainTestSplit {
        let cfg = SyntheticConfig::new("tiny", 24, 48, 10.0);
        let data = cfg.generate(&mut ptf_data::test_rng(5));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(6))
    }

    fn quick_cfg() -> PtfConfig {
        let mut c = PtfConfig::small();
        c.rounds = 3;
        c.client_epochs = 2;
        c.server_epochs = 1;
        c.alpha = 8;
        c
    }

    #[test]
    fn full_protocol_round_trip() {
        let split = tiny_split();
        let mut fed = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            quick_cfg(),
        );
        let trace = fed.run();
        assert_eq!(trace.num_rounds(), 3);
        assert_eq!(fed.rounds_completed(), 3);
        // every round has participants and non-zero traffic
        for r in &trace.rounds {
            assert!(r.participants > 0);
            assert!(r.bytes > 0);
            assert!(r.mean_client_loss.is_finite());
            assert!(r.server_loss.is_finite());
        }
        // uploads retained for auditing
        assert!(!fed.last_uploads().is_empty());
        // evaluation runs end to end
        let report = fed.evaluate(&split.train, &split.test, 5);
        assert!(report.users_evaluated > 0);
    }

    #[test]
    fn clients_receive_dispersed_knowledge() {
        let split = tiny_split();
        let mut fed = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            quick_cfg(),
        );
        fed.run_round();
        let with_data = (0..split.train.num_users() as u32)
            .filter(|&u| !fed.client(u).server_data().is_empty())
            .count();
        assert!(with_data > 0, "no client received D̃ after a round");
        let d = fed.client(fed.last_uploads()[0].client).server_data();
        assert_eq!(d.len(), quick_cfg().alpha);
    }

    #[test]
    fn communication_is_kilobyte_scale() {
        let split = tiny_split();
        let mut fed = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::Ngcf,
            &ModelHyper::small(),
            quick_cfg(),
        );
        fed.run();
        let avg = fed.ledger().avg_client_bytes_per_round();
        assert!(avg > 0.0);
        // the headline claim: KB-level, not MB-level (model has ~40k params)
        let model_bytes = (fed.server().model().num_params() * 4) as f64;
        assert!(
            avg < model_bytes / 10.0,
            "prediction traffic {avg}B should be far below parameter traffic {model_bytes}B"
        );
    }

    #[test]
    fn defense_reduces_upload_sizes() {
        let split = tiny_split();
        let mut no_def = quick_cfg();
        no_def.defense = DefenseKind::NoDefense;
        no_def.rounds = 1;
        let mut with_def = quick_cfg();
        with_def.defense = DefenseKind::SamplingSwapping;
        with_def.rounds = 1;

        let mut fed_a = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            no_def,
        );
        let mut fed_b = PtfFedRec::new(
            &split.train,
            ModelKind::NeuMf,
            ModelKind::NeuMf,
            &ModelHyper::small(),
            with_def,
        );
        fed_a.run();
        fed_b.run();
        let full: usize = fed_a.last_uploads().iter().map(|u| u.len()).sum();
        let sampled: usize = fed_b.last_uploads().iter().map(|u| u.len()).sum();
        assert!(sampled < full, "sampling defense should shrink uploads: {sampled} vs {full}");
    }

    #[test]
    fn deterministic_under_seed() {
        let split = tiny_split();
        let run = || {
            let mut fed = PtfFedRec::new(
                &split.train,
                ModelKind::NeuMf,
                ModelKind::NeuMf,
                &ModelHyper::small(),
                quick_cfg(),
            );
            fed.run();
            fed.evaluate(&split.train, &split.test, 5).metrics.ndcg
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn all_disperse_strategies_run() {
        let split = tiny_split();
        for strategy in DisperseStrategy::ALL {
            let mut cfg = quick_cfg();
            cfg.rounds = 1;
            cfg.disperse = strategy;
            let mut fed = PtfFedRec::new(
                &split.train,
                ModelKind::NeuMf,
                ModelKind::NeuMf,
                &ModelHyper::small(),
                cfg,
            );
            let trace = fed.run();
            assert_eq!(trace.num_rounds(), 1, "strategy {strategy:?} failed");
        }
    }

    #[test]
    fn heterogeneous_model_grid_runs() {
        // Table VIII: every client×server combination must work
        let split = tiny_split();
        for client_kind in [ModelKind::NeuMf, ModelKind::LightGcn] {
            for server_kind in [ModelKind::Ngcf, ModelKind::NeuMf] {
                let mut cfg = quick_cfg();
                cfg.rounds = 1;
                cfg.client_epochs = 1;
                let mut fed = PtfFedRec::new(
                    &split.train,
                    client_kind,
                    server_kind,
                    &ModelHyper::small(),
                    cfg,
                );
                let trace = fed.run();
                assert!(trace.rounds[0].participants > 0);
            }
        }
    }
}
