//! The full PTF-FedRec learning protocol (Algorithm 1).
//!
//! One [`PtfFedRec`] owns the protocol state a run needs: the client
//! fleet (each with its private data and local model) and the server with
//! its hidden model. It implements [`FederatedProtocol`], so an
//! [`ptf_federated::Engine`] drives its rounds and wires in the
//! communication ledger, trace recording, and any other
//! [`ptf_federated::RoundObserver`] from the outside — construct it
//! through [`crate::Federation::builder`].
//!
//! Each round is the two-phase map/reduce of
//! [`ptf_federated::scheduler`]: client local training runs in parallel
//! on per-`(seed, round, client)` derived RNG streams, then uploads,
//! server training, and dispersal replay serially in participant order —
//! so a run is bit-identical at any thread count.

use crate::client::PtfClient;
use crate::config::{ConfigError, PtfConfig};
use crate::rounds;
use crate::server::PtfServer;
use crate::upload::ClientUpload;
use ptf_data::Dataset;
use ptf_federated::{
    partition_clients, FederatedProtocol, RoundCtx, RoundTrace, Scheduler, ScratchPool,
};
use ptf_metrics::RankingReport;
use ptf_models::{evaluate_model_with_threads, ModelHyper, ModelKind, Recommender};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A configured PTF-FedRec federation.
pub struct PtfFedRec {
    pub cfg: PtfConfig,
    clients: Vec<PtfClient>,
    trainable: Vec<u32>,
    server: PtfServer,
    scheduler: Scheduler,
    /// Per-worker reusable client-phase buffers (see
    /// [`ptf_federated::RoundScratch`]).
    scratch: ScratchPool,
    round: u32,
    /// Uploads of the most recent round (kept for privacy auditing).
    last_uploads: Vec<ClientUpload>,
    /// Heap allocations performed *inside* the most recent round's
    /// parallel client phase (0 unless the `ptf_tensor::alloc` shim is
    /// installed; 0 in steady state with an allocation-free client model).
    last_client_allocs: u64,
}

impl PtfFedRec {
    /// Builds the federation: one client per user of `train`, a hidden
    /// server model, and fresh per-participant state. Fails (instead of
    /// panicking) if `cfg` is inconsistent.
    ///
    /// With `cfg.scoped_clients` (the default) the whole fleet builds in
    /// parallel on the scheduler: each client's partition *and*
    /// item-scoped model come from one task seeded by its own derived
    /// `RngStream::ClientInit` stream, so the build is bit-identical at
    /// any thread count and no longer burns minutes on per-client
    /// full-table `randn` (the PR-4 Gowalla build spent 213 s there).
    ///
    /// Most callers want [`crate::Federation::builder`], which wraps this
    /// in an engine with an observer stack.
    pub fn try_new(
        train: &Dataset,
        client_kind: ModelKind,
        server_kind: ModelKind,
        hyper: &ModelHyper,
        cfg: PtfConfig,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let scheduler = Scheduler::new(cfg.threads);
        let num_items = train.num_items();
        let (clients, server) = if cfg.scoped_clients {
            let cfg_ref = &cfg;
            let clients: Vec<PtfClient> = scheduler.map_indices(train.num_users(), |u| {
                rounds::build_client(train, u as u32, client_kind, hyper, cfg_ref)
            });
            let server =
                rounds::build_server(train.num_users(), num_items, server_kind, hyper, cfg_ref);
            (clients, server)
        } else {
            // legacy debug path: full client tables off one sequential RNG
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let clients: Vec<PtfClient> = partition_clients(train)
                .into_iter()
                .map(|p| PtfClient::new_full(p, client_kind, hyper, num_items, &mut rng))
                .collect();
            let server = PtfServer::new(train.num_users(), num_items, server_kind, hyper, &mut rng);
            (clients, server)
        };
        let trainable: Vec<u32> =
            clients.iter().filter(|c| c.num_positives() > 0).map(|c| c.id).collect();
        let scratch = ScratchPool::with_reuse(cfg.scratch_reuse);
        Ok(Self {
            cfg,
            clients,
            trainable,
            server,
            scheduler,
            scratch,
            round: 0,
            last_uploads: Vec::new(),
            last_client_allocs: 0,
        })
    }

    /// Total materialized item-embedding rows across the client fleet —
    /// the scoped-client memory story in one number (compare against
    /// `num_clients × num_items`, what full tables would hold).
    pub fn materialized_item_rows(&self) -> usize {
        self.clients.iter().map(PtfClient::item_rows).sum()
    }

    /// How many clients the storage policy built with a full (dense) item
    /// table — the dense-fallback story in one number.
    pub fn dense_clients(&self) -> usize {
        self.clients.iter().filter(|c| c.item_scope().is_full()).count()
    }

    pub fn server(&self) -> &PtfServer {
        &self.server
    }

    pub fn client(&self, id: u32) -> &PtfClient {
        &self.clients[id as usize]
    }

    /// The uploads of the most recent round (for privacy audits).
    pub fn last_uploads(&self) -> &[ClientUpload] {
        &self.last_uploads
    }

    /// Heap allocations inside the most recent round's parallel client
    /// phase. Always 0 unless the binary installed the
    /// `ptf_tensor::alloc::CountingAlloc` shim; with the shim and an
    /// allocation-free client model (MF), steady-state rounds report 0 —
    /// the release-mode hot-path test asserts exactly that.
    pub fn last_round_client_allocs(&self) -> u64 {
        self.last_client_allocs
    }

    pub fn rounds_completed(&self) -> u32 {
        self.round
    }

    /// Evaluates the *server* model — the artifact PTF-FedRec trains —
    /// with the paper's ranking protocol, on the configured worker count.
    pub fn evaluate(&self, train: &Dataset, test: &Dataset, k: usize) -> RankingReport {
        evaluate_model_with_threads(self.server.model(), train, test, k, self.scheduler.threads())
    }

    /// The clients (ascending id) the participation policy may sample.
    pub fn trainable(&self) -> &[u32] {
        &self.trainable
    }

    /// One round over an explicit participant set: the shared body of
    /// [`FederatedProtocol::run_round`] (which samples the set) and
    /// [`FederatedProtocol::run_round_external`] (which is handed one by
    /// an external driver, e.g. a networked round server replaying the
    /// clients that made its deadline).
    fn round_with(&mut self, ctx: &mut RoundCtx<'_>, participants: Vec<u32>) -> RoundTrace {
        let round = self.round;
        // hand the previous round's upload buffers back to their owners so
        // steady-state upload staging reuses per-client capacity
        for upload in self.last_uploads.drain(..) {
            let owner = upload.client as usize;
            self.clients[owner].recycle_upload(upload);
        }
        ctx.begin(&participants);

        // lines 5–8, parallel phase: local training + upload construction
        // on one derived RNG stream per client, all transient state in
        // per-worker scratch buffers; the allocation counter brackets
        // exactly the client-path work (thread-local, so parallel workers
        // count independently)
        let cfg = &self.cfg;
        let mut refs = participant_refs(&mut self.clients, &participants);
        let results: Vec<(ClientUpload, f32, u64)> =
            self.scheduler.map_clients_with(&self.scratch, &mut refs, |scratch, _, client| {
                let allocs_before = ptf_tensor::alloc::thread_allocs();
                let (upload, loss) = rounds::client_round(client, cfg, round, scratch);
                let allocs = ptf_tensor::alloc::thread_allocs() - allocs_before;
                (upload, loss, allocs)
            });
        drop(refs);

        // serial phase: replay uploads into the observer stack in
        // participant order, train the hidden model, disperse (lines 9–12)
        let mut uploads: Vec<ClientUpload> = Vec::with_capacity(results.len());
        let mut losses: Vec<f32> = Vec::with_capacity(results.len());
        self.last_client_allocs = 0;
        for (upload, loss, allocs) in results {
            losses.push(loss);
            self.last_client_allocs += allocs;
            uploads.push(upload);
        }
        let (server_loss, disperses) =
            rounds::server_phase(&mut self.server, &self.cfg, round, &uploads, ctx);
        for (client, items) in disperses {
            self.clients[client as usize].receive_disperse(items);
        }

        let trace = rounds::round_trace(round, &losses, server_loss, ctx);
        self.last_uploads = uploads;
        self.round += 1;
        trace
    }
}

/// Mutable references to the participating clients, in participant order
/// (`participants` must be sorted ascending, as produced by
/// `Participation::sample`).
fn participant_refs<'a>(
    clients: &'a mut [PtfClient],
    participants: &[u32],
) -> Vec<&'a mut PtfClient> {
    debug_assert!(participants.windows(2).all(|w| w[0] < w[1]));
    let mut want = participants.iter().copied().peekable();
    let mut refs = Vec::with_capacity(participants.len());
    for (i, c) in clients.iter_mut().enumerate() {
        if want.peek() == Some(&(i as u32)) {
            want.next();
            refs.push(c);
        }
    }
    refs
}

impl FederatedProtocol for PtfFedRec {
    fn name(&self) -> &'static str {
        "PTF-FedRec"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.rounds
    }

    /// Executes one global round of Algorithm 1 as a two-phase
    /// map/reduce (see the module docs).
    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        let participants = rounds::sample_participants(&self.cfg, &self.trainable, self.round);
        self.round_with(ctx, participants)
    }

    /// PTF-FedRec honors externally-chosen participant sets: the body is
    /// the same round as [`Self::run_round`] minus the participation
    /// draw. Unknown or non-trainable ids are ignored (a networked driver
    /// may hand in a deadline-filtered set).
    fn run_round_external(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        participants: &[u32],
    ) -> Option<RoundTrace> {
        let mut chosen: Vec<u32> = participants
            .iter()
            .copied()
            .filter(|id| self.trainable.binary_search(id).is_ok())
            .collect();
        chosen.sort_unstable();
        chosen.dedup();
        Some(self.round_with(ctx, chosen))
    }

    fn recommender(&self) -> &dyn Recommender {
        self.server.model()
    }

    fn threads(&self) -> usize {
        self.scheduler.threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Federation;
    use crate::config::{DefenseKind, DisperseStrategy};
    use ptf_data::{SyntheticConfig, TrainTestSplit};
    use ptf_federated::Engine;
    use ptf_models::ModelHyper;

    fn tiny_split() -> TrainTestSplit {
        let cfg = SyntheticConfig::new("tiny", 24, 48, 10.0);
        let data = cfg.generate(&mut ptf_data::test_rng(5));
        TrainTestSplit::split_80_20(&data, &mut ptf_data::test_rng(6))
    }

    fn quick_cfg() -> PtfConfig {
        let mut c = PtfConfig::small();
        c.rounds = 3;
        c.client_epochs = 2;
        c.server_epochs = 1;
        c.alpha = 8;
        c
    }

    fn quick_engine(
        train: &Dataset,
        client: ModelKind,
        server: ModelKind,
        cfg: PtfConfig,
    ) -> Engine<PtfFedRec> {
        Federation::builder(train)
            .client_model(client)
            .server_model(server)
            .hyper(ModelHyper::small())
            .config(cfg)
            .build()
            .expect("valid test config")
    }

    #[test]
    fn full_protocol_round_trip() {
        let split = tiny_split();
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
        let trace = fed.run();
        assert_eq!(trace.num_rounds(), 3);
        assert_eq!(fed.rounds_completed(), 3);
        assert_eq!(fed.protocol().rounds_completed(), 3);
        // every round has participants and non-zero traffic
        for r in &trace.rounds {
            assert!(r.participants > 0);
            assert!(r.bytes > 0);
            assert!(r.mean_client_loss.is_finite());
            assert!(r.server_loss.is_finite());
        }
        // uploads retained for auditing
        assert!(!fed.protocol().last_uploads().is_empty());
        // evaluation runs end to end
        let report = fed.evaluate(&split.train, &split.test, 5);
        assert!(report.users_evaluated > 0);
    }

    #[test]
    fn clients_receive_dispersed_knowledge() {
        let split = tiny_split();
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
        fed.run_round();
        let with_data = (0..split.train.num_users() as u32)
            .filter(|&u| !fed.protocol().client(u).server_data().is_empty())
            .count();
        assert!(with_data > 0, "no client received D̃ after a round");
        let ptf = fed.protocol();
        let d = ptf.client(ptf.last_uploads()[0].client).server_data();
        assert_eq!(d.len(), quick_cfg().alpha);
    }

    #[test]
    fn communication_is_kilobyte_scale() {
        let split = tiny_split();
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::Ngcf, quick_cfg());
        fed.run();
        let avg = fed.ledger().avg_client_bytes_per_round();
        assert!(avg > 0.0);
        // the headline claim: KB-level, not MB-level (model has ~40k params)
        let model_bytes = (fed.protocol().server().model().num_params() * 4) as f64;
        assert!(
            avg < model_bytes / 10.0,
            "prediction traffic {avg}B should be far below parameter traffic {model_bytes}B"
        );
    }

    #[test]
    fn defense_reduces_upload_sizes() {
        let split = tiny_split();
        let mut no_def = quick_cfg();
        no_def.defense = DefenseKind::NoDefense;
        no_def.rounds = 1;
        let mut with_def = quick_cfg();
        with_def.defense = DefenseKind::SamplingSwapping;
        with_def.rounds = 1;

        let mut fed_a = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, no_def);
        let mut fed_b = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, with_def);
        fed_a.run();
        fed_b.run();
        let full: usize = fed_a.protocol().last_uploads().iter().map(|u| u.len()).sum();
        let sampled: usize = fed_b.protocol().last_uploads().iter().map(|u| u.len()).sum();
        assert!(sampled < full, "sampling defense should shrink uploads: {sampled} vs {full}");
    }

    #[test]
    fn deterministic_under_seed() {
        let split = tiny_split();
        let run = || {
            let mut fed =
                quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, quick_cfg());
            fed.run();
            fed.evaluate(&split.train, &split.test, 5).metrics.ndcg
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn zero_participation_rounds_are_counted_and_harmless() {
        // a participation policy that samples nobody must neither crash
        // the round loop nor vanish from the ledger's round count
        let split = tiny_split();
        let mut cfg = quick_cfg();
        cfg.rounds = 3;
        cfg.participation = ptf_federated::Participation { fraction: 0.0, min_clients: 0 };
        let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, cfg);
        let trace = fed.run();
        assert_eq!(trace.num_rounds(), 3);
        for r in &trace.rounds {
            assert_eq!(r.participants, 0);
            assert_eq!(r.bytes, 0);
        }
        let s = fed.ledger().summary();
        assert_eq!(s.rounds, 3, "empty rounds must still count");
        assert_eq!(s.total_bytes, 0);
    }

    #[test]
    fn all_disperse_strategies_run() {
        let split = tiny_split();
        for strategy in DisperseStrategy::ALL {
            let mut cfg = quick_cfg();
            cfg.rounds = 1;
            cfg.disperse = strategy;
            let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, cfg);
            let trace = fed.run();
            assert_eq!(trace.num_rounds(), 1, "strategy {strategy:?} failed");
        }
    }

    #[test]
    fn heterogeneous_model_grid_runs() {
        // Table VIII: every client×server combination must work
        let split = tiny_split();
        for client_kind in [ModelKind::NeuMf, ModelKind::LightGcn] {
            for server_kind in [ModelKind::Ngcf, ModelKind::NeuMf] {
                let mut cfg = quick_cfg();
                cfg.rounds = 1;
                cfg.client_epochs = 1;
                let mut fed = quick_engine(&split.train, client_kind, server_kind, cfg);
                let trace = fed.run();
                assert!(trace.rounds[0].participants > 0);
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_the_run() {
        // the scheduler's headline guarantee at protocol level: identical
        // traces and identical trained models at 1 vs 4 threads
        let split = tiny_split();
        let run = |threads: usize| {
            let mut cfg = quick_cfg();
            cfg.threads = threads;
            let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, cfg);
            let trace = fed.run();
            let report = fed.evaluate(&split.train, &split.test, 5);
            (trace, report)
        };
        let (trace_serial, report_serial) = run(1);
        let (trace_par, report_par) = run(4);
        assert_eq!(trace_serial, trace_par);
        assert_eq!(report_serial, report_par);
    }

    #[test]
    fn partial_participation_is_thread_invariant() {
        let split = tiny_split();
        let run = |threads: usize| {
            let mut cfg = quick_cfg();
            cfg.threads = threads;
            cfg.participation = ptf_federated::Participation { fraction: 0.4, min_clients: 1 };
            let mut fed = quick_engine(&split.train, ModelKind::NeuMf, ModelKind::NeuMf, cfg);
            fed.run()
        };
        assert_eq!(run(1), run(8));
    }
}
