//! Config fingerprinting: one digest of everything that must match for
//! a run to be bit-reproducible.
//!
//! Shared by the networked deployment (server/client handshake refuses
//! mismatched shards) and the checkpoint subsystem (`--resume` refuses a
//! checkpoint taken under a different config).

use crate::config::{DefenseKind, PtfConfig};
use ptf_models::{ModelHyper, ModelKind};
use std::fmt::Write as _;

/// Digest of everything that must match between a server and its
/// clients for a run to be bit-reproducible: protocol hyperparameters,
/// model architectures, dataset dimensions, and the seed.
///
/// Deliberately *excluded*: execution knobs that cannot change results —
/// `threads`, `scratch_reuse`, `scoped_clients`, and the client storage
/// policy (all are representation/parallelism choices with
/// bit-identical outcomes by construction, and a shard legitimately
/// runs with different ones than the server). The cohort size of a
/// checkpointed run is excluded for the same reason.
///
/// The digest is FNV-1a 64 over a canonical text rendering with floats
/// as raw bits — stable across platforms, not across releases (any
/// semantic change to the config vocabulary is *supposed* to change
/// fingerprints; version skew is caught by the frame version byte /
/// manifest version field first).
pub fn config_fingerprint(
    cfg: &PtfConfig,
    client_kind: ModelKind,
    server_kind: ModelKind,
    hyper: &ModelHyper,
    num_users: usize,
    num_items: usize,
) -> u64 {
    let mut s = String::with_capacity(256);
    let _ = write!(
        s,
        "rounds={};ce={};se={};cb={};sb={};neg={};alpha={};mu={:x};lambda={:x};",
        cfg.rounds,
        cfg.client_epochs,
        cfg.server_epochs,
        cfg.client_batch,
        cfg.server_batch,
        cfg.neg_ratio,
        cfg.alpha,
        cfg.mu.to_bits(),
        cfg.lambda.to_bits(),
    );
    let _ = write!(
        s,
        "beta={:x},{:x};gamma={:x},{:x};",
        cfg.sampling.beta_range.0.to_bits(),
        cfg.sampling.beta_range.1.to_bits(),
        cfg.sampling.gamma_range.0.to_bits(),
        cfg.sampling.gamma_range.1.to_bits(),
    );
    match cfg.defense {
        DefenseKind::NoDefense => s.push_str("def=none;"),
        DefenseKind::Ldp { epsilon } => {
            let _ = write!(s, "def=ldp:{:x};", epsilon.to_bits());
        }
        DefenseKind::Sampling => s.push_str("def=sampling;"),
        DefenseKind::SamplingSwapping => s.push_str("def=sampling+swapping;"),
    }
    let _ = write!(
        s,
        "disperse={};part={:x},{};graph={:x};seed={};",
        cfg.disperse.name(),
        cfg.participation.fraction.to_bits(),
        cfg.participation.min_clients,
        cfg.graph_threshold.to_bits(),
        cfg.seed,
    );
    let _ = write!(
        s,
        "ck={};sk={};dim={};lr={:x};gcn={};mlp={:?};reg={:x};drop={:x};",
        client_kind.name(),
        server_kind.name(),
        hyper.dim,
        hyper.lr.to_bits(),
        hyper.gcn_layers,
        hyper.mlp_layers,
        hyper.ngcf_reg.to_bits(),
        hyper.ngcf_dropout.to_bits(),
    );
    let _ = write!(s, "users={num_users};items={num_items}");
    fnv1a64(s.as_bytes())
}

/// FNV-1a 64-bit over raw bytes.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let cfg = PtfConfig::small();
        let hyper = ModelHyper::small();
        let fp = |c: &PtfConfig| {
            config_fingerprint(c, ModelKind::NeuMf, ModelKind::NeuMf, &hyper, 100, 200)
        };
        assert_eq!(fp(&cfg), fp(&cfg.clone()), "same config, same digest");

        let mut other = cfg.clone();
        other.seed += 1;
        assert_ne!(fp(&cfg), fp(&other), "seed must be fingerprinted");

        let mut other = cfg.clone();
        other.alpha += 1;
        assert_ne!(fp(&cfg), fp(&other), "alpha must be fingerprinted");

        // execution knobs must NOT change the digest
        let mut other = cfg.clone();
        other.threads = 7;
        other.scratch_reuse = !cfg.scratch_reuse;
        other.scoped_clients = !cfg.scoped_clients;
        assert_eq!(fp(&cfg), fp(&other), "execution knobs are not semantics");
    }

    #[test]
    fn fingerprint_covers_models_and_dims() {
        let cfg = PtfConfig::small();
        let hyper = ModelHyper::small();
        let base = config_fingerprint(&cfg, ModelKind::NeuMf, ModelKind::NeuMf, &hyper, 100, 200);
        assert_ne!(
            base,
            config_fingerprint(&cfg, ModelKind::LightGcn, ModelKind::NeuMf, &hyper, 100, 200)
        );
        assert_ne!(
            base,
            config_fingerprint(&cfg, ModelKind::NeuMf, ModelKind::NeuMf, &hyper, 101, 200)
        );
        let mut h2 = hyper.clone();
        h2.dim += 1;
        assert_ne!(
            base,
            config_fingerprint(&cfg, ModelKind::NeuMf, ModelKind::NeuMf, &h2, 100, 200)
        );
    }
}
