//! Privacy-preserving construction of the client upload D̂ᵗᵢ (§III-B2).

use crate::config::DefenseKind;
use ptf_privacy::{sample_upload, swap_scores, Ldp, SamplingConfig, ScoredItem};
use rand::Rng;

/// What a client sends to the server after one local round.
#[derive(Clone, Debug, PartialEq)]
pub struct ClientUpload {
    pub client: u32,
    /// The prediction set D̂ᵗᵢ: `(item, r̂)` pairs, order-shuffled.
    pub predictions: Vec<ScoredItem>,
    /// Ground truth: which uploaded items are true positives (sorted).
    ///
    /// **Not part of the protocol message.** The experiment harness keeps
    /// it to score the Top Guess Attack (Table V); a deployment would not
    /// transmit it.
    pub audit_positives: Vec<u32>,
}

impl ClientUpload {
    pub fn len(&self) -> usize {
        self.predictions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.predictions.is_empty()
    }
}

/// Applies the configured defense to the scored trained pools and packages
/// the upload. `pos`/`neg` carry the local model's post-training scores
/// for this round's trained positives/negatives.
pub fn build_upload(
    client: u32,
    mut pos: Vec<ScoredItem>,
    mut neg: Vec<ScoredItem>,
    defense: DefenseKind,
    sampling: &SamplingConfig,
    lambda: f64,
    rng: &mut impl Rng,
) -> ClientUpload {
    build_upload_into(
        client,
        &mut pos,
        &mut neg,
        defense,
        sampling,
        lambda,
        rng,
        Vec::new(),
        Vec::new(),
    )
}

/// [`build_upload`] staging through caller-owned buffers.
///
/// `pos`/`neg` are mutated in place (defenses select/perturb them);
/// `predictions`/`audit` become the returned upload's backing storage —
/// pass the buffers recycled from this client's *previous* upload and a
/// steady-state `NoDefense`/LDP round performs zero heap allocations here
/// (the sampling defenses draw index vectors internally and stay
/// allocating; they are sized by the defense, not the hot path).
#[allow(clippy::too_many_arguments)]
pub fn build_upload_into(
    client: u32,
    pos: &mut Vec<ScoredItem>,
    neg: &mut Vec<ScoredItem>,
    defense: DefenseKind,
    sampling: &SamplingConfig,
    lambda: f64,
    rng: &mut impl Rng,
    mut predictions: Vec<ScoredItem>,
    mut audit: Vec<u32>,
) -> ClientUpload {
    predictions.clear();
    audit.clear();

    if matches!(defense, DefenseKind::Sampling | DefenseKind::SamplingSwapping) {
        let s = sample_upload(pos.len(), neg.len(), sampling, rng);
        let sel_pos: Vec<ScoredItem> = s.positives.iter().map(|&i| pos[i]).collect();
        let sel_neg: Vec<ScoredItem> = s.negatives.iter().map(|&i| neg[i]).collect();
        pos.clear();
        pos.extend_from_slice(&sel_pos);
        neg.clear();
        neg.extend_from_slice(&sel_neg);
    }

    match defense {
        DefenseKind::SamplingSwapping => {
            swap_scores(pos, neg, lambda, rng);
        }
        DefenseKind::Ldp { epsilon } => {
            let ldp = Ldp::new(epsilon);
            ldp.perturb(pos, rng);
            ldp.perturb(neg, rng);
        }
        _ => {}
    }

    audit.extend(pos.iter().map(|&(i, _)| i));
    audit.sort_unstable();

    predictions.extend_from_slice(pos);
    predictions.extend_from_slice(neg);
    // shuffle so position in the message does not leak the label
    for i in (1..predictions.len()).rev() {
        let j = rng.gen_range(0..=i);
        predictions.swap(i, j);
    }
    ClientUpload { client, predictions, audit_positives: audit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_privacy::test_rng;

    fn pools() -> (Vec<ScoredItem>, Vec<ScoredItem>) {
        let pos: Vec<ScoredItem> = (0..10).map(|i| (i, 0.9 - i as f32 * 0.01)).collect();
        let neg: Vec<ScoredItem> = (100..140).map(|i| (i, 0.1 + (i % 7) as f32 * 0.01)).collect();
        (pos, neg)
    }

    #[test]
    fn no_defense_uploads_whole_pool() {
        let (pos, neg) = pools();
        let up = build_upload(
            3,
            pos,
            neg,
            DefenseKind::NoDefense,
            &SamplingConfig::default(),
            0.1,
            &mut test_rng(1),
        );
        assert_eq!(up.client, 3);
        assert_eq!(up.len(), 50);
        assert_eq!(up.audit_positives.len(), 10);
        assert_eq!(up.audit_positives, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn sampling_shrinks_upload() {
        let (pos, neg) = pools();
        let up = build_upload(
            0,
            pos.clone(),
            neg.clone(),
            DefenseKind::Sampling,
            &SamplingConfig::default(),
            0.1,
            &mut test_rng(2),
        );
        assert!(up.len() < 50, "sampling should drop items, kept {}", up.len());
        assert!(!up.audit_positives.is_empty());
        // every uploaded item comes from the trained pool
        for &(i, _) in &up.predictions {
            assert!(i < 10 || (100..140).contains(&i));
        }
    }

    #[test]
    fn sampling_keeps_scores_intact() {
        let (pos, neg) = pools();
        let up = build_upload(
            0,
            pos.clone(),
            neg.clone(),
            DefenseKind::Sampling,
            &SamplingConfig::default(),
            0.1,
            &mut test_rng(3),
        );
        for &(i, s) in &up.predictions {
            let original = pos
                .iter()
                .chain(neg.iter())
                .find(|&&(j, _)| j == i)
                .map(|&(_, v)| v)
                .expect("item came from the pool");
            assert_eq!(s, original, "sampling must not alter scores");
        }
    }

    #[test]
    fn swapping_perturbs_scores() {
        let (pos, neg) = pools();
        let up = build_upload(
            0,
            pos.clone(),
            neg,
            DefenseKind::SamplingSwapping,
            // force beta = 1 so every positive is kept, making the swap visible
            &SamplingConfig::no_defense(),
            0.5,
            &mut test_rng(4),
        );
        let changed = up
            .predictions
            .iter()
            .filter(|&&(i, s)| i < 10 && pos.iter().any(|&(j, v)| j == i && v != s))
            .count();
        assert!(changed >= 5, "half the positives should carry swapped scores, got {changed}");
    }

    #[test]
    fn ldp_perturbs_all_scores() {
        let (pos, neg) = pools();
        let up = build_upload(
            0,
            pos.clone(),
            neg.clone(),
            DefenseKind::Ldp { epsilon: 1.0 },
            &SamplingConfig::default(),
            0.1,
            &mut test_rng(5),
        );
        assert_eq!(up.len(), 50, "LDP uploads everything");
        let unchanged = up
            .predictions
            .iter()
            .filter(|&&(i, s)| pos.iter().chain(neg.iter()).any(|&(j, v)| j == i && v == s))
            .count();
        assert!(unchanged < 5, "{unchanged} scores survived Laplace noise untouched");
        assert!(up.predictions.iter().all(|&(_, s)| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn upload_order_is_shuffled() {
        let (pos, neg) = pools();
        let up = build_upload(
            0,
            pos,
            neg,
            DefenseKind::NoDefense,
            &SamplingConfig::default(),
            0.1,
            &mut test_rng(6),
        );
        // if positives stayed at the head, the first 10 ids would all be < 10
        let head_positives = up.predictions[..10].iter().filter(|&&(i, _)| i < 10).count();
        assert!(head_positives < 10, "upload not shuffled");
    }

    #[test]
    fn empty_pools_produce_empty_upload() {
        let up = build_upload(
            0,
            vec![],
            vec![],
            DefenseKind::SamplingSwapping,
            &SamplingConfig::default(),
            0.1,
            &mut test_rng(7),
        );
        assert!(up.is_empty());
        assert!(up.audit_positives.is_empty());
    }
}
