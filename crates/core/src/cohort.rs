//! Cohort-sharded federation: the million-user runtime.
//!
//! [`crate::PtfFedRec`] keeps the whole client fleet resident — one
//! `PtfClient` (model + optimizer state) per user — which is exactly
//! right up to ~10⁵ users and hopeless at 10⁶. [`CohortFedRec`] runs the
//! *same* protocol with peak memory `O(cohort)` instead of `O(users)`:
//!
//! * the dataset stays on disk ([`CohortData::Arena`] reads one user row
//!   per client construction — see `ptf_data::arena`);
//! * each round's participants are processed in bounded **cohorts**: a
//!   cohort's clients are constructed (or restored from their envelopes),
//!   trained in parallel, exported back to the client store, and
//!   dropped before the next cohort starts;
//! * a client's cross-round state travels as a `ClientEnvelope` —
//!   model full-state envelope, dispersed set `D̃_i`, and the eviction
//!   recency index. Everything else a resident client holds is either
//!   rebuilt per round (the ego graph) or capacity-only (upload buffers).
//!
//! **Bit-parity.** Every RNG stream in a round is `(seed, round, id)`-
//! derived and client construction is seed-derived, so a client restored
//! from its envelope is indistinguishable from one that stayed resident.
//! The trace of a cohort run is byte-identical to the unsharded engine at
//! any cohort size and thread count — the parity suite in
//! `tests/cohort_parity.rs` asserts exactly that.
//!
//! **Server scope.** The hidden server model has a `users × dim` user
//! table — the one inherently `O(users)` structure in the protocol.
//! Under [`ServerScope::FullFleet`] it is built exactly as the unsharded
//! engine builds it (required for parity with [`crate::PtfFedRec`]).
//! Under [`ServerScope::ActiveParticipants`] the table covers only the
//! users that can ever participate (the union of every round's
//! participation draw — deterministic given the config), keyed by their
//! rank in that set; with partial participation this removes the last
//! `O(users)` term from a scale run's heap. The id compaction is visible
//! only inside the server model — ledger records, dispersal keys, and
//! all RNG streams stay on raw user ids (see
//! [`crate::rounds::server_phase_mapped`]).

use crate::client::PtfClient;
use crate::config::{ConfigError, PtfConfig};
use crate::rounds;
use crate::server::PtfServer;
use crate::upload::ClientUpload;
use ptf_data::{CsrArena, Dataset};
use ptf_federated::{
    derive_seed, ClientData, FederatedProtocol, RngStream, RoundCtx, RoundTrace, Scheduler,
    ScratchPool,
};
use ptf_models::{ModelHyper, ModelKind, Recommender};
use ptf_privacy::ScoredItem;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The interaction data backing a cohort run.
pub enum CohortData {
    /// Fully materialized dataset (parity tests, small presets).
    Mem(Dataset),
    /// On-disk CSR arena — one row resident at a time.
    Arena(CsrArena),
}

impl CohortData {
    pub fn num_users(&self) -> usize {
        match self {
            Self::Mem(d) => d.num_users(),
            Self::Arena(a) => a.num_users(),
        }
    }

    pub fn num_items(&self) -> usize {
        match self {
            Self::Mem(d) => d.num_items(),
            Self::Arena(a) => a.num_items(),
        }
    }

    /// Reads `user`'s positives into `out` (cleared on entry).
    fn row_into(&self, user: u32, out: &mut Vec<u32>) {
        match self {
            Self::Mem(d) => {
                out.clear();
                out.extend_from_slice(d.user_items(user));
            }
            Self::Arena(a) => {
                a.read_user_into(user, out).expect("arena row read");
            }
        }
    }

    /// Users with at least one interaction, ascending.
    fn trainable(&self) -> Vec<u32> {
        match self {
            Self::Mem(d) => {
                (0..d.num_users() as u32).filter(|&u| !d.user_items(u).is_empty()).collect()
            }
            Self::Arena(a) => a.nonempty_users().expect("arena indptr sweep"),
        }
    }
}

/// Where client envelopes live between participations.
#[derive(Clone, Debug)]
pub enum StoreKind {
    /// In-process map — `O(touched clients)` heap. Fine for parity tests
    /// and small runs; scale runs want [`StoreKind::Disk`].
    Memory,
    /// On-disk store rooted at the given directory (created if absent).
    /// The run's heap stays `O(cohort)`; the directory grows
    /// `O(touched clients)`.
    Disk(PathBuf),
}

/// How the hidden server model's user table is scoped (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerScope {
    /// One row per fleet user — bit-identical to the unsharded engine.
    FullFleet,
    /// One row per ever-participating user (compact ids). Scale mode;
    /// self-consistent across cohort sizes/threads/resume, but a
    /// different run than `FullFleet` (different server init draws).
    ActiveParticipants,
}

/// Construction knobs for [`CohortFedRec`].
#[derive(Clone, Debug)]
pub struct CohortOptions {
    /// Max clients resident during the parallel client phase
    /// (0 = all of the round's participants in one cohort).
    pub cohort: usize,
    pub store: StoreKind,
    pub server_scope: ServerScope,
}

impl Default for CohortOptions {
    fn default() -> Self {
        Self { cohort: 0, store: StoreKind::Memory, server_scope: ServerScope::FullFleet }
    }
}

/// A client's cross-round state at rest. Parallel arrays instead of
/// tuple vectors keep the encoding in the workspace's minimal JSON
/// vocabulary; the model rides along as its own nested full-state
/// envelope (see `docs/checkpoint-format.md`).
#[derive(Serialize, Deserialize)]
struct ClientEnvelope {
    /// Global round this envelope was last written in (debug/validation).
    round: u32,
    /// Eviction schedule: the client's local-round counter…
    local_rounds: u32,
    /// …and the recency index, split `(item, last-touched round)`.
    touched_items: Vec<u32>,
    touched_rounds: Vec<u32>,
    /// The dispersed set `D̃_i`, split `(item, score)`.
    disp_items: Vec<u32>,
    disp_scores: Vec<f32>,
    /// `Recommender::export_full_state` envelope.
    model: String,
}

/// Envelope storage: load is read-only (called from parallel workers);
/// save is serial.
enum ClientStore {
    Memory(BTreeMap<u32, String>),
    Disk { root: PathBuf },
}

/// `id`-sharded relative path of a client's envelope file.
fn envelope_rel(id: u32) -> (String, String) {
    (format!("{:02x}", id % 256), format!("{id}.json"))
}

impl ClientStore {
    fn load(&self, id: u32) -> Option<String> {
        match self {
            Self::Memory(map) => map.get(&id).cloned(),
            Self::Disk { root } => {
                let (shard, file) = envelope_rel(id);
                match std::fs::read_to_string(root.join(shard).join(file)) {
                    Ok(s) => Some(s),
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
                    Err(e) => panic!("client store read for {id}: {e}"),
                }
            }
        }
    }

    fn save(&mut self, id: u32, json: &str) {
        match self {
            Self::Memory(map) => {
                map.insert(id, json.to_string());
            }
            Self::Disk { root } => {
                let (shard, file) = envelope_rel(id);
                let dir = root.join(shard);
                std::fs::create_dir_all(&dir)
                    .unwrap_or_else(|e| panic!("client store shard dir: {e}"));
                // tmp + rename so a crash mid-write never leaves a torn
                // envelope where a resume would read it
                let tmp = dir.join(format!("{id}.json.tmp"));
                std::fs::write(&tmp, json).unwrap_or_else(|e| panic!("client store write: {e}"));
                std::fs::rename(&tmp, dir.join(file))
                    .unwrap_or_else(|e| panic!("client store rename: {e}"));
            }
        }
    }
}

/// Cohort-sharded PTF-FedRec (see module docs).
pub struct CohortFedRec {
    pub cfg: PtfConfig,
    client_kind: ModelKind,
    server_kind: ModelKind,
    hyper: ModelHyper,
    data: CohortData,
    trainable: Vec<u32>,
    server: PtfServer,
    /// `Some(active)` under [`ServerScope::ActiveParticipants`]: the
    /// sorted ever-participating user set the server model is keyed by.
    user_map: Option<Vec<u32>>,
    scheduler: Scheduler,
    scratch: ScratchPool,
    store: ClientStore,
    cohort: usize,
    round: u32,
}

impl CohortFedRec {
    /// Builds the cohort runtime. Unlike [`crate::PtfFedRec::try_new`]
    /// this constructs *no* clients — they materialize lazily, cohort by
    /// cohort, as rounds sample them.
    pub fn try_new(
        data: CohortData,
        client_kind: ModelKind,
        server_kind: ModelKind,
        hyper: &ModelHyper,
        cfg: PtfConfig,
        opts: CohortOptions,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let scheduler = Scheduler::new(cfg.threads);
        let trainable = data.trainable();
        let user_map = match opts.server_scope {
            ServerScope::FullFleet => None,
            ServerScope::ActiveParticipants => Some(active_users(&cfg, &trainable)),
        };
        let server_users = user_map.as_ref().map_or(data.num_users(), Vec::len);
        let server = rounds::build_server(server_users, data.num_items(), server_kind, hyper, &cfg);
        let store = match opts.store {
            StoreKind::Memory => ClientStore::Memory(BTreeMap::new()),
            StoreKind::Disk(root) => {
                std::fs::create_dir_all(&root)
                    .unwrap_or_else(|e| panic!("client store root {}: {e}", root.display()));
                ClientStore::Disk { root }
            }
        };
        let scratch = ScratchPool::with_reuse(cfg.scratch_reuse);
        Ok(Self {
            cfg,
            client_kind,
            server_kind,
            hyper: hyper.clone(),
            data,
            trainable,
            server,
            user_map,
            scheduler,
            scratch,
            store,
            cohort: opts.cohort,
            round: 0,
        })
    }

    pub fn rounds_completed(&self) -> u32 {
        self.round
    }

    /// The clients (ascending id) the participation policy may sample.
    pub fn trainable(&self) -> &[u32] {
        &self.trainable
    }

    /// Rows of the hidden server model's user table — `num_users` under
    /// [`ServerScope::FullFleet`], the active-participant count under
    /// [`ServerScope::ActiveParticipants`].
    pub fn server_users(&self) -> usize {
        self.user_map.as_ref().map_or(self.data.num_users(), Vec::len)
    }

    pub fn server(&self) -> &PtfServer {
        &self.server
    }

    /// Serializes the server's full state for a checkpoint manifest.
    pub fn export_server_state(&self) -> Option<String> {
        self.server.export_full_state()
    }

    /// Restores the server from a checkpoint manifest's envelope.
    pub fn restore_server_state(&mut self, envelope: &str) -> Result<(), String> {
        self.server = PtfServer::import_full_state(
            envelope,
            self.server_users(),
            self.data.num_items(),
            self.server_kind,
            &self.hyper,
            self.cfg.graph_threshold,
        )?;
        Ok(())
    }

    /// Fast-forwards the round counter to a checkpoint's `next_round`.
    /// Only meaningful right after construction, together with
    /// [`restore_server_state`](Self::restore_server_state) and
    /// [`reset_clients_from`](Self::reset_clients_from); the engine must
    /// be resumed at the same round (`ptf_federated::Engine::resume`).
    pub fn set_rounds_completed(&mut self, round: u32) {
        self.round = round;
    }

    /// Copies every stored client envelope into `dir` (created fresh) —
    /// the client half of a checkpoint commit.
    pub fn snapshot_clients_to(&self, dir: &Path) -> Result<(), String> {
        std::fs::create_dir_all(dir).map_err(|e| format!("snapshot dir: {e}"))?;
        match &self.store {
            ClientStore::Memory(map) => {
                for (&id, json) in map {
                    let (shard, file) = envelope_rel(id);
                    let sdir = dir.join(shard);
                    std::fs::create_dir_all(&sdir).map_err(|e| format!("snapshot shard: {e}"))?;
                    std::fs::write(sdir.join(file), json)
                        .map_err(|e| format!("snapshot write for client {id}: {e}"))?;
                }
                Ok(())
            }
            ClientStore::Disk { root } => walk_envelopes(root, |id, src| {
                let (shard, file) = envelope_rel(id);
                let sdir = dir.join(shard);
                std::fs::create_dir_all(&sdir).map_err(|e| format!("snapshot shard: {e}"))?;
                std::fs::copy(src, sdir.join(file))
                    .map_err(|e| format!("snapshot copy for client {id}: {e}"))?;
                Ok(())
            }),
        }
    }

    /// Replaces the live client store with the committed envelopes in
    /// `dir` — the client half of a resume. Every envelope is validated
    /// to parse (a corrupted one fails the resume here, not mid-round).
    pub fn reset_clients_from(&mut self, dir: &Path) -> Result<(), String> {
        match &mut self.store {
            ClientStore::Memory(map) => {
                map.clear();
                let map = std::cell::RefCell::new(map);
                walk_envelopes(dir, |id, src| {
                    let json = std::fs::read_to_string(&src)
                        .map_err(|e| format!("committed envelope for client {id}: {e}"))?;
                    validate_envelope(id, &json)?;
                    map.borrow_mut().insert(id, json);
                    Ok(())
                })
            }
            ClientStore::Disk { root } => {
                let root = root.clone();
                // drop any post-checkpoint state from the interrupted run
                if root.exists() {
                    std::fs::remove_dir_all(&root).map_err(|e| format!("clear store: {e}"))?;
                }
                std::fs::create_dir_all(&root).map_err(|e| format!("recreate store: {e}"))?;
                walk_envelopes(dir, |id, src| {
                    let json = std::fs::read_to_string(&src)
                        .map_err(|e| format!("committed envelope for client {id}: {e}"))?;
                    validate_envelope(id, &json)?;
                    let (shard, file) = envelope_rel(id);
                    let sdir = root.join(shard);
                    std::fs::create_dir_all(&sdir).map_err(|e| format!("restore shard: {e}"))?;
                    std::fs::write(sdir.join(file), &json)
                        .map_err(|e| format!("restore write for client {id}: {e}"))?;
                    Ok(())
                })
            }
        }
    }

    /// Builds user `id`'s client exactly as the resident fleet would —
    /// same partition, same derived `ClientInit` seed.
    fn build_fresh(&self, id: u32) -> PtfClient {
        let mut positives = Vec::new();
        self.data.row_into(id, &mut positives);
        let seed = derive_seed(self.cfg.seed, 0, RngStream::ClientInit(id).id());
        PtfClient::new(
            ClientData { id, positives },
            self.client_kind,
            &self.hyper,
            self.data.num_items(),
            seed,
            &self.cfg,
        )
    }

    /// Builds the client, then replays its envelope (model state,
    /// dispersed set, eviction index) onto it.
    fn restore_client(&self, id: u32, json: &str) -> PtfClient {
        let env: ClientEnvelope =
            serde_json::from_str(json).unwrap_or_else(|e| panic!("client {id} envelope: {e}"));
        let mut client = self.build_fresh(id);
        client
            .import_model_state(&env.model)
            .unwrap_or_else(|e| panic!("client {id} model restore: {e}"));
        let touched: Vec<(u32, u32)> =
            env.touched_items.iter().copied().zip(env.touched_rounds.iter().copied()).collect();
        client.restore_eviction_state(env.local_rounds, touched);
        let disp: Vec<ScoredItem> =
            env.disp_items.iter().copied().zip(env.disp_scores.iter().copied()).collect();
        client.receive_disperse(disp);
        client
    }

    fn save_envelope(&mut self, client: &PtfClient, round: u32) {
        let model =
            client.export_model_state().expect("cohort runtime requires full-state model support");
        let (local_rounds, touched) = client.eviction_state();
        let env = ClientEnvelope {
            round,
            local_rounds,
            touched_items: touched.iter().map(|&(i, _)| i).collect(),
            touched_rounds: touched.iter().map(|&(_, r)| r).collect(),
            disp_items: client.server_data().iter().map(|&(i, _)| i).collect(),
            disp_scores: client.server_data().iter().map(|&(_, s)| s).collect(),
            model,
        };
        let json = serde_json::to_string(&env).expect("client envelope encodes");
        self.store.save(client.id, &json);
    }

    /// Rewrites a participant's stored envelope with the round's
    /// dispersal — the stored counterpart of
    /// [`PtfClient::receive_disperse`].
    fn save_disperse(&mut self, client: u32, items: &[ScoredItem], round: u32) {
        let json = self.store.load(client).expect("participant envelope exists after its cohort");
        let mut env: ClientEnvelope =
            serde_json::from_str(&json).unwrap_or_else(|e| panic!("client {client} envelope: {e}"));
        env.round = round;
        env.disp_items = items.iter().map(|&(i, _)| i).collect();
        env.disp_scores = items.iter().map(|&(_, s)| s).collect();
        let json = serde_json::to_string(&env).expect("client envelope encodes");
        self.store.save(client, &json);
    }

    /// One round over an explicit participant set — the cohort-sharded
    /// equivalent of the unsharded protocol's `round_with`, with
    /// identical observable ordering: `ctx.begin`, the parallel client
    /// phase (in cohort-sized slices), uploads replayed in ascending
    /// client order, server training/dispersal, trace assembly.
    fn round_with(&mut self, ctx: &mut RoundCtx<'_>, participants: Vec<u32>) -> RoundTrace {
        let round = self.round;
        ctx.begin(&participants);

        let cohort = if self.cohort == 0 { participants.len().max(1) } else { self.cohort };
        let mut uploads: Vec<ClientUpload> = Vec::with_capacity(participants.len());
        let mut losses: Vec<f32> = Vec::with_capacity(participants.len());
        for chunk in participants.chunks(cohort) {
            // parallel phase: construct-or-restore + local round, one
            // derived RNG stream per client — bit-identical regardless of
            // chunking or thread count
            let cfg = &self.cfg;
            let this = &*self;
            let mut cohort_clients: Vec<(PtfClient, ClientUpload, f32)> =
                self.scheduler.map_indices_with(&self.scratch, chunk.len(), |scratch, i| {
                    let id = chunk[i];
                    let mut client = match this.store.load(id) {
                        Some(json) => this.restore_client(id, &json),
                        None => this.build_fresh(id),
                    };
                    let (upload, loss) = rounds::client_round(&mut client, cfg, round, scratch);
                    (client, upload, loss)
                });
            // serial: persist post-training envelopes, collect uploads in
            // participant order, drop the cohort's clients
            for (client, upload, loss) in cohort_clients.drain(..) {
                self.save_envelope(&client, round);
                uploads.push(upload);
                losses.push(loss);
            }
        }

        let (server_loss, disperses) = rounds::server_phase_mapped(
            &mut self.server,
            &self.cfg,
            round,
            &uploads,
            ctx,
            self.user_map.as_deref(),
        );
        for (client, items) in &disperses {
            self.save_disperse(*client, items, round);
        }

        let trace = rounds::round_trace(round, &losses, server_loss, ctx);
        self.round += 1;
        trace
    }
}

impl FederatedProtocol for CohortFedRec {
    fn name(&self) -> &'static str {
        "PTF-FedRec/cohort"
    }

    fn configured_rounds(&self) -> u32 {
        self.cfg.rounds
    }

    fn run_round(&mut self, ctx: &mut RoundCtx<'_>) -> RoundTrace {
        let participants = rounds::sample_participants(&self.cfg, &self.trainable, self.round);
        self.round_with(ctx, participants)
    }

    fn run_round_external(
        &mut self,
        ctx: &mut RoundCtx<'_>,
        participants: &[u32],
    ) -> Option<RoundTrace> {
        let mut chosen: Vec<u32> = participants
            .iter()
            .copied()
            .filter(|id| self.trainable.binary_search(id).is_ok())
            .collect();
        chosen.sort_unstable();
        chosen.dedup();
        Some(self.round_with(ctx, chosen))
    }

    fn recommender(&self) -> &dyn Recommender {
        self.server.model()
    }

    fn threads(&self) -> usize {
        self.scheduler.threads()
    }
}

/// The union of every round's participation draw — the users the server
/// can ever see. Deterministic given the config, so an unsharded, a
/// cohort-sharded, and a resumed run all compute the same set.
fn active_users(cfg: &PtfConfig, trainable: &[u32]) -> Vec<u32> {
    if cfg.participation.fraction >= 1.0 {
        return trainable.to_vec();
    }
    let mut active: Vec<u32> = Vec::new();
    for round in 0..cfg.rounds {
        let p = rounds::sample_participants(cfg, trainable, round);
        active.extend(p);
        active.sort_unstable();
        active.dedup();
    }
    active
}

/// Visits every envelope file under a sharded store directory as
/// `(client id, path)`. Filesystem iteration order is irrelevant: the
/// visit only moves bytes keyed by id.
fn walk_envelopes(
    dir: &Path,
    mut f: impl FnMut(u32, PathBuf) -> Result<(), String>,
) -> Result<(), String> {
    let shards = std::fs::read_dir(dir).map_err(|e| format!("store dir {}: {e}", dir.display()))?;
    for shard in shards {
        let shard = shard.map_err(|e| format!("store dir entry: {e}"))?;
        if !shard.file_type().map_err(|e| format!("store entry type: {e}"))?.is_dir() {
            continue;
        }
        let files =
            std::fs::read_dir(shard.path()).map_err(|e| format!("store shard read: {e}"))?;
        for file in files {
            let file = file.map_err(|e| format!("store shard entry: {e}"))?;
            let path = file.path();
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { continue };
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let id: u32 = stem
                .parse()
                .map_err(|_| format!("unexpected file in client store: {}", path.display()))?;
            f(id, path)?;
        }
    }
    Ok(())
}

/// Parses an envelope, rejecting internal inconsistencies — resume-time
/// validation so corruption fails cleanly instead of mid-round.
fn validate_envelope(id: u32, json: &str) -> Result<(), String> {
    let env: ClientEnvelope =
        serde_json::from_str(json).map_err(|e| format!("client {id} envelope: {e}"))?;
    if env.touched_items.len() != env.touched_rounds.len() {
        return Err(format!("client {id} envelope: ragged recency index"));
    }
    if env.disp_items.len() != env.disp_scores.len() {
        return Err(format!("client {id} envelope: ragged dispersed set"));
    }
    Ok(())
}
