//! The typed federation builder — the front door of the crate.
//!
//! ```no_run
//! use ptf_core::{Federation, PtfConfig};
//! use ptf_data::{DatasetPreset, Scale, TrainTestSplit};
//! use ptf_models::{ModelHyper, ModelKind};
//!
//! let mut rng = ptf_data::test_rng(7);
//! let data = DatasetPreset::MovieLens100K.generate(Scale::Small, &mut rng);
//! let split = TrainTestSplit::split_80_20(&data, &mut rng);
//! let mut fed = Federation::builder(&split.train)
//!     .client_model(ModelKind::NeuMf)
//!     .server_model(ModelKind::Ngcf)
//!     .hyper(ModelHyper::default())
//!     .config(PtfConfig::paper())
//!     .build()?;
//! fed.run();
//! println!("{}", fed.evaluate(&split.train, &split.test, 20));
//! # Ok::<(), ptf_core::ConfigError>(())
//! ```

use crate::config::{ConfigError, PtfConfig};
use crate::protocol::PtfFedRec;
use ptf_data::Dataset;
use ptf_federated::{Engine, RoundObserver};
use ptf_models::{ModelHyper, ModelKind};

/// Namespace for [`Federation::builder`].
pub struct Federation;

impl Federation {
    /// Starts configuring a PTF-FedRec federation over `train`.
    pub fn builder(train: &Dataset) -> FederationBuilder<'_> {
        FederationBuilder {
            train,
            client: None,
            server: None,
            hyper: None,
            cfg: None,
            threads: None,
            observers: Vec::new(),
        }
    }
}

/// Typed builder for an [`Engine`]`<`[`PtfFedRec`]`>`.
///
/// `client_model` and `server_model` are required; `hyper` defaults to
/// [`ModelHyper::small`] and `config` to [`PtfConfig::small`]. [`build`]
/// validates everything and returns [`ConfigError`] instead of panicking.
///
/// [`build`]: FederationBuilder::build
pub struct FederationBuilder<'a> {
    train: &'a Dataset,
    client: Option<ModelKind>,
    server: Option<ModelKind>,
    hyper: Option<ModelHyper>,
    cfg: Option<PtfConfig>,
    threads: Option<usize>,
    observers: Vec<Box<dyn RoundObserver>>,
}

impl FederationBuilder<'_> {
    /// The public architecture every client trains locally.
    pub fn client_model(mut self, kind: ModelKind) -> Self {
        self.client = Some(kind);
        self
    }

    /// The hidden architecture the server trains (never transmitted).
    pub fn server_model(mut self, kind: ModelKind) -> Self {
        self.server = Some(kind);
        self
    }

    /// Model hyperparameters for both sides (default: [`ModelHyper::small`]).
    pub fn hyper(mut self, hyper: ModelHyper) -> Self {
        self.hyper = Some(hyper);
        self
    }

    /// Protocol configuration (default: [`PtfConfig::small`]).
    pub fn config(mut self, cfg: PtfConfig) -> Self {
        self.cfg = Some(cfg);
        self
    }

    /// Worker threads for the parallel client phase (`0` = every hardware
    /// thread). Overrides `PtfConfig::threads`; runs are bit-identical at
    /// any value.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Attaches a [`RoundObserver`] to the engine (repeatable).
    pub fn observer(mut self, observer: impl RoundObserver + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Validates the configuration and builds the federation engine.
    pub fn build(self) -> Result<Engine<PtfFedRec>, ConfigError> {
        let client = self.client.ok_or(ConfigError::MissingField("client_model"))?;
        let server = self.server.ok_or(ConfigError::MissingField("server_model"))?;
        let hyper = self.hyper.unwrap_or_else(ModelHyper::small);
        let mut cfg = self.cfg.unwrap_or_else(PtfConfig::small);
        if let Some(threads) = self.threads {
            cfg.threads = threads;
        }
        let protocol = PtfFedRec::try_new(self.train, client, server, &hyper, cfg)?;
        let mut engine = Engine::new(protocol);
        for observer in self.observers {
            engine.add_observer(observer);
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_data::SyntheticConfig;
    use ptf_federated::TraceRecorder;

    fn tiny_train() -> Dataset {
        SyntheticConfig::new("b", 12, 30, 6.0).generate(&mut ptf_data::test_rng(9))
    }

    fn quick_cfg() -> PtfConfig {
        let mut c = PtfConfig::small();
        c.rounds = 2;
        c.client_epochs = 1;
        c.server_epochs = 1;
        c.alpha = 5;
        c
    }

    #[test]
    fn missing_client_model_is_reported() {
        let train = tiny_train();
        let err = Federation::builder(&train)
            .server_model(ModelKind::Ngcf)
            .config(quick_cfg())
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::MissingField("client_model"));
    }

    #[test]
    fn missing_server_model_is_reported() {
        let train = tiny_train();
        let err = Federation::builder(&train).client_model(ModelKind::NeuMf).build().unwrap_err();
        assert_eq!(err, ConfigError::MissingField("server_model"));
    }

    #[test]
    fn invalid_config_is_reported_not_panicked() {
        let train = tiny_train();
        let mut cfg = quick_cfg();
        cfg.lambda = 7.0;
        let err = Federation::builder(&train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .config(cfg)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::OutOfUnitRange { field: "lambda", got: 7.0 });
    }

    #[test]
    fn defaults_fill_hyper_and_config() {
        let train = tiny_train();
        let engine = Federation::builder(&train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .build()
            .expect("defaults are valid");
        assert_eq!(engine.protocol().cfg.rounds, PtfConfig::small().rounds);
    }

    #[test]
    fn observers_attach_through_the_builder() {
        let train = tiny_train();
        let recorder = TraceRecorder::new();
        let mut engine = Federation::builder(&train)
            .client_model(ModelKind::NeuMf)
            .server_model(ModelKind::NeuMf)
            .config(quick_cfg())
            .observer(recorder.clone())
            .build()
            .unwrap();
        let trace = engine.run();
        assert_eq!(recorder.trace(), trace);
        assert_eq!(engine.ledger().summary().total_bytes, trace.total_bytes());
    }
}
