//! Full-state envelope guarantees: a model restored from
//! `export_full_state` continues training bit-identically to the model
//! that exported it, and `densify` is representation-only (a densified
//! scoped model trains in lockstep with its un-densified twin).

use ptf_models::{
    ItemScope, LightGcn, LightGcnConfig, MfModel, NeuMf, NeuMfConfig, Ngcf, NgcfConfig, Recommender,
};

const USERS: usize = 4;
const ITEMS: usize = 20;

fn scope() -> ItemScope {
    ItemScope::rows(ITEMS, vec![1, 4, 7, 11])
}

fn warmup_batch() -> Vec<(u32, u32, f32)> {
    vec![(0, 1, 1.0), (1, 4, 0.0), (2, 7, 1.0), (3, 11, 0.3), (0, 15, 1.0)]
}

fn probe_batch() -> Vec<(u32, u32, f32)> {
    vec![(0, 2, 1.0), (1, 7, 0.0), (3, 18, 0.6), (2, 1, 1.0)]
}

fn all_items() -> Vec<u32> {
    (0..ITEMS as u32).collect()
}

fn edges() -> Vec<(u32, u32, f32)> {
    vec![(0, 1, 1.0), (1, 4, 0.9), (2, 7, 1.0)]
}

/// Exports `a` mid-training, restores into `b` (built from a *different*
/// seed, so nothing can match by accident), then trains both on the same
/// batches and asserts bit-equal scores throughout.
fn assert_bit_resume(
    a: &mut dyn Recommender,
    b: &mut dyn Recommender,
    graph: Option<&[(u32, u32, f32)]>,
) {
    for _ in 0..3 {
        a.train_batch(&warmup_batch());
    }
    let envelope = a.export_full_state().expect("model supports full-state export");
    b.import_full_state(&envelope).expect("restore succeeds");
    // graph structure is not part of the envelope; re-set on both sides
    if let Some(e) = graph {
        a.set_graph(e);
        b.set_graph(e);
    }
    assert_eq!(a.score(0, &all_items()), b.score(0, &all_items()), "restored state diverged");
    for step in 0..4 {
        let la = a.train_batch(&probe_batch());
        let lb = b.train_batch(&probe_batch());
        assert_eq!(la.to_bits(), lb.to_bits(), "loss diverged at resumed step {step}");
        assert_eq!(
            a.score(1, &all_items()),
            b.score(1, &all_items()),
            "scores diverged at resumed step {step}"
        );
    }
}

#[test]
fn neumf_full_state_resumes_bit_identically() {
    let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
    let mut a = NeuMf::new_scoped(USERS, &cfg, &scope(), 42);
    let mut b = NeuMf::new_scoped(USERS, &cfg, &scope(), 999);
    assert_bit_resume(&mut a, &mut b, None);
}

#[test]
fn lightgcn_full_state_resumes_bit_identically() {
    let cfg = LightGcnConfig { dim: 8, layers: 2, lr: 0.02 };
    let mut a = LightGcn::new_scoped(USERS, &cfg, &scope(), 42);
    let mut b = LightGcn::new_scoped(USERS, &cfg, &scope(), 999);
    a.set_graph(&edges());
    assert_bit_resume(&mut a, &mut b, Some(&edges()));
}

#[test]
fn ngcf_full_state_carries_the_dropout_stream() {
    // message_dropout > 0 makes the dropout RNG part of the training
    // state: resume only stays bit-identical if the stream position
    // travels in the envelope
    let cfg = NgcfConfig {
        dim: 8,
        layers: 2,
        lr: 0.02,
        leaky_slope: 0.2,
        reg: 1e-3,
        message_dropout: 0.3,
    };
    let mut a = Ngcf::new_scoped(USERS, &cfg, &scope(), 42);
    let mut b = Ngcf::new_scoped(USERS, &cfg, &scope(), 999);
    a.set_graph(&edges());
    assert_bit_resume(&mut a, &mut b, Some(&edges()));
}

#[test]
fn mf_full_state_resumes_bit_identically() {
    let mut a = MfModel::new_scoped(USERS, 8, 0.1, &scope(), 42);
    let mut b = MfModel::new_scoped(USERS, 8, 0.1, &scope(), 999);
    assert_bit_resume(&mut a, &mut b, None);
}

#[test]
fn dense_envelope_densifies_a_scoped_model() {
    // a client that densified mid-run saves a dense envelope; restoring
    // it into a freshly built (sparse) model must densify the model
    let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
    let mut a = NeuMf::new_scoped(USERS, &cfg, &scope(), 42);
    a.train_batch(&warmup_batch());
    assert!(a.densify());
    assert!(!a.scoped());
    a.train_batch(&probe_batch());
    let envelope = a.export_full_state().unwrap();
    let mut b = NeuMf::new_scoped(USERS, &cfg, &scope(), 999);
    assert!(b.scoped());
    b.import_full_state(&envelope).unwrap();
    assert!(!b.scoped(), "dense envelope must densify the restored model");
    assert_eq!(a.score(0, &all_items()), b.score(0, &all_items()));
    let la = a.train_batch(&probe_batch());
    let lb = b.train_batch(&probe_batch());
    assert_eq!(la.to_bits(), lb.to_bits());
}

/// Densify mid-run, then train the dense model and its sparse twin on
/// identical batches: scores must stay bit-equal (the Auto storage-mode
/// re-evaluation leans on exactly this property).
fn assert_densify_parity(
    dense: &mut dyn Recommender,
    sparse: &mut dyn Recommender,
    graph: Option<&[(u32, u32, f32)]>,
) {
    if let Some(e) = graph {
        dense.set_graph(e);
        sparse.set_graph(e);
    }
    for _ in 0..3 {
        dense.train_batch(&warmup_batch());
        sparse.train_batch(&warmup_batch());
    }
    assert!(dense.densify(), "first densify converts");
    assert!(!dense.densify(), "second densify is a no-op");
    assert!(!dense.scoped());
    assert!(sparse.scoped());
    assert_eq!(
        dense.score(0, &all_items()),
        sparse.score(0, &all_items()),
        "densify changed model output"
    );
    for step in 0..4 {
        let ld = dense.train_batch(&probe_batch());
        let ls = sparse.train_batch(&probe_batch());
        assert_eq!(ld.to_bits(), ls.to_bits(), "loss diverged at post-densify step {step}");
        assert_eq!(
            dense.score(2, &all_items()),
            sparse.score(2, &all_items()),
            "scores diverged at post-densify step {step}"
        );
    }
}

#[test]
fn neumf_densify_keeps_training_in_lockstep() {
    let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
    let mut dense = NeuMf::new_scoped(USERS, &cfg, &scope(), 42);
    let mut sparse = NeuMf::new_scoped(USERS, &cfg, &scope(), 42);
    assert_densify_parity(&mut dense, &mut sparse, None);
}

#[test]
fn lightgcn_densify_keeps_training_in_lockstep() {
    let cfg = LightGcnConfig { dim: 8, layers: 2, lr: 0.02 };
    let mut dense = LightGcn::new_scoped(USERS, &cfg, &scope(), 42);
    let mut sparse = LightGcn::new_scoped(USERS, &cfg, &scope(), 42);
    assert_densify_parity(&mut dense, &mut sparse, Some(&edges()));
}

#[test]
fn mf_densify_keeps_training_in_lockstep() {
    let mut dense = MfModel::new_scoped(USERS, 8, 0.1, &scope(), 42);
    let mut sparse = MfModel::new_scoped(USERS, 8, 0.1, &scope(), 42);
    assert_densify_parity(&mut dense, &mut sparse, None);
}

#[test]
fn corrupt_full_state_envelopes_are_rejected() {
    let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
    let mut m = NeuMf::new_scoped(USERS, &cfg, &scope(), 42);
    assert!(m.import_full_state("{garbage").is_err(), "syntax error accepted");
    // wrong architecture
    let lg =
        LightGcn::new_scoped(USERS, &LightGcnConfig { dim: 8, layers: 2, lr: 0.02 }, &scope(), 42);
    let other = lg.export_full_state().unwrap();
    assert!(
        m.import_full_state(&other).unwrap_err().contains("architecture mismatch"),
        "cross-architecture envelope accepted"
    );
    // legacy inference checkpoint is not a full-state envelope
    let legacy = m.export_state().unwrap();
    assert!(m.import_full_state(&legacy).is_err(), "legacy checkpoint accepted as full state");
}
