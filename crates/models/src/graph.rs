//! Bipartite interaction-graph construction for the GCN models.
//!
//! Users and items become one node space (`user u → node u`, `item i →
//! node num_users + i`). Edges carry the interaction weight (1 for hard
//! interactions; the PTF-FedRec *server* uses soft-label-thresholded
//! uploads, see `ptf-core`). The propagation operator is the standard
//! symmetrically normalized adjacency `D^{-1/2} A D^{-1/2}` used by both
//! NGCF and LightGCN; weighted degrees handle soft edges gracefully.

use ptf_tensor::sparse::{Csr, PropagationMatrix};

/// Node id of a user in the joint node space.
#[inline]
pub fn user_node(u: u32) -> u32 {
    u
}

/// Node id of an item in the joint node space.
#[inline]
pub fn item_node(num_users: usize, i: u32) -> u32 {
    num_users as u32 + i
}

/// Builds the symmetrically normalized bipartite propagation matrix from
/// weighted `(user, item, weight)` edges. Zero/negative weights are
/// dropped. Isolated nodes simply receive no messages.
pub fn normalized_bipartite(
    num_users: usize,
    num_items: usize,
    edges: &[(u32, u32, f32)],
) -> PropagationMatrix {
    let n = num_users + num_items;
    // weighted degrees over the symmetrized edge set
    let mut degree = vec![0.0f64; n];
    for &(u, i, w) in edges {
        if w <= 0.0 {
            continue;
        }
        assert!((u as usize) < num_users, "user {u} out of range");
        assert!((i as usize) < num_items, "item {i} out of range");
        degree[u as usize] += w as f64;
        degree[num_users + i as usize] += w as f64;
    }
    let mut triplets = Vec::with_capacity(edges.len() * 2);
    for &(u, i, w) in edges {
        if w <= 0.0 {
            continue;
        }
        let un = u as usize;
        let inn = num_users + i as usize;
        let norm = (degree[un] * degree[inn]).sqrt();
        if norm <= 0.0 {
            continue;
        }
        let v = (w as f64 / norm) as f32;
        triplets.push((un as u32, inn as u32, v));
        triplets.push((inn as u32, un as u32, v));
    }
    PropagationMatrix::new_symmetric(Csr::from_triplets(n, n, &triplets))
}

/// An all-zero propagation matrix (no graph known yet): every GCN layer
/// receives no neighbor messages, so propagation degenerates gracefully.
pub fn empty_propagation(num_users: usize, num_items: usize) -> PropagationMatrix {
    let n = num_users + num_items;
    PropagationMatrix::new_symmetric(Csr::from_triplets(n, n, &[]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_numbering() {
        assert_eq!(user_node(3), 3);
        assert_eq!(item_node(10, 3), 13);
    }

    #[test]
    fn normalization_matches_hand_computation() {
        // one user connected to two items with weight 1:
        // deg(u)=2, deg(i)=1 → entries 1/sqrt(2)
        let prop = normalized_bipartite(1, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let dense = prop.forward().to_dense();
        let s = 1.0 / 2.0f32.sqrt();
        assert!((dense.get(0, 1) - s).abs() < 1e-6);
        assert!((dense.get(0, 2) - s).abs() < 1e-6);
        assert!((dense.get(1, 0) - s).abs() < 1e-6);
        assert!((dense.get(2, 0) - s).abs() < 1e-6);
        assert_eq!(dense.get(1, 2), 0.0, "no item-item edges");
    }

    #[test]
    fn matrix_is_symmetric() {
        let prop =
            normalized_bipartite(3, 4, &[(0, 0, 1.0), (0, 3, 1.0), (1, 0, 1.0), (2, 2, 1.0)]);
        let d = prop.forward().to_dense();
        for r in 0..7 {
            for c in 0..7 {
                assert!((d.get(r, c) - d.get(c, r)).abs() < 1e-7, "asymmetry at ({r},{c})");
            }
        }
    }

    #[test]
    fn soft_weights_scale_degrees() {
        // user 0 — item 0 with weight 0.5 only:
        // deg both 0.5 → normalized value 0.5/0.5 = 1
        let prop = normalized_bipartite(1, 1, &[(0, 0, 0.5)]);
        let dense = prop.forward().to_dense();
        assert!((dense.get(0, 1) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_positive_weights_dropped() {
        let prop = normalized_bipartite(1, 2, &[(0, 0, 0.0), (0, 1, -1.0)]);
        assert_eq!(prop.forward().nnz(), 0);
    }

    #[test]
    fn empty_propagation_is_zero() {
        let prop = empty_propagation(2, 3);
        assert_eq!(prop.forward().rows(), 5);
        assert_eq!(prop.forward().nnz(), 0);
    }

    #[test]
    fn duplicate_edges_accumulate_weight() {
        let a = normalized_bipartite(1, 1, &[(0, 0, 0.5), (0, 0, 0.5)]);
        let b = normalized_bipartite(1, 1, &[(0, 0, 1.0)]);
        assert!((a.forward().to_dense().get(0, 1) - b.forward().to_dense().get(0, 1)).abs() < 1e-6);
    }
}
