//! Ranking evaluation of a trained recommender against a dataset split.

use crate::traits::Recommender;
use ptf_data::Dataset;
use ptf_metrics::{rank_metrics_into, RankingMetrics, RankingReport};
use ptf_tensor::par;

/// Per-worker evaluation scratch: the full-item score buffer plus the
/// top-k selection workspace. One of these is checked out of a
/// [`par::Pool`] per user, so a steady-state evaluation pass performs no
/// heap allocation per user beyond what the model's own `score_all_into`
/// implementation needs (zero for MF).
#[derive(Default)]
struct EvalScratch {
    scores: Vec<f32>,
    candidates: Vec<u32>,
    head: Vec<u32>,
}

/// Evaluates `model` with the paper's protocol: for every user with test
/// items, rank *all* items the user has not interacted with in training
/// and measure Recall@K / NDCG@K against the held-out set.
///
/// Scoring runs on every hardware thread (users are independent); the
/// per-user metrics are averaged serially in user order, so the report is
/// bit-identical at any thread count. Use [`evaluate_model_with_threads`]
/// to pin the worker count.
pub fn evaluate_model(
    model: &dyn Recommender,
    train: &Dataset,
    test: &Dataset,
    k: usize,
) -> RankingReport {
    evaluate_model_with_threads(model, train, test, k, 0)
}

/// [`evaluate_model`] with an explicit worker count (`0` = every hardware
/// thread). Per-user ranking is the wall-clock sink of every experiment —
/// each user scores the full item space — and users are embarrassingly
/// parallel.
pub fn evaluate_model_with_threads(
    model: &dyn Recommender,
    train: &Dataset,
    test: &Dataset,
    k: usize,
    threads: usize,
) -> RankingReport {
    assert_eq!(model.num_items(), train.num_items(), "model/dataset item mismatch");
    assert_eq!(train.num_items(), test.num_items(), "train/test item mismatch");
    let num_users = train.num_users().min(model.num_users());
    // graph models lazily rebuild their propagation cache on first score;
    // force it once here so workers only ever take the read path
    if num_users > 0 {
        let _ = model.score(0, &[]);
    }
    let pool: par::Pool<EvalScratch> = par::Pool::new();
    let per_user: Vec<Option<RankingMetrics>> = par::map_indices(threads, num_users, |u| {
        let u = u as u32;
        let relevant = test.user_items(u);
        if relevant.is_empty() {
            return None;
        }
        let mut s = pool.checkout();
        model.score_all_into(u, &mut s.scores);
        let m = rank_metrics_into(
            &s.scores,
            train.user_items(u),
            relevant,
            k,
            &mut s.candidates,
            &mut s.head,
        );
        pool.restore(s);
        m
    });
    RankingReport::aggregate(per_user, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mf::MfModel;
    use ptf_tensor::test_rng;

    #[test]
    fn trained_model_beats_untrained_on_heldout() {
        // plant a trivially learnable structure: user u likes items
        // {2u, 2u+1}; train on the first, test on the second... MF cannot
        // generalize across items without shared structure, so instead use
        // a popularity-style signal: items 0/1 liked by everyone.
        let num_users = 12;
        let train =
            Dataset::from_user_items("train", 8, (0..num_users).map(|_| vec![0u32]).collect());
        let test =
            Dataset::from_user_items("test", 8, (0..num_users).map(|_| vec![1u32]).collect());
        let mut model = MfModel::new(num_users, 8, 8, 0.1, &mut test_rng(1));
        let before = evaluate_model(&model, &train, &test, 3);

        // co-train items 0 and 1 so their embeddings align across users
        let mut batch = Vec::new();
        for u in 0..num_users as u32 {
            batch.push((u, 0, 1.0));
            batch.push((u, 1, 1.0));
            batch.push((u, 4, 0.0));
            batch.push((u, 5, 0.0));
        }
        for _ in 0..120 {
            model.train_batch(&batch);
        }
        let after = evaluate_model(&model, &train, &test, 3);
        assert!(
            after.metrics.recall >= before.metrics.recall,
            "training made ranking worse: {:?} → {:?}",
            before.metrics,
            after.metrics
        );
        assert!(after.metrics.recall > 0.9, "item 1 should rank top-3: {:?}", after.metrics);
        assert_eq!(after.users_evaluated, num_users);
    }

    #[test]
    fn train_items_are_excluded_from_candidates() {
        // the model scores item 0 highest for everyone, but item 0 is a
        // training item → it cannot crowd out the test item at k=1 …
        let train = Dataset::from_user_items("train", 3, vec![vec![0]]);
        let test = Dataset::from_user_items("test", 3, vec![vec![1]]);
        let mut model = MfModel::new(1, 3, 4, 0.2, &mut test_rng(2));
        for _ in 0..200 {
            model.train_batch(&[(0, 0, 1.0), (0, 1, 1.0), (0, 2, 0.0)]);
        }
        let report = evaluate_model(&model, &train, &test, 1);
        assert_eq!(report.metrics.recall, 1.0, "{report}");
    }

    /// A model that emits NaN for every item — the shape of a diverged
    /// federation at a hot learning rate.
    struct NanModel {
        users: usize,
        items: usize,
    }

    impl Recommender for NanModel {
        fn name(&self) -> &'static str {
            "NaN"
        }
        fn num_users(&self) -> usize {
            self.users
        }
        fn num_items(&self) -> usize {
            self.items
        }
        fn num_params(&self) -> usize {
            0
        }
        fn score(&self, _user: u32, items: &[u32]) -> Vec<f32> {
            vec![f32::NAN; items.len()]
        }
        fn train_batch(&mut self, _batch: &[(u32, u32, f32)]) -> f32 {
            f32::NAN
        }
    }

    #[test]
    fn nan_scoring_model_evaluates_without_panicking() {
        // regression: evaluate_model used to abort the entire run on the
        // first NaN score ("scores must not be NaN"); a diverged model
        // must instead report degraded-but-finite aggregate metrics
        let train = Dataset::from_user_items("train", 6, vec![vec![0], vec![1], vec![]]);
        let test = Dataset::from_user_items("test", 6, vec![vec![2], vec![3], vec![4]]);
        let report = evaluate_model(&NanModel { users: 3, items: 6 }, &train, &test, 2);
        assert_eq!(report.users_evaluated, 3);
        let m = report.metrics;
        for v in [m.recall, m.ndcg, m.hit_rate, m.precision, m.mrr, m.map] {
            assert!(v.is_finite(), "aggregate metric not finite: {m:?}");
        }
    }

    #[test]
    #[should_panic(expected = "item mismatch")]
    fn rejects_mismatched_item_spaces() {
        let train = Dataset::from_user_items("train", 3, vec![vec![0]]);
        let test = Dataset::from_user_items("test", 4, vec![vec![1]]);
        let model = MfModel::new(1, 3, 2, 0.1, &mut test_rng(3));
        let _ = evaluate_model(&model, &train, &test, 1);
    }
}
