//! The model-agnostic recommender interface.
//!
//! PTF-FedRec is explicitly model-agnostic: clients and the server may run
//! *different* architectures, exchanging only prediction triples. Every
//! model in this crate therefore implements [`Recommender`], and the
//! protocol crates program against `Box<dyn Recommender>`.

/// A trainable implicit-feedback recommender.
///
/// Scores are probabilities in `[0, 1]` (sigmoid outputs): the protocol
/// ships them across the network as soft labels, and the receiving side
/// trains on them with a soft-target binary cross-entropy.
///
/// `Send + Sync` are supertraits because the federation scheduler moves
/// client-local models onto worker threads and the ranking evaluator
/// scores one shared model from many threads at once. Implementations
/// must keep any internal caching behind thread-safe primitives (see
/// `LightGcn`/`Ngcf`, whose propagation caches are `RwLock`s).
pub trait Recommender: Send + Sync {
    /// Architecture name as used in the paper's tables.
    fn name(&self) -> &'static str;

    fn num_users(&self) -> usize;

    fn num_items(&self) -> usize;

    /// Number of scalar parameters (drives parameter-transmission costs).
    fn num_params(&self) -> usize;

    /// Predicted preference of `user` for each of `items`.
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32>;

    /// Predicted preference of `user` for every item.
    fn score_all(&self, user: u32) -> Vec<f32> {
        let items: Vec<u32> = (0..self.num_items() as u32).collect();
        self.score(user, &items)
    }

    /// [`Recommender::score`] into a caller-owned buffer (cleared on
    /// entry). The default delegates to `score` and still allocates;
    /// models on the federated hot path (MF) override it to write
    /// straight into the scratch buffer, making a steady-state client
    /// round allocation-free.
    fn score_into(&self, user: u32, items: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.score(user, items));
    }

    /// [`Recommender::score_all`] into a caller-owned buffer (cleared on
    /// entry); same contract as [`Recommender::score_into`].
    fn score_all_into(&self, user: u32, out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.score_all(user));
    }

    /// True if [`Recommender::set_graph`] actually consumes edges. Lets
    /// callers skip assembling an edge list for models that would ignore
    /// it (the client hot path builds edges only for GCN architectures).
    fn uses_graph(&self) -> bool {
        false
    }

    /// One optimizer step on `(user, item, soft_label)` triples; returns
    /// the batch's mean BCE loss.
    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32;

    /// Rebuilds internal interaction-graph structure from weighted
    /// `(user, item, weight)` edges. Non-graph models ignore this.
    fn set_graph(&mut self, _edges: &[(u32, u32, f32)]) {}

    /// Serializes the model's trainable parameters as JSON (the hidden
    /// server model's checkpoint format), if the model supports it.
    fn export_state(&self) -> Option<String> {
        None
    }

    /// Restores previously [`Recommender::export_state`]d parameters.
    /// Names and shapes must match exactly; optimizer state is *not*
    /// restored (resuming training re-warms Adam's moments).
    fn import_state(&mut self, _json: &str) -> Result<(), String> {
        Err("this model does not support checkpointing".to_string())
    }
}

/// Trains on `samples` in fixed-size batches (caller shuffles), returning
/// the mean per-batch loss. Empty input returns 0.
pub fn train_on_samples(
    model: &mut dyn Recommender,
    samples: &[(u32, u32, f32)],
    batch_size: usize,
) -> f32 {
    assert!(batch_size > 0, "batch_size must be positive");
    if samples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for chunk in samples.chunks(batch_size) {
        total += model.train_batch(chunk) as f64;
        batches += 1;
    }
    (total / batches as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A degenerate recommender for exercising the trait's defaults.
    struct Constant {
        users: usize,
        items: usize,
        calls: usize,
    }

    impl Recommender for Constant {
        fn name(&self) -> &'static str {
            "Constant"
        }
        fn num_users(&self) -> usize {
            self.users
        }
        fn num_items(&self) -> usize {
            self.items
        }
        fn num_params(&self) -> usize {
            0
        }
        fn score(&self, _user: u32, items: &[u32]) -> Vec<f32> {
            vec![0.5; items.len()]
        }
        fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
            self.calls += 1;
            batch.len() as f32
        }
    }

    #[test]
    fn score_all_covers_every_item() {
        let m = Constant { users: 2, items: 7, calls: 0 };
        assert_eq!(m.score_all(0).len(), 7);
    }

    #[test]
    fn train_on_samples_chunks_and_averages() {
        let mut m = Constant { users: 1, items: 1, calls: 0 };
        let samples = vec![(0, 0, 1.0); 10];
        // batches of 4,4,2 → "losses" 4,4,2 → mean 10/3
        let loss = train_on_samples(&mut m, &samples, 4);
        assert_eq!(m.calls, 3);
        assert!((loss - 10.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_samples_are_noop() {
        let mut m = Constant { users: 1, items: 1, calls: 0 };
        assert_eq!(train_on_samples(&mut m, &[], 4), 0.0);
        assert_eq!(m.calls, 0);
    }
}
