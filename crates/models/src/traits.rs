//! The model-agnostic recommender interface.
//!
//! PTF-FedRec is explicitly model-agnostic: clients and the server may run
//! *different* architectures, exchanging only prediction triples. Every
//! model in this crate therefore implements [`Recommender`], and the
//! protocol crates program against `Box<dyn Recommender>`.

use std::sync::{Arc, OnceLock, RwLock};

/// A borrowed view of which item-embedding rows a model holds.
///
/// `Full(n)` is the classic dense table over the whole catalogue; `Rows`
/// lists the (sorted, global) ids an item-scoped model has materialized
/// so far. Consumers that used to iterate `0..num_items` — upload
/// staging, parameter accounting, state export — iterate the scope
/// instead, so a scoped client never pays for rows it cannot touch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeView<'a> {
    /// Every item of an `n`-item catalogue is materialized.
    Full(usize),
    /// Only these global item ids (sorted ascending) are materialized.
    Rows(&'a [u32]),
}

impl<'a> ScopeView<'a> {
    /// Number of materialized item rows.
    pub fn len(&self) -> usize {
        match self {
            Self::Full(n) => *n,
            Self::Rows(ids) => ids.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_full(&self) -> bool {
        matches!(self, Self::Full(_))
    }

    /// Iterates the materialized global item ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        let (range, ids) = match self {
            Self::Full(n) => (0..*n as u32, [].as_slice()),
            Self::Rows(ids) => (0..0, *ids),
        };
        range.chain(ids.iter().copied())
    }

    /// True if `id` is materialized.
    pub fn contains(&self, id: u32) -> bool {
        match self {
            Self::Full(n) => (id as usize) < *n,
            Self::Rows(ids) => ids.binary_search(&id).is_ok(),
        }
    }
}

/// A shared, monotonically growing `[0, 1, 2, …]` prefix cache.
///
/// `score_all`'s default implementation used to materialize a fresh
/// `(0..num_items).collect::<Vec<u32>>()` on every call — one heap
/// allocation and a full id write-out per user per round on the server
/// dispersal path. All full-catalogue callers now share one cached arc
/// and slice the prefix they need; the buffer only reallocates when a
/// larger catalogue than ever before appears.
pub fn cached_id_range(n: usize) -> Arc<Vec<u32>> {
    static RANGE: OnceLock<RwLock<Arc<Vec<u32>>>> = OnceLock::new();
    let lock = RANGE.get_or_init(|| RwLock::new(Arc::new(Vec::new())));
    {
        let cur = lock.read().expect("id-range lock poisoned");
        if cur.len() >= n {
            return cur.clone();
        }
    }
    let mut cur = lock.write().expect("id-range lock poisoned");
    if cur.len() < n {
        *cur = Arc::new((0..n as u32).collect());
    }
    cur.clone()
}
/// A trainable implicit-feedback recommender.
///
/// Scores are probabilities in `[0, 1]` (sigmoid outputs): the protocol
/// ships them across the network as soft labels, and the receiving side
/// trains on them with a soft-target binary cross-entropy.
///
/// `Send + Sync` are supertraits because the federation scheduler moves
/// client-local models onto worker threads and the ranking evaluator
/// scores one shared model from many threads at once. Implementations
/// must keep any internal caching behind thread-safe primitives (see
/// `LightGcn`/`Ngcf`, whose propagation caches are `RwLock`s).
pub trait Recommender: Send + Sync {
    /// Architecture name as used in the paper's tables.
    fn name(&self) -> &'static str;

    fn num_users(&self) -> usize;

    fn num_items(&self) -> usize;

    /// Number of scalar parameters (drives parameter-transmission costs).
    fn num_params(&self) -> usize;

    /// Which item-embedding rows this model holds. Dense models report
    /// [`ScopeView::Full`]; item-scoped models report the sorted global
    /// ids materialized so far (which grows as dispersed or sampled items
    /// are touched).
    fn item_scope(&self) -> ScopeView<'_> {
        ScopeView::Full(self.num_items())
    }

    /// True if this model holds only a scoped subset of the item rows.
    fn scoped(&self) -> bool {
        !self.item_scope().is_full()
    }

    /// Batch-materializes the item rows an upcoming training round will
    /// touch (`sorted_ids` ascending, unique). Semantically identical to
    /// letting `train_batch` materialize lazily — rows hold the same
    /// derived init either way — but it lets a scoped model do the growth
    /// up front: MF merges the whole batch into its row table in one
    /// arena pass (which is what keeps paper-scale round throughput flat
    /// under scoping); the autograd models currently still insert row by
    /// row, just before the round instead of mid-batch. Dense models
    /// ignore it.
    fn prepare_items(&mut self, _sorted_ids: &[u32]) {}

    /// Evicts every materialized item row whose global id is *not* in
    /// `keep_sorted` (ascending, unique), returning how many rows were
    /// dropped or reset. Eviction is the inverse of lazy materialization
    /// and is semantically free on seed-derived models: an evicted row's
    /// parameter state returns to its `(seed, id)`-derived init and its
    /// optimizer moments to zero, exactly what a never-touched row holds,
    /// so re-touching it later is bit-identical to a model that had never
    /// materialized it. Row-scoped models physically remove the rows
    /// (bounding client memory); dense seed-derived models reset them in
    /// place — either way the two representations stay bit-identical
    /// under the same train-and-evict schedule.
    ///
    /// Graph models require `keep_sorted` to cover every item referenced
    /// by the current interaction graph (the caller's keep set naturally
    /// does: graph edges come from positives and dispersed items, which
    /// are always kept). Models with no reproducible init — the default —
    /// evict nothing and return 0.
    fn evict_items(&mut self, _keep_sorted: &[u32]) -> usize {
        0
    }

    /// Predicted preference of `user` for each of `items`.
    fn score(&self, user: u32, items: &[u32]) -> Vec<f32>;

    /// Predicted preference of `user` for every item.
    ///
    /// The default routes through the shared [`cached_id_range`] instead
    /// of collecting a fresh id vector per call; the returned score
    /// vector is the only allocation left.
    fn score_all(&self, user: u32) -> Vec<f32> {
        let ids = cached_id_range(self.num_items());
        self.score(user, &ids[..self.num_items()])
    }

    /// [`Recommender::score`] into a caller-owned buffer (cleared on
    /// entry). The default delegates to `score` and still allocates;
    /// models on the federated hot path (MF) override it to write
    /// straight into the scratch buffer, making a steady-state client
    /// round allocation-free.
    fn score_into(&self, user: u32, items: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(self.score(user, items));
    }

    /// [`Recommender::score_all`] into a caller-owned buffer (cleared on
    /// entry); same contract as [`Recommender::score_into`]. The default
    /// scores the shared [`cached_id_range`] through `score_into`, so a
    /// model with an allocation-free `score_into` gets an
    /// allocation-free `score_all_into` for free.
    fn score_all_into(&self, user: u32, out: &mut Vec<f32>) {
        let ids = cached_id_range(self.num_items());
        self.score_into(user, &ids[..self.num_items()], out);
    }

    /// True if [`Recommender::set_graph`] actually consumes edges. Lets
    /// callers skip assembling an edge list for models that would ignore
    /// it (the client hot path builds edges only for GCN architectures).
    fn uses_graph(&self) -> bool {
        false
    }

    /// One optimizer step on `(user, item, soft_label)` triples; returns
    /// the batch's mean BCE loss.
    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32;

    /// Rebuilds internal interaction-graph structure from weighted
    /// `(user, item, weight)` edges. Non-graph models ignore this.
    fn set_graph(&mut self, _edges: &[(u32, u32, f32)]) {}

    /// Serializes the model's trainable parameters as JSON (the hidden
    /// server model's checkpoint format), if the model supports it.
    fn export_state(&self) -> Option<String> {
        None
    }

    /// Restores previously [`Recommender::export_state`]d parameters.
    /// Names and shapes must match exactly; optimizer state is *not*
    /// restored (resuming training re-warms Adam's moments).
    fn import_state(&mut self, _json: &str) -> Result<(), String> {
        Err("this model does not support checkpointing".to_string())
    }

    /// Serializes *everything* needed to resume training bit-identically:
    /// parameters, scope mapping, init seed, optimizer step counter and
    /// moment buffers, and any model-owned training RNG. This is the
    /// cohort runtime's client-recycling format — a model restored via
    /// [`Recommender::import_full_state`] produces the same bytes per
    /// training step as one that was never serialized.
    /// [`Recommender::export_state`] remains the lighter inference-grade
    /// checkpoint (no optimizer state). Models that cannot make the
    /// bit-resume guarantee return `None`.
    fn export_full_state(&self) -> Option<String> {
        None
    }

    /// Restores a [`Recommender::export_full_state`] envelope. The item
    /// scope may reshape in either direction (grown id set, or a dense
    /// envelope densifying a scoped model). Graph structure is *not* part
    /// of the envelope — graph models reset their propagation operator and
    /// callers re-`set_graph` after restoring. On error the model may be
    /// left partially restored; discard it.
    fn import_full_state(&mut self, _json: &str) -> Result<(), String> {
        Err("this model does not support full-state checkpointing".to_string())
    }

    /// Converts a scoped model to the dense identity representation in
    /// place: every catalogue row materializes (kept rows byte-identical,
    /// fresh rows at their derived init, optimizer moments zero), which is
    /// exactly the state lazy materialization would have reached — so for
    /// models without training-time RNG draws over the node space,
    /// training continues bit-identically to the un-densified twin.
    /// (NGCF with `message_dropout > 0` draws masks over all materialized
    /// nodes, so its draws change after densifying.) `StorageMode::Auto`
    /// uses this when a client's touched-row fraction outgrows the sparse
    /// representation. Returns `false` when already dense or unsupported.
    fn densify(&mut self) -> bool {
        false
    }
}

/// Trains on `samples` in fixed-size batches (caller shuffles), returning
/// the mean per-batch loss. Empty input returns 0.
pub fn train_on_samples(
    model: &mut dyn Recommender,
    samples: &[(u32, u32, f32)],
    batch_size: usize,
) -> f32 {
    assert!(batch_size > 0, "batch_size must be positive");
    if samples.is_empty() {
        return 0.0;
    }
    let mut total = 0.0f64;
    let mut batches = 0usize;
    for chunk in samples.chunks(batch_size) {
        total += model.train_batch(chunk) as f64;
        batches += 1;
    }
    (total / batches as f64) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A degenerate recommender for exercising the trait's defaults.
    struct Constant {
        users: usize,
        items: usize,
        calls: usize,
    }

    impl Recommender for Constant {
        fn name(&self) -> &'static str {
            "Constant"
        }
        fn num_users(&self) -> usize {
            self.users
        }
        fn num_items(&self) -> usize {
            self.items
        }
        fn num_params(&self) -> usize {
            0
        }
        fn score(&self, _user: u32, items: &[u32]) -> Vec<f32> {
            vec![0.5; items.len()]
        }
        fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
            self.calls += 1;
            batch.len() as f32
        }
    }

    #[test]
    fn score_all_covers_every_item() {
        let m = Constant { users: 2, items: 7, calls: 0 };
        assert_eq!(m.score_all(0).len(), 7);
    }

    #[test]
    fn train_on_samples_chunks_and_averages() {
        let mut m = Constant { users: 1, items: 1, calls: 0 };
        let samples = vec![(0, 0, 1.0); 10];
        // batches of 4,4,2 → "losses" 4,4,2 → mean 10/3
        let loss = train_on_samples(&mut m, &samples, 4);
        assert_eq!(m.calls, 3);
        assert!((loss - 10.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_samples_are_noop() {
        let mut m = Constant { users: 1, items: 1, calls: 0 };
        assert_eq!(train_on_samples(&mut m, &[], 4), 0.0);
        assert_eq!(m.calls, 0);
    }

    #[test]
    fn default_item_scope_is_full() {
        let m = Constant { users: 1, items: 9, calls: 0 };
        assert_eq!(m.item_scope(), ScopeView::Full(9));
        assert!(!m.scoped());
        assert!(m.item_scope().contains(8));
        assert!(!m.item_scope().contains(9));
    }

    #[test]
    fn scope_view_iterates_both_variants() {
        let full: Vec<u32> = ScopeView::Full(4).iter().collect();
        assert_eq!(full, vec![0, 1, 2, 3]);
        let ids = [2u32, 5, 7];
        let rows_view = ScopeView::Rows(&ids);
        assert_eq!(rows_view.iter().collect::<Vec<_>>(), vec![2, 5, 7]);
        assert_eq!(rows_view.len(), 3);
        assert!(rows_view.contains(5));
        assert!(!rows_view.contains(4));
        assert!(!rows_view.is_full());
    }

    #[test]
    fn cached_id_range_grows_and_is_shared() {
        let a = cached_id_range(5);
        assert_eq!(&a[..5], &[0, 1, 2, 3, 4]);
        let b = cached_id_range(3);
        assert_eq!(&b[..3], &[0, 1, 2]);
        let c = cached_id_range(8);
        assert_eq!(c[7], 7);
    }
}
