//! NeuMF — the paper's "simple and straightforward" client model.
//!
//! As specified in the paper (Eq. 1 and §IV-D): user and item embeddings
//! are concatenated and pushed through an MLP (`64 → 32 → 16` on top of
//! 32-dim embeddings), then a trainable head `h` produces the logit:
//! `r̂_ij = σ(hᵀ MLP([u_i, v_j]))`.

use crate::traits::Recommender;
use ptf_tensor::prelude::*;
use ptf_tensor::{init, ParamId};
use rand::Rng;

/// NeuMF hyperparameters (defaults follow §IV-D).
#[derive(Clone, Debug)]
pub struct NeuMfConfig {
    /// Embedding dimension (paper: 32).
    pub dim: usize,
    /// MLP layer output widths (paper: 64, 32, 16).
    pub layers: Vec<usize>,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
}

impl Default for NeuMfConfig {
    fn default() -> Self {
        Self { dim: 32, layers: vec![64, 32, 16], lr: 1e-3 }
    }
}

/// The NeuMF model.
pub struct NeuMf {
    num_users: usize,
    num_items: usize,
    params: Params,
    user_emb: ParamId,
    item_emb: ParamId,
    /// `(weight, bias)` per MLP layer, then the scoring head.
    layers: Vec<(ParamId, ParamId)>,
    head: (ParamId, ParamId),
    adam: Adam,
}

impl NeuMf {
    pub fn new(num_users: usize, num_items: usize, cfg: &NeuMfConfig, rng: &mut impl Rng) -> Self {
        assert!(num_users > 0 && num_items > 0, "empty model");
        assert!(!cfg.layers.is_empty(), "NeuMF needs at least one MLP layer");
        let mut params = Params::new();
        let user_emb = params.push("user_emb", Matrix::randn(num_users, cfg.dim, 0.1, rng));
        let item_emb = params.push("item_emb", Matrix::randn(num_items, cfg.dim, 0.1, rng));
        let mut layers = Vec::with_capacity(cfg.layers.len());
        let mut fan_in = 2 * cfg.dim;
        for (l, &width) in cfg.layers.iter().enumerate() {
            let w = params.push(format!("w{l}"), init::xavier_uniform(fan_in, width, rng));
            let b = params.push(format!("b{l}"), Matrix::zeros(1, width));
            layers.push((w, b));
            fan_in = width;
        }
        let head_w = params.push("head_w", init::xavier_uniform(fan_in, 1, rng));
        let head_b = params.push("head_b", Matrix::zeros(1, 1));
        let adam = Adam::with_defaults(&params, cfg.lr);
        Self {
            num_users,
            num_items,
            params,
            user_emb,
            item_emb,
            layers,
            head: (head_w, head_b),
            adam,
        }
    }

    /// Builds the logit column for `(users[k], items[k])` pairs.
    fn build_logits(&self, g: &mut Graph<'_>, users: &[u32], items: &[u32]) -> Var {
        let ue = g.param(self.user_emb);
        let ie = g.param(self.item_emb);
        let u = g.gather(ue, users);
        let v = g.gather(ie, items);
        let mut h = g.concat_cols(u, v);
        for &(w, b) in &self.layers {
            let wv = g.param(w);
            let bv = g.param(b);
            let lin = g.matmul(h, wv);
            let lin = g.add_row(lin, bv);
            h = g.relu(lin);
        }
        let (hw, hb) = self.head;
        let hwv = g.param(hw);
        let hbv = g.param(hb);
        let out = g.matmul(h, hwv);
        g.add_row(out, hbv)
    }

    fn check_ids(&self, users: &[u32], items: &[u32]) {
        debug_assert!(users.iter().all(|&u| (u as usize) < self.num_users), "user id out of range");
        debug_assert!(items.iter().all(|&i| (i as usize) < self.num_items), "item id out of range");
    }
}

impl Recommender for NeuMf {
    fn name(&self) -> &'static str {
        "NeuMF"
    }

    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let users = vec![user; items.len()];
        self.check_ids(&users, items);
        let mut g = Graph::new(&self.params);
        let logits = self.build_logits(&mut g, &users, items);
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let users: Vec<u32> = batch.iter().map(|&(u, _, _)| u).collect();
        let items: Vec<u32> = batch.iter().map(|&(_, i, _)| i).collect();
        let labels: Vec<f32> = batch.iter().map(|&(_, _, l)| l).collect();
        self.check_ids(&users, &items);
        let (grads, loss) = {
            let mut g = Graph::new(&self.params);
            let logits = self.build_logits(&mut g, &users, &items);
            let loss = g.bce_with_logits(logits, &labels);
            (g.backward(loss), g.scalar(loss))
        };
        self.adam.step(&mut self.params, &grads);
        loss
    }

    fn export_state(&self) -> Option<String> {
        serde_json::to_string(&self.params).ok()
    }

    fn import_state(&mut self, json: &str) -> Result<(), String> {
        let loaded: Params =
            serde_json::from_str(json).map_err(|e| format!("bad checkpoint: {e}"))?;
        self.params.load_state_from(&loaded)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    fn tiny() -> NeuMf {
        let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
        NeuMf::new(5, 12, &cfg, &mut test_rng(1))
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = tiny();
        // embeddings: 5*8 + 12*8; mlp: 16*16+16 + 16*8+8; head: 8*1+1
        let expected = 5 * 8 + 12 * 8 + (16 * 16 + 16) + (16 * 8 + 8) + (8 + 1);
        assert_eq!(m.num_params(), expected);
    }

    #[test]
    fn scores_are_probabilities() {
        let m = tiny();
        let s = m.score(0, &[0, 1, 2, 3]);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)), "{s:?}");
    }

    #[test]
    fn score_all_default_impl() {
        let m = tiny();
        assert_eq!(m.score_all(2).len(), 12);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = tiny();
        let batch: Vec<(u32, u32, f32)> =
            vec![(0, 0, 1.0), (0, 1, 0.0), (1, 2, 1.0), (1, 3, 0.0), (2, 4, 1.0), (2, 5, 0.0)];
        let first = m.train_batch(&batch);
        let mut last = first;
        for _ in 0..120 {
            last = m.train_batch(&batch);
        }
        assert!(last < first * 0.5, "loss did not shrink: {first} → {last}");
    }

    #[test]
    fn overfits_to_separate_positives_from_negatives() {
        let mut m = tiny();
        let batch: Vec<(u32, u32, f32)> = vec![(0, 0, 1.0), (0, 1, 0.0), (0, 2, 1.0), (0, 3, 0.0)];
        for _ in 0..200 {
            m.train_batch(&batch);
        }
        let s = m.score(0, &[0, 1, 2, 3]);
        assert!(s[0] > 0.8 && s[2] > 0.8, "positives low: {s:?}");
        assert!(s[1] < 0.2 && s[3] < 0.2, "negatives high: {s:?}");
    }

    #[test]
    fn soft_labels_are_regressed() {
        let mut m = tiny();
        let batch = vec![(0, 0, 0.7f32)];
        for _ in 0..300 {
            m.train_batch(&batch);
        }
        let s = m.score(0, &[0]);
        assert!((s[0] - 0.7).abs() < 0.1, "soft target missed: {}", s[0]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut m = tiny();
        let before = m.score(0, &[0]);
        assert_eq!(m.train_batch(&[]), 0.0);
        assert_eq!(m.score(0, &[0]), before);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NeuMfConfig::default();
        let a = NeuMf::new(3, 4, &cfg, &mut test_rng(9));
        let b = NeuMf::new(3, 4, &cfg, &mut test_rng(9));
        assert_eq!(a.score(0, &[0, 1]), b.score(0, &[0, 1]));
    }

    #[test]
    fn set_graph_is_accepted_and_ignored() {
        let mut m = tiny();
        let before = m.score(0, &[0]);
        m.set_graph(&[(0, 0, 1.0)]);
        assert_eq!(m.score(0, &[0]), before);
    }
}
