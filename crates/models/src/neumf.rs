//! NeuMF — the paper's "simple and straightforward" client model.
//!
//! As specified in the paper (Eq. 1 and §IV-D): user and item embeddings
//! are concatenated and pushed through an MLP (`64 → 32 → 16` on top of
//! 32-dim embeddings), then a trainable head `h` produces the logit:
//! `r̂_ij = σ(hᵀ MLP([u_i, v_j]))`.

use crate::scoped;
use crate::scratch::BatchScratch;
use crate::traits::{Recommender, ScopeView};
use ptf_tensor::prelude::*;
use ptf_tensor::{init, ItemScope, ParamId, ScopeIndex};
use rand::Rng;

/// NeuMF hyperparameters (defaults follow §IV-D).
#[derive(Clone, Debug)]
pub struct NeuMfConfig {
    /// Embedding dimension (paper: 32).
    pub dim: usize,
    /// MLP layer output widths (paper: 64, 32, 16).
    pub layers: Vec<usize>,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
}

impl Default for NeuMfConfig {
    fn default() -> Self {
        Self { dim: 32, layers: vec![64, 32, 16], lr: 1e-3 }
    }
}

/// The NeuMF model.
pub struct NeuMf {
    num_users: usize,
    num_items: usize,
    params: Params,
    user_emb: ParamId,
    item_emb: ParamId,
    /// `(weight, bias)` per MLP layer, then the scoring head.
    layers: Vec<(ParamId, ParamId)>,
    head: (ParamId, ParamId),
    adam: Adam,
    /// Which global item id backs which `item_emb` row (dense identity
    /// for full models; sorted + lazily growing for scoped clients).
    scope: ScopeIndex,
    /// Per-row derived init seed for lazily materialized item rows.
    item_seed: u64,
    /// Reused batch-staging vectors + autograd arena (steady-state
    /// training is allocation-free after the first batch).
    scratch: BatchScratch,
}

impl NeuMf {
    pub fn new(num_users: usize, num_items: usize, cfg: &NeuMfConfig, rng: &mut impl Rng) -> Self {
        assert!(num_users > 0 && num_items > 0, "empty model");
        // legacy draw order: user table, then item table, then layers
        let user_emb = Matrix::randn(num_users, cfg.dim, 0.1, rng);
        let item_emb = Matrix::randn(num_items, cfg.dim, 0.1, rng);
        Self::assemble(num_items, cfg, user_emb, item_emb, ScopeIndex::dense(num_items), 0, rng)
    }

    /// An item-scoped NeuMF: the item table materializes only `scope`
    /// (plus whatever later training touches), every row initialized from
    /// its `(seed, id)`-derived stream; all other parameters draw from a
    /// scope-independent derived stream, so `Full`- and `Rows`-scoped
    /// models with the same seed are bit-identical on shared rows.
    pub fn new_scoped(num_users: usize, cfg: &NeuMfConfig, scope: &ItemScope, seed: u64) -> Self {
        assert!(num_users > 0 && scope.num_items() > 0, "empty model");
        let item_seed = scoped::item_seed(seed);
        let item_emb = scoped::scoped_item_rows(scope, cfg.dim, 0.1, item_seed);
        let mut rng = scoped::dense_rng(seed);
        let user_emb = Matrix::randn(num_users, cfg.dim, 0.1, &mut rng);
        Self::assemble(
            scope.num_items(),
            cfg,
            user_emb,
            item_emb,
            ScopeIndex::from_scope(scope),
            item_seed,
            &mut rng,
        )
    }

    fn assemble(
        num_items: usize,
        cfg: &NeuMfConfig,
        user_rows: Matrix,
        item_rows: Matrix,
        scope: ScopeIndex,
        item_seed: u64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(!cfg.layers.is_empty(), "NeuMF needs at least one MLP layer");
        let num_users = user_rows.rows();
        let mut params = Params::new();
        let user_emb = params.push("user_emb", user_rows);
        let item_emb = params.push("item_emb", item_rows);
        let mut layers = Vec::with_capacity(cfg.layers.len());
        let mut fan_in = 2 * cfg.dim;
        for (l, &width) in cfg.layers.iter().enumerate() {
            let w = params.push(format!("w{l}"), init::xavier_uniform(fan_in, width, rng));
            let b = params.push(format!("b{l}"), Matrix::zeros(1, width));
            layers.push((w, b));
            fan_in = width;
        }
        let head_w = params.push("head_w", init::xavier_uniform(fan_in, 1, rng));
        let head_b = params.push("head_b", Matrix::zeros(1, 1));
        let adam = Adam::with_defaults(&params, cfg.lr);
        Self {
            num_users,
            num_items,
            params,
            user_emb,
            item_emb,
            layers,
            head: (head_w, head_b),
            adam,
            scope,
            item_seed,
            scratch: BatchScratch::default(),
        }
    }

    fn dim(&self) -> usize {
        self.params.get(self.user_emb).cols()
    }

    /// Runs the MLP + head on top of the gathered user/item embeddings.
    fn build_logits_from(&self, g: &mut Graph<'_>, u: Var, v: Var) -> Var {
        let mut h = g.concat_cols(u, v);
        for &(w, b) in &self.layers {
            let wv = g.param(w);
            let bv = g.param(b);
            let lin = g.matmul(h, wv);
            let lin = g.add_row(lin, bv);
            h = g.relu(lin);
        }
        let (hw, hb) = self.head;
        let hwv = g.param(hw);
        let hbv = g.param(hb);
        let out = g.matmul(h, hwv);
        g.add_row(out, hbv)
    }

    /// Builds the logit column for `(users[k], items[k])` pairs; item ids
    /// must already be mapped to `item_emb` rows.
    fn build_logits(&self, g: &mut Graph<'_>, users: &[u32], item_rows: &[u32]) -> Var {
        let ue = g.param(self.user_emb);
        let ie = g.param(self.item_emb);
        let u = g.gather(ue, users);
        let v = g.gather(ie, item_rows);
        self.build_logits_from(g, u, v)
    }

    /// The gathered item-embedding rows for `items`, including the
    /// derived init of any not-yet-materialized (cold) row — the scoped
    /// `&self` scoring path.
    fn gather_item_rows(&self, items: &[u32]) -> Matrix {
        let dim = self.dim();
        let table = self.params.get(self.item_emb);
        let mut out = Matrix::zeros(items.len(), dim);
        for (r, &i) in items.iter().enumerate() {
            match self.scope.lookup(i) {
                Some(row) => out.row_mut(r).copy_from_slice(table.row(row)),
                None => init::derived_normal_row(self.item_seed, i, 0.1, out.row_mut(r)),
            }
        }
        out
    }

    fn check_ids(&self, users: &[u32], items: &[u32]) {
        debug_assert!(users.iter().all(|&u| (u as usize) < self.num_users), "user id out of range");
        debug_assert!(items.iter().all(|&i| (i as usize) < self.num_items), "item id out of range");
    }
}

impl Recommender for NeuMf {
    fn name(&self) -> &'static str {
        "NeuMF"
    }

    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }

    fn item_scope(&self) -> ScopeView<'_> {
        match self.scope.ids() {
            None => ScopeView::Full(self.num_items),
            Some(ids) => ScopeView::Rows(ids),
        }
    }

    fn prepare_items(&mut self, sorted_ids: &[u32]) {
        scoped::ensure_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.item_emb,
            0,
            self.item_seed,
            0.1,
            sorted_ids.iter().copied(),
        );
    }

    fn evict_items(&mut self, keep_sorted: &[u32]) -> usize {
        scoped::evict_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.item_emb,
            0,
            self.item_seed,
            0.1,
            keep_sorted,
        )
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        let users = vec![user; items.len()];
        self.check_ids(&users, items);
        let mut g = Graph::new(&self.params);
        let logits = if self.scope.is_dense() {
            self.build_logits(&mut g, &users, items)
        } else {
            // scoped `&self` path: gather the item rows by hand (cold rows
            // get their derived init) and feed them as a graph leaf
            let ue = g.param(self.user_emb);
            let u = g.gather(ue, &users);
            let v = g.leaf(self.gather_item_rows(items));
            self.build_logits_from(&mut g, u, v)
        };
        let probs = g.sigmoid(logits);
        g.value(probs).as_slice().to_vec()
    }

    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.users.clear();
        scratch.users.extend(batch.iter().map(|&(u, _, _)| u));
        scratch.items.clear();
        scratch.items.extend(batch.iter().map(|&(_, i, _)| i));
        scratch.labels.clear();
        scratch.labels.extend(batch.iter().map(|&(_, _, l)| l));
        self.check_ids(&scratch.users, &scratch.items);
        // materialize any first-touched rows, then train against the
        // row-mapped indices (identity when dense)
        scoped::ensure_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.item_emb,
            0,
            self.item_seed,
            0.1,
            scratch.items.iter().copied(),
        );
        scratch.rows.clear();
        for &i in &scratch.items {
            scratch.rows.push(self.scope.lookup(i).expect("ensured above") as u32);
        }
        let (grads, loss) = {
            let mut g = Graph::with_arena(&self.params, &mut scratch.arena);
            let logits = self.build_logits(&mut g, &scratch.users, &scratch.rows);
            let loss = g.bce_with_logits(logits, &scratch.labels);
            (g.backward(loss), g.scalar(loss))
        };
        self.adam.step(&mut self.params, &grads);
        scratch.arena.recycle(grads);
        self.scratch = scratch;
        loss
    }

    fn export_state(&self) -> Option<String> {
        scoped::export_state("NeuMF", &self.scope, &self.params, self.item_seed)
    }

    fn import_state(&mut self, json: &str) -> Result<(), String> {
        scoped::import_state(
            "NeuMF",
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.item_emb,
            0,
            &mut self.item_seed,
            json,
        )
    }

    fn export_full_state(&self) -> Option<String> {
        scoped::export_full_state(
            "NeuMF",
            &self.scope,
            &self.params,
            self.item_seed,
            &self.adam,
            None,
        )
    }

    fn import_full_state(&mut self, json: &str) -> Result<(), String> {
        scoped::import_full_state(
            "NeuMF",
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.item_emb,
            0,
            &mut self.item_seed,
            json,
        )?;
        Ok(())
    }

    fn densify(&mut self) -> bool {
        scoped::densify_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.item_emb,
            0,
            self.item_seed,
            0.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    fn tiny() -> NeuMf {
        let cfg = NeuMfConfig { dim: 8, layers: vec![16, 8], lr: 0.01 };
        NeuMf::new(5, 12, &cfg, &mut test_rng(1))
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = tiny();
        // embeddings: 5*8 + 12*8; mlp: 16*16+16 + 16*8+8; head: 8*1+1
        let expected = 5 * 8 + 12 * 8 + (16 * 16 + 16) + (16 * 8 + 8) + (8 + 1);
        assert_eq!(m.num_params(), expected);
    }

    #[test]
    fn scores_are_probabilities() {
        let m = tiny();
        let s = m.score(0, &[0, 1, 2, 3]);
        assert_eq!(s.len(), 4);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)), "{s:?}");
    }

    #[test]
    fn score_all_default_impl() {
        let m = tiny();
        assert_eq!(m.score_all(2).len(), 12);
    }

    #[test]
    fn training_reduces_loss() {
        let mut m = tiny();
        let batch: Vec<(u32, u32, f32)> =
            vec![(0, 0, 1.0), (0, 1, 0.0), (1, 2, 1.0), (1, 3, 0.0), (2, 4, 1.0), (2, 5, 0.0)];
        let first = m.train_batch(&batch);
        let mut last = first;
        for _ in 0..120 {
            last = m.train_batch(&batch);
        }
        assert!(last < first * 0.5, "loss did not shrink: {first} → {last}");
    }

    #[test]
    fn overfits_to_separate_positives_from_negatives() {
        let mut m = tiny();
        let batch: Vec<(u32, u32, f32)> = vec![(0, 0, 1.0), (0, 1, 0.0), (0, 2, 1.0), (0, 3, 0.0)];
        for _ in 0..200 {
            m.train_batch(&batch);
        }
        let s = m.score(0, &[0, 1, 2, 3]);
        assert!(s[0] > 0.8 && s[2] > 0.8, "positives low: {s:?}");
        assert!(s[1] < 0.2 && s[3] < 0.2, "negatives high: {s:?}");
    }

    #[test]
    fn soft_labels_are_regressed() {
        let mut m = tiny();
        let batch = vec![(0, 0, 0.7f32)];
        for _ in 0..300 {
            m.train_batch(&batch);
        }
        let s = m.score(0, &[0]);
        assert!((s[0] - 0.7).abs() < 0.1, "soft target missed: {}", s[0]);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut m = tiny();
        let before = m.score(0, &[0]);
        assert_eq!(m.train_batch(&[]), 0.0);
        assert_eq!(m.score(0, &[0]), before);
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NeuMfConfig::default();
        let a = NeuMf::new(3, 4, &cfg, &mut test_rng(9));
        let b = NeuMf::new(3, 4, &cfg, &mut test_rng(9));
        assert_eq!(a.score(0, &[0, 1]), b.score(0, &[0, 1]));
    }

    #[test]
    fn set_graph_is_accepted_and_ignored() {
        let mut m = tiny();
        let before = m.score(0, &[0]);
        m.set_graph(&[(0, 0, 1.0)]);
        assert_eq!(m.score(0, &[0]), before);
    }
}
