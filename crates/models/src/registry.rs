//! Model registry: build any paper model by name.
//!
//! Table VIII evaluates every client-model × server-model combination, so
//! protocols construct models through [`ModelKind`] + [`ModelHyper`]
//! instead of naming concrete types.

use crate::lightgcn::{LightGcn, LightGcnConfig};
use crate::neumf::{NeuMf, NeuMfConfig};
use crate::ngcf::{Ngcf, NgcfConfig};
use crate::traits::Recommender;
use ptf_tensor::ItemScope;
use rand::Rng;

/// The architectures the registry can build: the paper's three
/// ([`ModelKind::ALL`]) plus plain matrix factorization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    NeuMf,
    Ngcf,
    LightGcn,
    /// Plain MF with per-sample SGD — not in the paper's tables, but the
    /// throughput workhorse for paper-scale runs: its score/train paths
    /// are fully allocation-free, so an MF client round stays inside the
    /// scheduler's scratch buffers.
    Mf,
}

impl ModelKind {
    /// The three architectures the paper's tables evaluate (excludes the
    /// extra [`ModelKind::Mf`] perf baseline).
    pub const ALL: [ModelKind; 3] = [Self::NeuMf, Self::Ngcf, Self::LightGcn];

    pub fn name(self) -> &'static str {
        match self {
            Self::NeuMf => "NeuMF",
            Self::Ngcf => "NGCF",
            Self::LightGcn => "LightGCN",
            Self::Mf => "MF",
        }
    }

    /// Case-insensitive parse of the paper's model names.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "neumf" => Some(Self::NeuMf),
            "ngcf" => Some(Self::Ngcf),
            "lightgcn" => Some(Self::LightGcn),
            "mf" => Some(Self::Mf),
            _ => None,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Shared hyperparameters (§IV-D defaults).
#[derive(Clone, Debug)]
pub struct ModelHyper {
    /// Embedding dimension (paper: 32).
    pub dim: usize,
    /// Adam learning rate (paper: 0.001).
    pub lr: f32,
    /// Propagation layers for NGCF/LightGCN (paper: 3).
    pub gcn_layers: usize,
    /// MLP widths for NeuMF (paper: 64, 32, 16).
    pub mlp_layers: Vec<usize>,
    /// L2 weight decay for NGCF's propagation weights/embeddings.
    pub ngcf_reg: f32,
    /// NGCF message dropout rate (reference implementation: 0.1).
    pub ngcf_dropout: f32,
}

impl Default for ModelHyper {
    fn default() -> Self {
        Self {
            dim: 32,
            lr: 1e-3,
            gcn_layers: 3,
            mlp_layers: vec![64, 32, 16],
            ngcf_reg: 2e-2,
            ngcf_dropout: 0.1,
        }
    }
}

impl ModelHyper {
    /// A reduced configuration for quick experiments and tests.
    pub fn small() -> Self {
        Self {
            dim: 16,
            lr: 5e-3,
            gcn_layers: 2,
            mlp_layers: vec![32, 16],
            ngcf_reg: 5e-2,
            ngcf_dropout: 0.1,
        }
    }
}

/// Constructs a boxed model of the requested architecture.
pub fn build_model(
    kind: ModelKind,
    num_users: usize,
    num_items: usize,
    hyper: &ModelHyper,
    rng: &mut impl Rng,
) -> Box<dyn Recommender> {
    match kind {
        ModelKind::NeuMf => Box::new(NeuMf::new(
            num_users,
            num_items,
            &NeuMfConfig { dim: hyper.dim, layers: hyper.mlp_layers.clone(), lr: hyper.lr },
            rng,
        )),
        ModelKind::Ngcf => Box::new(Ngcf::new(
            num_users,
            num_items,
            &NgcfConfig {
                dim: hyper.dim,
                layers: hyper.gcn_layers,
                lr: hyper.lr,
                leaky_slope: 0.2,
                reg: hyper.ngcf_reg,
                message_dropout: hyper.ngcf_dropout,
            },
            rng,
        )),
        ModelKind::LightGcn => Box::new(LightGcn::new(
            num_users,
            num_items,
            &LightGcnConfig { dim: hyper.dim, layers: hyper.gcn_layers, lr: hyper.lr },
            rng,
        )),
        ModelKind::Mf => {
            Box::new(crate::mf::MfModel::new(num_users, num_items, hyper.dim, hyper.lr, rng))
        }
    }
}

/// Constructs a boxed model whose item embeddings cover exactly `scope`.
///
/// This is the item-scoped model-construction API: a federated client
/// passes `ItemScope::Rows` over its private positives and gets a model
/// holding only those embedding rows (sampled negatives and dispersed
/// items materialize lazily on first touch, each from its
/// `(seed, id)`-derived init). All randomness derives from `seed`, and
/// the item-row draws are independent of the scope — so a `Rows` model
/// and a `Full` model built from the same seed are bit-identical on
/// every row both hold (for NGCF, under `message_dropout = 0`; see
/// [`Ngcf::new_scoped`]).
pub fn build_model_scoped(
    kind: ModelKind,
    num_users: usize,
    hyper: &ModelHyper,
    scope: &ItemScope,
    seed: u64,
) -> Box<dyn Recommender> {
    match kind {
        ModelKind::NeuMf => Box::new(NeuMf::new_scoped(
            num_users,
            &NeuMfConfig { dim: hyper.dim, layers: hyper.mlp_layers.clone(), lr: hyper.lr },
            scope,
            seed,
        )),
        ModelKind::Ngcf => Box::new(Ngcf::new_scoped(
            num_users,
            &NgcfConfig {
                dim: hyper.dim,
                layers: hyper.gcn_layers,
                lr: hyper.lr,
                leaky_slope: 0.2,
                reg: hyper.ngcf_reg,
                message_dropout: hyper.ngcf_dropout,
            },
            scope,
            seed,
        )),
        ModelKind::LightGcn => Box::new(LightGcn::new_scoped(
            num_users,
            &LightGcnConfig { dim: hyper.dim, layers: hyper.gcn_layers, lr: hyper.lr },
            scope,
            seed,
        )),
        ModelKind::Mf => {
            Box::new(crate::mf::MfModel::new_scoped(num_users, hyper.dim, hyper.lr, scope, seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    #[test]
    fn parse_roundtrip() {
        for kind in [ModelKind::NeuMf, ModelKind::Ngcf, ModelKind::LightGcn, ModelKind::Mf] {
            assert_eq!(ModelKind::parse(kind.name()), Some(kind));
            assert_eq!(ModelKind::parse(&kind.name().to_lowercase()), Some(kind));
        }
        assert_eq!(ModelKind::parse("bert4rec"), None);
    }

    #[test]
    fn builds_mf_through_the_registry() {
        let m = build_model(ModelKind::Mf, 4, 6, &ModelHyper::small(), &mut test_rng(9));
        assert_eq!(m.name(), "MF");
        assert!(!m.uses_graph(), "MF must let clients skip edge assembly");
        // scratch scoring agrees with the allocating path
        let mut buf = Vec::new();
        m.score_into(1, &[0, 3, 5], &mut buf);
        assert_eq!(buf, m.score(1, &[0, 3, 5]));
        m.score_all_into(2, &mut buf);
        assert_eq!(buf, m.score_all(2));
    }

    #[test]
    fn builds_every_kind() {
        let hyper = ModelHyper::small();
        for kind in ModelKind::ALL {
            let m = build_model(kind, 4, 6, &hyper, &mut test_rng(1));
            assert_eq!(m.name(), kind.name());
            assert_eq!(m.num_users(), 4);
            assert_eq!(m.num_items(), 6);
            assert!(m.num_params() > 0);
            let s = m.score(0, &[0, 5]);
            assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn boxed_models_train_through_the_trait() {
        let hyper = ModelHyper::small();
        for kind in ModelKind::ALL {
            let mut m = build_model(kind, 3, 4, &hyper, &mut test_rng(2));
            m.set_graph(&[(0, 0, 1.0), (1, 1, 1.0)]);
            let batch = vec![(0u32, 0u32, 1.0f32), (0, 2, 0.0)];
            let first = m.train_batch(&batch);
            let mut last = first;
            for _ in 0..100 {
                last = m.train_batch(&batch);
            }
            assert!(last < first, "{kind}: loss {first} → {last} did not improve");
        }
    }

    #[test]
    fn scoped_registry_builds_every_kind() {
        let hyper = ModelHyper::small();
        let scope = ItemScope::rows(12, vec![1, 5, 9]);
        for kind in [ModelKind::Mf, ModelKind::NeuMf, ModelKind::Ngcf, ModelKind::LightGcn] {
            let mut m = build_model_scoped(kind, 2, &hyper, &scope, 7);
            assert_eq!(m.name(), kind.name());
            assert_eq!(m.num_items(), 12, "{kind}: ids stay global");
            assert_eq!(m.item_scope().len(), 3, "{kind}: only scoped rows materialized");
            assert!(m.scoped());
            // out-of-scope items score (cold) without materializing…
            let s = m.score(0, &[11]);
            assert!((0.0..=1.0).contains(&s[0]), "{kind}: {s:?}");
            assert_eq!(m.item_scope().len(), 3, "{kind}: scoring must not materialize");
            // …and training one materializes exactly that row
            m.set_graph(&[(0, 1, 1.0)]);
            m.train_batch(&[(0, 11, 1.0), (1, 5, 0.0)]);
            assert_eq!(m.item_scope().len(), 4, "{kind}");
            assert!(m.item_scope().contains(11), "{kind}");
        }
    }

    #[test]
    fn scoped_checkpoints_roundtrip_sparse_tables() {
        let hyper = ModelHyper::small();
        let scope = ItemScope::rows(16, vec![0, 3, 7]);
        for kind in [ModelKind::Mf, ModelKind::NeuMf, ModelKind::Ngcf, ModelKind::LightGcn] {
            let mut trained = build_model_scoped(kind, 3, &hyper, &scope, 13);
            trained.set_graph(&[(0, 0, 1.0), (1, 3, 1.0)]);
            for _ in 0..10 {
                trained.train_batch(&[(0, 0, 1.0), (0, 12, 0.0), (1, 3, 1.0)]);
            }
            let ckpt = trained.export_state().expect("scoped models checkpoint");
            let probe = [0u32, 3, 7, 12];
            let expected = trained.score(1, &probe);

            let mut fresh = build_model_scoped(kind, 3, &hyper, &scope, 4242);
            fresh.import_state(&ckpt).unwrap_or_else(|e| panic!("{kind}: {e}"));
            if kind == ModelKind::LightGcn || kind == ModelKind::Ngcf {
                // the graph is not part of a checkpoint
                fresh.set_graph(&[(0, 0, 1.0), (1, 3, 1.0)]);
            }
            assert_eq!(fresh.score(1, &probe), expected, "{kind}: state not restored");
            assert!(fresh.item_scope().contains(12), "{kind}: lazily grown row lost");
        }
    }

    #[test]
    fn paper_defaults() {
        let h = ModelHyper::default();
        assert_eq!(h.dim, 32);
        assert_eq!(h.gcn_layers, 3);
        assert_eq!(h.mlp_layers, vec![64, 32, 16]);
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use ptf_tensor::test_rng;

    #[test]
    fn export_import_roundtrip_preserves_scores() {
        let hyper = ModelHyper::small();
        for kind in ModelKind::ALL {
            let mut trained = build_model(kind, 4, 8, &hyper, &mut test_rng(5));
            trained.set_graph(&[(0, 0, 1.0), (1, 3, 1.0)]);
            for _ in 0..30 {
                trained.train_batch(&[(0, 0, 1.0), (0, 5, 0.0), (1, 3, 1.0)]);
            }
            let checkpoint = trained.export_state().expect("autograd models checkpoint");
            let expected = trained.score(0, &[0, 3, 5]);

            let mut fresh = build_model(kind, 4, 8, &hyper, &mut test_rng(99));
            fresh.set_graph(&[(0, 0, 1.0), (1, 3, 1.0)]);
            assert_ne!(fresh.score(0, &[0, 3, 5]), expected, "{kind}: seeds collided?");
            fresh.import_state(&checkpoint).unwrap();
            assert_eq!(fresh.score(0, &[0, 3, 5]), expected, "{kind}: state not restored");
        }
    }

    #[test]
    fn import_rejects_wrong_architecture() {
        let hyper = ModelHyper::small();
        let neumf = build_model(ModelKind::NeuMf, 4, 8, &hyper, &mut test_rng(1));
        let mut lightgcn = build_model(ModelKind::LightGcn, 4, 8, &hyper, &mut test_rng(2));
        let ckpt = neumf.export_state().unwrap();
        assert!(lightgcn.import_state(&ckpt).is_err(), "cross-architecture load must fail");
        assert!(lightgcn.import_state("{garbage").is_err());
    }

    #[test]
    fn import_rejects_wrong_shape() {
        let hyper = ModelHyper::small();
        let small = build_model(ModelKind::LightGcn, 4, 8, &hyper, &mut test_rng(3));
        let mut big = build_model(ModelKind::LightGcn, 4, 16, &hyper, &mut test_rng(4));
        let ckpt = small.export_state().unwrap();
        let err = big.import_state(&ckpt).unwrap_err();
        assert!(err.contains("shape mismatch"), "{err}");
    }
}
