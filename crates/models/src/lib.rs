//! # ptf-models
//!
//! The recommendation models of the PTF-FedRec paper, built from scratch on
//! the `ptf-tensor` autograd substrate:
//!
//! * [`neumf::NeuMf`] — MLP-over-concatenated-embeddings (Eq. 1), the
//!   default *client* model;
//! * [`ngcf::Ngcf`] — Neural Graph Collaborative Filtering with the full
//!   message-passing rule (Eq. 2), the strongest *server* model;
//! * [`lightgcn::LightGcn`] — simplified propagation-only GCN;
//! * [`mf`] — matrix factorization with exposed per-sample gradients, the
//!   substrate the parameter-transmission baselines (FCF/FedMF) decompose.
//!
//! All models implement [`traits::Recommender`] and are constructible by
//! name through [`registry`], which is how the protocol layers stay
//! model-agnostic (the heart of the paper's "hide your model" property).

pub mod eval;
pub mod graph;
pub mod lightgcn;
pub mod mf;
pub mod neumf;
pub mod ngcf;
pub mod registry;
mod scoped;
mod scratch;
pub mod traits;

pub use eval::{evaluate_model, evaluate_model_with_threads};
pub use lightgcn::{LightGcn, LightGcnConfig};
pub use mf::MfModel;
pub use neumf::{NeuMf, NeuMfConfig};
pub use ngcf::{Ngcf, NgcfConfig};
pub use registry::{build_model, build_model_scoped, ModelHyper, ModelKind};
pub use traits::{cached_id_range, train_on_samples, Recommender, ScopeView};

pub use ptf_tensor::ItemScope;
