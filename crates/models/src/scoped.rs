//! Shared machinery for item-scoped autograd models (NeuMF, NGCF,
//! LightGCN): lazy growth of the item block of an embedding parameter,
//! and the checkpoint envelope that round-trips the materialized id set.

use ptf_tensor::{derive_seed, init, Adam, ItemScope, Matrix, ParamId, Params, ScopeIndex};

/// Stream discriminators inside one scoped model's seed namespace (the
/// same constants as `MfModel`'s, applied to a different derived master).
pub(crate) const DENSE_INIT_STREAM: u64 = 1;
pub(crate) const ITEM_INIT_STREAM: u64 = 2;

/// The RNG for a scoped model's non-item parameters (user embeddings,
/// MLP/propagation weights). A separate stream from the item rows, so the
/// dense draws cannot depend on the item scope — the keystone of
/// `Full`-vs-`Rows` bit-parity.
pub(crate) fn dense_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0, DENSE_INIT_STREAM))
}

/// The per-row item-init seed of a scoped model.
pub(crate) fn item_seed(seed: u64) -> u64 {
    derive_seed(seed, 0, ITEM_INIT_STREAM)
}

/// Builds the eagerly materialized item block of an embedding parameter:
/// one row per scoped id, each from its `(item_seed, id)`-derived stream.
pub(crate) fn scoped_item_rows(
    scope: &ItemScope,
    dim: usize,
    std: f32,
    seed: u64,
) -> ptf_tensor::Matrix {
    match scope {
        ItemScope::Full(n) => init::derived_normal_rows(0..*n as u32, dim, std, seed),
        ItemScope::Rows { ids, .. } => {
            init::derived_normal_rows(ids.iter().copied(), dim, std, seed)
        }
    }
}

/// Materializes every id in `ids` that the scope does not hold yet:
/// inserts the derived-init row into the item block of `emb` (which
/// starts `row_offset` rows into the parameter — NGCF/LightGCN put user
/// rows first) and a zero row into the optimizer moments at the same
/// position. Returns true if anything was inserted (graph models must
/// rebuild their propagation operator, since node indices shifted).
#[allow(clippy::too_many_arguments)]
pub(crate) fn ensure_item_rows(
    scope: &mut ScopeIndex,
    params: &mut Params,
    adam: &mut Adam,
    emb: ParamId,
    row_offset: usize,
    item_seed: u64,
    std: f32,
    ids: impl Iterator<Item = u32>,
) -> bool {
    let mut inserted_any = false;
    let mut buf: Vec<f32> = Vec::new();
    for id in ids {
        let (pos, inserted) = scope.insert(id);
        if !inserted {
            continue;
        }
        inserted_any = true;
        let dim = params.get(emb).cols();
        buf.clear();
        buf.resize(dim, 0.0);
        init::derived_normal_row(item_seed, id, std, &mut buf);
        params.get_mut(emb).insert_row(row_offset + pos, &buf);
        adam.insert_zero_row(emb, row_offset + pos);
    }
    inserted_any
}

/// Evicts every materialized id the keep set does not cover — the exact
/// inverse of [`ensure_item_rows`], applied coherently to the embedding
/// rows and the optimizer moments.
///
/// Row-scoped models remove id, parameter row, and both moment rows
/// together (walking ids in descending order so earlier positions stay
/// valid). Dense seed-derived models cannot shrink, so they reset the
/// evicted rows in place — parameter row back to its derived init, moment
/// rows to zero — which is the same post-state a row-scoped model
/// re-materializes into. Legacy dense models built from a sequential RNG
/// (`item_seed == 0` sentinel) have no reproducible init and evict
/// nothing. Returns the number of rows evicted/reset.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evict_item_rows(
    scope: &mut ScopeIndex,
    params: &mut Params,
    adam: &mut Adam,
    emb: ParamId,
    row_offset: usize,
    item_seed: u64,
    std: f32,
    keep_sorted: &[u32],
) -> usize {
    debug_assert!(keep_sorted.windows(2).all(|w| w[0] < w[1]), "keep ids must be sorted unique");
    match scope.ids() {
        None => {
            if item_seed == 0 {
                return 0;
            }
            let dim = params.get(emb).cols();
            let mut buf = vec![0.0f32; dim];
            let mut k = 0usize;
            let mut reset = 0usize;
            for id in 0..scope.num_items() as u32 {
                while k < keep_sorted.len() && keep_sorted[k] < id {
                    k += 1;
                }
                if k < keep_sorted.len() && keep_sorted[k] == id {
                    continue;
                }
                init::derived_normal_row(item_seed, id, std, &mut buf);
                let at = row_offset + id as usize;
                params.get_mut(emb).row_mut(at).copy_from_slice(&buf);
                adam.zero_moment_row(emb, at);
                reset += 1;
            }
            reset
        }
        Some(ids) => {
            // snapshot the victims, then drop back-to-front so every
            // not-yet-processed position is unaffected by earlier removals
            let victims: Vec<u32> =
                ids.iter().copied().filter(|id| keep_sorted.binary_search(id).is_err()).collect();
            for &id in victims.iter().rev() {
                let pos = scope.remove(id).expect("victim was materialized");
                params.get_mut(emb).remove_row(row_offset + pos);
                adam.remove_row(emb, row_offset + pos);
            }
            victims.len()
        }
    }
}

/// Converts a scoped model's item block to the dense identity layout in
/// one pass: a new embedding matrix holds every catalogue row (kept rows
/// copied byte-for-byte, missing rows filled with their derived init) and
/// the optimizer moments grow matching zero rows at the fresh positions —
/// exactly the state a scoped model would reach by materializing every
/// remaining row lazily, so densifying is representation-only for
/// dropout-free models. Returns `false` (no-op) when already dense.
#[allow(clippy::too_many_arguments)]
pub(crate) fn densify_item_rows(
    scope: &mut ScopeIndex,
    params: &mut Params,
    adam: &mut Adam,
    emb: ParamId,
    row_offset: usize,
    item_seed: u64,
    std: f32,
) -> bool {
    let Some(ids) = scope.ids().map(<[u32]>::to_vec) else {
        return false;
    };
    let num_items = scope.num_items();
    let dim = params.get(emb).cols();
    let old = params.get(emb);
    let mut dense = Matrix::zeros(row_offset + num_items, dim);
    for r in 0..row_offset {
        dense.row_mut(r).copy_from_slice(old.row(r));
    }
    let mut pos = 0usize;
    for id in 0..num_items as u32 {
        let at = row_offset + id as usize;
        if pos < ids.len() && ids[pos] == id {
            dense.row_mut(at).copy_from_slice(old.row(row_offset + pos));
            pos += 1;
        } else {
            init::derived_normal_row(item_seed, id, std, dense.row_mut(at));
        }
    }
    let (t, mut m, mut v) = adam.export_state();
    for buf in [&mut m, &mut v] {
        let old_m = &buf[emb.index()];
        let mut grown = Matrix::zeros(row_offset + num_items, old_m.cols());
        for r in 0..row_offset {
            grown.row_mut(r).copy_from_slice(old_m.row(r));
        }
        for (p, &id) in ids.iter().enumerate() {
            grown.row_mut(row_offset + id as usize).copy_from_slice(old_m.row(row_offset + p));
        }
        buf[emb.index()] = grown;
    }
    *params.get_mut(emb) = dense;
    *scope = ScopeIndex::dense(num_items);
    adam.restore_state(params, t, m, v).expect("densified moments match densified params");
    true
}

/// Checkpoint envelope of a scoped model: the parameter store, the
/// materialized item ids (without which the row↔id mapping is lost), and
/// the per-row init seed (without which cold rows would re-derive
/// differently after a restore). The seed travels as hex — the vendored
/// JSON layer rounds bare u64s ≥ 2⁵³ through `f64`.
#[derive(serde::Serialize, serde::Deserialize)]
struct ScopedWire {
    arch: String,
    item_ids: Vec<u32>,
    item_seed: String,
    params: Params,
}

/// Serializes a model's state: the plain `Params` JSON for dense models
/// (the legacy checkpoint format, unchanged), the [`ScopedWire`]
/// envelope when the model is item-scoped.
pub(crate) fn export_state(
    arch: &str,
    scope: &ScopeIndex,
    params: &Params,
    item_seed: u64,
) -> Option<String> {
    match scope.ids() {
        None => serde_json::to_string(params).ok(),
        Some(ids) => serde_json::to_string(&ScopedWire {
            arch: arch.to_string(),
            item_ids: ids.to_vec(),
            item_seed: format!("{item_seed:016x}"),
            params: params.clone(),
        })
        .ok(),
    }
}

/// Restores a checkpoint produced by [`export_state`] into
/// `(scope, params, adam)`.
///
/// Dense models take the legacy path: plain `Params` payload, shapes
/// must match exactly, optimizer moments are left alone. Scoped models
/// parse the envelope and may *reshape*: a checkpoint's item block can
/// hold more (or fewer) materialized rows than the live model, so the
/// whole store is replaced, the id set restored, and the optimizer
/// state re-zeroed (resuming training re-warms Adam's moments — the
/// documented checkpoint contract).
#[allow(clippy::too_many_arguments)]
pub(crate) fn import_state(
    arch: &str,
    scope: &mut ScopeIndex,
    params: &mut Params,
    adam: &mut Adam,
    emb: ParamId,
    row_offset: usize,
    live_item_seed: &mut u64,
    json: &str,
) -> Result<(), String> {
    if scope.is_dense() {
        let loaded: Params =
            serde_json::from_str(json).map_err(|e| format!("bad checkpoint: {e}"))?;
        return params.load_state_from(&loaded);
    }
    let wire: ScopedWire = serde_json::from_str(json)
        .map_err(|e| format!("bad scoped checkpoint (expected {arch} envelope): {e}"))?;
    if wire.arch != arch {
        return Err(format!("architecture mismatch: expected {arch}, got {}", wire.arch));
    }
    if wire.params.len() != params.len() {
        return Err(format!("parameter count mismatch: {} vs {}", wire.params.len(), params.len()));
    }
    for ((id, name_new, mat_new), (_, name_live, mat_live)) in wire.params.iter().zip(params.iter())
    {
        if name_new != name_live {
            return Err(format!("parameter name mismatch: {name_new:?} vs {name_live:?}"));
        }
        if id == emb {
            if mat_new.cols() != mat_live.cols()
                || mat_new.rows() != row_offset + wire.item_ids.len()
            {
                return Err(format!(
                    "shape mismatch for {name_new:?}: {:?} does not fit {} item rows",
                    mat_new.shape(),
                    wire.item_ids.len()
                ));
            }
        } else if mat_new.shape() != mat_live.shape() {
            return Err(format!(
                "shape mismatch for {name_new:?}: {:?} vs {:?}",
                mat_new.shape(),
                mat_live.shape()
            ));
        }
    }
    if !wire.item_ids.windows(2).all(|w| w[0] < w[1]) {
        return Err("checkpoint item ids must be sorted and unique".to_string());
    }
    if wire.item_ids.last().is_some_and(|&l| l as usize >= scope.num_items()) {
        return Err("checkpoint item id out of range".to_string());
    }
    let item_seed = u64::from_str_radix(&wire.item_seed, 16)
        .map_err(|e| format!("bad checkpoint item seed: {e}"))?;
    *scope = ScopeIndex::from_scope(&ItemScope::Rows {
        num_items: scope.num_items(),
        ids: wire.item_ids,
    });
    *params = wire.params;
    *live_item_seed = item_seed;
    adam.reset_state(params);
    Ok(())
}

/// Full-state envelope: everything a model needs to *resume training
/// bit-identically* — parameters, scope mapping, init seed, optimizer
/// step counter + both moment buffers, and (for models that own one) the
/// raw state of the training-time RNG. This is the cohort runtime's
/// client-recycling format; [`ScopedWire`] stays the lighter
/// inference-grade checkpoint. All u64s travel as hex strings — the
/// vendored JSON layer routes bare integers through `f64`, which silently
/// rounds values ≥ 2⁵³.
#[derive(serde::Serialize, serde::Deserialize)]
struct FullWire {
    arch: String,
    /// `None` = dense identity mapping over the whole catalogue.
    item_ids: Option<Vec<u32>>,
    item_seed: String,
    params: Params,
    adam_t: String,
    adam_m: Vec<Matrix>,
    adam_v: Vec<Matrix>,
    /// xoshiro256++ state of the model-owned training RNG (NGCF's
    /// dropout stream), 4 hex words; `None` for RNG-free models.
    rng: Option<Vec<String>>,
}

/// Serializes a model's complete training state as a [`FullWire`]
/// envelope (dense and scoped models alike — the scope travels inside).
pub(crate) fn export_full_state(
    arch: &str,
    scope: &ScopeIndex,
    params: &Params,
    item_seed: u64,
    adam: &Adam,
    rng: Option<&rand::rngs::StdRng>,
) -> Option<String> {
    let (t, m, v) = adam.export_state();
    serde_json::to_string(&FullWire {
        arch: arch.to_string(),
        item_ids: scope.ids().map(<[u32]>::to_vec),
        item_seed: format!("{item_seed:016x}"),
        params: params.clone(),
        adam_t: format!("{t:x}"),
        adam_m: m,
        adam_v: v,
        rng: rng.map(|r| r.state().iter().map(|w| format!("{w:016x}")).collect()),
    })
    .ok()
}

/// Restores a [`export_full_state`] envelope into
/// `(scope, params, adam)`, returning the envelope's training RNG if it
/// carried one. The scope may *reshape* in either direction: a sparse
/// envelope restores its id set (however grown), a dense envelope
/// densifies the live model — either way the whole parameter store and
/// both optimizer moment buffers are replaced, so the restored model
/// continues training bit-identically to the exported one.
///
/// On error the model may be left partially restored; callers must
/// discard it (the cohort runtime rebuilds from scratch or aborts).
#[allow(clippy::too_many_arguments)]
pub(crate) fn import_full_state(
    arch: &str,
    scope: &mut ScopeIndex,
    params: &mut Params,
    adam: &mut Adam,
    emb: ParamId,
    row_offset: usize,
    live_item_seed: &mut u64,
    json: &str,
) -> Result<Option<rand::rngs::StdRng>, String> {
    let wire: FullWire = serde_json::from_str(json)
        .map_err(|e| format!("bad full-state checkpoint (expected {arch} envelope): {e}"))?;
    if wire.arch != arch {
        return Err(format!("architecture mismatch: expected {arch}, got {}", wire.arch));
    }
    if wire.params.len() != params.len() {
        return Err(format!("parameter count mismatch: {} vs {}", wire.params.len(), params.len()));
    }
    let num_items = scope.num_items();
    let item_rows = wire.item_ids.as_ref().map_or(num_items, Vec::len);
    for ((id, name_new, mat_new), (_, name_live, mat_live)) in wire.params.iter().zip(params.iter())
    {
        if name_new != name_live {
            return Err(format!("parameter name mismatch: {name_new:?} vs {name_live:?}"));
        }
        if id == emb {
            if mat_new.cols() != mat_live.cols() || mat_new.rows() != row_offset + item_rows {
                return Err(format!(
                    "shape mismatch for {name_new:?}: {:?} does not fit {item_rows} item rows",
                    mat_new.shape(),
                ));
            }
        } else if mat_new.shape() != mat_live.shape() {
            return Err(format!(
                "shape mismatch for {name_new:?}: {:?} vs {:?}",
                mat_new.shape(),
                mat_live.shape()
            ));
        }
    }
    if let Some(ids) = &wire.item_ids {
        if !ids.windows(2).all(|w| w[0] < w[1]) {
            return Err("checkpoint item ids must be sorted and unique".to_string());
        }
        if ids.last().is_some_and(|&l| l as usize >= num_items) {
            return Err("checkpoint item id out of range".to_string());
        }
    }
    let item_seed = u64::from_str_radix(&wire.item_seed, 16)
        .map_err(|e| format!("bad checkpoint item seed: {e}"))?;
    let t = u64::from_str_radix(&wire.adam_t, 16)
        .map_err(|e| format!("bad checkpoint step counter: {e}"))?;
    let rng = match &wire.rng {
        None => None,
        Some(words) => {
            if words.len() != 4 {
                return Err(format!("rng state must be 4 words, got {}", words.len()));
            }
            let mut s = [0u64; 4];
            for (slot, word) in s.iter_mut().zip(words) {
                *slot = u64::from_str_radix(word, 16)
                    .map_err(|e| format!("bad checkpoint rng word: {e}"))?;
            }
            Some(rand::rngs::StdRng::from_state(s))
        }
    };
    *scope = match wire.item_ids {
        None => ScopeIndex::dense(num_items),
        Some(ids) => ScopeIndex::from_scope(&ItemScope::Rows { num_items, ids }),
    };
    *params = wire.params;
    *live_item_seed = item_seed;
    adam.restore_state(params, t, wire.adam_m, wire.adam_v)?;
    Ok(rng)
}
