//! Reusable per-model training scratch.
//!
//! Every autograd-backed model's `train_batch` needs the same transient
//! state: staging vectors splitting the batch into user/item/label
//! columns, and a [`GraphArena`] for the tape. Holding one
//! [`BatchScratch`] per model and rebuilding each batch over it makes the
//! steady-state training loop allocation-free — the buffers grow to the
//! largest batch seen and are then reused verbatim (asserted by the
//! counting-allocator hot-path tests).

use ptf_tensor::GraphArena;

/// Batch-staging vectors plus the autograd arena, reused across
/// `train_batch` calls.
#[derive(Default)]
pub(crate) struct BatchScratch {
    pub users: Vec<u32>,
    /// Item ids (or node/row-mapped indices, per model).
    pub items: Vec<u32>,
    pub labels: Vec<f32>,
    /// Secondary index column (row-mapped items, BPR negatives, …).
    pub rows: Vec<u32>,
    pub arena: GraphArena,
}
