//! LightGCN — simplified graph convolution (He et al., SIGIR 2020).
//!
//! One embedding table over the joint user+item node space; each layer is
//! a pure normalized-adjacency propagation `E^{(l+1)} = Ã E^{(l)}`; the
//! final representation is the layer mean `E = mean(E^{(0)}, …, E^{(L)})`
//! and the score of `(u, i)` is `σ(⟨e_u, e_i⟩)`.

use crate::graph::{empty_propagation, normalized_bipartite};
use crate::scoped;
use crate::scratch::BatchScratch;
use crate::traits::{Recommender, ScopeView};
use ptf_tensor::kernels;
use ptf_tensor::prelude::*;
use ptf_tensor::{init, ItemScope, ParamId, ScopeIndex};
use rand::Rng;
use std::sync::RwLock;

/// LightGCN hyperparameters (defaults follow §IV-D: dim 32, 3 layers).
#[derive(Clone, Debug)]
pub struct LightGcnConfig {
    pub dim: usize,
    pub layers: usize,
    pub lr: f32,
}

impl Default for LightGcnConfig {
    fn default() -> Self {
        Self { dim: 32, layers: 3, lr: 1e-3 }
    }
}

/// The LightGCN model.
pub struct LightGcn {
    num_users: usize,
    num_items: usize,
    layers: usize,
    params: Params,
    emb: ParamId,
    prop: PropagationMatrix,
    adam: Adam,
    /// Final propagated embeddings, invalidated on training/graph changes.
    /// An `RwLock` (not `RefCell`) so concurrent evaluation threads can
    /// score through one shared model.
    cache: RwLock<Option<Matrix>>,
    /// Which global item id backs which item block row of `emb` (rows
    /// `num_users..` of the joint table); dense identity for full models.
    scope: ScopeIndex,
    /// Per-row derived init seed for lazily materialized item rows.
    item_seed: u64,
    /// The last `set_graph` edge list in *global* ids — a scoped model
    /// re-derives its propagation operator from it whenever lazy
    /// materialization shifts node indices. Unused (empty) when dense.
    graph_edges: Vec<(u32, u32, f32)>,
    /// Reused batch-staging vectors + autograd arena (steady-state
    /// training is allocation-free after the first batch).
    scratch: BatchScratch,
}

impl LightGcn {
    pub fn new(
        num_users: usize,
        num_items: usize,
        cfg: &LightGcnConfig,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(num_users > 0 && num_items > 0, "empty model");
        assert!(cfg.layers > 0, "LightGCN needs at least one propagation layer");
        let mut params = Params::new();
        let emb = params.push("emb", Matrix::randn(num_users + num_items, cfg.dim, 0.1, rng));
        let adam = Adam::with_defaults(&params, cfg.lr);
        Self {
            num_users,
            num_items,
            layers: cfg.layers,
            params,
            emb,
            prop: empty_propagation(num_users, num_items),
            adam,
            cache: RwLock::new(None),
            scope: ScopeIndex::dense(num_items),
            item_seed: 0,
            graph_edges: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    /// An item-scoped LightGCN: the item block of the joint node table
    /// materializes only `scope` (plus whatever later training or graph
    /// edges touch), every row initialized from its `(seed, id)`-derived
    /// stream; user rows draw from a scope-independent stream. Node order
    /// stays monotone in global item id, so propagation sums in the same
    /// order as a full model's and shared rows stay bit-identical.
    pub fn new_scoped(
        num_users: usize,
        cfg: &LightGcnConfig,
        scope: &ItemScope,
        seed: u64,
    ) -> Self {
        assert!(num_users > 0 && scope.num_items() > 0, "empty model");
        assert!(cfg.layers > 0, "LightGCN needs at least one propagation layer");
        let item_seed = scoped::item_seed(seed);
        let mut rng = scoped::dense_rng(seed);
        let user_rows = Matrix::randn(num_users, cfg.dim, 0.1, &mut rng);
        let item_rows = scoped::scoped_item_rows(scope, cfg.dim, 0.1, item_seed);
        let index = ScopeIndex::from_scope(scope);
        let mut joint = Matrix::zeros(num_users + index.len(), cfg.dim);
        for r in 0..num_users {
            joint.row_mut(r).copy_from_slice(user_rows.row(r));
        }
        for r in 0..index.len() {
            joint.row_mut(num_users + r).copy_from_slice(item_rows.row(r));
        }
        let mut params = Params::new();
        let emb = params.push("emb", joint);
        let adam = Adam::with_defaults(&params, cfg.lr);
        let prop = empty_propagation(num_users, index.len());
        Self {
            num_users,
            num_items: scope.num_items(),
            layers: cfg.layers,
            params,
            emb,
            prop,
            adam,
            cache: RwLock::new(None),
            scope: index,
            item_seed,
            graph_edges: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    fn dim(&self) -> usize {
        self.params.get(self.emb).cols()
    }

    /// Node index of a *materialized* item in the joint table.
    fn node_of(&self, i: u32) -> Option<u32> {
        self.scope.lookup(i).map(|r| (self.num_users + r) as u32)
    }

    /// Re-derives the propagation operator from the stored global edge
    /// list under the current (possibly grown) scope mapping.
    fn rebuild_scoped_prop(&mut self) {
        debug_assert!(!self.scope.is_dense());
        let remapped: Vec<(u32, u32, f32)> = self
            .graph_edges
            .iter()
            .map(|&(u, i, w)| (u, self.scope.lookup(i).expect("edge item materialized") as u32, w))
            .collect();
        self.prop = normalized_bipartite(self.num_users, self.scope.len(), &remapped);
    }

    /// Materializes `ids` (embedding + optimizer rows); rebuilds the
    /// propagation operator if node indices shifted.
    fn ensure_items(&mut self, ids: impl Iterator<Item = u32>) {
        if self.scope.is_dense() {
            return;
        }
        let grew = scoped::ensure_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            self.item_seed,
            0.1,
            ids,
        );
        if grew {
            self.rebuild_scoped_prop();
            self.invalidate();
        }
    }

    /// Builds the layer-mean node embeddings in the autograd graph.
    fn build_final(&self, g: &mut Graph<'_>) -> Var {
        let e0 = g.param(self.emb);
        let mut acc = e0;
        let mut e = e0;
        for _ in 0..self.layers {
            e = g.spmm(&self.prop, e);
            acc = g.add(acc, e);
        }
        g.scale(acc, 1.0 / (self.layers + 1) as f32)
    }

    fn ensure_cache(&self) {
        if self.cache.read().expect("cache lock poisoned").is_some() {
            return;
        }
        let mut g = Graph::new(&self.params);
        let f = self.build_final(&mut g);
        let fresh = g.value(f).clone();
        // racing evaluators compute the same matrix; last write wins
        *self.cache.write().expect("cache lock poisoned") = Some(fresh);
    }

    fn invalidate(&mut self) {
        *self.cache.get_mut().expect("cache lock poisoned") = None;
    }

    /// One optimizer step of the *pairwise* BPR objective the original
    /// LightGCN paper trains with: for each `(user, pos_item, neg_item)`
    /// triple, push `⟨e_u, e_pos⟩` above `⟨e_u, e_neg⟩`. Returns the mean
    /// BPR loss. (The federated protocols use the pointwise
    /// [`Recommender::train_batch`] because soft labels cross the wire;
    /// this method serves centralized/ablation use.)
    pub fn train_bpr_batch(&mut self, batch: &[(u32, u32, u32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        self.ensure_items(batch.iter().flat_map(|&(_, i, j)| [i, j]));
        self.invalidate();
        let users: Vec<u32> = batch.iter().map(|&(u, _, _)| u).collect();
        let pos: Vec<u32> =
            batch.iter().map(|&(_, i, _)| self.node_of(i).expect("ensured above")).collect();
        let neg: Vec<u32> =
            batch.iter().map(|&(_, _, j)| self.node_of(j).expect("ensured above")).collect();
        let (grads, loss) = {
            let mut g = Graph::new(&self.params);
            let f = self.build_final(&mut g);
            let u = g.gather(f, &users);
            let p = g.gather(f, &pos);
            let n = g.gather(f, &neg);
            let pos_logits = g.row_dot(u, p);
            let neg_logits = g.row_dot(u, n);
            let loss = g.bpr_loss(pos_logits, neg_logits);
            (g.backward(loss), g.scalar(loss))
        };
        self.adam.step(&mut self.params, &grads);
        loss
    }
}

impl Recommender for LightGcn {
    fn name(&self) -> &'static str {
        "LightGCN"
    }

    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }

    fn item_scope(&self) -> ScopeView<'_> {
        match self.scope.ids() {
            None => ScopeView::Full(self.num_items),
            Some(ids) => ScopeView::Rows(ids),
        }
    }

    fn prepare_items(&mut self, sorted_ids: &[u32]) {
        self.ensure_items(sorted_ids.iter().copied());
    }

    fn evict_items(&mut self, keep_sorted: &[u32]) -> usize {
        // the keep set must cover every current graph-edge item (the
        // protocol's keep set always does: edges come from positives and
        // dispersed items) — an evicted edge item would leave the stored
        // edge list pointing at a dropped node
        debug_assert!(
            self.scope.is_dense()
                || self.graph_edges.iter().all(|&(_, i, _)| keep_sorted.binary_search(&i).is_ok()),
            "keep set must cover all graph-edge items"
        );
        let evicted = scoped::evict_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            self.item_seed,
            0.1,
            keep_sorted,
        );
        if evicted > 0 {
            if !self.scope.is_dense() {
                // node indices shifted: re-derive the operator (the dense
                // case keeps its node space, so only the cache is stale)
                self.rebuild_scoped_prop();
            }
            self.invalidate();
        }
        evicted
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        debug_assert!((user as usize) < self.num_users, "user id out of range");
        self.ensure_cache();
        let cache = self.cache.read().expect("cache lock poisoned");
        let emb = cache.as_ref().expect("cache ensured above");
        let u = emb.row(user as usize);
        // cold rows: an unmaterialized item is necessarily isolated, so
        // its final embedding is its derived init scaled by the layer
        // mean — exactly what a full model computes for an edgeless item
        let mut cold: Vec<f32> = Vec::new();
        let mean_scale = 1.0 / (self.layers + 1) as f32;
        items
            .iter()
            .map(|&i| {
                debug_assert!((i as usize) < self.num_items, "item id out of range");
                let dot: f32 = match self.node_of(i) {
                    Some(node) => kernels::dot(u, emb.row(node as usize)),
                    None => {
                        cold.clear();
                        cold.resize(self.dim(), 0.0);
                        init::derived_normal_row(self.item_seed, i, 0.1, &mut cold);
                        // scale first so the dot reduces in the same
                        // kernel order as the materialized path
                        cold.iter_mut().for_each(|b| *b *= mean_scale);
                        kernels::dot(u, &cold)
                    }
                };
                stable_sigmoid(dot)
            })
            .collect()
    }

    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        self.ensure_items(batch.iter().map(|&(_, i, _)| i));
        self.invalidate();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.users.clear();
        scratch.users.extend(batch.iter().map(|&(u, _, _)| u));
        scratch.items.clear();
        scratch
            .items
            .extend(batch.iter().map(|&(_, i, _)| self.node_of(i).expect("ensured above")));
        scratch.labels.clear();
        scratch.labels.extend(batch.iter().map(|&(_, _, l)| l));
        let (grads, loss) = {
            let mut g = Graph::with_arena(&self.params, &mut scratch.arena);
            let f = self.build_final(&mut g);
            let u = g.gather(f, &scratch.users);
            let v = g.gather(f, &scratch.items);
            let logits = g.row_dot(u, v);
            let loss = g.bce_with_logits(logits, &scratch.labels);
            (g.backward(loss), g.scalar(loss))
        };
        self.adam.step(&mut self.params, &grads);
        scratch.arena.recycle(grads);
        self.scratch = scratch;
        loss
    }

    fn set_graph(&mut self, edges: &[(u32, u32, f32)]) {
        if self.scope.is_dense() {
            self.prop = normalized_bipartite(self.num_users, self.num_items, edges);
        } else {
            self.graph_edges.clear();
            self.graph_edges.extend_from_slice(edges);
            self.ensure_items(edges.iter().map(|&(_, i, _)| i));
            self.rebuild_scoped_prop();
        }
        self.invalidate();
    }

    fn uses_graph(&self) -> bool {
        true
    }

    fn export_state(&self) -> Option<String> {
        scoped::export_state("LightGCN", &self.scope, &self.params, self.item_seed)
    }

    fn import_state(&mut self, json: &str) -> Result<(), String> {
        scoped::import_state(
            "LightGCN",
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            &mut self.item_seed,
            json,
        )?;
        if !self.scope.is_dense() {
            // the restored scope need not cover the live edge list; the
            // graph is not part of a checkpoint, so callers re-set it
            self.graph_edges.clear();
            self.prop = empty_propagation(self.num_users, self.scope.len());
        }
        self.invalidate();
        Ok(())
    }

    fn export_full_state(&self) -> Option<String> {
        // LightGCN draws no randomness after init, so the envelope
        // carries no RNG stream
        scoped::export_full_state(
            "LightGCN",
            &self.scope,
            &self.params,
            self.item_seed,
            &self.adam,
            None,
        )
    }

    fn import_full_state(&mut self, json: &str) -> Result<(), String> {
        scoped::import_full_state(
            "LightGCN",
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            &mut self.item_seed,
            json,
        )?;
        // the graph is not part of the envelope; callers re-set it
        self.graph_edges.clear();
        self.prop = empty_propagation(self.num_users, self.scope.len());
        self.invalidate();
        Ok(())
    }

    fn densify(&mut self) -> bool {
        let grew = scoped::densify_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            self.item_seed,
            0.1,
        );
        if grew {
            // the stored edge list is in global ids, which the dense node
            // space maps identically
            self.prop = normalized_bipartite(self.num_users, self.num_items, &self.graph_edges);
            self.graph_edges.clear();
            self.invalidate();
        }
        grew
    }
}

#[inline]
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    fn tiny() -> LightGcn {
        let cfg = LightGcnConfig { dim: 8, layers: 2, lr: 0.02 };
        LightGcn::new(4, 6, &cfg, &mut test_rng(3))
    }

    #[test]
    fn param_count_is_one_table() {
        let m = tiny();
        assert_eq!(m.num_params(), (4 + 6) * 8);
    }

    #[test]
    fn layer_mean_matches_hand_computation() {
        // 1 user, 1 item, 1 layer: Ã = [[0,1],[1,0]] after normalization.
        let cfg = LightGcnConfig { dim: 2, layers: 1, lr: 0.01 };
        let mut m = LightGcn::new(1, 1, &cfg, &mut test_rng(4));
        m.set_graph(&[(0, 0, 1.0)]);
        let e = m.params.get(m.emb).clone();
        m.ensure_cache();
        let cache = m.cache.read().unwrap();
        let f = cache.as_ref().unwrap();
        // final_u = (e_u + e_i)/2, final_i = (e_i + e_u)/2
        for c in 0..2 {
            let mean = (e.get(0, c) + e.get(1, c)) / 2.0;
            assert!((f.get(0, c) - mean).abs() < 1e-6);
            assert!((f.get(1, c) - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_graph_still_scores() {
        let m = tiny();
        let s = m.score(0, &[0, 1, 2]);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn training_reduces_loss_and_separates() {
        let mut m = tiny();
        m.set_graph(&[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let batch: Vec<(u32, u32, f32)> = vec![(0, 0, 1.0), (0, 3, 0.0), (1, 1, 1.0), (1, 4, 0.0)];
        let first = m.train_batch(&batch);
        let mut last = first;
        for _ in 0..250 {
            last = m.train_batch(&batch);
        }
        assert!(last < first * 0.5, "loss did not shrink: {first} → {last}");
        let s = m.score(0, &[0, 3]);
        assert!(s[0] > s[1], "positive not ranked above negative: {s:?}");
    }

    #[test]
    fn cache_invalidated_by_training() {
        let mut m = tiny();
        let before = m.score(0, &[0])[0];
        for _ in 0..50 {
            m.train_batch(&[(0, 0, 1.0)]);
        }
        let after = m.score(0, &[0])[0];
        assert!(after > before, "training had no visible effect: {before} vs {after}");
    }

    #[test]
    fn cache_invalidated_by_graph_change() {
        let mut m = tiny();
        let before = m.score(0, &[0])[0];
        m.set_graph(&[(0, 0, 1.0), (1, 0, 1.0)]);
        let after = m.score(0, &[0])[0];
        assert_ne!(before, after, "graph change should alter propagation");
    }

    #[test]
    fn propagation_couples_neighbors() {
        // two users sharing an item should end closer than strangers
        let cfg = LightGcnConfig { dim: 8, layers: 2, lr: 0.05 };
        let mut m = LightGcn::new(3, 3, &cfg, &mut test_rng(5));
        m.set_graph(&[(0, 0, 1.0), (1, 0, 1.0), (2, 2, 1.0)]);
        for _ in 0..150 {
            m.train_batch(&[(0, 0, 1.0), (1, 0, 1.0), (2, 2, 1.0), (0, 1, 0.0), (2, 0, 0.0)]);
        }
        // user 1 never trained on item 0's pair but propagation links them
        let s_linked = m.score(1, &[0])[0];
        let s_unlinked = m.score(2, &[0])[0];
        assert!(
            s_linked > s_unlinked,
            "graph propagation did not transfer preference: {s_linked} vs {s_unlinked}"
        );
    }
}

#[cfg(test)]
mod bpr_tests {
    use super::*;
    use crate::traits::Recommender;
    use ptf_tensor::test_rng;

    #[test]
    fn bpr_training_ranks_positives_above_negatives() {
        let cfg = LightGcnConfig { dim: 8, layers: 2, lr: 0.05 };
        let mut m = LightGcn::new(3, 6, &cfg, &mut test_rng(11));
        m.set_graph(&[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let batch: Vec<(u32, u32, u32)> = vec![(0, 0, 3), (0, 0, 4), (1, 1, 5), (2, 2, 3)];
        let first = m.train_bpr_batch(&batch);
        let mut last = first;
        for _ in 0..150 {
            last = m.train_bpr_batch(&batch);
        }
        assert!(last < first, "BPR loss did not improve: {first} → {last}");
        let s = m.score(0, &[0, 3]);
        assert!(s[0] > s[1], "BPR failed to rank positive first: {s:?}");
    }

    #[test]
    fn bpr_empty_batch_is_noop() {
        let cfg = LightGcnConfig { dim: 4, layers: 1, lr: 0.05 };
        let mut m = LightGcn::new(2, 3, &cfg, &mut test_rng(12));
        let before = m.score(0, &[0]);
        assert_eq!(m.train_bpr_batch(&[]), 0.0);
        assert_eq!(m.score(0, &[0]), before);
    }
}
