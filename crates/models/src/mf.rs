//! Matrix factorization: the workhorse of the parameter-transmission
//! baselines (FCF, FedMF) and a centralized reference point.
//!
//! Unlike the autograd-backed models, MF exposes its per-sample gradient
//! math directly — the federated baselines need raw item-embedding
//! gradients as *protocol messages* (FCF uploads them in the clear, FedMF
//! encrypts them), so the math must be callable outside a training step.

use crate::lightgcn::stable_sigmoid;
use crate::traits::Recommender;
use ptf_tensor::Matrix;
use rand::Rng;

/// Numerically stable BCE of a logit against a (soft) target.
pub fn bce_loss(logit: f32, target: f32) -> f32 {
    logit.max(0.0) - logit * target + (-logit.abs()).exp().ln_1p()
}

/// Per-sample MF gradients for `σ(⟨u, v⟩ + b) ≈ label` under BCE with L2
/// regularization `reg` on both embeddings.
///
/// Returns `(du, dv, db, loss)`.
pub fn mf_gradients(
    user_vec: &[f32],
    item_vec: &[f32],
    item_bias: f32,
    label: f32,
    reg: f32,
) -> (Vec<f32>, Vec<f32>, f32, f32) {
    debug_assert_eq!(user_vec.len(), item_vec.len());
    let logit: f32 = user_vec.iter().zip(item_vec).map(|(&a, &b)| a * b).sum::<f32>() + item_bias;
    let err = stable_sigmoid(logit) - label;
    let du: Vec<f32> = user_vec.iter().zip(item_vec).map(|(&u, &v)| err * v + reg * u).collect();
    let dv: Vec<f32> = user_vec.iter().zip(item_vec).map(|(&u, &v)| err * u + reg * v).collect();
    (du, dv, err, bce_loss(logit, label))
}

/// Applies one SGD step in place; returns the sample's loss.
///
/// Allocation-free: the gradients are computed and applied elementwise
/// from the pre-step values (bit-identical to materializing `du`/`dv`
/// via [`mf_gradients`] and then applying them) — this runs inside every
/// client's local round, where a heap allocation per sample is exactly
/// the memory-bandwidth waste the scratch-buffer hot path eliminates.
pub fn mf_sgd_step(
    user_vec: &mut [f32],
    item_vec: &mut [f32],
    item_bias: &mut f32,
    label: f32,
    lr: f32,
    reg: f32,
) -> f32 {
    debug_assert_eq!(user_vec.len(), item_vec.len());
    let logit: f32 =
        user_vec.iter().zip(item_vec.iter()).map(|(&a, &b)| a * b).sum::<f32>() + *item_bias;
    let err = stable_sigmoid(logit) - label;
    for (u, v) in user_vec.iter_mut().zip(item_vec.iter_mut()) {
        let (uk, vk) = (*u, *v);
        *u = uk - lr * (err * vk + reg * uk);
        *v = vk - lr * (err * uk + reg * vk);
    }
    *item_bias -= lr * err;
    bce_loss(logit, label)
}

/// A plain MF model (user table, item table, item bias) implementing
/// [`Recommender`] with per-sample SGD. Used as a centralized sanity
/// baseline and as the building block the federated baselines decompose.
pub struct MfModel {
    pub user_emb: Matrix,
    pub item_emb: Matrix,
    pub item_bias: Vec<f32>,
    pub lr: f32,
    pub reg: f32,
}

impl MfModel {
    pub fn new(
        num_users: usize,
        num_items: usize,
        dim: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            user_emb: Matrix::randn(num_users, dim, 0.1, rng),
            item_emb: Matrix::randn(num_items, dim, 0.1, rng),
            item_bias: vec![0.0; num_items],
            lr,
            reg: 1e-4,
        }
    }

    pub fn dim(&self) -> usize {
        self.user_emb.cols()
    }

    pub fn logit(&self, user: u32, item: u32) -> f32 {
        let u = self.user_emb.row(user as usize);
        let v = self.item_emb.row(item as usize);
        u.iter().zip(v).map(|(&a, &b)| a * b).sum::<f32>() + self.item_bias[item as usize]
    }
}

impl Recommender for MfModel {
    fn name(&self) -> &'static str {
        "MF"
    }

    fn num_users(&self) -> usize {
        self.user_emb.rows()
    }

    fn num_items(&self) -> usize {
        self.item_emb.rows()
    }

    fn num_params(&self) -> usize {
        self.user_emb.len() + self.item_emb.len() + self.item_bias.len()
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        items.iter().map(|&i| stable_sigmoid(self.logit(user, i))).collect()
    }

    fn score_into(&self, user: u32, items: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(items.iter().map(|&i| stable_sigmoid(self.logit(user, i))));
    }

    fn score_all_into(&self, user: u32, out: &mut Vec<f32>) {
        out.clear();
        out.extend((0..self.num_items() as u32).map(|i| stable_sigmoid(self.logit(user, i))));
    }

    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        // disjoint field borrows: the user row, item row, and bias live in
        // different containers, so the whole step runs in place
        let Self { user_emb, item_emb, item_bias, lr, reg } = self;
        let mut total = 0.0;
        for &(u, i, label) in batch {
            total += mf_sgd_step(
                user_emb.row_mut(u as usize),
                item_emb.row_mut(i as usize),
                &mut item_bias[i as usize],
                label,
                *lr,
                *reg,
            );
        }
        total / batch.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    #[test]
    fn bce_loss_matches_naive_formula() {
        for &(x, t) in &[(0.5f32, 1.0f32), (-2.0, 0.0), (3.0, 0.3), (0.0, 0.5)] {
            let s = stable_sigmoid(x);
            let naive = -(t * s.ln() + (1.0 - t) * (1.0 - s).ln());
            assert!((bce_loss(x, t) - naive).abs() < 1e-5, "x={x} t={t}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let u = vec![0.3f32, -0.2, 0.5];
        let v = vec![-0.1f32, 0.4, 0.2];
        let bias = 0.05f32;
        let label = 1.0f32;
        let (du, dv, db, _) = mf_gradients(&u, &v, bias, label, 0.0);
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut up = u.clone();
            up[k] += eps;
            let mut un = u.clone();
            un[k] -= eps;
            let logit =
                |uu: &[f32]| -> f32 { uu.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f32>() + bias };
            let num = (bce_loss(logit(&up), label) - bce_loss(logit(&un), label)) / (2.0 * eps);
            assert!((du[k] - num).abs() < 1e-3, "du[{k}]: {} vs {num}", du[k]);
        }
        // dv symmetric by construction; spot-check bias
        let num_db =
            (bce_loss(u.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f32>() + bias + eps, label)
                - bce_loss(
                    u.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f32>() + bias - eps,
                    label,
                ))
                / (2.0 * eps);
        assert!((db - num_db).abs() < 1e-3);
        let _ = dv;
    }

    #[test]
    fn regularization_pulls_toward_zero() {
        let u = vec![1.0f32];
        let v = vec![0.0f32];
        // err = σ(0) − 0.5 = 0 → gradient is purely the reg term
        let (du, dv, _, _) = mf_gradients(&u, &v, 0.0, 0.5, 0.1);
        assert!((du[0] - 0.1).abs() < 1e-6);
        assert_eq!(dv[0], 0.0);
    }

    #[test]
    fn sgd_overfits_tiny_data() {
        let mut m = MfModel::new(2, 4, 8, 0.1, &mut test_rng(2));
        let data: Vec<(u32, u32, f32)> = vec![(0, 0, 1.0), (0, 1, 0.0), (1, 2, 1.0), (1, 3, 0.0)];
        for _ in 0..300 {
            m.train_batch(&data);
        }
        let s0 = m.score(0, &[0, 1]);
        assert!(s0[0] > 0.8 && s0[1] < 0.2, "{s0:?}");
    }

    #[test]
    fn recommender_impl_shapes() {
        let m = MfModel::new(3, 5, 4, 0.1, &mut test_rng(3));
        assert_eq!(m.num_params(), 3 * 4 + 5 * 4 + 5);
        assert_eq!(m.score_all(1).len(), 5);
        assert_eq!(m.name(), "MF");
    }
}
