//! Matrix factorization: the workhorse of the parameter-transmission
//! baselines (FCF, FedMF) and a centralized reference point.
//!
//! Unlike the autograd-backed models, MF exposes its per-sample gradient
//! math directly — the federated baselines need raw item-embedding
//! gradients as *protocol messages* (FCF uploads them in the clear, FedMF
//! encrypts them), so the math must be callable outside a training step.
//!
//! The item table is a [`RowTable`]: dense for servers and centralized
//! runs, row-sparse for item-scoped clients, which hold only the
//! embedding rows they have actually touched (positives at construction;
//! sampled negatives and dispersed items materialize lazily with
//! seed-derived deterministic init). The table's trailing column is the
//! item bias, so one arena row carries the whole per-item state.

use crate::lightgcn::stable_sigmoid;
use crate::traits::{Recommender, ScopeView};
use ptf_tensor::kernels;
use ptf_tensor::{ItemScope, Matrix, RowTable};
use rand::Rng;

/// Numerically stable BCE of a logit against a (soft) target.
pub fn bce_loss(logit: f32, target: f32) -> f32 {
    logit.max(0.0) - logit * target + (-logit.abs()).exp().ln_1p()
}

/// Per-sample MF gradients for `σ(⟨u, v⟩ + b) ≈ label` under BCE with L2
/// regularization `reg` on both embeddings, written into caller-owned
/// scratch buffers (resized to `dim`, previous contents overwritten).
///
/// This is the allocation-free form the federated round loops use: FCF
/// and FedMF compute these gradients once *per sample per round*, so two
/// fresh `Vec`s per call would dominate their heap traffic. Returns
/// `(db, loss)`.
pub fn mf_gradients_into(
    du: &mut Vec<f32>,
    dv: &mut Vec<f32>,
    user_vec: &[f32],
    item_vec: &[f32],
    item_bias: f32,
    label: f32,
    reg: f32,
) -> (f32, f32) {
    debug_assert_eq!(user_vec.len(), item_vec.len());
    let logit = kernels::dot(user_vec, item_vec) + item_bias;
    let err = stable_sigmoid(logit) - label;
    du.clear();
    du.extend(user_vec.iter().zip(item_vec).map(|(&u, &v)| err * v + reg * u));
    dv.clear();
    dv.extend(user_vec.iter().zip(item_vec).map(|(&u, &v)| err * u + reg * v));
    (err, bce_loss(logit, label))
}

/// Allocating convenience wrapper over [`mf_gradients_into`].
///
/// Returns `(du, dv, db, loss)`.
pub fn mf_gradients(
    user_vec: &[f32],
    item_vec: &[f32],
    item_bias: f32,
    label: f32,
    reg: f32,
) -> (Vec<f32>, Vec<f32>, f32, f32) {
    let mut du = Vec::new();
    let mut dv = Vec::new();
    let (db, loss) = mf_gradients_into(&mut du, &mut dv, user_vec, item_vec, item_bias, label, reg);
    (du, dv, db, loss)
}

/// Applies one SGD step in place; returns the sample's loss.
///
/// Allocation-free: the gradients are computed and applied elementwise
/// from the pre-step values (bit-identical to materializing `du`/`dv`
/// via [`mf_gradients`] and then applying them) — this runs inside every
/// client's local round, where a heap allocation per sample is exactly
/// the memory-bandwidth waste the scratch-buffer hot path eliminates.
pub fn mf_sgd_step(
    user_vec: &mut [f32],
    item_vec: &mut [f32],
    item_bias: &mut f32,
    label: f32,
    lr: f32,
    reg: f32,
) -> f32 {
    debug_assert_eq!(user_vec.len(), item_vec.len());
    let logit = kernels::dot(user_vec, item_vec) + *item_bias;
    let err = stable_sigmoid(logit) - label;
    kernels::mf_sgd_update(user_vec, item_vec, err, lr, reg);
    *item_bias -= lr * err;
    bce_loss(logit, label)
}

/// A plain MF model (user table, item [`RowTable`] with a trailing bias
/// column) implementing [`Recommender`] with per-sample SGD. Used as a
/// centralized sanity baseline, the paper-scale throughput client, and
/// the building block the federated baselines decompose.
pub struct MfModel {
    pub user_emb: Matrix,
    /// Item state: `dim` embedding columns + 1 bias column per row.
    items: RowTable,
    pub lr: f32,
    pub reg: f32,
}

/// Checkpoint wire form (state only; hyperparameters stay live).
#[derive(serde::Serialize, serde::Deserialize)]
struct MfWire {
    arch: String,
    user_emb: Matrix,
    items: RowTable,
}

impl MfModel {
    /// A dense MF model with the legacy sequential-RNG init (user and
    /// item tables drawn from one `rng` stream, biases zero) — servers
    /// and baselines that own the full catalogue.
    pub fn new(
        num_users: usize,
        num_items: usize,
        dim: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let user_emb = Matrix::randn(num_users, dim, 0.1, rng);
        let item_emb = Matrix::randn(num_items, dim, 0.1, rng);
        let items = RowTable::dense_with(num_items, dim + 1, |r, row| {
            row[..dim].copy_from_slice(item_emb.row(r));
            row[dim] = 0.0;
        });
        Self { user_emb, items, lr, reg: 1e-4 }
    }

    /// An item-scoped MF model: the item table materializes only `scope`
    /// (plus whatever later training touches), every row initialized from
    /// its `(seed, id)`-derived stream. Two models with the same `seed`
    /// — one `Full`, one `Rows` — hold bit-identical values on every
    /// shared row.
    pub fn new_scoped(num_users: usize, dim: usize, lr: f32, scope: &ItemScope, seed: u64) -> Self {
        use ptf_tensor::derive_seed;
        use rand::SeedableRng;
        // the user table draws from its own derived stream so its values
        // cannot depend on the item scope (Full vs Rows parity)
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0, DENSE_INIT_STREAM));
        let user_emb = Matrix::randn(num_users, dim, 0.1, &mut rng);
        let items =
            RowTable::from_scope(scope, dim + 1, dim, 0.1, derive_seed(seed, 0, ITEM_INIT_STREAM));
        Self { user_emb, items, lr, reg: 1e-4 }
    }

    pub fn dim(&self) -> usize {
        self.user_emb.cols()
    }

    /// The item table (scope inspection, delta staging in baselines).
    pub fn items(&self) -> &RowTable {
        &self.items
    }

    /// Embedding slice of a materialized item.
    ///
    /// # Panics
    /// If `item` is not materialized (use [`Recommender::item_scope`] or
    /// score through [`MfModel::logit`], which handles cold rows).
    pub fn item_embedding(&self, item: u32) -> &[f32] {
        let r = self.items.lookup(item).expect("item row not materialized");
        &self.items.row(r)[..self.dim()]
    }

    /// Bias of a materialized item (see [`MfModel::item_embedding`]).
    pub fn item_bias(&self, item: u32) -> f32 {
        let r = self.items.lookup(item).expect("item row not materialized");
        self.items.row(r)[self.dim()]
    }

    /// Mutable `[embedding.., bias]` row of an item, materializing it if
    /// needed (FedAvg application in the baselines).
    pub fn item_row_mut(&mut self, item: u32) -> &mut [f32] {
        let r = self.items.ensure(item);
        self.items.row_mut(r)
    }

    /// Pre-reserves item-row capacity (see [`RowTable::reserve_rows`]).
    pub fn reserve_item_rows(&mut self, additional: usize) {
        self.items.reserve_rows(additional);
    }

    pub fn logit(&self, user: u32, item: u32) -> f32 {
        let u = self.user_emb.row(user as usize);
        let dim = u.len();
        self.items.with_row(item, |row| kernels::dot(u, &row[..dim]) + row[dim])
    }
}

/// Stream discriminators inside one scoped model's seed namespace.
const DENSE_INIT_STREAM: u64 = 1;
const ITEM_INIT_STREAM: u64 = 2;

impl Recommender for MfModel {
    fn name(&self) -> &'static str {
        "MF"
    }

    fn num_users(&self) -> usize {
        self.user_emb.rows()
    }

    fn num_items(&self) -> usize {
        self.items.num_items()
    }

    fn num_params(&self) -> usize {
        // materialized rows only — the whole point of scoping
        self.user_emb.len() + self.items.len()
    }

    fn item_scope(&self) -> ScopeView<'_> {
        match self.items.ids() {
            None => ScopeView::Full(self.items.num_items()),
            Some(ids) => ScopeView::Rows(ids),
        }
    }

    fn prepare_items(&mut self, sorted_ids: &[u32]) {
        self.items.ensure_many(sorted_ids);
    }

    fn evict_items(&mut self, keep_sorted: &[u32]) -> usize {
        // MF has no optimizer moments — the row table carries the whole
        // per-item state, so table-level eviction is the entire operation
        self.items.retain_ids(keep_sorted)
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        items.iter().map(|&i| stable_sigmoid(self.logit(user, i))).collect()
    }

    fn score_into(&self, user: u32, items: &[u32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(items.iter().map(|&i| stable_sigmoid(self.logit(user, i))));
    }

    fn score_all_into(&self, user: u32, out: &mut Vec<f32>) {
        out.clear();
        out.extend((0..self.num_items() as u32).map(|i| stable_sigmoid(self.logit(user, i))));
    }

    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        // disjoint field borrows: the user row and the item row live in
        // different containers, so the whole step runs in place
        let dim = self.dim();
        let Self { user_emb, items, lr, reg } = self;
        let mut total = 0.0;
        for &(u, i, label) in batch {
            let r = items.ensure(i);
            let (item_vec, bias) = items.row_mut(r).split_at_mut(dim);
            total +=
                mf_sgd_step(user_emb.row_mut(u as usize), item_vec, &mut bias[0], label, *lr, *reg);
        }
        total / batch.len() as f32
    }

    fn export_state(&self) -> Option<String> {
        let wire = MfWire {
            arch: "MF".to_string(),
            user_emb: self.user_emb.clone(),
            items: self.items.clone(),
        };
        serde_json::to_string(&wire).ok()
    }

    fn import_state(&mut self, json: &str) -> Result<(), String> {
        let wire: MfWire =
            serde_json::from_str(json).map_err(|e| format!("bad checkpoint: {e}"))?;
        if wire.arch != "MF" {
            return Err(format!("architecture mismatch: expected MF, got {}", wire.arch));
        }
        if wire.user_emb.shape() != self.user_emb.shape() {
            return Err(format!(
                "shape mismatch for user_emb: {:?} vs {:?}",
                wire.user_emb.shape(),
                self.user_emb.shape()
            ));
        }
        if wire.items.num_items() != self.items.num_items()
            || wire.items.cols() != self.items.cols()
        {
            return Err(format!(
                "shape mismatch for items: {}x{} vs {}x{}",
                wire.items.num_items(),
                wire.items.cols(),
                self.items.num_items(),
                self.items.cols()
            ));
        }
        self.user_emb = wire.user_emb;
        self.items = wire.items;
        Ok(())
    }

    fn export_full_state(&self) -> Option<String> {
        // MF trains with plain SGD (no optimizer moments, no RNG), so the
        // ordinary checkpoint — user table + full row table with its ids
        // and init seed — is already lossless for bit-identical resume
        self.export_state()
    }

    fn import_full_state(&mut self, json: &str) -> Result<(), String> {
        self.import_state(json)
    }

    fn densify(&mut self) -> bool {
        self.items.densify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    #[test]
    fn bce_loss_matches_naive_formula() {
        for &(x, t) in &[(0.5f32, 1.0f32), (-2.0, 0.0), (3.0, 0.3), (0.0, 0.5)] {
            let s = stable_sigmoid(x);
            let naive = -(t * s.ln() + (1.0 - t) * (1.0 - s).ln());
            assert!((bce_loss(x, t) - naive).abs() < 1e-5, "x={x} t={t}");
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let u = vec![0.3f32, -0.2, 0.5];
        let v = vec![-0.1f32, 0.4, 0.2];
        let bias = 0.05f32;
        let label = 1.0f32;
        let (du, dv, db, _) = mf_gradients(&u, &v, bias, label, 0.0);
        let eps = 1e-3f32;
        for k in 0..3 {
            let mut up = u.clone();
            up[k] += eps;
            let mut un = u.clone();
            un[k] -= eps;
            let logit =
                |uu: &[f32]| -> f32 { uu.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f32>() + bias };
            let num = (bce_loss(logit(&up), label) - bce_loss(logit(&un), label)) / (2.0 * eps);
            assert!((du[k] - num).abs() < 1e-3, "du[{k}]: {} vs {num}", du[k]);
        }
        // dv symmetric by construction; spot-check bias
        let num_db =
            (bce_loss(u.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f32>() + bias + eps, label)
                - bce_loss(
                    u.iter().zip(&v).map(|(&a, &b)| a * b).sum::<f32>() + bias - eps,
                    label,
                ))
                / (2.0 * eps);
        assert!((db - num_db).abs() < 1e-3);
        let _ = dv;
    }

    #[test]
    fn regularization_pulls_toward_zero() {
        let u = vec![1.0f32];
        let v = vec![0.0f32];
        // err = σ(0) − 0.5 = 0 → gradient is purely the reg term
        let (du, dv, _, _) = mf_gradients(&u, &v, 0.0, 0.5, 0.1);
        assert!((du[0] - 0.1).abs() < 1e-6);
        assert_eq!(dv[0], 0.0);
    }

    #[test]
    fn sgd_overfits_tiny_data() {
        let mut m = MfModel::new(2, 4, 8, 0.1, &mut test_rng(2));
        let data: Vec<(u32, u32, f32)> = vec![(0, 0, 1.0), (0, 1, 0.0), (1, 2, 1.0), (1, 3, 0.0)];
        for _ in 0..300 {
            m.train_batch(&data);
        }
        let s0 = m.score(0, &[0, 1]);
        assert!(s0[0] > 0.8 && s0[1] < 0.2, "{s0:?}");
    }

    #[test]
    fn recommender_impl_shapes() {
        let m = MfModel::new(3, 5, 4, 0.1, &mut test_rng(3));
        assert_eq!(m.num_params(), 3 * 4 + 5 * 4 + 5);
        assert_eq!(m.score_all(1).len(), 5);
        assert_eq!(m.name(), "MF");
        assert_eq!(m.item_scope(), ScopeView::Full(5));
        assert!(!m.scoped());
    }

    #[test]
    fn scoped_model_holds_only_its_rows_until_touched() {
        let scope = ItemScope::rows(100, vec![3, 40, 77]);
        let mut m = MfModel::new_scoped(1, 8, 0.1, &scope, 11);
        assert_eq!(m.num_items(), 100);
        assert_eq!(m.item_scope().len(), 3);
        assert_eq!(m.num_params(), 8 + 3 * 9);
        assert!(m.scoped());
        // scoring an out-of-scope item works (cold init) without growing
        let s = m.score(0, &[50])[0];
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(m.item_scope().len(), 3, "scoring must not materialize");
        // training one touches exactly that row
        m.train_batch(&[(0, 50, 1.0)]);
        assert_eq!(m.item_scope().len(), 4);
        assert!(m.item_scope().contains(50));
    }

    #[test]
    fn scoped_and_full_agree_on_shared_rows() {
        let full = MfModel::new_scoped(2, 8, 0.1, &ItemScope::Full(50), 21);
        let rows = MfModel::new_scoped(2, 8, 0.1, &ItemScope::rows(50, vec![5, 9, 30]), 21);
        assert_eq!(full.score(1, &[5, 9, 30]), rows.score(1, &[5, 9, 30]));
        // …including out-of-scope (cold) items
        assert_eq!(full.score(0, &[17]), rows.score(0, &[17]));
    }

    #[test]
    fn eviction_keeps_dense_and_sparse_tables_bit_identical() {
        // the contract that makes eviction safe: a Full-scope model (rows
        // reset in place) and a Rows-scope model (rows physically removed)
        // stay bit-identical under the same train-and-evict schedule
        let mut full = MfModel::new_scoped(2, 8, 0.1, &ItemScope::Full(50), 21);
        let mut rows = MfModel::new_scoped(2, 8, 0.1, &ItemScope::rows(50, vec![5, 9]), 21);
        let all: Vec<u32> = (0..50).collect();
        let batch = [(0u32, 5u32, 1.0f32), (0, 30, 0.0), (1, 44, 1.0), (1, 9, 0.0)];
        full.train_batch(&batch);
        rows.train_batch(&batch);
        let keep = [5u32, 9];
        assert!(full.evict_items(&keep) > 0);
        assert_eq!(rows.evict_items(&keep), 2, "rows 30 and 44 must drop");
        assert_eq!(rows.item_scope().len(), 2, "sparse eviction bounds the row set");
        assert_eq!(full.score(0, &all), rows.score(0, &all), "post-evict scores diverged");
        // evicted rows re-materialize and keep training in lockstep
        full.train_batch(&batch);
        rows.train_batch(&batch);
        assert_eq!(full.score(1, &all), rows.score(1, &all), "post-re-touch scores diverged");
    }

    #[test]
    fn export_import_roundtrip_scoped() {
        let scope = ItemScope::rows(30, vec![1, 4, 20]);
        let mut m = MfModel::new_scoped(2, 4, 0.2, &scope, 5);
        for _ in 0..20 {
            m.train_batch(&[(0, 1, 1.0), (1, 4, 0.0), (0, 25, 1.0)]);
        }
        let ckpt = m.export_state().unwrap();
        let expected = m.score(0, &[1, 4, 20, 25, 7]);

        let mut fresh = MfModel::new_scoped(2, 4, 0.2, &scope, 999);
        assert_ne!(fresh.score(0, &[1, 4, 20, 25, 7]), expected);
        fresh.import_state(&ckpt).unwrap();
        assert_eq!(fresh.score(0, &[1, 4, 20, 25, 7]), expected);
        assert!(fresh.item_scope().contains(25), "materialized rows restored");

        // wrong-shape and wrong-arch checkpoints are rejected
        let mut other = MfModel::new_scoped(3, 4, 0.2, &scope, 5);
        assert!(other.import_state(&ckpt).unwrap_err().contains("shape mismatch"));
        assert!(m.import_state("{garbage").is_err());
    }
}
