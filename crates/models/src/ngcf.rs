//! NGCF — Neural Graph Collaborative Filtering (Wang et al., SIGIR 2019).
//!
//! Per propagation layer `l` (row-vector convention, `Ã` the normalized
//! bipartite adjacency from [`crate::graph`]):
//!
//! ```text
//! E^{(l+1)} = LeakyReLU( (ÃE^{(l)} + E^{(l)}) W₁⁽ˡ⁾ + (ÃE^{(l)} ⊙ E^{(l)}) W₂⁽ˡ⁾ )
//! ```
//!
//! i.e. the standard NGCF message passing with self-connection and the
//! element-wise affinity term. The final representation concatenates every
//! layer, `[E^{(0)} | … | E^{(L)}]`, and scores are sigmoid dot products.

use crate::graph::{empty_propagation, normalized_bipartite};
use crate::lightgcn::stable_sigmoid;
use crate::scoped;
use crate::scratch::BatchScratch;
use crate::traits::{Recommender, ScopeView};
use ptf_tensor::kernels;
use ptf_tensor::prelude::*;
use ptf_tensor::{init, ItemScope, ParamId, ScopeIndex};
use rand::Rng;
use std::sync::RwLock;

/// NGCF hyperparameters (defaults follow §IV-D: dim 32, 3 GCN layers,
/// propagation weights sized like the embeddings).
#[derive(Clone, Debug)]
pub struct NgcfConfig {
    pub dim: usize,
    pub layers: usize,
    pub lr: f32,
    /// Negative slope of the LeakyReLU (reference implementation: 0.2).
    pub leaky_slope: f32,
    /// L2 penalty on batch embeddings and propagation weights — the
    /// reference NGCF's weight decay; without it the extra W₁/W₂
    /// parameters overfit sparse interaction data badly.
    pub reg: f32,
    /// Message dropout rate applied to each layer's output during
    /// training (reference NGCF: 0.1). Inference never drops.
    pub message_dropout: f32,
}

impl Default for NgcfConfig {
    fn default() -> Self {
        Self { dim: 32, layers: 3, lr: 1e-3, leaky_slope: 0.2, reg: 1e-3, message_dropout: 0.1 }
    }
}

/// The NGCF model.
pub struct Ngcf {
    num_users: usize,
    num_items: usize,
    layers: usize,
    leaky_slope: f32,
    reg: f32,
    message_dropout: f32,
    params: Params,
    emb: ParamId,
    w1: Vec<ParamId>,
    w2: Vec<ParamId>,
    prop: PropagationMatrix,
    adam: Adam,
    /// Model-owned RNG for training-time dropout masks.
    dropout_rng: rand::rngs::StdRng,
    /// Clean inference embeddings; `RwLock` so concurrent evaluation
    /// threads can score through one shared model.
    cache: RwLock<Option<Matrix>>,
    /// Which global item id backs which item block row of `emb` (rows
    /// `num_users..` of the joint table); dense identity for full models.
    scope: ScopeIndex,
    /// Per-row derived init seed for lazily materialized item rows.
    item_seed: u64,
    /// Last `set_graph` edge list in global ids (scoped models re-derive
    /// the propagation operator from it when node indices shift).
    graph_edges: Vec<(u32, u32, f32)>,
    /// Reused batch-staging vectors + autograd arena (steady-state
    /// training is allocation-free after the first batch).
    scratch: BatchScratch,
}

impl Ngcf {
    pub fn new(num_users: usize, num_items: usize, cfg: &NgcfConfig, rng: &mut impl Rng) -> Self {
        assert!(num_users > 0 && num_items > 0, "empty model");
        let joint = Matrix::randn(num_users + num_items, cfg.dim, 0.1, rng);
        Self::assemble(num_users, num_items, cfg, joint, ScopeIndex::dense(num_items), 0, rng)
    }

    /// An item-scoped NGCF: the item block of the joint node table
    /// materializes only `scope` (plus whatever later training or graph
    /// edges touch), every row initialized from its `(seed, id)`-derived
    /// stream; user rows and propagation weights draw from a
    /// scope-independent stream. With `message_dropout = 0`, a `Rows`
    /// model is bit-identical to a `Full` model of the same seed on every
    /// shared row (dropout masks cover the whole node space, so their
    /// draw counts differ under scoping).
    pub fn new_scoped(num_users: usize, cfg: &NgcfConfig, scope: &ItemScope, seed: u64) -> Self {
        assert!(num_users > 0 && scope.num_items() > 0, "empty model");
        let item_seed = scoped::item_seed(seed);
        let mut rng = scoped::dense_rng(seed);
        let user_rows = Matrix::randn(num_users, cfg.dim, 0.1, &mut rng);
        let item_rows = scoped::scoped_item_rows(scope, cfg.dim, 0.1, item_seed);
        let index = ScopeIndex::from_scope(scope);
        let mut joint = Matrix::zeros(num_users + index.len(), cfg.dim);
        for r in 0..num_users {
            joint.row_mut(r).copy_from_slice(user_rows.row(r));
        }
        for r in 0..index.len() {
            joint.row_mut(num_users + r).copy_from_slice(item_rows.row(r));
        }
        Self::assemble(num_users, scope.num_items(), cfg, joint, index, item_seed, &mut rng)
    }

    fn assemble(
        num_users: usize,
        num_items: usize,
        cfg: &NgcfConfig,
        joint: Matrix,
        scope: ScopeIndex,
        item_seed: u64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(cfg.layers > 0, "NGCF needs at least one propagation layer");
        let item_rows = scope.len();
        let mut params = Params::new();
        let emb = params.push("emb", joint);
        let mut w1 = Vec::with_capacity(cfg.layers);
        let mut w2 = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            w1.push(params.push(format!("w1_{l}"), init::xavier_uniform(cfg.dim, cfg.dim, rng)));
            w2.push(params.push(format!("w2_{l}"), init::xavier_uniform(cfg.dim, cfg.dim, rng)));
        }
        let adam = Adam::with_defaults(&params, cfg.lr);
        use rand::SeedableRng as _;
        let dropout_rng = rand::rngs::StdRng::seed_from_u64(rng.gen());
        Self {
            num_users,
            num_items,
            layers: cfg.layers,
            leaky_slope: cfg.leaky_slope,
            reg: cfg.reg,
            message_dropout: cfg.message_dropout,
            params,
            emb,
            w1,
            w2,
            prop: empty_propagation(num_users, item_rows),
            adam,
            dropout_rng,
            cache: RwLock::new(None),
            scope,
            item_seed,
            graph_edges: Vec::new(),
            scratch: BatchScratch::default(),
        }
    }

    fn dim(&self) -> usize {
        self.params.get(self.emb).cols()
    }

    /// Node index of a *materialized* item in the joint table.
    fn node_of(&self, i: u32) -> Option<u32> {
        self.scope.lookup(i).map(|r| (self.num_users + r) as u32)
    }

    /// Re-derives the propagation operator from the stored global edge
    /// list under the current (possibly grown) scope mapping.
    fn rebuild_scoped_prop(&mut self) {
        debug_assert!(!self.scope.is_dense());
        let remapped: Vec<(u32, u32, f32)> = self
            .graph_edges
            .iter()
            .map(|&(u, i, w)| (u, self.scope.lookup(i).expect("edge item materialized") as u32, w))
            .collect();
        self.prop = normalized_bipartite(self.num_users, self.scope.len(), &remapped);
    }

    /// Materializes `ids`; rebuilds the propagation operator if node
    /// indices shifted.
    fn ensure_items(&mut self, ids: impl Iterator<Item = u32>) {
        if self.scope.is_dense() {
            return;
        }
        let grew = scoped::ensure_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            self.item_seed,
            0.1,
            ids,
        );
        if grew {
            self.rebuild_scoped_prop();
            self.invalidate();
        }
    }

    /// The final concatenated representation an *unmaterialized* (hence
    /// isolated) item would get: zero messages and zero affinity leave
    /// only the self path, `e ← LeakyReLU(e W₁⁽ˡ⁾)`, layer by layer —
    /// computed in the same accumulation order as the autograd matmul so
    /// the value matches a full model's edgeless item bit for bit.
    fn cold_item_final(&self, id: u32, out: &mut Vec<f32>) {
        let dim = self.dim();
        let mut e = vec![0.0f32; dim];
        init::derived_normal_row(self.item_seed, id, 0.1, &mut e);
        out.clear();
        out.extend_from_slice(&e);
        let mut next = vec![0.0f32; dim];
        for l in 0..self.layers {
            let w1 = self.params.get(self.w1[l]);
            next.iter_mut().for_each(|x| *x = 0.0);
            for (k, &a) in e.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                kernels::axpy(a, w1.row(k), &mut next);
            }
            for (ek, &nk) in e.iter_mut().zip(&next) {
                *ek = if nk > 0.0 { nk } else { self.leaky_slope * nk };
            }
            out.extend_from_slice(&e);
        }
    }

    /// Builds the concatenated multi-layer node embeddings. `dropout_rng`
    /// enables training-time message dropout; `None` builds the clean
    /// inference graph.
    fn build_final(
        &self,
        g: &mut Graph<'_>,
        mut dropout_rng: Option<&mut rand::rngs::StdRng>,
    ) -> Var {
        let e0 = g.param(self.emb);
        let mut e = e0;
        let mut out = e0;
        for l in 0..self.layers {
            let msg = g.spmm(&self.prop, e);
            let with_self = g.add(msg, e);
            let w1 = g.param(self.w1[l]);
            let term1 = g.matmul(with_self, w1);
            let affinity = g.mul(msg, e);
            let w2 = g.param(self.w2[l]);
            let term2 = g.matmul(affinity, w2);
            let summed = g.add(term1, term2);
            e = g.leaky_relu(summed, self.leaky_slope);
            if let Some(rng) = dropout_rng.as_deref_mut() {
                e = g.dropout(e, self.message_dropout, rng);
            }
            out = g.concat_cols(out, e);
        }
        out
    }

    fn ensure_cache(&self) {
        if self.cache.read().expect("cache lock poisoned").is_some() {
            return;
        }
        let mut g = Graph::new(&self.params);
        let f = self.build_final(&mut g, None);
        let fresh = g.value(f).clone();
        // racing evaluators compute the same matrix; last write wins
        *self.cache.write().expect("cache lock poisoned") = Some(fresh);
    }

    fn invalidate(&mut self) {
        *self.cache.get_mut().expect("cache lock poisoned") = None;
    }
}

impl Recommender for Ngcf {
    fn name(&self) -> &'static str {
        "NGCF"
    }

    fn num_users(&self) -> usize {
        self.num_users
    }

    fn num_items(&self) -> usize {
        self.num_items
    }

    fn num_params(&self) -> usize {
        self.params.num_scalars()
    }

    fn item_scope(&self) -> ScopeView<'_> {
        match self.scope.ids() {
            None => ScopeView::Full(self.num_items),
            Some(ids) => ScopeView::Rows(ids),
        }
    }

    fn prepare_items(&mut self, sorted_ids: &[u32]) {
        self.ensure_items(sorted_ids.iter().copied());
    }

    fn evict_items(&mut self, keep_sorted: &[u32]) -> usize {
        // see LightGcn::evict_items: the keep set must cover the current
        // graph-edge items so the stored edge list stays resolvable
        debug_assert!(
            self.scope.is_dense()
                || self.graph_edges.iter().all(|&(_, i, _)| keep_sorted.binary_search(&i).is_ok()),
            "keep set must cover all graph-edge items"
        );
        let evicted = scoped::evict_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            self.item_seed,
            0.1,
            keep_sorted,
        );
        if evicted > 0 {
            if !self.scope.is_dense() {
                self.rebuild_scoped_prop();
            }
            self.invalidate();
        }
        evicted
    }

    fn score(&self, user: u32, items: &[u32]) -> Vec<f32> {
        debug_assert!((user as usize) < self.num_users, "user id out of range");
        self.ensure_cache();
        let cache = self.cache.read().expect("cache lock poisoned");
        let emb = cache.as_ref().expect("cache ensured above");
        let u = emb.row(user as usize);
        let mut cold: Vec<f32> = Vec::new();
        items
            .iter()
            .map(|&i| {
                debug_assert!((i as usize) < self.num_items, "item id out of range");
                let dot: f32 = match self.node_of(i) {
                    Some(node) => kernels::dot(u, emb.row(node as usize)),
                    None => {
                        self.cold_item_final(i, &mut cold);
                        kernels::dot(u, &cold)
                    }
                };
                stable_sigmoid(dot)
            })
            .collect()
    }

    fn train_batch(&mut self, batch: &[(u32, u32, f32)]) -> f32 {
        if batch.is_empty() {
            return 0.0;
        }
        self.ensure_items(batch.iter().map(|&(_, i, _)| i));
        self.invalidate();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.users.clear();
        scratch.users.extend(batch.iter().map(|&(u, _, _)| u));
        scratch.items.clear();
        scratch
            .items
            .extend(batch.iter().map(|&(_, i, _)| self.node_of(i).expect("ensured above")));
        scratch.labels.clear();
        scratch.labels.extend(batch.iter().map(|&(_, _, l)| l));
        // lint: allow(alloc-discipline) — StdRng clone is a 32-byte inline state copy, no heap
        let mut dropout_rng = self.dropout_rng.clone();
        let (grads, loss) = {
            let mut g = Graph::with_arena(&self.params, &mut scratch.arena);
            let f = self.build_final(&mut g, Some(&mut dropout_rng));
            let u = g.gather(f, &scratch.users);
            let v = g.gather(f, &scratch.items);
            let logits = g.row_dot(u, v);
            let data_loss = g.bce_with_logits(logits, &scratch.labels);
            // L2 over the batch's final embeddings and the propagation
            // weights (reference NGCF's decay term)
            let mut penalty = g.frob_sq(u);
            let pv = g.frob_sq(v);
            penalty = g.add(penalty, pv);
            for &w in self.w1.iter().chain(&self.w2) {
                let wv = g.param(w);
                let pw = g.frob_sq(wv);
                penalty = g.add(penalty, pw);
            }
            let penalty = g.scale(penalty, self.reg / batch.len() as f32);
            let loss = g.add(data_loss, penalty);
            (g.backward(loss), g.scalar(data_loss))
        };
        self.adam.step(&mut self.params, &grads);
        scratch.arena.recycle(grads);
        self.scratch = scratch;
        self.dropout_rng = dropout_rng;
        loss
    }

    fn set_graph(&mut self, edges: &[(u32, u32, f32)]) {
        if self.scope.is_dense() {
            self.prop = normalized_bipartite(self.num_users, self.num_items, edges);
        } else {
            self.graph_edges.clear();
            self.graph_edges.extend_from_slice(edges);
            self.ensure_items(edges.iter().map(|&(_, i, _)| i));
            self.rebuild_scoped_prop();
        }
        self.invalidate();
    }

    fn uses_graph(&self) -> bool {
        true
    }

    fn export_state(&self) -> Option<String> {
        scoped::export_state("NGCF", &self.scope, &self.params, self.item_seed)
    }

    fn import_state(&mut self, json: &str) -> Result<(), String> {
        scoped::import_state(
            "NGCF",
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            &mut self.item_seed,
            json,
        )?;
        if !self.scope.is_dense() {
            // the graph is not part of a checkpoint; callers re-set it
            self.graph_edges.clear();
            self.prop = empty_propagation(self.num_users, self.scope.len());
        }
        self.invalidate();
        Ok(())
    }

    fn export_full_state(&self) -> Option<String> {
        scoped::export_full_state(
            "NGCF",
            &self.scope,
            &self.params,
            self.item_seed,
            &self.adam,
            Some(&self.dropout_rng),
        )
    }

    fn import_full_state(&mut self, json: &str) -> Result<(), String> {
        let rng = scoped::import_full_state(
            "NGCF",
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            &mut self.item_seed,
            json,
        )?;
        // the dropout stream is part of the training state: without it a
        // resumed model would draw different masks than the original
        self.dropout_rng =
            rng.ok_or_else(|| "NGCF checkpoint is missing the dropout RNG state".to_string())?;
        // the graph is not part of the envelope; callers re-set it
        self.graph_edges.clear();
        self.prop = empty_propagation(self.num_users, self.scope.len());
        self.invalidate();
        Ok(())
    }

    fn densify(&mut self) -> bool {
        let grew = scoped::densify_item_rows(
            &mut self.scope,
            &mut self.params,
            &mut self.adam,
            self.emb,
            self.num_users,
            self.item_seed,
            0.1,
        );
        if grew {
            self.prop = normalized_bipartite(self.num_users, self.num_items, &self.graph_edges);
            self.graph_edges.clear();
            self.invalidate();
        }
        grew
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptf_tensor::test_rng;

    fn tiny() -> Ngcf {
        let cfg = NgcfConfig {
            dim: 8,
            layers: 2,
            lr: 0.02,
            leaky_slope: 0.2,
            reg: 1e-3,
            message_dropout: 0.1,
        };
        Ngcf::new(4, 6, &cfg, &mut test_rng(7))
    }

    #[test]
    fn param_count_matches_architecture() {
        let m = tiny();
        // table (4+6)*8 + 2 layers × two 8×8 weights
        assert_eq!(m.num_params(), 10 * 8 + 2 * 2 * 64);
    }

    #[test]
    fn final_embedding_concatenates_layers() {
        let m = tiny();
        m.ensure_cache();
        let cache = m.cache.read().unwrap();
        // dim 8 × (1 original + 2 layers)
        assert_eq!(cache.as_ref().unwrap().cols(), 24);
    }

    #[test]
    fn scores_are_probabilities() {
        let mut m = tiny();
        m.set_graph(&[(0, 0, 1.0), (1, 2, 1.0)]);
        let s = m.score(0, &[0, 1, 2, 3, 4, 5]);
        assert!(s.iter().all(|&p| (0.0..=1.0).contains(&p)), "{s:?}");
    }

    #[test]
    fn training_reduces_loss_and_separates() {
        let mut m = tiny();
        m.set_graph(&[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let batch: Vec<(u32, u32, f32)> = vec![(0, 0, 1.0), (0, 3, 0.0), (1, 1, 1.0), (1, 4, 0.0)];
        let first = m.train_batch(&batch);
        let mut last = first;
        for _ in 0..250 {
            last = m.train_batch(&batch);
        }
        assert!(last < first * 0.5, "loss did not shrink: {first} → {last}");
        let s = m.score(0, &[0, 3]);
        assert!(s[0] > s[1], "positive not ranked above negative: {s:?}");
    }

    #[test]
    fn graph_rebuild_changes_scores() {
        let mut m = tiny();
        let before = m.score(1, &[0])[0];
        m.set_graph(&[(1, 0, 1.0), (0, 0, 1.0)]);
        let after = m.score(1, &[0])[0];
        assert_ne!(before, after);
    }

    #[test]
    fn soft_edges_are_usable() {
        let mut m = tiny();
        // server-style soft weights must produce a valid propagation
        m.set_graph(&[(0, 0, 0.93), (1, 0, 0.71), (2, 3, 0.88)]);
        let s = m.score(0, &[0, 3]);
        assert!(s.iter().all(|p| p.is_finite()));
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = NgcfConfig::default();
        let a = Ngcf::new(3, 4, &cfg, &mut test_rng(11));
        let b = Ngcf::new(3, 4, &cfg, &mut test_rng(11));
        assert_eq!(a.score(0, &[0, 1]), b.score(0, &[0, 1]));
    }
}
