// Fixture: an unsafe block with no SAFETY comment.
pub fn first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}
