pub const USAGE: &str = "\
ptf — fixture tool

USAGE:
    ptf stats [--scale small|paper] [--seed N]
    ptf train --dataset D [--json]

Notes follow the blank line and are not checked.
";
