pub enum FrameKind {
    Hello = 1,
    Welcome = 2,
}
