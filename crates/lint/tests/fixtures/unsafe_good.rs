// Fixture: the same unsafe block, documented.
pub fn first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees `xs` has an element 0, so
    // `as_ptr()` points at initialized memory we may read.
    unsafe { *xs.as_ptr() }
}
