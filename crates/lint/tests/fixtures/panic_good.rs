// Fixture: the propagating counterparts, plus a test module (exempt).
pub fn parse(input: &str) -> Result<u32, String> {
    input.parse().map_err(|e| format!("bad number: {e}"))
}

pub fn fetch(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).unwrap_or(&0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        super::parse("3").unwrap();
    }
}
