pub enum FrameKind {
    Hello = 1,
    Welcome = 2,
    Reject = 3,
}
