// Fixture: the deterministic counterparts — sorted iteration, hash
// lookups (fine), and an annotated order-independent reduction.
use std::collections::{BTreeMap, HashMap};

pub fn ordered_sum(counts: &BTreeMap<u32, u64>) -> u64 {
    counts.values().sum()
}

pub fn lookup(index: &HashMap<u32, u64>, k: u32) -> u64 {
    *index.get(&k).unwrap_or(&0)
}

pub fn allowed_sum(index: &HashMap<u32, u64>) -> u64 {
    // lint: allow(determinism) — u64 sum over values is order-independent
    index.values().sum()
}
