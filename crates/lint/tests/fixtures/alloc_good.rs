// Fixture: a hot function written scratch-style — reuses its caller's
// buffer, never allocates.
pub fn hot_fn(xs: &[f32], out: &mut Vec<f32>) {
    out.clear();
    out.extend_from_slice(xs);
}
