// Fixture: every panic-policy violation class on a production path.
pub fn parse(input: &str) -> u32 {
    let n: u32 = input.parse().unwrap();
    if n > 100 {
        panic!("too big");
    }
    n
}

pub fn fetch(map: &std::collections::HashMap<u32, u32>, k: u32) -> u32 {
    *map.get(&k).expect("missing key")
}
