// Fixture: allocations inside a declared hot function (and a cold one
// the lint must leave alone when only `hot_fn` is declared).
pub fn hot_fn(xs: &[f32]) -> Vec<f32> {
    let mut out = xs.to_vec();
    out.push(format!("{}", xs.len()).len() as f32);
    out
}

pub fn cold_fn(xs: &[f32]) -> Vec<f32> {
    xs.to_vec()
}
