// Fixture: every determinism violation class. Scanned by the self-tests
// with a protocol-scope path; excluded from the workspace walk.
use std::collections::HashMap;
use std::time::Instant;

pub struct State {
    pub counts: HashMap<u32, u64>,
}

pub fn tick(state: &State) -> u64 {
    let started = Instant::now();
    let draw: u32 = rand::thread_rng().gen();
    let mut sum = draw as u64;
    for (_k, v) in state.counts.iter() {
        sum += v;
    }
    drop(started);
    sum
}
