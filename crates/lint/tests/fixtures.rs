//! Fixture-based self-tests: every lint family runs against a known-bad
//! and a known-good fixture under `tests/fixtures/`, asserting exact
//! diagnostic counts, anchors, and the `file:line: [lint] message`
//! format — plus the capstone test that the real workspace is clean.
//!
//! The fixture directory is excluded from the workspace walk
//! (`walk::SKIP_PREFIXES`), so the deliberate violations here never leak
//! into a production `ptf-lint` run.

use ptf_lint::config::HotPath;
use ptf_lint::diag::Diagnostic;
use ptf_lint::lints::{alloc_discipline, determinism, panic_policy, spec, unsafe_audit};
use ptf_lint::source::SourceFile;
use std::path::{Path, PathBuf};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Loads a fixture's text but attributes it to `rel` — the lints scope
/// by path, so each fixture is presented as living where its lint looks.
fn fixture_as(name: &str, rel: &str) -> SourceFile {
    let text =
        std::fs::read_to_string(fixtures().join(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
    SourceFile::from_text(rel, &text)
}

fn lines(diags: &[Diagnostic]) -> Vec<usize> {
    diags.iter().map(|d| d.line).collect::<Vec<_>>()
}

#[test]
fn determinism_bad_fixture_yields_exact_findings() {
    let sf = fixture_as("determinism_bad.rs", "crates/core/src/fixture.rs");
    let mut got = determinism::check(&sf);
    got.sort();
    assert_eq!(got.len(), 3, "{got:?}");
    assert_eq!(lines(&got), vec![11, 12, 14]);
    assert!(got[0].msg.contains("Instant::now"));
    assert!(got[1].msg.contains("thread_rng"));
    assert!(got[2].msg.contains("`counts`"));
}

#[test]
fn determinism_good_fixture_is_clean() {
    let sf = fixture_as("determinism_good.rs", "crates/core/src/fixture.rs");
    assert_eq!(determinism::check(&sf), vec![]);
}

#[test]
fn alloc_bad_fixture_flags_only_declared_hot_fns() {
    let sf = fixture_as("alloc_bad.rs", "crates/models/src/fixture.rs");
    let entry = HotPath {
        path: "crates/models/src/fixture.rs".to_string(),
        fns: vec!["hot_fn".to_string()],
        reason: "fixture".to_string(),
    };
    let mut got = alloc_discipline::check(&sf, &entry);
    got.sort();
    assert_eq!(lines(&got), vec![4, 5], "{got:?}");
    assert!(got[0].msg.contains(".to_vec"));
    assert!(got[1].msg.contains("format!"));

    // whole-file mode also reaches the undeclared cold function
    let whole = HotPath { fns: Vec::new(), ..entry };
    assert_eq!(alloc_discipline::check(&sf, &whole).len(), 3);
}

#[test]
fn alloc_good_fixture_is_clean() {
    let sf = fixture_as("alloc_good.rs", "crates/models/src/fixture.rs");
    let entry = HotPath {
        path: "crates/models/src/fixture.rs".to_string(),
        fns: vec!["hot_fn".to_string()],
        reason: "fixture".to_string(),
    };
    assert_eq!(alloc_discipline::check(&sf, &entry), vec![]);
}

#[test]
fn panic_bad_fixture_yields_exact_findings() {
    let sf = fixture_as("panic_bad.rs", "crates/net/src/fixture.rs");
    let mut got = panic_policy::check(&sf);
    got.sort();
    assert_eq!(lines(&got), vec![3, 5, 11], "{got:?}");
    assert!(got[0].msg.contains(".unwrap"));
    assert!(got[1].msg.contains("panic!"));
    assert!(got[2].msg.contains(".expect"));
}

#[test]
fn panic_good_fixture_is_clean() {
    let sf = fixture_as("panic_good.rs", "crates/net/src/fixture.rs");
    assert_eq!(panic_policy::check(&sf), vec![]);
}

#[test]
fn unsafe_fixtures_count_sites_and_require_safety_comments() {
    let (bad_diags, bad_sites) =
        unsafe_audit::check(&fixture_as("unsafe_bad.rs", "crates/tensor/src/fixture.rs"));
    assert_eq!(bad_sites, 1);
    assert_eq!(lines(&bad_diags), vec![3], "{bad_diags:?}");

    let (good_diags, good_sites) =
        unsafe_audit::check(&fixture_as("unsafe_good.rs", "crates/tensor/src/fixture.rs"));
    assert_eq!(good_sites, 1); // still inventoried, just documented
    assert_eq!(good_diags, vec![]);
}

#[test]
fn spec_bad_tree_finds_all_four_drifts() {
    let mut got = spec::check(&fixtures().join("spec_bad")).unwrap();
    got.sort();
    let anchors: Vec<(&str, usize)> = got.iter().map(|d| (d.file.as_str(), d.line)).collect();
    assert_eq!(
        anchors,
        vec![
            ("README.md", 7),             // usage drift (anchor: usage block)
            ("README.md", 11),            // --bogus-flag not in cli.rs
            ("docs/wire-protocol.md", 1), // Reject undocumented
            ("docs/wire-protocol.md", 8), // Welcome kind mismatch
        ],
        "{got:?}"
    );
}

#[test]
fn spec_good_tree_is_clean() {
    assert_eq!(spec::check(&fixtures().join("spec_good")).unwrap(), vec![]);
}

#[test]
fn diagnostics_render_as_file_line_lint_message() {
    let d = Diagnostic::new("crates/x/src/y.rs", 17, "determinism", "msg text".to_string());
    assert_eq!(d.to_string(), "crates/x/src/y.rs:17: [determinism] msg text");
}

/// The capstone: the real workspace must be clean. This is what makes
/// `cargo test` (tier-1) enforce every invariant ptf-lint checks.
#[test]
fn workspace_is_lint_clean() {
    let report = ptf_lint::run_all(&ptf_lint::default_root()).unwrap();
    assert!(
        report.diags.is_empty(),
        "workspace has lint findings:\n{}",
        report.diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
    assert!(report.files_scanned > 100);
}
