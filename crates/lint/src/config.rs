//! The hot-path declaration file (`crates/lint/hot_paths.toml`) and its
//! minimal hand-rolled parser.
//!
//! The file is the static counterpart of the `CountingAlloc` runtime
//! proof: it declares which functions are on the allocation-free round
//! hot path, and the alloc-discipline lint then bans allocating
//! constructs inside exactly those spans. Only the TOML subset the file
//! needs is parsed (ptf-lint is dependency-free by design):
//!
//! ```toml
//! [[hot_path]]
//! path = "crates/tensor/src/kernels.rs"   # whole file when `fns` absent
//! fns = ["dot", "sum"]                    # otherwise just these spans
//! reason = "why this is hot"
//! ```

use std::fs;
use std::path::Path;

/// One declared hot region: a file, optionally narrowed to functions.
#[derive(Clone, Debug, PartialEq)]
pub struct HotPath {
    pub path: String,
    /// Function names whose bodies are hot; empty = the whole file.
    pub fns: Vec<String>,
    pub reason: String,
}

/// Loads and parses the hot-path list.
pub fn load_hot_paths(path: &Path) -> Result<Vec<HotPath>, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    parse_hot_paths(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Parses the restricted TOML subset documented in the module header.
pub fn parse_hot_paths(text: &str) -> Result<Vec<HotPath>, String> {
    let mut out: Vec<HotPath> = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut n = 0;
    while n < lines.len() {
        let mut line = strip_toml_comment(lines[n]).trim().to_string();
        // join a multi-line array onto one logical line
        while line.contains('[')
            && !line.contains(']')
            && !line.starts_with("[[")
            && n + 1 < lines.len()
        {
            n += 1;
            line.push(' ');
            line.push_str(strip_toml_comment(lines[n]).trim());
        }
        let line = line.as_str();
        n += 1;
        if line.is_empty() {
            continue;
        }
        if line == "[[hot_path]]" {
            out.push(HotPath { path: String::new(), fns: Vec::new(), reason: String::new() });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {n}: expected `key = value`, got {line:?}"));
        };
        let entry = out.last_mut().ok_or(format!("line {n}: key before [[hot_path]]"))?;
        let (key, value) = (key.trim(), value.trim());
        match key {
            "path" => entry.path = parse_str(value).ok_or(bad(n, key, value))?,
            "reason" => entry.reason = parse_str(value).ok_or(bad(n, key, value))?,
            "fns" => entry.fns = parse_str_array(value).ok_or(bad(n, key, value))?,
            other => return Err(format!("line {n}: unknown key {other:?}")),
        }
    }
    for e in &out {
        if e.path.is_empty() {
            return Err("every [[hot_path]] needs a `path`".to_string());
        }
        if e.reason.is_empty() {
            return Err(format!("{}: every [[hot_path]] needs a `reason`", e.path));
        }
    }
    Ok(out)
}

fn bad(n: usize, key: &str, value: &str) -> String {
    format!("line {n}: bad value for {key}: {value:?}")
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_str(v: &str) -> Option<String> {
    let v = v.trim();
    v.strip_prefix('"')?.strip_suffix('"').map(str::to_string)
}

fn parse_str_array(v: &str) -> Option<Vec<String>> {
    let v = v.trim().strip_prefix('[')?.strip_suffix(']')?;
    let mut out = Vec::new();
    for part in v.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_str(part)?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_with_and_without_fns() {
        let text = "\n# comment\n[[hot_path]]\npath = \"a/b.rs\" # trailing\nreason = \"whole file\"\n\n[[hot_path]]\npath = \"c.rs\"\nfns = [\"f\", \"g\"]\nreason = \"two fns\"\n";
        let got = parse_hot_paths(text).unwrap();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].path, "a/b.rs");
        assert!(got[0].fns.is_empty());
        assert_eq!(got[1].fns, vec!["f".to_string(), "g".to_string()]);
    }

    #[test]
    fn rejects_missing_path_and_stray_keys() {
        assert!(parse_hot_paths("[[hot_path]]\nreason = \"x\"\n").is_err());
        assert!(parse_hot_paths("path = \"x\"\n").is_err());
        assert!(parse_hot_paths("[[hot_path]]\npath = \"x\"\nbogus = \"y\"\n").is_err());
    }
}
