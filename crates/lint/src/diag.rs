//! Diagnostics and the lint registry.
//!
//! Every finding is one [`Diagnostic`] rendered as `file:line: [lint]
//! message` — greppable, editor-clickable, and stable enough for the
//! fixture tests to assert on exactly.

use std::fmt;

/// One lint finding, anchored to a workspace-relative file and 1-based
/// line. Ordering is (file, line, lint, msg) so reports read top-down
/// per file.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub lint: &'static str,
    pub msg: String,
}

impl Diagnostic {
    pub fn new(file: &str, line: usize, lint: &'static str, msg: String) -> Self {
        Self { file: file.to_string(), line, lint, msg }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.lint, self.msg)
    }
}

/// Names of the enforced lints plus the "why" shown by `--explain`.
pub const LINTS: &[(&str, &str)] = &[
    (
        "determinism",
        "The repo's headline guarantee is that a run is bit-identical at any \
thread count and across processes (PR 3): every RNG must be derived from the \
run seed via `derive_seed`/`RngStream`, and no protocol/round/model code may \
observe wall-clock time or iterate a `HashMap`/`HashSet` (std hash order is \
seeded per process, so iteration order silently differs across runs — float \
reductions or graph construction over it diverge traces). Use sorted \
collections (`BTreeMap`, sorted `Vec`) where order can reach an observable \
value, or annotate a provably order-independent site with \
`// lint: allow(determinism) — <why>`.",
    ),
    (
        "alloc-discipline",
        "The round hot path performs zero steady-state heap allocations, \
proven at runtime by `CountingAlloc` in tests/hot_path.rs — but only for the \
shapes those tests run. This lint gives the proof static coverage: functions \
declared hot in crates/lint/hot_paths.toml may not contain allocating \
constructs (`Vec::new`, `vec!`, `with_capacity`, `.collect`, `.to_vec`, \
`format!`, `.clone()`, ...). Move allocation to setup/scratch construction, \
or annotate a cold branch with `// lint: allow(alloc-discipline) — <why>`.",
    ),
    (
        "panic-policy",
        "`ptf-net` servers and the CLI are deployment surfaces: a panic tears \
down a fleet's round loop, while the PR 7 error contract is exit-1 with a \
message. Production paths in crates/net/src and src/ must propagate errors \
(`?`, `Result`) instead of `unwrap()`/`expect()`/`panic!`. Test modules are \
exempt. Truly infallible cases (e.g. a fixed-size slice-to-array conversion) \
should be rewritten to be visibly infallible, or annotated with \
`// lint: allow(panic-policy) — <why>`.",
    ),
    (
        "unsafe-audit",
        "Every `unsafe` site must carry an adjacent `// SAFETY:` comment \
stating the invariant that makes it sound, and be listed with a matching \
site count in docs/unsafe-inventory.md, so the unsafe surface is reviewable \
in one place and silent growth is caught as inventory drift. The allocator \
shim (CountingAlloc) is the canonical entry.",
    ),
    (
        "spec-conformance",
        "Normative docs must match the code they describe: the frame-kind \
table in docs/wire-protocol.md must equal the `FrameKind` enum in \
crates/net/src/wire.rs (name and discriminant, both directions), the README \
usage block must be a verbatim copy of the CLI's `USAGE` text, and every \
`--flag` a README `ptf` invocation mentions must exist in src/cli.rs. Drift \
in either direction is an error — fix the doc or the code, never ignore.",
    ),
];

/// Looks up the explanation for `--explain <name>`.
pub fn explain(name: &str) -> Option<&'static str> {
    LINTS.iter().find(|(n, _)| *n == name).map(|(_, e)| *e)
}
