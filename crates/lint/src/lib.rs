//! ptf-lint: the workspace invariant checker.
//!
//! A dependency-free, tidy-style static analyzer that walks every
//! first-party `.rs` file and enforces the repo's cross-cutting
//! invariants with `file:line` diagnostics:
//!
//! - **determinism** — no entropy-seeded RNGs, wall-clock reads, or
//!   hash-order iteration in protocol/round/model code;
//! - **alloc-discipline** — no allocating constructs in functions
//!   declared hot in `crates/lint/hot_paths.toml`;
//! - **panic-policy** — no `unwrap()`/`expect()`/`panic!` on `ptf-net`
//!   and CLI production paths;
//! - **unsafe-audit** — every `unsafe` has a `// SAFETY:` comment and a
//!   matching entry in `docs/unsafe-inventory.md`;
//! - **spec-conformance** — the wire-protocol doc, README usage block,
//!   and README flags match the code.
//!
//! Run it with `cargo run -p ptf-lint`; see `--explain <lint>` for the
//! rationale behind any family, and `// lint: allow(<name>) — why` to
//! suppress a justified finding at one site.

pub mod config;
pub mod diag;
pub mod lints;
pub mod source;
pub mod walk;

use diag::Diagnostic;
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

/// Everything one run produces.
pub struct Report {
    pub diags: Vec<Diagnostic>,
    pub files_scanned: usize,
    pub unsafe_sites: usize,
}

/// Runs every lint over the workspace at `root`. `Err` is an
/// infrastructure failure (unreadable file, bad config) as opposed to
/// lint findings, which land in the report.
pub fn run_all(root: &Path) -> Result<Report, String> {
    let files = walk::rust_files(root)?;
    let hot_paths = config::load_hot_paths(&root.join("crates/lint/hot_paths.toml"))?;
    for entry in &hot_paths {
        if !files.contains(&entry.path) {
            return Err(format!("hot_paths.toml: {} is not a workspace .rs file", entry.path));
        }
    }

    let mut diags = Vec::new();
    let mut unsafe_counts: BTreeMap<String, usize> = BTreeMap::new();
    for rel in &files {
        let sf = SourceFile::load(root, rel)?;
        if lints::determinism::in_scope(rel) {
            diags.extend(lints::determinism::check(&sf));
        }
        if lints::panic_policy::in_scope(rel) {
            diags.extend(lints::panic_policy::check(&sf));
        }
        for entry in hot_paths.iter().filter(|e| e.path == *rel) {
            diags.extend(lints::alloc_discipline::check(&sf, entry));
        }
        let (unsafe_diags, sites) = lints::unsafe_audit::check(&sf);
        diags.extend(unsafe_diags);
        if sites > 0 {
            unsafe_counts.insert(rel.clone(), sites);
        }
    }

    let inventory_path = root.join("docs/unsafe-inventory.md");
    if inventory_path.is_file() {
        let inv = lints::unsafe_audit::load_inventory(&inventory_path)?;
        diags.extend(lints::unsafe_audit::inventory_drift(&unsafe_counts, &inv));
    } else if !unsafe_counts.is_empty() {
        diags.push(Diagnostic::new(
            "docs/unsafe-inventory.md",
            1,
            lints::unsafe_audit::NAME,
            format!(
                "missing inventory but the workspace has {} unsafe site(s)",
                unsafe_counts.values().sum::<usize>()
            ),
        ));
    }

    diags.extend(lints::spec::check(root)?);

    diags.sort();
    diags.dedup();
    Ok(Report { diags, files_scanned: files.len(), unsafe_sites: unsafe_counts.values().sum() })
}

/// The workspace root this binary was built in: `crates/lint/../..`.
/// Overridable with `--root` so the fixture tests can point the full
/// pipeline at synthetic trees.
pub fn default_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").components().collect()
}
