//! The source model every lint runs on: a small Rust lexer that strips
//! comments and string-literal *contents* out of each line (so token
//! scans never fire inside a doc comment or an error message), while
//! keeping the comment text alongside (so `// SAFETY:` and
//! `// lint: allow(...)` annotations stay visible).
//!
//! This is deliberately a lexer, not a parser: the lints are tidy-style
//! textual invariants with `file:line` anchors, and a token-accurate
//! line model is all they need. The one structural fact recovered is
//! which lines live inside a `#[cfg(test)] mod` (test code is exempt
//! from the behavioral lints, never from the unsafe audit).

use std::fs;
use std::path::Path;

/// One lexed `.rs` file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (diagnostic anchor).
    pub rel: String,
    /// Per line: code with comments removed and string contents blanked
    /// (quotes kept, so `"..."` lexes as an empty literal).
    pub code: Vec<String>,
    /// Per line: the comment text (`//`, `///`, `/* */` interiors).
    pub comments: Vec<String>,
    /// Per line: inside a `#[cfg(test)] mod { .. }` region.
    pub is_test: Vec<bool>,
}

impl SourceFile {
    pub fn load(root: &Path, rel: &str) -> Result<Self, String> {
        let text =
            fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: cannot read: {e}"))?;
        Ok(Self::from_text(rel, &text))
    }

    pub fn from_text(rel: &str, text: &str) -> Self {
        let (code, comments) = lex(text);
        let is_test = mark_test_regions(&code);
        Self { rel: rel.to_string(), code, comments, is_test }
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Whether line `i` (0-based) carries a `lint: allow(<name>)`
    /// annotation on the same line, or on a comment-only line directly
    /// above (a trailing comment on the *previous code line* does not
    /// reach forward).
    pub fn allows(&self, i: usize, lint: &str) -> bool {
        let needle = format!("lint:allow({lint})");
        let has = |s: &str| {
            let squashed: String = s.chars().filter(|c| !c.is_whitespace()).collect();
            squashed.contains(&needle)
        };
        has(&self.comments[i])
            || (i > 0 && self.code[i - 1].trim().is_empty() && has(&self.comments[i - 1]))
    }

    /// Whether an `unsafe` on line `i` is covered by a `SAFETY:` comment:
    /// on the same line, or in the contiguous comment block directly
    /// above (blank and attribute-free comment lines only).
    pub fn has_safety_comment(&self, i: usize) -> bool {
        if self.comments[i].contains("SAFETY:") {
            return true;
        }
        let mut j = i;
        while j > 0 {
            j -= 1;
            let code_empty = self.code[j].trim().is_empty();
            if self.comments[j].contains("SAFETY:") && code_empty {
                return true;
            }
            // stop at the first line that is actual code (or an attribute)
            if !code_empty {
                return false;
            }
            // blank line with no comment also ends the adjacent block
            if self.comments[j].trim().is_empty() {
                return false;
            }
        }
        false
    }
}

/// Lexer state.
enum St {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Splits `text` into per-line (code, comment) strings. String literal
/// contents are dropped (the delimiting quotes are kept), comments are
/// routed to the comment channel, everything else to the code channel.
fn lex(text: &str) -> (Vec<String>, Vec<String>) {
    let chars: Vec<char> = text.chars().collect();
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut st = St::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            if matches!(st, St::LineComment) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        match st {
            St::Code => {
                if c == '/' && next == '/' {
                    st = St::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = St::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    code.push('"');
                    st = St::Str;
                    i += 1;
                } else if c == 'b' && next == '"' && !prev_is_ident(&code) {
                    code.push('"');
                    st = St::Str;
                    i += 2;
                } else if c == 'r' && (next == '"' || next == '#') && !prev_is_ident(&code) {
                    // raw string r"..." / r#"..."# (any hash depth)
                    let mut hashes = 0u32;
                    let mut j = i + 1;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        code.push('"');
                        st = St::RawStr(hashes);
                        i = j + 1;
                    } else {
                        code.push(c); // raw identifier or bare `r`
                        i += 1;
                    }
                } else if c == '\'' {
                    // char literal vs lifetime: '\...' or 'x' is a literal
                    if next == '\\' || chars.get(i + 2) == Some(&'\'') {
                        code.push_str("''");
                        st = St::CharLit;
                        i += 1;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                comment.push(c);
                i += 1;
            }
            St::BlockComment(d) => {
                if c == '/' && next == '*' {
                    st = St::BlockComment(d + 1);
                    i += 2;
                } else if c == '*' && next == '/' {
                    st = if d == 1 { St::Code } else { St::BlockComment(d - 1) };
                    i += 2;
                } else {
                    comment.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' && next != '\n' {
                    i += 2; // skip the escaped char ('\n' falls through for line bookkeeping)
                } else if c == '"' {
                    code.push('"');
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(h) => {
                if c == '"' && (0..h).all(|k| chars.get(i + 1 + k as usize) == Some(&'#')) {
                    code.push('"');
                    st = St::Code;
                    i += 1 + h as usize;
                } else {
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' && next != '\n' {
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    (code_lines, comment_lines)
}

fn prev_is_ident(code: &str) -> bool {
    code.chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Marks the line span of every `#[cfg(test)] mod … { … }` block.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut is_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            // the mod declaration follows the attribute (possibly after
            // further attributes), on this or one of the next few lines
            let m = (i..code.len().min(i + 4)).find(|&j| {
                let t = code[j].trim_start();
                t.starts_with("mod ") || t.starts_with("pub mod ") || code[j].contains(" mod ")
            });
            if let Some(m) = m {
                let end = match_braces_from(code, m);
                for flag in is_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    is_test
}

/// Returns the 0-based line index of the brace closing the first `{`
/// found at or after line `start` (or the last line if unbalanced).
fn match_braces_from(code: &[String], start: usize) -> usize {
    let mut depth = 0usize;
    let mut opened = false;
    for (j, line) in code.iter().enumerate().skip(start) {
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
    }
    code.len() - 1
}

/// Splits a code line into identifier and punctuation tokens (whitespace
/// dropped; `::` and `->` kept as single tokens).
pub fn tokens(line: &str) -> Vec<String> {
    let chars: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphanumeric() || c == '_' {
            let mut ident = String::new();
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                ident.push(chars[i]);
                i += 1;
            }
            out.push(ident);
        } else if c == ':' && chars.get(i + 1) == Some(&':') {
            out.push("::".to_string());
            i += 2;
        } else if c == '-' && chars.get(i + 1) == Some(&'>') {
            out.push("->".to_string());
            i += 2;
        } else {
            out.push(c.to_string());
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_separated() {
        let sf = SourceFile::from_text(
            "x.rs",
            "let x = \"HashMap.iter()\"; // SAFETY: not really\nlet y = 2; /* thread_rng */\n",
        );
        assert!(!sf.code[0].contains("HashMap"));
        assert!(sf.code[0].contains("let x = \"\";"));
        assert!(sf.comments[0].contains("SAFETY: not really"));
        assert!(!sf.code[1].contains("thread_rng"));
        assert!(sf.comments[1].contains("thread_rng"));
    }

    #[test]
    fn raw_strings_and_chars_lex_through() {
        let sf = SourceFile::from_text(
            "x.rs",
            "let s = r#\"multi \" line\nstill string .unwrap()\"#;\nlet c = '\\n'; let lt: &'static str = \"\";\n",
        );
        assert!(!sf.code[1].contains("unwrap"));
        assert!(sf.code[2].contains("&'static str"));
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let sf = SourceFile::from_text("x.rs", src);
        assert!(!sf.is_test[0]);
        assert!(sf.is_test[1] && sf.is_test[2] && sf.is_test[3] && sf.is_test[4]);
        assert!(!sf.is_test[5]);
    }

    #[test]
    fn allow_annotations_match_same_line_and_above() {
        let src = "a(); // lint: allow(determinism) — order-independent sum\nb();\n// lint: allow(panic-policy) — infallible\nc();\n";
        let sf = SourceFile::from_text("x.rs", src);
        assert!(sf.allows(0, "determinism"));
        assert!(!sf.allows(1, "determinism"));
        assert!(sf.allows(3, "panic-policy"));
    }

    #[test]
    fn safety_comment_lookup_scans_the_adjacent_block() {
        let src = "// SAFETY: delegates to System\nunsafe impl X for Y {}\n\nunsafe fn undocumented() {}\n";
        let sf = SourceFile::from_text("x.rs", src);
        assert!(sf.has_safety_comment(1));
        assert!(!sf.has_safety_comment(3));
    }
}
