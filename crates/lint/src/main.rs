//! `ptf-lint` CLI. Exit codes: 0 clean, 1 findings, 2 usage or
//! infrastructure error — so CI can distinguish "violations" from
//! "the linter itself broke".

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
ptf-lint — workspace invariant checker (see docs/static-analysis notes in README)

USAGE:
    ptf-lint [--root DIR]     lint the workspace (default: this repo)
    ptf-lint --list           list the enforced lints
    ptf-lint --explain LINT   print the rationale for one lint
    ptf-lint --help           this text

Suppress a justified finding at one site with
    // lint: allow(<lint-name>) — <why>
on the offending line or the line above.";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ptf-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: Vec<String>) -> Result<ExitCode, String> {
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            "--list" => {
                for (name, _) in ptf_lint::diag::LINTS {
                    println!("{name}");
                }
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let name = args.get(i + 1).ok_or("--explain needs a lint name")?;
                match ptf_lint::diag::explain(name) {
                    Some(text) => {
                        println!("{name}\n\n{text}");
                        return Ok(ExitCode::SUCCESS);
                    }
                    None => {
                        return Err(format!(
                            "unknown lint {name:?}; `ptf-lint --list` shows the lint names"
                        ))
                    }
                }
            }
            "--root" => {
                let dir = args.get(i + 1).ok_or("--root needs a directory")?;
                root = Some(PathBuf::from(dir));
                i += 2;
            }
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    let root = root.unwrap_or_else(ptf_lint::default_root);
    let report = ptf_lint::run_all(&root)?;
    for d in &report.diags {
        println!("{d}");
    }
    if report.diags.is_empty() {
        println!(
            "ptf-lint: clean — {} files scanned, {} unsafe site(s) inventoried",
            report.files_scanned, report.unsafe_sites
        );
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "ptf-lint: {} finding(s); `ptf-lint --explain <lint>` explains each check",
            report.diags.len()
        );
        Ok(ExitCode::FAILURE)
    }
}
