//! Workspace file discovery: every first-party `.rs` file, in a
//! deterministic order (the lint practices what it preaches).

use std::fs;
use std::path::Path;

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", ".github"];

/// Path prefixes excluded from scanning: the fixture corpus contains
/// deliberate violations the self-tests assert on.
const SKIP_PREFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Returns workspace-relative paths (forward slashes) of every `.rs`
/// file under `root`, sorted.
pub fn rust_files(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    collect(root, Path::new(""), &mut out)?;
    out.sort();
    Ok(out)
}

fn collect(root: &Path, rel: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let dir = root.join(rel);
    let entries = fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let sub = rel.join(name.as_ref());
        let sub_str = sub.to_string_lossy().replace('\\', "/");
        if SKIP_PREFIXES.iter().any(|p| sub_str.starts_with(p)) {
            continue;
        }
        let ty = entry.file_type().map_err(|e| format!("{sub_str}: {e}"))?;
        if ty.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect(root, &sub, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(sub_str);
        }
    }
    Ok(())
}
