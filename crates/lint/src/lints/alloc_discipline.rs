//! Allocation-discipline lint: no allocating constructs inside declared
//! hot-path functions.
//!
//! `tests/hot_path.rs` proves zero steady-state heap allocations at
//! runtime — for the shapes it runs. This lint extends the proof
//! statically to every function declared hot in
//! `crates/lint/hot_paths.toml`, across all five protocols: the listed
//! spans may not contain constructs that allocate on every call.

use crate::config::HotPath;
use crate::diag::Diagnostic;
use crate::source::{tokens, SourceFile};

pub const NAME: &str = "alloc-discipline";

/// Constructs that heap-allocate. Substring matches on comment- and
/// string-stripped code; `.cloned()` deliberately does not match
/// `.clone()`.
const BANNED: &[&str] = &[
    "Vec::new",
    "vec!",
    "with_capacity",
    ".collect",
    ".to_vec",
    ".to_owned",
    ".to_string",
    "format!",
    "String::from",
    "String::new",
    "Box::new",
    ".clone()",
];

pub fn check(sf: &SourceFile, entry: &HotPath) -> Vec<Diagnostic> {
    let mut hot = vec![entry.fns.is_empty(); sf.len()];
    if !entry.fns.is_empty() {
        for (name, start, end) in function_spans(&sf.code) {
            if entry.fns.contains(&name) {
                for flag in hot.iter_mut().take(end + 1).skip(start) {
                    *flag = true;
                }
            }
        }
    }
    let mut diags = Vec::new();
    for (i, &is_hot) in hot.iter().enumerate() {
        if !is_hot || sf.is_test[i] || sf.allows(i, NAME) {
            continue;
        }
        for tok in BANNED {
            if sf.code[i].contains(tok) {
                diags.push(Diagnostic::new(
                    &sf.rel,
                    i + 1,
                    NAME,
                    format!(
                        "`{tok}` allocates inside declared hot path ({}); move it to \
                         setup/scratch or annotate a cold branch with `lint: allow({NAME})`",
                        entry.reason
                    ),
                ));
            }
        }
    }
    diags
}

/// Locates `(name, start_line, end_line)` (0-based, inclusive) of every
/// function with a body. Signatures never contain `{`, so the body is
/// the brace-balanced span from the first `{` after the `fn` name;
/// bodyless trait methods (`;` first) are skipped.
pub fn function_spans(code: &[String]) -> Vec<(String, usize, usize)> {
    let stream: Vec<(usize, String)> = code
        .iter()
        .enumerate()
        .flat_map(|(line, text)| tokens(text).into_iter().map(move |t| (line, t)))
        .collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < stream.len() {
        if stream[i].1 != "fn" {
            i += 1;
            continue;
        }
        let Some((fn_line, name)) = stream.get(i + 1).map(|(l, t)| (*l, t.clone())) else {
            break;
        };
        let fn_line = stream[i].0.min(fn_line);
        // find the body's `{` (or `;` for bodyless declarations)
        let mut j = i + 2;
        while j < stream.len() && stream[j].1 != "{" && stream[j].1 != ";" {
            j += 1;
        }
        if j >= stream.len() || stream[j].1 == ";" {
            i = j;
            continue;
        }
        // brace-match the body
        let mut depth = 0usize;
        let mut end = stream[j].0;
        while j < stream.len() {
            match stream[j].1.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        end = stream[j].0;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((name, fn_line, end));
        i = j + 1;
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(fns: &[&str]) -> HotPath {
        HotPath {
            path: "x.rs".to_string(),
            fns: fns.iter().map(|s| s.to_string()).collect(),
            reason: "test".to_string(),
        }
    }

    const SRC: &str = "\
fn cold() -> Vec<u32> {\n    (0..4).collect()\n}\n\
pub fn hot(buf: &mut Vec<f32>) {\n    buf.clear();\n    buf.push(1.0);\n}\n\
fn hot_bad(x: &[f32]) -> Vec<f32> {\n    x.to_vec()\n}\n";

    #[test]
    fn only_declared_fns_are_checked() {
        let sf = SourceFile::from_text("x.rs", SRC);
        assert!(check(&sf, &entry(&["hot"])).is_empty());
        let got = check(&sf, &entry(&["hot", "hot_bad"]));
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].line, 9);
    }

    #[test]
    fn whole_file_mode_checks_everything_but_tests() {
        let sf = SourceFile::from_text("x.rs", SRC);
        let got = check(&sf, &entry(&[]));
        assert_eq!(got.len(), 2, "{got:?}"); // cold()'s collect + hot_bad()'s to_vec
    }

    #[test]
    fn spans_cover_multiline_signatures_and_nested_braces() {
        let src = "impl S {\n    fn a(\n        x: u32,\n    ) -> u32 {\n        if x > 0 { x } else { 0 }\n    }\n    fn b(&self);\n    fn c(&self) {}\n}\n";
        let spans = function_spans(&SourceFile::from_text("x.rs", src).code);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0], ("a".to_string(), 1, 5));
        assert_eq!(spans[1].0, "c");
    }
}
