//! The five lint families. Each module exposes a `NAME` and a `check`
//! entry point; scoping (which files a lint applies to) lives with the
//! lint itself, orchestration in [`crate::run_all`].

pub mod alloc_discipline;
pub mod determinism;
pub mod panic_policy;
pub mod spec;
pub mod unsafe_audit;
