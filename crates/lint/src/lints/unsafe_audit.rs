//! Unsafe audit: every `unsafe` site needs an adjacent `// SAFETY:`
//! comment, and the file must be inventoried in
//! `docs/unsafe-inventory.md` with a matching site count.
//!
//! The inventory makes the entire unsafe surface reviewable in one
//! place; the count check turns silent growth (or a stale entry after a
//! removal) into a lint failure. Unlike the behavioral lints, test code
//! is *not* exempt — unsoundness does not care where it runs.

use crate::diag::Diagnostic;
use crate::source::{tokens, SourceFile};
use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

pub const NAME: &str = "unsafe-audit";

/// Parsed `docs/unsafe-inventory.md`: file → declared site count.
pub type Inventory = BTreeMap<String, usize>;

/// Checks one file's `unsafe` sites for SAFETY comments and returns the
/// diagnostics plus the number of sites found (for the inventory check).
pub fn check(sf: &SourceFile) -> (Vec<Diagnostic>, usize) {
    let mut diags = Vec::new();
    let mut sites = 0usize;
    for i in 0..sf.len() {
        let n = tokens(&sf.code[i]).iter().filter(|t| *t == "unsafe").count();
        if n == 0 {
            continue;
        }
        sites += n;
        if !sf.has_safety_comment(i) && !sf.allows(i, NAME) {
            diags.push(Diagnostic::new(
                &sf.rel,
                i + 1,
                NAME,
                "`unsafe` without an adjacent `// SAFETY:` comment stating the invariant \
                 that makes it sound"
                    .to_string(),
            ));
        }
    }
    (diags, sites)
}

/// Loads the inventory table. Rows look like
/// `| crates/tensor/src/alloc.rs | 5 | why |`; non-numeric second cells
/// (header, separator) are skipped.
pub fn load_inventory(path: &Path) -> Result<Inventory, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("{}: cannot read: {e}", path.display()))?;
    Ok(parse_inventory(&text))
}

pub fn parse_inventory(text: &str) -> Inventory {
    let mut inv = Inventory::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        let file = cells[0].trim_matches('`');
        if let Ok(count) = cells[1].parse::<usize>() {
            inv.insert(file.to_string(), count);
        }
    }
    inv
}

/// Compares counted sites against the inventory, both directions.
pub fn inventory_drift(counts: &BTreeMap<String, usize>, inv: &Inventory) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (file, &n) in counts {
        match inv.get(file) {
            None => diags.push(Diagnostic::new(
                file,
                1,
                NAME,
                format!("{n} unsafe site(s) but no entry in docs/unsafe-inventory.md"),
            )),
            Some(&m) if m != n => diags.push(Diagnostic::new(
                file,
                1,
                NAME,
                format!("{n} unsafe site(s) but docs/unsafe-inventory.md declares {m} — update the inventory"),
            )),
            Some(_) => {}
        }
    }
    for (file, &m) in inv {
        if !counts.contains_key(file) {
            diags.push(Diagnostic::new(
                "docs/unsafe-inventory.md",
                1,
                NAME,
                format!("stale entry: {file} declares {m} unsafe site(s) but the file has none"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_unsafe_passes_undocumented_fails() {
        let src = "// SAFETY: delegates to System\nunsafe impl A for B {}\n\nfn f() {\n    let p = unsafe { q.add(1) };\n}\n";
        let (diags, sites) = check(&SourceFile::from_text("x.rs", src));
        assert_eq!(sites, 2);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 5);
    }

    #[test]
    fn inventory_drift_is_caught_both_ways() {
        let inv = parse_inventory(
            "| file | sites | why |\n|---|---:|---|\n| a.rs | 2 | x |\n| gone.rs | 1 | y |\n",
        );
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 3); // count mismatch
        counts.insert("new.rs".to_string(), 1); // unlisted
        let diags = inventory_drift(&counts, &inv);
        assert_eq!(diags.len(), 3, "{diags:?}");
    }

    #[test]
    fn matching_inventory_is_clean() {
        let inv = parse_inventory("| `a.rs` | 2 | x |\n");
        let mut counts = BTreeMap::new();
        counts.insert("a.rs".to_string(), 2);
        assert!(inventory_drift(&counts, &inv).is_empty());
    }
}
