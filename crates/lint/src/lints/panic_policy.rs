//! Panic-policy lint: production paths in the networked stack and the
//! CLI must propagate errors, not panic.
//!
//! The PR 7 contract: bind/connect/mid-run failures exit 1 with a
//! message. A stray `unwrap()` in the server's round loop instead tears
//! down the whole fleet with a backtrace. Test modules are exempt;
//! infallible conversions should be rewritten to be visibly infallible
//! (e.g. `from_le_bytes` on indexed bytes rather than
//! `try_into().unwrap()`).

use crate::diag::Diagnostic;
use crate::source::SourceFile;

pub const NAME: &str = "panic-policy";

/// Production surfaces: the networked deployment stack and the binary's
/// own sources (`src/cli.rs`, `src/bin/ptf.rs`, `src/lib.rs`).
const SCOPE: &[&str] = &["crates/net/src/", "src/"];

/// Panicking constructs. `.unwrap_or*` and `.expect_err` do not match;
/// `debug_assert!` is allowed (stripped in release builds).
const BANNED: &[(&str, &str)] = &[
    (".unwrap()", "propagate the error (`?`) or rewrite to be visibly infallible"),
    (".expect(", "propagate the error (`?`) instead of panicking with a message"),
    ("panic!", "return an error; the CLI contract is exit-1 with a message"),
    ("unreachable!", "return an error; unreachable states should be typed away"),
    ("todo!", "unfinished code must not ship on a production path"),
    ("unimplemented!", "unfinished code must not ship on a production path"),
];

pub fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|p| rel.starts_with(p))
}

pub fn check(sf: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for i in 0..sf.len() {
        if sf.is_test[i] || sf.allows(i, NAME) {
            continue;
        }
        for (tok, fix) in BANNED {
            if sf.code[i].contains(tok) {
                diags.push(Diagnostic::new(
                    &sf.rel,
                    i + 1,
                    NAME,
                    format!("`{}` on a production path: {fix}", tok.trim_end_matches('(')),
                ));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::from_text("crates/net/src/x.rs", src))
    }

    #[test]
    fn flags_unwrap_expect_panic() {
        let got = diags("let x = y.unwrap();\nlet z = w.expect(\"boom\");\npanic!(\"no\");\n");
        assert_eq!(got.len(), 3);
        assert_eq!((got[0].line, got[1].line, got[2].line), (1, 2, 3));
    }

    #[test]
    fn unwrap_or_family_is_fine() {
        assert!(diags("let x = y.unwrap_or(0);\nlet z = w.unwrap_or_else(|| 1);\nlet q = r.unwrap_or_default();\n").is_empty());
    }

    #[test]
    fn tests_and_allows_are_exempt() {
        let src = "// lint: allow(panic-policy) — poisoned mutex is unrecoverable\nlet g = m.lock().unwrap();\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn scope_covers_net_and_cli() {
        assert!(in_scope("crates/net/src/transport.rs"));
        assert!(in_scope("src/bin/ptf.rs"));
        assert!(!in_scope("crates/models/src/mf.rs"));
        assert!(!in_scope("crates/net/tests/loopback_parity.rs"));
    }
}
