//! Spec-conformance checks: normative docs must match the code.
//!
//! Three invariants, each checked in both directions where drift can
//! hide:
//!
//! 1. the frame-kind table in `docs/wire-protocol.md` equals the
//!    `FrameKind` enum in `crates/net/src/wire.rs` (names *and*
//!    discriminants);
//! 2. the README usage block is a verbatim (whitespace-normalized) copy
//!    of the CLI's `USAGE` text;
//! 3. every `--flag` that a README `ptf` invocation mentions exists in
//!    `src/cli.rs`.
//!
//! These run on raw file text, not the lexed model — docs are not Rust,
//! and for `wire.rs`/`cli.rs` the string literals are exactly what we
//! need to read.

use crate::diag::Diagnostic;
use std::fs;
use std::path::Path;

pub const NAME: &str = "spec-conformance";

const WIRE_RS: &str = "crates/net/src/wire.rs";
const WIRE_MD: &str = "docs/wire-protocol.md";
const CLI_RS: &str = "src/cli.rs";
const README: &str = "README.md";

pub fn check(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let read = |rel: &str| {
        fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: cannot read: {e}"))
    };
    let wire_rs = read(WIRE_RS)?;
    let wire_md = read(WIRE_MD)?;
    let cli_rs = read(CLI_RS)?;
    let readme = read(README)?;
    let mut diags = check_frame_kinds(&wire_rs, &wire_md);
    diags.extend(check_usage_sync(&cli_rs, &readme));
    diags.extend(check_readme_flags(&cli_rs, &readme));
    Ok(diags)
}

/// `Name = N` variants of `enum FrameKind { … }` in wire.rs.
pub fn parse_frame_enum(src: &str) -> Vec<(String, u8)> {
    let mut out = Vec::new();
    let mut in_enum = false;
    for line in src.lines() {
        let t = line.trim();
        if t.contains("enum FrameKind") {
            in_enum = true;
            continue;
        }
        if in_enum {
            if t.starts_with('}') {
                break;
            }
            // `Hello = 1,`
            if let Some((name, rest)) = t.split_once('=') {
                let name = name.trim();
                let num = rest.trim().trim_end_matches(',');
                if let (true, Ok(n)) = (is_variant(name), num.parse::<u8>()) {
                    out.push((name.to_string(), n));
                }
            }
        }
    }
    out
}

fn is_variant(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
        && s.chars().all(|c| c.is_alphanumeric())
}

/// `| 1 | `Hello` | …` rows of the frame-kind table in the protocol doc.
pub fn parse_frame_table(md: &str) -> Vec<(String, u8, usize)> {
    let mut out = Vec::new();
    for (i, line) in md.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = t.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 2 {
            continue;
        }
        if let Ok(kind) = cells[0].parse::<u8>() {
            let name = cells[1].trim_matches('`');
            if is_variant(name) {
                out.push((name.to_string(), kind, i + 1));
            }
        }
    }
    out
}

fn check_frame_kinds(wire_rs: &str, wire_md: &str) -> Vec<Diagnostic> {
    let code = parse_frame_enum(wire_rs);
    let doc = parse_frame_table(wire_md);
    let mut diags = Vec::new();
    if code.is_empty() {
        diags.push(Diagnostic::new(
            WIRE_RS,
            1,
            NAME,
            "no `enum FrameKind` with explicit discriminants found (the doc table is checked against it)".to_string(),
        ));
        return diags;
    }
    if doc.is_empty() {
        diags.push(Diagnostic::new(
            WIRE_MD,
            1,
            NAME,
            "no frame-kind table rows (`| N | `Name` | …`) found".to_string(),
        ));
        return diags;
    }
    for (name, n, line) in &doc {
        match code.iter().find(|(c, _)| c == name) {
            None => diags.push(Diagnostic::new(
                WIRE_MD,
                *line,
                NAME,
                format!("frame `{name}` documented but absent from FrameKind in {WIRE_RS}"),
            )),
            Some((_, m)) if m != n => diags.push(Diagnostic::new(
                WIRE_MD,
                *line,
                NAME,
                format!("frame `{name}` documented as kind {n} but FrameKind says {m}"),
            )),
            Some(_) => {}
        }
    }
    for (name, m) in &code {
        if !doc.iter().any(|(d, _, _)| d == name) {
            diags.push(Diagnostic::new(
                WIRE_MD,
                1,
                NAME,
                format!("FrameKind::{name} (kind {m}) is not documented in the frame-kind table"),
            ));
        }
    }
    diags
}

/// The command lines of `USAGE` in cli.rs: every line between `USAGE:`
/// and the first blank line of the literal, whitespace-normalized.
pub fn usage_lines(cli_src: &str) -> Vec<String> {
    let Some(at) = cli_src.find("USAGE: &str") else {
        return Vec::new();
    };
    let Some(open) = cli_src[at..].find('"') else {
        return Vec::new();
    };
    let body = &cli_src[at + open + 1..];
    let Some(close) = body.find("\";") else {
        return Vec::new();
    };
    let body = &body[..close];
    let mut out = Vec::new();
    let mut in_usage = false;
    for line in body.lines() {
        let line = line.trim_end_matches('\\');
        if line.trim() == "USAGE:" {
            in_usage = true;
            continue;
        }
        if in_usage {
            if line.trim().is_empty() {
                break;
            }
            out.push(normalize(line));
        }
    }
    out
}

fn normalize(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// README must contain every USAGE command line verbatim (modulo
/// whitespace) — the quickstart block is a copy of `ptf help`, and this
/// is how model/flag lists in the README stay current.
fn check_usage_sync(cli_rs: &str, readme: &str) -> Vec<Diagnostic> {
    let usage = usage_lines(cli_rs);
    if usage.is_empty() {
        return vec![Diagnostic::new(
            CLI_RS,
            1,
            NAME,
            "could not locate the USAGE block (`USAGE: &str` with a `USAGE:` section)".to_string(),
        )];
    }
    let readme_norm: Vec<String> = readme.lines().map(normalize).collect();
    let anchor = readme_norm.iter().position(|l| l.starts_with("ptf stats")).map(|i| i + 1);
    let mut diags = Vec::new();
    for line in &usage {
        if !readme_norm.contains(line) {
            diags.push(Diagnostic::new(
                README,
                anchor.unwrap_or(1),
                NAME,
                format!(
                    "usage drift: `{line}` (from cli.rs USAGE) is missing — re-copy the \
                     `ptf help` block into the README"
                ),
            ));
        }
    }
    diags
}

/// Flags mentioned by `ptf` invocations in the README, with line anchors.
pub fn readme_ptf_flags(readme: &str) -> Vec<(usize, String)> {
    let trim = |t: &str| t.trim_matches(|c: char| "`,.();:*\"'".contains(c)).to_string();
    let mut out = Vec::new();
    for (i, line) in readme.lines().enumerate() {
        let toks: Vec<String> = line.split_whitespace().map(&trim).collect();
        let Some(at) = toks.iter().position(|t| t == "ptf" || t.ends_with("/ptf")) else {
            continue;
        };
        for t in &toks[at + 1..] {
            if let Some(name) = t.strip_prefix("--") {
                if !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '-') {
                    out.push((i + 1, name.to_string()));
                }
            }
        }
    }
    out
}

/// Every README-mentioned flag must exist in cli.rs (as `--flag` in the
/// USAGE text or as the bare `"flag"` option literal).
fn check_readme_flags(cli_rs: &str, readme: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (line, flag) in readme_ptf_flags(readme) {
        let known =
            cli_rs.contains(&format!("--{flag}")) || cli_rs.contains(&format!("\"{flag}\""));
        if !known {
            diags.push(Diagnostic::new(
                README,
                line,
                NAME,
                format!("`--{flag}` is documented but not defined in {CLI_RS}"),
            ));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENUM: &str = "pub enum FrameKind {\n    Hello = 1,\n    Welcome = 2,\n}\n";

    #[test]
    fn frame_enum_and_table_parse() {
        assert_eq!(
            parse_frame_enum(ENUM),
            vec![("Hello".to_string(), 1), ("Welcome".to_string(), 2)]
        );
        let md = "| kind | frame |\n|---:|---|\n| 1 | `Hello` |\n| 2 | `Welcome` |\n";
        assert_eq!(parse_frame_table(md).len(), 2);
    }

    #[test]
    fn frame_drift_is_caught_in_both_directions() {
        let md_wrong_kind = "| 1 | `Hello` |\n| 3 | `Welcome` |\n";
        assert_eq!(check_frame_kinds(ENUM, md_wrong_kind).len(), 1);
        let md_missing = "| 1 | `Hello` |\n";
        assert_eq!(check_frame_kinds(ENUM, md_missing).len(), 1);
        let md_extra = "| 1 | `Hello` |\n| 2 | `Welcome` |\n| 9 | `Bogus` |\n";
        assert_eq!(check_frame_kinds(ENUM, md_extra).len(), 1);
    }

    const CLI: &str = "pub const USAGE: &str = \"\\\nptf — tool\n\nUSAGE:\n    ptf stats [--scale small|paper] [--seed N]\n    ptf train --dataset D [--json]\n\nnotes with --other-flag text\n\";\n";

    #[test]
    fn usage_sync_flags_drift() {
        let ok = "```text\nptf stats    [--scale small|paper] [--seed N]\nptf train --dataset D [--json]\n```\n";
        assert!(check_usage_sync(CLI, ok).is_empty());
        let stale =
            "```text\nptf stats [--scale small|paper] [--seed N]\nptf train --dataset D\n```\n";
        let got = check_usage_sync(CLI, stale);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].msg.contains("ptf train"));
    }

    #[test]
    fn readme_flags_are_scoped_to_ptf_invocations() {
        let md = "Run `ptf train --dataset ml100k --json`.\ncargo bench --bench foo\n./target/release/ptf serve --port 0\n";
        let flags = readme_ptf_flags(md);
        let names: Vec<&str> = flags.iter().map(|(_, f)| f.as_str()).collect();
        assert_eq!(names, vec!["dataset", "json", "port"]);
    }

    #[test]
    fn unknown_readme_flag_is_reported() {
        let got = check_readme_flags(CLI, "`ptf train --bogus-flag 3`\n");
        assert_eq!(got.len(), 1);
        assert!(got[0].msg.contains("--bogus-flag"));
    }
}
