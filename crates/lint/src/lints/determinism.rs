//! Determinism lints: no entropy, no wall clock, no hash-order
//! iteration in protocol/round/model code.
//!
//! The invariant (PR 3): a run is a pure function of its config — the
//! only RNGs are `derive_seed`/`RngStream`-derived streams, and nothing
//! order-unstable feeds an observable value. `HashMap`/`HashSet`
//! *lookups* are fine; *iteration* is not, because std's hash seed
//! differs per process, so iteration order silently reshuffles float
//! reductions and graph construction between two otherwise identical
//! runs.

use crate::diag::Diagnostic;
use crate::source::{tokens, SourceFile};

pub const NAME: &str = "determinism";

/// Crates whose sources are protocol/round/model code. `crates/net` is
/// deliberately absent (its deadline machinery *is* wall-clock time and
/// affects only straggler drops, which the parity suite pins as
/// equivalent to unsampled clients), as are the benches.
const SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/federated/src/",
    "crates/baselines/src/",
    "crates/models/src/",
    "crates/comm/src/",
    "crates/data/src/",
    "crates/tensor/src/",
    "crates/metrics/src/",
    "crates/privacy/src/",
];

/// Tokens that read entropy or the wall clock.
const BANNED: &[(&str, &str)] = &[
    ("thread_rng", "entropy-seeded RNG; derive one via `derive_seed`/`RngStream` instead"),
    ("from_entropy", "entropy-seeded RNG; derive one via `derive_seed`/`RngStream` instead"),
    ("rand::random", "entropy-seeded RNG; derive one via `derive_seed`/`RngStream` instead"),
    ("SystemTime", "wall-clock read; runs must be pure functions of their config"),
    ("Instant::now", "wall-clock read; runs must be pure functions of their config"),
];

/// Methods that observe a hash collection's iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

pub fn in_scope(rel: &str) -> bool {
    SCOPE.iter().any(|p| rel.starts_with(p))
}

pub fn check(sf: &SourceFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let hash_names = hash_bindings(sf);
    for i in 0..sf.len() {
        if sf.is_test[i] || sf.allows(i, NAME) {
            continue;
        }
        let code = &sf.code[i];
        for (tok, why) in BANNED {
            if code.contains(tok) {
                diags.push(Diagnostic::new(&sf.rel, i + 1, NAME, format!("`{tok}`: {why}")));
            }
        }
        for name in &hash_names {
            if for_loop_iterates(code, name) {
                diags.push(iter_diag(sf, i, name));
            }
        }
    }
    // `name.iter()` calls, found on a flat cross-line token stream so
    // multi-line method chains (`self\n.edges\n.iter()`) still match.
    let stream: Vec<(usize, String)> = sf
        .code
        .iter()
        .enumerate()
        .flat_map(|(line, text)| tokens(text).into_iter().map(move |t| (line, t)))
        .collect();
    for idx in 0..stream.len() {
        let (line, tok) = &stream[idx];
        if !hash_names.contains(tok) {
            continue;
        }
        let is_iter_call = stream.get(idx + 1).map(|(_, t)| t.as_str()) == Some(".")
            && stream.get(idx + 2).is_some_and(|(_, t)| ITER_METHODS.contains(&t.as_str()))
            && stream.get(idx + 3).map(|(_, t)| t.as_str()) == Some("(");
        if !is_iter_call {
            continue;
        }
        let method_line = stream[idx + 2].0;
        let exempt = [*line, method_line].iter().any(|&l| sf.is_test[l] || sf.allows(l, NAME));
        if !exempt {
            diags.push(iter_diag(sf, *line, tok));
        }
    }
    diags
}

fn iter_diag(sf: &SourceFile, line: usize, name: &str) -> Diagnostic {
    Diagnostic::new(
        &sf.rel,
        line + 1,
        NAME,
        format!(
            "iteration over hash collection `{name}`: std hash order is \
             process-seeded; use a sorted collection or annotate an \
             order-independent use with `lint: allow({NAME})`"
        ),
    )
}

/// Collects identifiers bound to a `HashMap`/`HashSet` anywhere in the
/// file: struct fields, lets, params, and struct-literal fields. A
/// tidy-style heuristic — names, not types — so shadowing across
/// functions is merged; allow-annotations cover the rare false hit.
fn hash_bindings(sf: &SourceFile) -> Vec<String> {
    let mut names = Vec::new();
    for code in &sf.code {
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        let toks = tokens(code);
        for (idx, t) in toks.iter().enumerate() {
            if t != "HashMap" && t != "HashSet" {
                continue;
            }
            if let Some(name) = binding_before(&toks, idx) {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// Walks left from a `HashMap`/`HashSet` token to the identifier it is
/// bound to (`name: Hash…`, `name: &mut Hash…`, `let [mut] name = Hash…`,
/// `name: path::to::Hash…`). Returns `None` for unbound positions
/// (return types, generics, `use` lines).
fn binding_before(toks: &[String], mut i: usize) -> Option<String> {
    // skip the `path::to::` prefix
    while i >= 2 && toks[i - 1] == "::" {
        i -= 2;
    }
    if i == 0 {
        return None;
    }
    let mut j = i - 1;
    // skip reference/mutability noise between `:` and the type
    while j > 0 && (toks[j] == "&" || toks[j] == "mut" || toks[j] == "'") {
        j -= 1;
    }
    match toks[j].as_str() {
        ":" if j >= 1 && is_ident(&toks[j - 1]) => Some(toks[j - 1].clone()),
        "=" => {
            // `let [mut] name = HashMap::new()`
            let mut k = j;
            while k > 0 {
                k -= 1;
                if toks[k] == "let" {
                    let name_at = if toks.get(k + 1).map(String::as_str) == Some("mut") {
                        k + 2
                    } else {
                        k + 1
                    };
                    return toks.get(name_at).filter(|t| is_ident(t)).cloned();
                }
            }
            None
        }
        _ => None,
    }
}

fn is_ident(t: &str) -> bool {
    t.chars().next().is_some_and(|c| c.is_alphabetic() || c == '_')
}

/// Does this code line `for`-iterate the hash collection bound to
/// `name` directly (without a method call)?
fn for_loop_iterates(code: &str, name: &str) -> bool {
    // `for x in [&[mut]] [recv.]*name {` — the whole collection as the
    // iterated expression (explicit `.iter()`-family calls are handled
    // by the token-stream scan, and `name.len()`-style field reads do
    // not match).
    if let Some(pos) = code.find(" in ") {
        if code.contains("for ") {
            let mut tail =
                code[pos + 4..].trim_start().trim_start_matches("&mut ").trim_start_matches('&');
            // strip any receiver chain (`self.`, `s.state.`)
            while let Some(dot) = tail.find('.') {
                let recv = &tail[..dot];
                let after = tail[dot + 1..].chars().next();
                let is_recv = !recv.is_empty()
                    && recv != name
                    && recv.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && after.is_some_and(|c| c.is_alphabetic() || c == '_');
                if !is_recv {
                    break;
                }
                tail = &tail[dot + 1..];
            }
            if let Some(rest) = tail.strip_prefix(name) {
                let next = rest.chars().next();
                if next.is_none() || next == Some(' ') || next == Some('{') {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diags(src: &str) -> Vec<Diagnostic> {
        check(&SourceFile::from_text("crates/core/src/x.rs", src))
    }

    #[test]
    fn flags_entropy_and_clock_reads() {
        let got = diags("let mut rng = rand::thread_rng();\nlet t = Instant::now();\n");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].line, 1);
        assert_eq!(got[1].line, 2);
    }

    #[test]
    fn flags_hash_iteration_but_not_lookup() {
        let src = "struct S { edges: HashMap<(u32, u32), f32> }\n\
                   fn f(s: &S) { let _ = s.edges.get(&(0, 0)); }\n\
                   fn g(s: &S) { for (k, v) in &s.edges { drop((k, v)); } }\n\
                   fn h(s: &S) { let _: Vec<_> = s.edges.iter().collect(); }\n";
        let got = diags(src);
        assert_eq!(got.len(), 2, "{got:?}");
        assert_eq!(got[0].line, 3);
        assert_eq!(got[1].line, 4);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let src = "let mut seen = HashSet::new();\n\
                   // lint: allow(determinism) — u64 sum is order-independent\n\
                   let s: u64 = seen.iter().sum();\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = thread_rng(); }\n}\n";
        assert!(diags(src).is_empty());
    }

    #[test]
    fn out_of_scope_files_are_skipped_by_caller() {
        assert!(in_scope("crates/core/src/server.rs"));
        assert!(!in_scope("crates/net/src/server.rs"));
        assert!(!in_scope("crates/bench/benches/bench_scaling.rs"));
    }
}
