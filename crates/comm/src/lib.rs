//! # ptf-comm
//!
//! Communication accounting for federated protocols.
//!
//! Table IV of the paper compares the *average per-client, per-round
//! communication cost* of PTF-FedRec against parameter-transmission
//! baselines. This crate provides the shared vocabulary all protocols use
//! to report what they send:
//!
//! * [`message`] — typed payloads ([`Payload`]) with an explicit wire-size
//!   model, and [`Message`] envelopes between [`Endpoint`]s.
//! * [`ledger`] — [`CommLedger`], an append-only record of every message,
//!   with the aggregations the paper reports.
//! * [`report`] — human-readable byte formatting ("3.02 KB", "7.32 MB").

pub mod ledger;
pub mod message;
pub mod report;

pub use ledger::{CommLedger, LedgerSummary, LedgerWire};
pub use message::{Endpoint, Message, Payload};
pub use report::format_bytes;
