//! The communication ledger.

use crate::message::{Endpoint, Message, Payload};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Append-only record of every message a protocol run produced, with the
/// aggregations the paper's Table IV reports.
///
/// Protocols no longer own a ledger: `ptf_federated::Engine` carries one
/// as its first `RoundObserver` (the impl lives in `ptf_federated`, which
/// owns the observer trait) and feeds it every message the protocol
/// reports through its `RoundCtx`. [`CommLedger::upload`]/
/// [`CommLedger::download`] remain for direct, engine-less recording.
#[derive(Clone, Debug, Default)]
pub struct CommLedger {
    total_bytes: u64,
    /// bytes by (client, round) — the unit Table IV averages over.
    by_client_round: HashMap<(u32, u32), u64>,
    uploads_bytes: u64,
    downloads_bytes: u64,
    messages: u64,
    rounds_seen: u32,
}

/// Serialized form of a [`CommLedger`], used by checkpoint manifests.
///
/// The per-(client, round) map is flattened into three parallel arrays
/// sorted by `(client, round)` so the encoding is deterministic (the
/// in-memory map is a `HashMap`, whose iteration order is not).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LedgerWire {
    pub total_bytes: u64,
    pub uploads_bytes: u64,
    pub downloads_bytes: u64,
    pub messages: u64,
    pub rounds_seen: u32,
    pub entry_clients: Vec<u32>,
    pub entry_rounds: Vec<u32>,
    pub entry_bytes: Vec<u64>,
}

/// Aggregated view of a ledger.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct LedgerSummary {
    pub total_bytes: u64,
    pub messages: u64,
    pub uploads_bytes: u64,
    pub downloads_bytes: u64,
    /// Average bytes exchanged by a participating client in one round —
    /// the Table IV metric.
    pub avg_client_bytes_per_round: f64,
    pub rounds: u32,
}

impl CommLedger {
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `round` as started. The engine calls this from its
    /// `on_round_start` hook, making the round count authoritative: a
    /// round whose sampled participant set is empty (or that otherwise
    /// puts nothing on the wire) still counts. Deriving the count from
    /// message round tags alone under-counted such runs and inflated
    /// every per-round average reported from [`LedgerSummary::rounds`].
    pub fn begin_round(&mut self, round: u32) {
        self.rounds_seen = self.rounds_seen.max(round + 1);
    }

    /// Records a message.
    pub fn record(&mut self, msg: &Message) {
        let bytes = msg.bytes() as u64;
        self.total_bytes += bytes;
        self.messages += 1;
        // fallback derivation for engine-less direct recording; the
        // engine's `begin_round` notifications take precedence via `max`
        self.rounds_seen = self.rounds_seen.max(msg.round + 1);
        match (msg.from, msg.to) {
            (Endpoint::Client(_), Endpoint::Server) => self.uploads_bytes += bytes,
            (Endpoint::Server, Endpoint::Client(_)) => self.downloads_bytes += bytes,
            _ => {}
        }
        if let Some(c) = msg.client() {
            *self.by_client_round.entry((c, msg.round)).or_default() += bytes;
        }
    }

    /// Convenience: record a client upload.
    pub fn upload(&mut self, client: u32, round: u32, label: &'static str, payload: Payload) {
        self.record(&Message {
            from: Endpoint::Client(client),
            to: Endpoint::Server,
            round,
            label,
            payload,
        });
    }

    /// Convenience: record a server→client download.
    pub fn download(&mut self, client: u32, round: u32, label: &'static str, payload: Payload) {
        self.record(&Message {
            from: Endpoint::Server,
            to: Endpoint::Client(client),
            round,
            label,
            payload,
        });
    }

    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Average bytes a participating client exchanges in one round.
    pub fn avg_client_bytes_per_round(&self) -> f64 {
        if self.by_client_round.is_empty() {
            return 0.0;
        }
        // lint: allow(determinism) — u64 sum over values is order-independent
        let sum: u64 = self.by_client_round.values().sum();
        sum as f64 / self.by_client_round.len() as f64
    }

    /// Captures the full ledger state for a checkpoint manifest.
    pub fn snapshot(&self) -> LedgerWire {
        let mut entries: Vec<(u32, u32, u64)> =
            // lint: allow(determinism) — entries are sorted before encoding
            self.by_client_round.iter().map(|(&(c, r), &b)| (c, r, b)).collect();
        entries.sort_unstable();
        LedgerWire {
            total_bytes: self.total_bytes,
            uploads_bytes: self.uploads_bytes,
            downloads_bytes: self.downloads_bytes,
            messages: self.messages,
            rounds_seen: self.rounds_seen,
            entry_clients: entries.iter().map(|e| e.0).collect(),
            entry_rounds: entries.iter().map(|e| e.1).collect(),
            entry_bytes: entries.iter().map(|e| e.2).collect(),
        }
    }

    /// Rebuilds a ledger from a [`snapshot`](Self::snapshot).
    ///
    /// Fails if the parallel entry arrays disagree in length.
    pub fn restore(wire: &LedgerWire) -> Result<Self, String> {
        if wire.entry_clients.len() != wire.entry_rounds.len()
            || wire.entry_clients.len() != wire.entry_bytes.len()
        {
            return Err(format!(
                "ledger snapshot arrays disagree: {} clients, {} rounds, {} bytes",
                wire.entry_clients.len(),
                wire.entry_rounds.len(),
                wire.entry_bytes.len()
            ));
        }
        let mut by_client_round = HashMap::with_capacity(wire.entry_clients.len());
        for i in 0..wire.entry_clients.len() {
            by_client_round
                .insert((wire.entry_clients[i], wire.entry_rounds[i]), wire.entry_bytes[i]);
        }
        Ok(Self {
            total_bytes: wire.total_bytes,
            by_client_round,
            uploads_bytes: wire.uploads_bytes,
            downloads_bytes: wire.downloads_bytes,
            messages: wire.messages,
            rounds_seen: wire.rounds_seen,
        })
    }

    pub fn summary(&self) -> LedgerSummary {
        LedgerSummary {
            total_bytes: self.total_bytes,
            messages: self.messages,
            uploads_bytes: self.uploads_bytes,
            downloads_bytes: self.downloads_bytes,
            avg_client_bytes_per_round: self.avg_client_bytes_per_round(),
            rounds: self.rounds_seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_averages_per_client_round() {
        let mut ledger = CommLedger::new();
        // round 0: client 0 uploads 12B and downloads 8B; client 1 uploads 24B
        ledger.upload(0, 0, "up", Payload::Triples { count: 1 });
        ledger.download(0, 0, "down", Payload::ScoredItems { count: 1 });
        ledger.upload(1, 0, "up", Payload::Triples { count: 2 });
        // round 1: only client 0, 12B
        ledger.upload(0, 1, "up", Payload::Triples { count: 1 });

        let s = ledger.summary();
        assert_eq!(s.total_bytes, 12 + 8 + 24 + 12);
        assert_eq!(s.messages, 4);
        assert_eq!(s.uploads_bytes, 48);
        assert_eq!(s.downloads_bytes, 8);
        assert_eq!(s.rounds, 2);
        // client-rounds: (0,0)=20, (1,0)=24, (0,1)=12 → avg 56/3
        assert!((s.avg_client_bytes_per_round - 56.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_is_zero() {
        let s = CommLedger::new().summary();
        assert_eq!(s.total_bytes, 0);
        assert_eq!(s.avg_client_bytes_per_round, 0.0);
    }

    #[test]
    fn message_free_rounds_still_count() {
        // regression: rounds were derived from max(msg.round + 1), so a
        // run whose trailing rounds produced no messages under-counted
        let mut ledger = CommLedger::new();
        ledger.begin_round(0);
        ledger.upload(0, 0, "up", Payload::Triples { count: 1 });
        ledger.begin_round(1); // zero sampled participants
        ledger.begin_round(2); // zero sampled participants
        let s = ledger.summary();
        assert_eq!(s.rounds, 3, "empty rounds must count");
        assert_eq!(s.messages, 1);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ledger = CommLedger::new();
        ledger.begin_round(0);
        ledger.upload(3, 0, "up", Payload::Triples { count: 5 });
        ledger.download(3, 0, "down", Payload::ScoredItems { count: 2 });
        ledger.begin_round(1);
        ledger.upload(1, 1, "up", Payload::Triples { count: 9 });
        let wire = ledger.snapshot();
        // entries are sorted by (client, round) for deterministic encoding
        assert_eq!(wire.entry_clients, vec![1, 3]);
        let restored = CommLedger::restore(&wire).expect("restore");
        assert_eq!(restored.summary(), ledger.summary());
        // restored ledger keeps accumulating correctly
        let mut a = ledger.clone();
        let mut b = restored;
        a.upload(2, 2, "up", Payload::Triples { count: 1 });
        b.upload(2, 2, "up", Payload::Triples { count: 1 });
        assert_eq!(a.summary(), b.summary());
    }

    #[test]
    fn restore_rejects_ragged_arrays() {
        let mut wire = CommLedger::new().snapshot();
        wire.entry_clients.push(0);
        assert!(CommLedger::restore(&wire).is_err());
    }
}
