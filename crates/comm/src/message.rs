//! Typed messages and their wire-size model.
//!
//! Sizes assume the natural dense binary encoding the paper assumes:
//! 4 bytes per `f32`/id. Prediction triples `(u, v, r̂)` are "just a few
//! real numbers" — 12 bytes each; parameter matrices are `rows×cols×4`;
//! homomorphic ciphertexts carry an explicit per-ciphertext byte width.

use serde::Serialize;

/// Bytes of one `f32` on the wire.
pub const BYTES_PER_F32: usize = 4;
/// Bytes of one user/item id on the wire.
pub const BYTES_PER_ID: usize = 4;
/// Bytes of one `(user, item, score)` prediction triple.
pub const BYTES_PER_TRIPLE: usize = 2 * BYTES_PER_ID + BYTES_PER_F32;

/// One side of a federated exchange.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize)]
pub enum Endpoint {
    Server,
    Client(u32),
}

/// What a message carries; determines its size.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Payload {
    /// A dense `f32` parameter matrix (e.g. item embeddings).
    DenseMatrix { rows: usize, cols: usize },
    /// `(user, item, score)` prediction triples — PTF-FedRec's carrier.
    Triples { count: usize },
    /// `(item, score)` pairs when the user id is implicit in the channel.
    ScoredItems { count: usize },
    /// Homomorphic ciphertexts of an explicit width (FedMF).
    Ciphertexts { count: usize, bytes_each: usize },
    /// A plain `f32` vector (e.g. MetaMF user codes).
    Vector { len: usize },
    /// Anything else, pre-sized by the caller.
    Raw { bytes: usize },
}

impl Payload {
    /// Wire size in bytes.
    pub fn bytes(&self) -> usize {
        match *self {
            Payload::DenseMatrix { rows, cols } => rows * cols * BYTES_PER_F32,
            Payload::Triples { count } => count * BYTES_PER_TRIPLE,
            Payload::ScoredItems { count } => count * (BYTES_PER_ID + BYTES_PER_F32),
            Payload::Ciphertexts { count, bytes_each } => count * bytes_each,
            Payload::Vector { len } => len * BYTES_PER_F32,
            Payload::Raw { bytes } => bytes,
        }
    }
}

/// A logged federated message.
#[derive(Clone, Debug, Serialize)]
pub struct Message {
    pub from: Endpoint,
    pub to: Endpoint,
    pub round: u32,
    /// Short protocol-level label ("upload-predictions", "broadcast-emb").
    pub label: &'static str,
    pub payload: Payload,
}

impl Message {
    pub fn bytes(&self) -> usize {
        self.payload.bytes()
    }

    /// The client endpoint involved, if any (server↔server is never used).
    pub fn client(&self) -> Option<u32> {
        match (self.from, self.to) {
            (Endpoint::Client(c), _) => Some(c),
            (_, Endpoint::Client(c)) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        assert_eq!(Payload::DenseMatrix { rows: 1682, cols: 32 }.bytes(), 1682 * 32 * 4);
        assert_eq!(Payload::Triples { count: 100 }.bytes(), 1200);
        assert_eq!(Payload::ScoredItems { count: 30 }.bytes(), 240);
        assert_eq!(Payload::Ciphertexts { count: 10, bytes_each: 64 }.bytes(), 640);
        assert_eq!(Payload::Vector { len: 32 }.bytes(), 128);
        assert_eq!(Payload::Raw { bytes: 7 }.bytes(), 7);
    }

    #[test]
    fn triple_constant_is_three_words() {
        assert_eq!(BYTES_PER_TRIPLE, 12);
    }

    #[test]
    fn message_client_attribution() {
        let up = Message {
            from: Endpoint::Client(3),
            to: Endpoint::Server,
            round: 0,
            label: "up",
            payload: Payload::Triples { count: 1 },
        };
        assert_eq!(up.client(), Some(3));
        let down = Message { from: Endpoint::Server, to: Endpoint::Client(9), ..up.clone() };
        assert_eq!(down.client(), Some(9));
    }
}
