//! Byte formatting in the paper's style.

/// Formats a byte count the way Table IV prints it: two decimals with a
/// binary-ish unit, e.g. `3.02 KB`, `7.32 MB`.
pub fn format_bytes(bytes: f64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = 1024.0 * 1024.0;
    const GB: f64 = 1024.0 * 1024.0 * 1024.0;
    if bytes >= GB {
        format!("{:.2} GB", bytes / GB)
    } else if bytes >= MB {
        format!("{:.2} MB", bytes / MB)
    } else if bytes >= KB {
        format!("{:.2} KB", bytes / KB)
    } else {
        format!("{bytes:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_selection() {
        assert_eq!(format_bytes(12.0), "12 B");
        assert_eq!(format_bytes(3_092.0), "3.02 KB");
        assert_eq!(format_bytes(7.32 * 1024.0 * 1024.0), "7.32 MB");
        assert_eq!(format_bytes(2.0 * 1024.0 * 1024.0 * 1024.0), "2.00 GB");
    }
}
