//! Property-based tests of dataset invariants.

use proptest::prelude::*;
use ptf_data::negative::sample_negatives;
use ptf_data::{Dataset, TrainTestSplit};
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// Arbitrary small dataset: up to 12 users over 30 items.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec(proptest::collection::vec(0u32..30, 0..20), 1..12)
        .prop_map(|by_user| Dataset::from_user_items("prop", 30, by_user))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dataset_invariants(d in dataset_strategy()) {
        // per-user lists sorted + deduplicated
        for u in 0..d.num_users() as u32 {
            let items = d.user_items(u);
            prop_assert!(items.windows(2).all(|w| w[0] < w[1]));
        }
        // pair iteration agrees with counts
        prop_assert_eq!(d.pairs().count(), d.num_interactions());
        // item counts sum to interactions
        prop_assert_eq!(d.item_counts().iter().sum::<usize>(), d.num_interactions());
    }

    #[test]
    fn split_partitions_exactly(d in dataset_strategy(), seed in 0u64..500) {
        let s = TrainTestSplit::split_80_20(&d, &mut rng(seed));
        prop_assert_eq!(
            s.train.num_interactions() + s.test.num_interactions(),
            d.num_interactions()
        );
        for u in 0..d.num_users() as u32 {
            for &i in s.train.user_items(u) {
                prop_assert!(d.contains(u, i));
                prop_assert!(!s.test.contains(u, i));
            }
            // non-empty users always retain a training item
            if !d.user_items(u).is_empty() {
                prop_assert!(!s.train.user_items(u).is_empty());
            }
        }
    }

    #[test]
    fn csr_matches_reference_representation(
        by_user in proptest::collection::vec(proptest::collection::vec(0u32..30, 0..20), 0..12),
    ) {
        // reference model: the old Vec<Vec<u32>> semantics
        let mut reference: Vec<Vec<u32>> = by_user.clone();
        for items in &mut reference {
            items.sort_unstable();
            items.dedup();
        }
        let total: usize = reference.iter().map(Vec::len).sum();

        // from_user_items
        let d = Dataset::from_user_items("csr", 30, by_user.clone());
        prop_assert_eq!(d.num_users(), reference.len());
        prop_assert_eq!(d.num_interactions(), total);
        for (u, expected) in reference.iter().enumerate() {
            prop_assert_eq!(d.user_items(u as u32), expected.as_slice());
        }
        // CSR structural invariants
        prop_assert_eq!(d.indptr().len(), d.num_users() + 1);
        prop_assert_eq!(*d.indptr().last().unwrap() as usize, d.indices().len());
        prop_assert!(d.indptr().windows(2).all(|w| w[0] <= w[1]));

        // from_pairs over the same interactions lands on the identical CSR
        let pairs: Vec<(u32, u32)> = by_user
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&i| (u as u32, i)))
            .collect();
        let via_pairs = Dataset::from_pairs("csr", reference.len(), 30, pairs);
        prop_assert_eq!(&via_pairs, &d);

        // stats agree with the reference
        let avg = if reference.is_empty() { 0.0 } else { total as f64 / reference.len() as f64 };
        prop_assert!((d.avg_profile_len() - avg).abs() < 1e-12);

        // serde round-trip preserves the layout exactly
        prop_assert_eq!(Dataset::from_json(&d.to_json()).unwrap(), d);
    }

    #[test]
    fn negatives_disjoint_from_positives(
        positives in proptest::collection::btree_set(0u32..50, 0..30),
        count in 0usize..60,
        seed in 0u64..500,
    ) {
        let pos: Vec<u32> = positives.into_iter().collect();
        if pos.len() == 50 {
            return Ok(()); // saturated space panics by contract
        }
        let negs = sample_negatives(&pos, 50, count, &mut rng(seed));
        prop_assert!(negs.len() <= count);
        prop_assert_eq!(negs.len(), count.min(50 - pos.len()));
        let mut dedup = negs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), negs.len(), "duplicates");
        for n in negs {
            prop_assert!(pos.binary_search(&n).is_err());
        }
    }
}
