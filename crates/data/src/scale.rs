//! Scale-synthetic preset family: million-user implicit-feedback data
//! generated *per user on demand*, deterministically from the run seed.
//!
//! The paper's largest preset (Gowalla) stops at 8,392 users; the scale
//! presets model the cross-device fleets PTF-FedRec is designed for. Two
//! properties make them usable at that size:
//!
//! * **Streaming.** A user's interaction row is a pure function of
//!   `(master seed, user id)` — [`ScaleConfig::user_items`] derives a
//!   private RNG per user, so any row can be produced in isolation, in
//!   any order, on any thread, without materializing the rest. The cohort
//!   runtime writes rows into an on-disk [`crate::arena::CsrArena`] and
//!   the full dataset is never resident.
//! * **Power-law popularity.** Item popularity follows a Zipf-like
//!   inverse-CDF over popularity *ranks*; a seed-derived Feistel
//!   permutation then scatters ranks over item ids, so popular items are
//!   spread across the id space exactly as in the shuffled real datasets.
//!
//! Profile lengths are log-normal (as in [`crate::synthetic`]), clamped
//! to `[min_profile_len, max_profile_len]`.

use crate::arena::{ArenaError, ArenaWriter, CsrArena};
use crate::dataset::Dataset;
use ptf_tensor::derive_seed;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::LogNormal;
use std::path::Path;

/// Stream discriminator for per-user row generation inside the master
/// seed's namespace. The federation scheduler owns streams
/// `0x0100…`–`0x0700…` (see `ptf_federated`'s `RngStream`); `0x0800…` is
/// reserved here so a scale run's data generation can never collide with
/// a protocol stream derived from the same seed.
pub const SCALE_STREAM: u64 = 0x0800_0000_0000;

/// A 4-round Feistel network over the smallest even-bit power-of-two
/// domain covering `domain`, with cycle-walking to stay inside it: a
/// cheap seed-derived bijection `rank → item id`. Keys derive from the
/// seed, so different master seeds scatter popularity differently while
/// any one run is fully deterministic.
struct Feistel {
    keys: [u64; 4],
    half_bits: u32,
    half_mask: u64,
    domain: u64,
}

impl Feistel {
    fn new(domain: u64, seed: u64) -> Self {
        debug_assert!(domain >= 2, "permutation domain too small");
        let bits = 64 - (domain - 1).leading_zeros();
        let half_bits = bits.div_ceil(2).max(1);
        let keys = [
            derive_seed(seed, 1, 0),
            derive_seed(seed, 2, 0),
            derive_seed(seed, 3, 0),
            derive_seed(seed, 4, 0),
        ];
        Self { keys, half_bits, half_mask: (1u64 << half_bits) - 1, domain }
    }

    fn encrypt_once(&self, x: u64) -> u64 {
        let mut l = x >> self.half_bits;
        let mut r = x & self.half_mask;
        for &k in &self.keys {
            let f = derive_seed(k, r, 0) & self.half_mask;
            (l, r) = (r, l ^ f);
        }
        (l << self.half_bits) | r
    }

    /// The permuted value of `x < domain`, cycle-walking through the
    /// power-of-two super-domain until the image lands back inside.
    fn permute(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain);
        let mut y = x;
        loop {
            y = self.encrypt_once(y);
            if y < self.domain {
                return y;
            }
        }
    }
}

/// Inverse-CDF sample of a truncated power law over ranks `0..n`
/// (exponent `s ≠ 1`): rank 0 is the most popular.
fn power_law_rank(u: f64, n: u64, s: f64) -> u64 {
    debug_assert!((0.0..1.0).contains(&u));
    let one_minus_s = 1.0 - s;
    let x = (1.0 + u * ((n as f64).powf(one_minus_s) - 1.0)).powf(1.0 / one_minus_s);
    ((x as u64).saturating_sub(1)).min(n - 1)
}

/// A scale-synthetic preset: user count, catalogue size, and the
/// popularity/length distribution parameters.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    pub name: String,
    pub num_users: usize,
    pub num_items: usize,
    /// Mean profile length (log-normal).
    pub avg_len: f64,
    /// Log-normal sigma of the profile length.
    pub len_sigma: f64,
    pub min_profile_len: usize,
    pub max_profile_len: usize,
    /// Power-law exponent of item popularity (Zipf-ish, `≠ 1`).
    pub pop_exponent: f64,
}

impl ScaleConfig {
    /// A scale preset over `num_users` users. The catalogue is fixed at
    /// 10,000 items across all user scales on purpose: model and server
    /// state size then depend only on the item space, so growing the user
    /// count 10× must leave peak heap flat — the property the CI
    /// `scale-smoke` gate measures.
    pub fn new(name: impl Into<String>, num_users: usize) -> Self {
        Self {
            name: name.into(),
            num_users,
            num_items: 10_000,
            avg_len: 20.0,
            len_sigma: 0.6,
            min_profile_len: 3,
            max_profile_len: 200,
            pop_exponent: 1.1,
        }
    }

    /// The named presets: `scale-10k`, `scale-100k`, `scale-1m`.
    pub fn preset(key: &str) -> Option<Self> {
        match key {
            "scale-10k" => Some(Self::new("scale-10k", 10_000)),
            "scale-100k" => Some(Self::new("scale-100k", 100_000)),
            "scale-1m" => Some(Self::new("scale-1m", 1_000_000)),
            _ => None,
        }
    }

    /// Generates `user`'s interaction row (sorted ascending, unique) into
    /// `out`. Pure function of `(self, master_seed, user)`: any row can
    /// be generated independently, which is what lets the dataset stream.
    pub fn user_items(&self, master_seed: u64, user: u32, out: &mut Vec<u32>) {
        debug_assert!((user as usize) < self.num_users, "user out of range");
        out.clear();
        let mut rng = StdRng::seed_from_u64(derive_seed(master_seed, user as u64, SCALE_STREAM));
        let sigma = self.len_sigma.max(f64::MIN_POSITIVE);
        // mu chosen so the log-normal's mean is avg_len
        let mu = self.avg_len.ln() - sigma * sigma / 2.0;
        let drawn: f64 = rng.sample(LogNormal::new(mu, sigma).expect("finite length params"));
        let len = (drawn.round() as usize)
            .clamp(self.min_profile_len, self.max_profile_len)
            .min(self.num_items);
        let feistel =
            Feistel::new(self.num_items as u64, derive_seed(master_seed, 0, SCALE_STREAM));
        // rejection-dedup: popular items collide often, so allow a
        // bounded number of redraws before accepting a shorter profile
        let mut attempts = 0usize;
        let max_attempts = len * 8 + 32;
        while out.len() < len && attempts < max_attempts {
            attempts += 1;
            let u: f64 = rng.gen();
            let rank = power_law_rank(u, self.num_items as u64, self.pop_exponent);
            let item = feistel.permute(rank) as u32;
            if let Err(pos) = out.binary_search(&item) {
                out.insert(pos, item);
            }
        }
    }

    /// Streams every user's row into an on-disk arena at `path`. Peak
    /// memory is O(one row) plus the writer's indptr vector (8 bytes per
    /// user, generation-time only).
    pub fn write_arena(&self, master_seed: u64, path: &Path) -> Result<(), ArenaError> {
        let mut w = ArenaWriter::create(path, self.num_users, self.num_items)?;
        let mut row = Vec::new();
        for user in 0..self.num_users as u32 {
            self.user_items(master_seed, user, &mut row);
            w.push_user(&row)?;
        }
        w.finish()
    }

    /// Materializes the whole dataset in memory — parity harnesses and
    /// small presets only; the scale runtime streams via
    /// [`ScaleConfig::write_arena`] instead.
    pub fn materialize(&self, master_seed: u64) -> Dataset {
        let mut b = Dataset::builder(self.name.clone(), self.num_items, self.num_users, 0);
        let mut row = Vec::new();
        for user in 0..self.num_users as u32 {
            self.user_items(master_seed, user, &mut row);
            b.push_user(&row);
        }
        b.finish()
    }
}

/// Convenience: materializes one arena row set into an in-memory
/// [`Dataset`] (cohort-scoped fallback paths and tests).
pub fn arena_to_dataset(arena: &CsrArena, name: impl Into<String>) -> Result<Dataset, ArenaError> {
    let mut b = Dataset::builder(name, arena.num_items(), arena.num_users(), arena.nnz() as usize);
    let mut row = Vec::new();
    for user in 0..arena.num_users() as u32 {
        arena.read_user_into(user, &mut row)?;
        b.push_user(&row);
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScaleConfig {
        let mut cfg = ScaleConfig::new("scale-test", 200);
        cfg.num_items = 500;
        cfg
    }

    #[test]
    fn rows_are_deterministic_and_valid() {
        let cfg = tiny();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for user in [0u32, 7, 199] {
            cfg.user_items(2024, user, &mut a);
            cfg.user_items(2024, user, &mut b);
            assert_eq!(a, b, "user {user} not deterministic");
            assert!(a.len() >= cfg.min_profile_len, "user {user} below min length");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "user {user} not sorted unique");
            assert!(a.iter().all(|&i| (i as usize) < cfg.num_items));
        }
        // a different master seed draws different rows
        cfg.user_items(2024, 0, &mut a);
        cfg.user_items(9999, 0, &mut b);
        assert_ne!(a, b, "master seed has no effect");
    }

    #[test]
    fn popularity_is_skewed_but_scattered() {
        let cfg = tiny();
        let mut counts = vec![0u32; cfg.num_items];
        let mut row = Vec::new();
        for user in 0..cfg.num_users as u32 {
            cfg.user_items(2024, user, &mut row);
            for &i in &row {
                counts[i as usize] += 1;
            }
        }
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = sorted.iter().map(|&c| c as u64).sum();
        let top_decile: u64 = sorted[..cfg.num_items / 10].iter().map(|&c| c as u64).sum();
        assert!(
            top_decile * 10 > total * 3,
            "top 10% of items hold only {top_decile}/{total} interactions — not a power law"
        );
        // the Feistel scatter: the most popular item should NOT be id 0
        // in general; check popularity mass is spread over the id space
        let first_half: u64 = counts[..cfg.num_items / 2].iter().map(|&c| c as u64).sum();
        assert!(
            first_half * 10 > total && (total - first_half) * 10 > total,
            "popularity collapsed onto one half of the id space"
        );
    }

    #[test]
    fn feistel_is_a_bijection() {
        let f = Feistel::new(77, 42);
        let mut seen = [false; 77];
        for x in 0..77 {
            let y = f.permute(x) as usize;
            assert!(!seen[y], "collision at {y}");
            seen[y] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn power_law_rank_bounds() {
        for &u in &[0.0, 0.1, 0.5, 0.9, 0.999_999] {
            let r = power_law_rank(u, 1000, 1.1);
            assert!(r < 1000, "rank {r} out of range for u={u}");
        }
        assert_eq!(power_law_rank(0.0, 1000, 1.1), 0, "u=0 must map to the top rank");
    }

    #[test]
    fn arena_stream_matches_materialize() {
        let cfg = tiny();
        let dir = std::env::temp_dir().join(format!("ptf-scale-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.arena");
        cfg.write_arena(2024, &path).unwrap();
        let arena = CsrArena::open(&path).unwrap();
        let mem = cfg.materialize(2024);
        assert_eq!(arena.num_users(), mem.num_users());
        let mut row = Vec::new();
        for user in 0..cfg.num_users as u32 {
            arena.read_user_into(user, &mut row).unwrap();
            assert_eq!(&row[..], mem.user_items(user), "user {user} row diverged");
        }
        // and the fully-materialized arena equals the in-memory build
        let back = arena_to_dataset(&arena, "scale-test").unwrap();
        assert_eq!(back.user_items(5), mem.user_items(5));
    }

    #[test]
    fn named_presets_resolve() {
        assert_eq!(ScaleConfig::preset("scale-10k").unwrap().num_users, 10_000);
        assert_eq!(ScaleConfig::preset("scale-100k").unwrap().num_users, 100_000);
        assert_eq!(ScaleConfig::preset("scale-1m").unwrap().num_users, 1_000_000);
        assert!(ScaleConfig::preset("scale-9000").is_none());
        // item space is deliberately constant across scales (flat-heap gate)
        assert_eq!(
            ScaleConfig::preset("scale-10k").unwrap().num_items,
            ScaleConfig::preset("scale-1m").unwrap().num_items,
        );
    }
}
