//! Train/test splitting.
//!
//! The paper splits every dataset "randomly … into training and test sets
//! with the ratio of 8:2". We split per user so each client keeps a local
//! training profile and contributes held-out items to the ranking
//! evaluation; users with a single interaction keep it for training.

use crate::dataset::Dataset;
use rand::Rng;

/// A train/test partition of a [`Dataset`].
#[derive(Clone, Debug)]
pub struct TrainTestSplit {
    pub train: Dataset,
    pub test: Dataset,
}

impl TrainTestSplit {
    /// Splits each user's interactions, sending `test_fraction` of them
    /// (rounded to nearest, but at most `len − 1`) to the test set.
    ///
    /// Rounding to nearest (instead of truncating) lets short profiles
    /// contribute to the evaluation: under the paper's 8:2 ratio a user
    /// with 3–4 interactions donates one test item rather than zero, so
    /// the test set is no longer biased toward heavy users.
    ///
    /// Both sides are assembled directly into CSR arenas — one scratch
    /// buffer for the per-user shuffle, no per-user heap lists.
    pub fn split(dataset: &Dataset, test_fraction: f64, rng: &mut impl Rng) -> Self {
        assert!(
            (0.0..1.0).contains(&test_fraction),
            "test_fraction must be in [0, 1), got {test_fraction}"
        );
        let name = dataset.name().to_string();
        let total = dataset.num_interactions();
        let users = dataset.num_users();
        let est_test = (total as f64 * test_fraction).ceil() as usize + users;
        let mut train_b =
            Dataset::builder(format!("{name}/train"), dataset.num_items(), users, total);
        let mut test_b =
            Dataset::builder(format!("{name}/test"), dataset.num_items(), users, est_test);
        let mut items: Vec<u32> = Vec::new();
        for u in 0..users {
            items.clear();
            items.extend_from_slice(dataset.user_items(u as u32));
            // Fisher–Yates
            for i in (1..items.len()).rev() {
                let j = rng.gen_range(0..=i);
                items.swap(i, j);
            }
            let n_test = ((items.len() as f64 * test_fraction).round() as usize)
                .min(items.len().saturating_sub(1));
            let cut = items.len() - n_test;
            items[..cut].sort_unstable();
            items[cut..].sort_unstable();
            train_b.push_user(&items[..cut]);
            test_b.push_user(&items[cut..]);
        }
        Self { train: train_b.finish(), test: test_b.finish() }
    }

    /// The paper's 8:2 split.
    pub fn split_80_20(dataset: &Dataset, rng: &mut impl Rng) -> Self {
        Self::split(dataset, 0.2, rng)
    }
}

/// A train/validation/test partition. The paper holds out 20% for test
/// and samples validation "from the client's local training set", which
/// is exactly how this splits: test first, then validation out of the
/// remaining training interactions.
#[derive(Clone, Debug)]
pub struct ThreeWaySplit {
    pub train: Dataset,
    pub validation: Dataset,
    pub test: Dataset,
}

impl ThreeWaySplit {
    /// Splits off `test_fraction` for test, then `val_fraction` *of the
    /// remainder* for validation.
    pub fn split(
        dataset: &Dataset,
        test_fraction: f64,
        val_fraction: f64,
        rng: &mut impl Rng,
    ) -> Self {
        let outer = TrainTestSplit::split(dataset, test_fraction, rng);
        let inner = TrainTestSplit::split(&outer.train, val_fraction, rng);
        let name = dataset.name().to_string();
        Self {
            train: inner.train.with_name(format!("{name}/train")),
            validation: inner.test.with_name(format!("{name}/validation")),
            test: outer.test,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Dataset {
        let by_user = vec![(0..20).collect::<Vec<u32>>(), vec![3], vec![], (5..15).collect()];
        Dataset::from_user_items("d", 30, by_user)
    }

    #[test]
    fn partition_is_disjoint_and_complete() {
        let d = dataset();
        let s = TrainTestSplit::split_80_20(&d, &mut crate::test_rng(1));
        assert_eq!(s.train.num_interactions() + s.test.num_interactions(), d.num_interactions());
        for u in 0..d.num_users() as u32 {
            for &i in s.test.user_items(u) {
                assert!(!s.train.contains(u, i), "({u},{i}) in both train and test");
                assert!(d.contains(u, i), "({u},{i}) not in the original data");
            }
        }
    }

    #[test]
    fn ratio_is_respected() {
        let d = dataset();
        let s = TrainTestSplit::split_80_20(&d, &mut crate::test_rng(2));
        assert_eq!(s.test.user_items(0).len(), 4); // 20% of 20
        assert_eq!(s.test.user_items(3).len(), 2); // 20% of 10
    }

    #[test]
    fn short_profiles_contribute_to_test() {
        // regression: truncation sent nothing from 3–4-item users at 8:2,
        // biasing evaluation toward heavy users; round-to-nearest fixes it
        let d = Dataset::from_user_items("d", 10, vec![(0..3).collect(), (0..4).collect()]);
        let s = TrainTestSplit::split_80_20(&d, &mut crate::test_rng(9));
        assert_eq!(s.test.user_items(0).len(), 1); // round(3 × 0.2) = 1
        assert_eq!(s.test.user_items(1).len(), 1); // round(4 × 0.2) = 1
        assert_eq!(s.train.user_items(0).len(), 2);
        assert_eq!(s.train.user_items(1).len(), 3);
    }

    #[test]
    fn singleton_profiles_stay_in_train() {
        let d = dataset();
        let s = TrainTestSplit::split(&d, 0.9, &mut crate::test_rng(3));
        assert_eq!(s.train.user_items(1), &[3], "singleton must remain trainable");
        assert!(s.test.user_items(1).is_empty());
    }

    #[test]
    fn empty_users_stay_empty() {
        let s = TrainTestSplit::split_80_20(&dataset(), &mut crate::test_rng(4));
        assert!(s.train.user_items(2).is_empty());
        assert!(s.test.user_items(2).is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let d = dataset();
        let a = TrainTestSplit::split_80_20(&d, &mut crate::test_rng(5));
        let b = TrainTestSplit::split_80_20(&d, &mut crate::test_rng(5));
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }
}

#[cfg(test)]
mod three_way_tests {
    use super::*;

    #[test]
    fn three_way_partitions_exactly() {
        let by_user = vec![(0..30).collect::<Vec<u32>>(), (5..25).collect()];
        let d = Dataset::from_user_items("d", 40, by_user);
        let s = ThreeWaySplit::split(&d, 0.2, 0.1, &mut crate::test_rng(7));
        assert_eq!(
            s.train.num_interactions()
                + s.validation.num_interactions()
                + s.test.num_interactions(),
            d.num_interactions()
        );
        for u in 0..d.num_users() as u32 {
            for &i in s.validation.user_items(u) {
                assert!(!s.train.contains(u, i));
                assert!(!s.test.contains(u, i));
            }
            for &i in s.test.user_items(u) {
                assert!(!s.train.contains(u, i));
            }
        }
    }

    #[test]
    fn validation_comes_from_the_training_side() {
        let by_user = vec![(0..50).collect::<Vec<u32>>()];
        let d = Dataset::from_user_items("d", 60, by_user);
        let s = ThreeWaySplit::split(&d, 0.2, 0.25, &mut crate::test_rng(8));
        assert_eq!(s.test.user_items(0).len(), 10); // 20% of 50
        assert_eq!(s.validation.user_items(0).len(), 10); // 25% of remaining 40
        assert_eq!(s.train.user_items(0).len(), 30);
    }
}
