//! The core implicit-feedback dataset type.
//!
//! # Memory layout
//!
//! [`Dataset`] stores the interaction matrix in **CSR form**: one
//! `indptr` array of `num_users + 1` offsets and one flat, per-user
//! sorted `indices` array of item ids. Compared to the previous
//! `Vec<Vec<u32>>` (one heap allocation and one 24-byte header per
//! user), the CSR layout is two allocations total, keeps every profile
//! contiguous in cache, and makes [`Dataset::user_items`] a zero-copy
//! slice view into the shared arena — at Gowalla scale (8,392 users ×
//! 391k interactions) that removes ~8k allocations and all pointer
//! chasing from every consumer loop.

/// User identifier. In a federated recommender each user *is* a client, so
/// the same id addresses both the data partition and the client.
pub type UserId = u32;

/// An implicit-feedback dataset: for every user, the sorted set of item ids
/// the user interacted with (`r_{ij} = 1` in the paper's notation; absent
/// pairs are candidate negatives), stored in CSR layout.
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    name: String,
    num_items: usize,
    /// CSR row offsets: user `u`'s items live at
    /// `indices[indptr[u] as usize..indptr[u + 1] as usize]`.
    indptr: Vec<u32>,
    /// Flat item-id arena; each per-user segment is sorted + deduplicated.
    indices: Vec<u32>,
}

/// Incremental CSR construction: push one user's (sorted, deduplicated)
/// profile at a time. Used by the split/synthetic pipelines so a derived
/// dataset is assembled straight into its final arena — no intermediate
/// `Vec<Vec<u32>>`.
pub struct DatasetBuilder {
    name: String,
    num_items: usize,
    indptr: Vec<u32>,
    indices: Vec<u32>,
}

impl DatasetBuilder {
    /// Appends the next user's items. `items` must be sorted ascending and
    /// duplicate-free; out-of-range ids panic.
    pub fn push_user(&mut self, items: &[u32]) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "items must be sorted and unique");
        if let Some(&max) = items.last() {
            assert!(
                (max as usize) < self.num_items,
                "item id {max} out of range ({} items)",
                self.num_items
            );
        }
        self.indices.extend_from_slice(items);
        assert!(self.indices.len() <= u32::MAX as usize, "interaction count overflows u32 CSR");
        self.indptr.push(self.indices.len() as u32);
    }

    /// Finishes the CSR arena into a [`Dataset`].
    pub fn finish(self) -> Dataset {
        Dataset {
            name: self.name,
            num_items: self.num_items,
            indptr: self.indptr,
            indices: self.indices,
        }
    }
}

impl Dataset {
    /// Starts an incremental CSR build (`interactions_hint` pre-sizes the
    /// arena; pass 0 when unknown).
    pub fn builder(
        name: impl Into<String>,
        num_items: usize,
        num_users_hint: usize,
        interactions_hint: usize,
    ) -> DatasetBuilder {
        let mut indptr = Vec::with_capacity(num_users_hint + 1);
        indptr.push(0);
        DatasetBuilder {
            name: name.into(),
            num_items,
            indptr,
            indices: Vec::with_capacity(interactions_hint),
        }
    }

    /// Builds a dataset from per-user item lists. Lists are sorted and
    /// deduplicated; out-of-range item ids panic.
    pub fn from_user_items(
        name: impl Into<String>,
        num_items: usize,
        mut by_user: Vec<Vec<u32>>,
    ) -> Self {
        let total: usize = by_user.iter().map(Vec::len).sum();
        let mut b = Self::builder(name, num_items, by_user.len(), total);
        for items in &mut by_user {
            items.sort_unstable();
            items.dedup();
            b.push_user(items);
        }
        b.finish()
    }

    /// Builds a dataset from `(user, item)` pairs via a counting sort into
    /// the CSR arena (single pass + per-segment sort, no per-user vectors).
    pub fn from_pairs(
        name: impl Into<String>,
        num_users: usize,
        num_items: usize,
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        // counting sort: per-user counts → offsets → scatter
        let mut counts = vec![0u32; num_users];
        let pairs: Vec<(u32, u32)> = pairs
            .into_iter()
            .inspect(|&(u, _)| {
                assert!((u as usize) < num_users, "user id {u} out of range ({num_users} users)");
            })
            .collect();
        assert!(pairs.len() <= u32::MAX as usize, "interaction count overflows u32 CSR");
        for &(u, _) in &pairs {
            counts[u as usize] += 1;
        }
        let mut indptr = Vec::with_capacity(num_users + 1);
        indptr.push(0u32);
        let mut acc = 0u32;
        for &c in &counts {
            acc += c;
            indptr.push(acc);
        }
        let mut indices = vec![0u32; pairs.len()];
        // scatter using a moving cursor per user
        let mut cursor: Vec<u32> = indptr[..num_users].to_vec();
        for &(u, i) in &pairs {
            let c = &mut cursor[u as usize];
            indices[*c as usize] = i;
            *c += 1;
        }
        drop(pairs);
        // sort + dedup each segment, compacting the arena in place
        let mut write = 0usize;
        let mut new_indptr = Vec::with_capacity(num_users + 1);
        new_indptr.push(0u32);
        for u in 0..num_users {
            let (start, end) = (indptr[u] as usize, indptr[u + 1] as usize);
            indices[start..end].sort_unstable();
            let mut prev = None;
            for k in start..end {
                let v = indices[k];
                if Some(v) != prev {
                    indices[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            new_indptr.push(write as u32);
        }
        indices.truncate(write);
        if let Some(&max) = indices.iter().max() {
            assert!((max as usize) < num_items, "item id {max} out of range ({num_items} items)");
        }
        Self { name: name.into(), num_items, indptr: new_indptr, indices }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_users(&self) -> usize {
        self.indptr.len() - 1
    }

    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total number of stored interactions (O(1) under CSR).
    pub fn num_interactions(&self) -> usize {
        self.indices.len()
    }

    /// The sorted items of user `u` — a zero-copy view into the CSR arena.
    pub fn user_items(&self, u: UserId) -> &[u32] {
        let u = u as usize;
        &self.indices[self.indptr[u] as usize..self.indptr[u + 1] as usize]
    }

    /// The raw CSR row offsets (`num_users + 1` entries).
    pub fn indptr(&self) -> &[u32] {
        &self.indptr
    }

    /// The raw flat item-id arena (sorted within each user segment).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// True if `(u, i)` is a stored interaction.
    pub fn contains(&self, u: UserId, i: u32) -> bool {
        self.user_items(u).binary_search(&i).is_ok()
    }

    /// Iterates all `(user, item)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_users())
            .flat_map(move |u| self.user_items(u as u32).iter().map(move |&i| (u as u32, i)))
    }

    /// Users with at least one interaction.
    pub fn active_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.indptr.windows(2).enumerate().filter(|(_, w)| w[0] < w[1]).map(|(u, _)| u as u32)
    }

    /// Per-item interaction counts (item popularity).
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_items];
        for &i in &self.indices {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Fraction of the user×item grid that is filled.
    pub fn density(&self) -> f64 {
        if self.num_users() == 0 || self.num_items == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / (self.num_users() as f64 * self.num_items as f64)
    }

    /// Mean interactions per user ("Average Lengths" in Table II).
    pub fn avg_profile_len(&self) -> f64 {
        if self.num_users() == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / self.num_users() as f64
    }

    /// A renamed shallow copy (used when deriving train/test splits).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_pairs("tiny", 3, 5, vec![(0, 1), (0, 3), (1, 0), (0, 1), (2, 4), (2, 0)])
    }

    #[test]
    fn dedup_and_sort() {
        let d = tiny();
        assert_eq!(d.user_items(0), &[1, 3]); // duplicate (0,1) removed
        assert_eq!(d.user_items(2), &[0, 4]); // sorted
        assert_eq!(d.num_interactions(), 5);
    }

    #[test]
    fn contains_uses_binary_search() {
        let d = tiny();
        assert!(d.contains(0, 3));
        assert!(!d.contains(0, 2));
        assert!(d.contains(2, 4));
    }

    #[test]
    fn pairs_roundtrip() {
        let d = tiny();
        let pairs: Vec<_> = d.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (1, 0), (2, 0), (2, 4)]);
    }

    #[test]
    fn stats() {
        let d = tiny();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items(), 5);
        assert!((d.density() - 5.0 / 15.0).abs() < 1e-12);
        assert!((d.avg_profile_len() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.item_counts(), vec![2, 1, 0, 1, 1]);
    }

    #[test]
    fn csr_layout_is_flat_and_indexed() {
        let d = tiny();
        assert_eq!(d.indptr(), &[0, 2, 3, 5]);
        assert_eq!(d.indices(), &[1, 3, 0, 0, 4]);
        // slice views alias the arena (zero-copy)
        let arena = d.indices().as_ptr();
        // SAFETY: `indptr` says user 1's slice starts at offset 2 of the
        // 5-element indices arena, so `arena.add(2)` stays in bounds.
        assert_eq!(d.user_items(1).as_ptr(), unsafe { arena.add(2) });
    }

    #[test]
    fn active_users_skips_empty() {
        let d = Dataset::from_user_items("d", 3, vec![vec![0], vec![], vec![2]]);
        let active: Vec<_> = d.active_users().collect();
        assert_eq!(active, vec![0, 2]);
    }

    #[test]
    fn builder_matches_from_user_items() {
        let by_user = vec![vec![1, 3], vec![], vec![0, 4]];
        let via_lists = Dataset::from_user_items("b", 5, by_user.clone());
        let mut b = Dataset::builder("b", 5, by_user.len(), 4);
        for items in &by_user {
            b.push_user(items);
        }
        assert_eq!(b.finish(), via_lists);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_item() {
        let _ = Dataset::from_user_items("d", 2, vec![vec![5]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_user() {
        let _ = Dataset::from_pairs("d", 1, 5, vec![(3, 0)]);
    }
}

/// Wire form for (de)serialization; [`Dataset`] invariants (sorted,
/// deduplicated, in-range) are re-established on load. The on-disk format
/// is unchanged from the pre-CSR representation (`by_user` lists), so
/// exports written by older builds keep loading.
#[derive(serde::Serialize, serde::Deserialize)]
struct DatasetWire {
    name: String,
    num_items: usize,
    by_user: Vec<Vec<u32>>,
}

impl serde::Serialize for Dataset {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        DatasetWire {
            name: self.name.clone(),
            num_items: self.num_items,
            by_user: (0..self.num_users()).map(|u| self.user_items(u as u32).to_vec()).collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Dataset {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = DatasetWire::deserialize(deserializer)?;
        for items in &wire.by_user {
            if let Some(&max) = items.iter().max() {
                if max as usize >= wire.num_items {
                    return Err(serde::de::Error::custom(format!(
                        "item id {max} out of range ({} items)",
                        wire.num_items
                    )));
                }
            }
        }
        Ok(Dataset::from_user_items(wire.name, wire.num_items, wire.by_user))
    }
}

impl Dataset {
    /// Serializes to a JSON string (reproducible experiment exports).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialization is infallible")
    }

    /// Parses a dataset from JSON, re-validating all invariants.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let d = Dataset::from_pairs("rt", 3, 9, vec![(0, 4), (1, 2), (2, 8), (0, 1)]);
        let back = Dataset::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn unsorted_json_is_normalized() {
        let json = r#"{"name":"x","num_items":5,"by_user":[[3,1,3,0]]}"#;
        let d = Dataset::from_json(json).unwrap();
        assert_eq!(d.user_items(0), &[0, 1, 3]);
    }

    #[test]
    fn out_of_range_json_is_rejected() {
        let json = r#"{"name":"x","num_items":2,"by_user":[[7]]}"#;
        let err = Dataset::from_json(json).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Dataset::from_json("{not json").is_err());
    }
}
