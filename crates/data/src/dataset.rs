//! The core implicit-feedback dataset type.

/// User identifier. In a federated recommender each user *is* a client, so
/// the same id addresses both the data partition and the client.
pub type UserId = u32;

/// An implicit-feedback dataset: for every user, the sorted set of item ids
/// the user interacted with (`r_{ij} = 1` in the paper's notation; absent
/// pairs are candidate negatives).
#[derive(Clone, Debug, PartialEq)]
pub struct Dataset {
    name: String,
    num_items: usize,
    /// `by_user[u]` = sorted, deduplicated item ids of user `u`.
    by_user: Vec<Vec<u32>>,
}

impl Dataset {
    /// Builds a dataset from per-user item lists. Lists are sorted and
    /// deduplicated; out-of-range item ids panic.
    pub fn from_user_items(
        name: impl Into<String>,
        num_items: usize,
        mut by_user: Vec<Vec<u32>>,
    ) -> Self {
        for items in &mut by_user {
            items.sort_unstable();
            items.dedup();
            if let Some(&max) = items.last() {
                assert!(
                    (max as usize) < num_items,
                    "item id {max} out of range ({num_items} items)"
                );
            }
        }
        Self { name: name.into(), num_items, by_user }
    }

    /// Builds a dataset from `(user, item)` pairs.
    pub fn from_pairs(
        name: impl Into<String>,
        num_users: usize,
        num_items: usize,
        pairs: impl IntoIterator<Item = (u32, u32)>,
    ) -> Self {
        let mut by_user = vec![Vec::new(); num_users];
        for (u, i) in pairs {
            assert!((u as usize) < num_users, "user id {u} out of range ({num_users} users)");
            by_user[u as usize].push(i);
        }
        Self::from_user_items(name, num_items, by_user)
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn num_users(&self) -> usize {
        self.by_user.len()
    }

    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total number of stored interactions.
    pub fn num_interactions(&self) -> usize {
        self.by_user.iter().map(Vec::len).sum()
    }

    /// The sorted items of user `u`.
    pub fn user_items(&self, u: UserId) -> &[u32] {
        &self.by_user[u as usize]
    }

    /// True if `(u, i)` is a stored interaction.
    pub fn contains(&self, u: UserId, i: u32) -> bool {
        self.by_user[u as usize].binary_search(&i).is_ok()
    }

    /// Iterates all `(user, item)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.by_user
            .iter()
            .enumerate()
            .flat_map(|(u, items)| items.iter().map(move |&i| (u as u32, i)))
    }

    /// Users with at least one interaction.
    pub fn active_users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.by_user
            .iter()
            .enumerate()
            .filter(|(_, items)| !items.is_empty())
            .map(|(u, _)| u as u32)
    }

    /// Per-item interaction counts (item popularity).
    pub fn item_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_items];
        for (_, i) in self.pairs() {
            counts[i as usize] += 1;
        }
        counts
    }

    /// Fraction of the user×item grid that is filled.
    pub fn density(&self) -> f64 {
        if self.num_users() == 0 || self.num_items == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / (self.num_users() as f64 * self.num_items as f64)
    }

    /// Mean interactions per user ("Average Lengths" in Table II).
    pub fn avg_profile_len(&self) -> f64 {
        if self.num_users() == 0 {
            return 0.0;
        }
        self.num_interactions() as f64 / self.num_users() as f64
    }

    /// A renamed shallow copy (used when deriving train/test splits).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_pairs("tiny", 3, 5, vec![(0, 1), (0, 3), (1, 0), (0, 1), (2, 4), (2, 0)])
    }

    #[test]
    fn dedup_and_sort() {
        let d = tiny();
        assert_eq!(d.user_items(0), &[1, 3]); // duplicate (0,1) removed
        assert_eq!(d.user_items(2), &[0, 4]); // sorted
        assert_eq!(d.num_interactions(), 5);
    }

    #[test]
    fn contains_uses_binary_search() {
        let d = tiny();
        assert!(d.contains(0, 3));
        assert!(!d.contains(0, 2));
        assert!(d.contains(2, 4));
    }

    #[test]
    fn pairs_roundtrip() {
        let d = tiny();
        let pairs: Vec<_> = d.pairs().collect();
        assert_eq!(pairs, vec![(0, 1), (0, 3), (1, 0), (2, 0), (2, 4)]);
    }

    #[test]
    fn stats() {
        let d = tiny();
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_items(), 5);
        assert!((d.density() - 5.0 / 15.0).abs() < 1e-12);
        assert!((d.avg_profile_len() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.item_counts(), vec![2, 1, 0, 1, 1]);
    }

    #[test]
    fn active_users_skips_empty() {
        let d = Dataset::from_user_items("d", 3, vec![vec![0], vec![], vec![2]]);
        let active: Vec<_> = d.active_users().collect();
        assert_eq!(active, vec![0, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_item() {
        let _ = Dataset::from_user_items("d", 2, vec![vec![5]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_user() {
        let _ = Dataset::from_pairs("d", 1, 5, vec![(3, 0)]);
    }
}

/// Wire form for (de)serialization; [`Dataset`] invariants (sorted,
/// deduplicated, in-range) are re-established on load.
#[derive(serde::Serialize, serde::Deserialize)]
struct DatasetWire {
    name: String,
    num_items: usize,
    by_user: Vec<Vec<u32>>,
}

impl serde::Serialize for Dataset {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        DatasetWire {
            name: self.name.clone(),
            num_items: self.num_items,
            by_user: self.by_user.clone(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for Dataset {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let wire = DatasetWire::deserialize(deserializer)?;
        for items in &wire.by_user {
            if let Some(&max) = items.iter().max() {
                if max as usize >= wire.num_items {
                    return Err(serde::de::Error::custom(format!(
                        "item id {max} out of range ({} items)",
                        wire.num_items
                    )));
                }
            }
        }
        Ok(Dataset::from_user_items(wire.name, wire.num_items, wire.by_user))
    }
}

impl Dataset {
    /// Serializes to a JSON string (reproducible experiment exports).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("dataset serialization is infallible")
    }

    /// Parses a dataset from JSON, re-validating all invariants.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let d = Dataset::from_pairs("rt", 3, 9, vec![(0, 4), (1, 2), (2, 8), (0, 1)]);
        let back = Dataset::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn unsorted_json_is_normalized() {
        let json = r#"{"name":"x","num_items":5,"by_user":[[3,1,3,0]]}"#;
        let d = Dataset::from_json(json).unwrap();
        assert_eq!(d.user_items(0), &[0, 1, 3]);
    }

    #[test]
    fn out_of_range_json_is_rejected() {
        let json = r#"{"name":"x","num_items":2,"by_user":[[7]]}"#;
        let err = Dataset::from_json(json).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(Dataset::from_json("{not json").is_err());
    }
}
