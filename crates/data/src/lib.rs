//! # ptf-data
//!
//! Implicit-feedback recommendation datasets for the PTF-FedRec
//! reproduction:
//!
//! * [`dataset::Dataset`] — a compact per-user interaction store shared by
//!   every model and protocol in the workspace.
//! * [`synthetic`] — a latent-factor interaction generator whose presets
//!   ([`presets`]) are calibrated to the Table II statistics of
//!   MovieLens-100K, Steam-200K and Gowalla (see `DESIGN.md` §4 for the
//!   substitution rationale: raw dumps are not redistributable, so we match
//!   user/item counts, interaction volume, profile-length skew and density,
//!   which are the properties the paper's experiments actually exercise).
//! * [`split`] — the paper's 8:2 per-user train/test split.
//! * [`negative`] — negative sampling at the paper's 1:4 ratio.
//! * [`loader`] — parsers for the real MovieLens/CSV formats, for users who
//!   do have the original files on disk.
//! * [`stats`] — Table II style dataset statistics.

pub mod arena;
pub mod dataset;
pub mod loader;
pub mod negative;
pub mod presets;
pub mod scale;
pub mod split;
pub mod stats;
pub mod synthetic;

pub use arena::{ArenaError, ArenaWriter, CsrArena};
pub use dataset::{Dataset, DatasetBuilder, UserId};
pub use presets::{DatasetPreset, Scale};
pub use scale::{ScaleConfig, SCALE_STREAM};
pub use split::{ThreeWaySplit, TrainTestSplit};
pub use stats::DatasetStats;
pub use synthetic::SyntheticConfig;

/// A deterministic RNG for examples and tests.
pub fn test_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
