//! Dataset presets calibrated to the paper's Table II.
//!
//! `paper()` configs match the published statistics exactly in user/item
//! counts and interaction targets; `small()` configs are ~20× reductions
//! that preserve the *ordering* of scale, density and profile length across
//! the three datasets, so every experiment keeps its qualitative shape
//! while finishing quickly (`PTF_SCALE=small`, the bench default).

use crate::dataset::Dataset;
use crate::synthetic::SyntheticConfig;
use rand::Rng;

/// The three evaluation datasets of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// 943 users × 1,682 movies, 100,000 ratings, density 6.30%.
    MovieLens100K,
    /// 3,753 users × 5,134 games, 114,713 interactions, density 0.59%.
    Steam200K,
    /// 8,392 users × 10,086 locations, 391,238 check-ins, density 0.46%.
    Gowalla,
}

impl DatasetPreset {
    pub const ALL: [DatasetPreset; 3] = [Self::MovieLens100K, Self::Steam200K, Self::Gowalla];

    pub fn name(self) -> &'static str {
        match self {
            Self::MovieLens100K => "MovieLens-100K",
            Self::Steam200K => "Steam-200K",
            Self::Gowalla => "Gowalla",
        }
    }

    /// Full-size synthetic configuration (Table II statistics).
    pub fn paper(self) -> SyntheticConfig {
        match self {
            Self::MovieLens100K => SyntheticConfig {
                len_sigma: 0.8,
                ..SyntheticConfig::new(self.name(), 943, 1_682, 106.0)
            },
            Self::Steam200K => SyntheticConfig {
                len_sigma: 1.0,
                ..SyntheticConfig::new(self.name(), 3_753, 5_134, 30.6)
            },
            Self::Gowalla => SyntheticConfig {
                len_sigma: 1.0,
                ..SyntheticConfig::new(self.name(), 8_392, 10_086, 46.6)
            },
        }
    }

    /// Scaled-down synthetic configuration for fast experiment runs.
    ///
    /// Sizes shrink ~20×, but MovieLens stays the densest/longest-profile
    /// dataset and Gowalla the largest/sparsest, preserving the cross-
    /// dataset trends of Tables III–V.
    pub fn small(self) -> SyntheticConfig {
        match self {
            Self::MovieLens100K => SyntheticConfig {
                len_sigma: 0.8,
                ..SyntheticConfig::new("MovieLens-100K(small)", 120, 260, 24.0)
            },
            Self::Steam200K => SyntheticConfig {
                len_sigma: 0.9,
                ..SyntheticConfig::new("Steam-200K(small)", 200, 420, 9.0)
            },
            Self::Gowalla => SyntheticConfig {
                len_sigma: 0.9,
                ..SyntheticConfig::new("Gowalla(small)", 280, 560, 10.0)
            },
        }
    }

    /// Generates the preset at the requested scale.
    pub fn generate(self, scale: Scale, rng: &mut impl Rng) -> Dataset {
        match scale {
            Scale::Paper => self.paper().generate(rng),
            Scale::Small => self.small().generate(rng),
        }
    }
}

/// Experiment scale selector (see `PTF_SCALE` in the bench harness).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Table II sized datasets and paper hyperparameters.
    Paper,
    /// ~20× reduced datasets for quick runs.
    Small,
}

impl Scale {
    /// Reads `PTF_SCALE` from the environment (default [`Scale::Small`]).
    pub fn from_env() -> Self {
        match std::env::var("PTF_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => Scale::Paper,
            _ => Scale::Small,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_match_table2_counts() {
        let ml = DatasetPreset::MovieLens100K.paper();
        assert_eq!((ml.num_users, ml.num_items), (943, 1682));
        assert_eq!(ml.target_interactions, 99_958); // 943 × 106.0 rounded
        let steam = DatasetPreset::Steam200K.paper();
        assert_eq!((steam.num_users, steam.num_items), (3753, 5134));
        let gowalla = DatasetPreset::Gowalla.paper();
        assert_eq!((gowalla.num_users, gowalla.num_items), (8392, 10_086));
    }

    #[test]
    fn small_preserves_cross_dataset_ordering() {
        let mut rng = crate::test_rng(11);
        let ml = DatasetPreset::MovieLens100K.small().generate(&mut rng);
        let steam = DatasetPreset::Steam200K.small().generate(&mut rng);
        let gowalla = DatasetPreset::Gowalla.small().generate(&mut rng);
        // density: ML ≫ Steam ≳ Gowalla
        assert!(ml.density() > 2.0 * steam.density());
        assert!(steam.density() > gowalla.density());
        // scale: Gowalla has the most users/items
        assert!(gowalla.num_users() > steam.num_users());
        assert!(steam.num_users() > ml.num_users());
        // profile length: ML longest
        assert!(ml.avg_profile_len() > steam.avg_profile_len());
    }

    #[test]
    fn scale_from_env_defaults_to_small() {
        // NB: don't set the variable here — tests run in parallel and the
        // env is process-global; we only check the default path.
        if std::env::var("PTF_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }
}
