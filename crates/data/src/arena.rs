//! On-disk CSR interaction arena: the streaming backend of the
//! scale-synthetic presets.
//!
//! A million-user dataset must never be fully resident — the cohort
//! scheduler reads one user's interaction row at a time, so the arena
//! keeps the whole CSR structure (indptr + indices) in a flat file and
//! serves rows by positioned reads (`pread`): two 8-byte reads locate the
//! row, one read fetches it. Nothing is memory-mapped and nothing beyond
//! the requested row is buffered, so a reader's resident footprint is
//! O(longest row) regardless of dataset size.
//!
//! # File format (version 1, all integers little-endian)
//!
//! ```text
//! offset  size              field
//! 0       8                 magic "PTFARENA"
//! 8       4                 format version (= 1)
//! 12      4                 padding (zero)
//! 16      8                 num_users  (u64)
//! 24      8                 num_items  (u64)
//! 32      8                 nnz        (u64)
//! 40      8·(num_users+1)   indptr     (u64 each, indptr[0] = 0,
//!                                       indptr[num_users] = nnz)
//! …       4·nnz             indices    (u32 each; each row sorted
//!                                       ascending, unique, < num_items)
//! ```
//!
//! The writer holds the indptr vector in memory while generating (8 bytes
//! per user — ~8 MB at one million users, generation-time only); indices
//! stream straight to disk. Readers hold neither.

use std::fs::File;
use std::io::{BufWriter, Seek, SeekFrom, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;

const MAGIC: &[u8; 8] = b"PTFARENA";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 40;

/// Errors from reading or writing an arena file.
#[derive(Debug)]
pub enum ArenaError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The file exists but is not a valid arena (wrong magic, truncated,
    /// internally inconsistent).
    Format(String),
}

impl std::fmt::Display for ArenaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "arena i/o error: {e}"),
            Self::Format(msg) => write!(f, "bad arena file: {msg}"),
        }
    }
}

impl std::error::Error for ArenaError {}

impl From<std::io::Error> for ArenaError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Streaming arena writer: row pushes append indices to disk through a
/// buffered writer while the indptr accumulates in memory; [`finish`]
/// seeks back and writes the header + indptr once every row is in.
///
/// [`finish`]: ArenaWriter::finish
pub struct ArenaWriter {
    out: BufWriter<File>,
    num_items: usize,
    /// `indptr[u]` = index offset where user `u`'s row starts.
    indptr: Vec<u64>,
    expected_users: usize,
}

impl ArenaWriter {
    /// Creates (truncating) the arena file for exactly `num_users` rows.
    pub fn create(path: &Path, num_users: usize, num_items: usize) -> Result<Self, ArenaError> {
        if num_users == 0 || num_items == 0 {
            return Err(ArenaError::Format("arena needs at least one user and item".to_string()));
        }
        let file = File::create(path)?;
        let mut out = BufWriter::new(file);
        // reserve the header + indptr region; contents land in finish()
        out.seek(SeekFrom::Start(HEADER_LEN + 8 * (num_users as u64 + 1)))?;
        let mut indptr = Vec::with_capacity(num_users + 1);
        indptr.push(0);
        Ok(Self { out, num_items, indptr, expected_users: num_users })
    }

    /// Appends the next user's interaction row (sorted ascending, unique,
    /// all `< num_items`). Rows must be pushed in user-id order.
    pub fn push_user(&mut self, sorted_items: &[u32]) -> Result<(), ArenaError> {
        if self.indptr.len() > self.expected_users {
            return Err(ArenaError::Format(format!(
                "more rows pushed than the declared {} users",
                self.expected_users
            )));
        }
        let mut prev: Option<u32> = None;
        for &i in sorted_items {
            if (i as usize) >= self.num_items {
                return Err(ArenaError::Format(format!(
                    "item {i} out of range ({} items)",
                    self.num_items
                )));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(ArenaError::Format("row items must be sorted and unique".to_string()));
            }
            prev = Some(i);
            self.out.write_all(&i.to_le_bytes())?;
        }
        let last = *self.indptr.last().unwrap_or(&0);
        self.indptr.push(last + sorted_items.len() as u64);
        Ok(())
    }

    /// Writes the header and indptr, flushes, and closes the file.
    pub fn finish(mut self) -> Result<(), ArenaError> {
        let pushed = self.indptr.len() - 1;
        if pushed != self.expected_users {
            return Err(ArenaError::Format(format!(
                "{pushed} rows pushed, {} declared",
                self.expected_users
            )));
        }
        let nnz = *self.indptr.last().unwrap_or(&0);
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(MAGIC)?;
        self.out.write_all(&VERSION.to_le_bytes())?;
        self.out.write_all(&0u32.to_le_bytes())?;
        self.out.write_all(&(self.expected_users as u64).to_le_bytes())?;
        self.out.write_all(&(self.num_items as u64).to_le_bytes())?;
        self.out.write_all(&nnz.to_le_bytes())?;
        for &p in &self.indptr {
            self.out.write_all(&p.to_le_bytes())?;
        }
        self.out.flush()?;
        Ok(())
    }
}

/// Read handle over an arena file: validated header in memory, everything
/// else fetched by positioned reads on demand.
pub struct CsrArena {
    file: File,
    num_users: usize,
    num_items: usize,
    nnz: u64,
}

impl CsrArena {
    /// Opens and validates an arena file (header sanity, declared sizes
    /// against the actual file length, final indptr against nnz).
    pub fn open(path: &Path) -> Result<Self, ArenaError> {
        let file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact_at(&mut header, 0).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ArenaError::Format("file shorter than the arena header".to_string())
            } else {
                ArenaError::Io(e)
            }
        })?;
        if &header[..8] != MAGIC {
            return Err(ArenaError::Format("wrong magic (not an arena file)".to_string()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("fixed slice"));
        if version != VERSION {
            return Err(ArenaError::Format(format!(
                "unsupported arena version {version} (reader supports {VERSION})"
            )));
        }
        let num_users = u64::from_le_bytes(header[16..24].try_into().expect("fixed slice"));
        let num_items = u64::from_le_bytes(header[24..32].try_into().expect("fixed slice"));
        let nnz = u64::from_le_bytes(header[32..40].try_into().expect("fixed slice"));
        if num_users == 0 || num_items == 0 {
            return Err(ArenaError::Format("empty user or item space".to_string()));
        }
        if num_users > u32::MAX as u64 || num_items > u32::MAX as u64 {
            return Err(ArenaError::Format("user or item space exceeds u32 ids".to_string()));
        }
        let expect_len = HEADER_LEN + 8 * (num_users + 1) + 4 * nnz;
        let actual_len = file.metadata()?.len();
        if actual_len < expect_len {
            return Err(ArenaError::Format(format!(
                "truncated: {actual_len} bytes, header declares {expect_len}"
            )));
        }
        let arena =
            Self { file, num_users: num_users as usize, num_items: num_items as usize, nnz };
        let (first, last) = (arena.indptr_at(0)?, arena.indptr_at(num_users as usize)?);
        if first != 0 || last != nnz {
            return Err(ArenaError::Format(format!(
                "indptr endpoints ({first}, {last}) disagree with nnz {nnz}"
            )));
        }
        Ok(arena)
    }

    pub fn num_users(&self) -> usize {
        self.num_users
    }

    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total interaction count.
    pub fn nnz(&self) -> u64 {
        self.nnz
    }

    /// The ids of users with at least one interaction, ascending — the
    /// cohort scheduler's trainable set. One buffered sequential sweep
    /// over the indptr region (8 KB resident), never the indices.
    pub fn nonempty_users(&self) -> Result<Vec<u32>, ArenaError> {
        let mut out = Vec::new();
        let mut buf = [0u8; 8192];
        let mut prev: Option<u64> = None;
        let mut entry = 0usize; // next indptr entry to decode
        let total = self.num_users + 1;
        while entry < total {
            let want = ((total - entry) * 8).min(buf.len());
            let at = HEADER_LEN + 8 * entry as u64;
            self.file.read_exact_at(&mut buf[..want], at)?;
            for chunk in buf[..want].chunks_exact(8) {
                let p = u64::from_le_bytes(chunk.try_into().expect("fixed chunk"));
                if let Some(prev) = prev {
                    if p < prev {
                        return Err(ArenaError::Format(format!(
                            "indptr not monotone at entry {entry}"
                        )));
                    }
                    if p > prev {
                        out.push((entry - 1) as u32);
                    }
                }
                prev = Some(p);
                entry += 1;
            }
        }
        Ok(out)
    }

    fn indptr_at(&self, u: usize) -> Result<u64, ArenaError> {
        let mut buf = [0u8; 8];
        self.file.read_exact_at(&mut buf, HEADER_LEN + 8 * u as u64)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Reads `user`'s interaction row into `out` (cleared on entry). The
    /// resident cost is exactly this row.
    pub fn read_user_into(&self, user: u32, out: &mut Vec<u32>) -> Result<(), ArenaError> {
        out.clear();
        if user as usize >= self.num_users {
            return Err(ArenaError::Format(format!(
                "user {user} out of range ({} users)",
                self.num_users
            )));
        }
        let (start, end) = (self.indptr_at(user as usize)?, self.indptr_at(user as usize + 1)?);
        if start > end || end > self.nnz {
            return Err(ArenaError::Format(format!(
                "corrupt indptr for user {user}: [{start}, {end}) with nnz {}",
                self.nnz
            )));
        }
        let count = (end - start) as usize;
        if count == 0 {
            return Ok(());
        }
        let bytes_at = HEADER_LEN + 8 * (self.num_users as u64 + 1) + 4 * start;
        ROW_BYTES.with(|cell| -> Result<(), ArenaError> {
            let mut raw = cell.borrow_mut();
            raw.clear();
            raw.resize(count * 4, 0);
            self.file.read_exact_at(&mut raw, bytes_at)?;
            out.extend(raw.chunks_exact(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])));
            Ok(())
        })?;
        for w in out.windows(2) {
            if w[0] >= w[1] {
                return Err(ArenaError::Format(format!("user {user}'s row is not sorted unique")));
            }
        }
        if out.last().is_some_and(|&l| l as usize >= self.num_items) {
            return Err(ArenaError::Format(format!(
                "user {user}'s row references an out-of-range item"
            )));
        }
        Ok(())
    }
}

std::thread_local! {
    /// Raw byte scratch for row reads: steady-state row fetches reuse one
    /// buffer per thread instead of allocating per call.
    static ROW_BYTES: std::cell::RefCell<Vec<u8>> = const { std::cell::RefCell::new(Vec::new()) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("ptf-arena-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir.join(name)
    }

    fn write_sample(path: &Path) {
        let mut w = ArenaWriter::create(path, 3, 10).unwrap();
        w.push_user(&[1, 4, 9]).unwrap();
        w.push_user(&[]).unwrap();
        w.push_user(&[0, 7]).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn roundtrip_rows() {
        let path = tmp("roundtrip.arena");
        write_sample(&path);
        let a = CsrArena::open(&path).unwrap();
        assert_eq!((a.num_users(), a.num_items(), a.nnz()), (3, 10, 5));
        let mut row = Vec::new();
        a.read_user_into(0, &mut row).unwrap();
        assert_eq!(row, vec![1, 4, 9]);
        a.read_user_into(1, &mut row).unwrap();
        assert_eq!(row, Vec::<u32>::new());
        a.read_user_into(2, &mut row).unwrap();
        assert_eq!(row, vec![0, 7]);
        assert!(a.read_user_into(3, &mut row).is_err(), "out-of-range user accepted");
        assert_eq!(a.nonempty_users().unwrap(), vec![0, 2], "empty user 1 must be skipped");
    }

    #[test]
    fn writer_validates_rows() {
        let path = tmp("writer-validate.arena");
        let mut w = ArenaWriter::create(&path, 2, 5).unwrap();
        assert!(w.push_user(&[3, 1]).is_err(), "unsorted row accepted");
        assert!(w.push_user(&[5]).is_err(), "out-of-range item accepted");
        w.push_user(&[0]).unwrap();
        // finishing before all declared rows are in must fail
        assert!(w.finish().is_err(), "short arena accepted");
    }

    #[test]
    fn open_rejects_truncation_and_garbage() {
        let path = tmp("corrupt.arena");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        // truncated mid-indices
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(CsrArena::open(&path), Err(ArenaError::Format(_))), "truncation accepted");
        // shorter than the header
        std::fs::write(&path, &full[..20]).unwrap();
        assert!(matches!(CsrArena::open(&path), Err(ArenaError::Format(_))), "stub accepted");
        // wrong magic
        let mut bad = full.clone();
        bad[0] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert!(matches!(CsrArena::open(&path), Err(ArenaError::Format(_))), "bad magic accepted");
        // future version
        let mut vnext = full.clone();
        vnext[8] = 9;
        std::fs::write(&path, &vnext).unwrap();
        assert!(
            matches!(CsrArena::open(&path), Err(ArenaError::Format(_))),
            "future version accepted"
        );
        // nnz disagreeing with the final indptr entry
        let mut badnnz = full;
        badnnz[32] = 99;
        std::fs::write(&path, &badnnz).unwrap();
        assert!(
            matches!(CsrArena::open(&path), Err(ArenaError::Format(_))),
            "inconsistent nnz accepted"
        );
    }

    #[test]
    fn corrupt_rows_fail_on_read_not_on_open() {
        let path = tmp("corrupt-row.arena");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        // user 0's row starts right after header + 4 indptr entries;
        // swap its first two items to break the sorted invariant
        let rows_at = (HEADER_LEN + 8 * 4) as usize;
        bytes[rows_at] = 4;
        bytes[rows_at + 4] = 1;
        std::fs::write(&path, &bytes).unwrap();
        let a = CsrArena::open(&path).unwrap();
        let mut row = Vec::new();
        assert!(a.read_user_into(0, &mut row).is_err(), "unsorted row accepted");
        // other rows still read fine
        a.read_user_into(2, &mut row).unwrap();
        assert_eq!(row, vec![0, 7]);
    }
}
